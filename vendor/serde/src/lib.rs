//! Offline stub of `serde`.
//!
//! Re-exports the no-op derive macros and declares marker traits so
//! `use serde::{Serialize, Deserialize}` plus `#[derive(...)]` compile.
//! No serializer exists in-tree; when one is added, replace this stub
//! with the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de> {}
