//! Offline stub of `proptest` 1.x.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with [`Strategy::prop_map`],
//! [`Just`], [`any`], range strategies, tuple strategies,
//! [`collection::vec`], `prop_oneof!`, and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted for an offline
//! build:
//!
//! * **No shrinking.** A failing case reports the assertion message
//!   (which the tests format with the offending inputs) instead of a
//!   minimized counterexample.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test name, so CI failures reproduce exactly.
//! * **Case count** defaults to 256 and is overridden with the
//!   `PROPTEST_CASES` environment variable, mirroring upstream.

use std::rc::Rc;

/// Deterministic SplitMix64 RNG driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a hash).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty set");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform fraction in `[0, 1)` with 53 random bits.
    pub fn fraction(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Number of passing cases each `proptest!` test must accumulate.
#[must_use]
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test as a whole fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Construct a failure with a message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// A generator of values of type [`Strategy::Value`].
///
/// Object-safe: `prop_oneof!` stores `Rc<dyn Strategy<Value = V>>`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (upstream `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            func: f,
        }
    }
}

/// Strategy producing `f(source)` values. See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.sample(rng))
    }
}

/// Strategy that always yields a clone of its payload.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (subset of upstream
/// `Arbitrary`).
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for an unconstrained value of `A`. Built by [`any`].
#[derive(Debug)]
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The upstream `any::<T>()` entry point.
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.fraction() as f32
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.fraction()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Uniform choice among boxed alternatives. Built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<Rc<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from the alternatives (must be non-empty).
    #[must_use]
    pub fn new(options: Vec<Rc<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.index(self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Coerce one `prop_oneof!` arm to the shared trait-object type.
#[must_use]
pub fn union_member<S>(s: S) -> Rc<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Rc::new(s)
}

/// Collection strategies (upstream `proptest::collection`).
pub mod collection {
    use super::{SizeBounds, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// Upstream `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        assert!(min_len <= max_len, "empty vec size range");
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.max_len - self.min_len + 1;
            let len = self.min_len + rng.index(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Length specifications accepted by [`collection::vec`] (upstream
/// `Into<SizeRange>`). Bounds are inclusive.
pub trait SizeBounds {
    /// `(min, max)`, both inclusive.
    fn bounds(&self) -> (usize, usize);
}

impl SizeBounds for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeBounds for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeBounds for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Uniform choice among strategy arms of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::union_member($arm)),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed at {}:{}: {}", file!(), line!(), stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed at {}:{}: {}", file!(), line!(), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "{} == {} failed: {:?} != {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "{}: {:?} != {:?}",
            format!($($fmt)+), lhs, rhs
        );
    }};
}

/// Fail the current case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "{} != {} failed: both {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Skip (do not count) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples inputs [`case_count`] times.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::case_count();
                let mut rng = $crate::TestRng::from_name(concat!(file!(), "::", stringify!($name)));
                let mut passed = 0usize;
                let mut attempts = 0usize;
                while passed < cases {
                    attempts += 1;
                    assert!(
                        attempts <= cases.saturating_mul(20),
                        "proptest `{}`: prop_assume! rejected too many samples ({} of {})",
                        stringify!($name), attempts - passed, attempts
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed after {} passing case(s): {}",
                                stringify!($name), passed, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Everything a property-test module needs (upstream
/// `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let s = crate::collection::vec(any::<u8>(), 3..7);
        let mut rng = crate::TestRng::from_name("vec");
        for _ in 0..200 {
            let v = crate::Strategy::sample(&s, &mut rng);
            assert!((3..=6).contains(&v.len()), "len {} out of 3..=6", v.len());
        }
    }

    proptest! {
        /// The macro machinery itself: ranges stay in bounds, maps apply,
        /// oneof only yields its arms, assume rejects without failing.
        #[test]
        fn self_check(
            x in 0u8..32,
            y in prop_oneof![Just(1u32), Just(2), (10u32..12).prop_map(|v| v * 10)],
            v in crate::collection::vec(-1.0f32..1.0, 0..5),
        ) {
            prop_assume!(x != 31);
            prop_assert!(x < 31);
            prop_assert!(matches!(y, 1 | 2 | 100 | 110), "unexpected arm value {y}");
            prop_assert!(v.len() <= 4);
            for e in &v {
                prop_assert!((-1.0..1.0).contains(e), "{e}");
            }
            prop_assert_eq!(x as u32 + y, y + x as u32);
            prop_assert_ne!(y, 0);
        }
    }
}
