//! Offline stub of `parking_lot`.
//!
//! Wraps `std::sync::Mutex` with `parking_lot`'s non-poisoning `lock()`
//! signature. A poisoned std mutex (a panic while holding the guard)
//! recovers the inner data, matching `parking_lot` semantics where locks
//! are never poisoned.

use std::fmt;

/// A mutual-exclusion primitive with `parking_lot`'s API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7, "parking_lot locks never poison");
    }
}
