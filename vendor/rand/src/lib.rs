//! Offline stub of `rand` 0.8.
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] backed by SplitMix64. The stream differs from
//! upstream `rand`'s ChaCha12 `StdRng`, but it is deterministic per
//! seed, which is the only property the workspace relies on (seeded
//! synthetic weights and inputs).

/// Core RNG interface: a source of uniform `u64`s plus derived samplers.
pub trait Rng {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that [`Rng::gen_range`] can sample a `T` from. The
/// output type parameter (mirroring upstream `rand`) lets the caller's
/// expected type drive inference of unsuffixed literals in the range.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        // 24 uniform mantissa bits in [0, 1).
        let frac = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + (self.end - self.start) * frac
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * frac
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: SplitMix64.
    ///
    /// Small, fast, full 64-bit period, and — unlike upstream's ChaCha12
    /// — implementable without a registry. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn int_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
        }
    }
}
