//! Offline stub of `serde_derive`: the derives expand to nothing.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]`; no in-tree code consumes the generated impls, so an
//! empty expansion keeps the annotation compiling without a registry.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
