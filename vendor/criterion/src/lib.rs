//! Offline stub of `criterion` 0.5.
//!
//! Supports the bench targets in `crates/bench`: `Criterion`,
//! `benchmark_group` (with `sample_size`), `bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Two modes, selected the same way upstream criterion selects them:
//!
//! * **Bench mode** (`cargo bench` passes `--bench`): each benchmark is
//!   warmed up, then timed for `sample_size` samples; mean/min/max
//!   per-iteration wall-clock times are printed.
//! * **Test mode** (anything else, e.g. `cargo test --benches`): each
//!   benchmark body runs exactly once so the target is exercised and
//!   fails loudly if it panics, without burning CI time.
//!
//! Either mode also drops a machine-readable one-line JSON summary per
//! benchmark under `target/criterion/` (upstream criterion's report
//! directory; override with `CRITERION_OUTPUT_DIR`), so CI can archive
//! the perf trajectory of every push as a build artifact. Write
//! failures are ignored — a read-only checkout must not fail a bench.
//!
//! No plots, no reports, no statistics beyond the three numbers.

use std::time::{Duration, Instant};

/// Per-iteration timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver (a tiny stand-in for `criterion::Criterion`).
pub struct Criterion {
    bench_mode: bool,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    /// Configure from the command line the way cargo invokes bench
    /// binaries: `--bench` selects bench mode; a bare positional
    /// argument filters benchmarks by substring. An explicit `--test`
    /// wins regardless of argument order (upstream criterion semantics:
    /// `cargo bench -- --test` runs each benchmark once, even though
    /// cargo appends its own `--bench` to the invocation).
    fn default() -> Self {
        let mut bench_mode = false;
        let mut explicit_test = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--profile-time" => bench_mode = true,
                "--test" => explicit_test = true,
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Criterion {
            bench_mode: bench_mode && !explicit_test,
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Run `routine` as a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(id, sample_size, routine);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, sample_size: usize, mut routine: F) {
        if let Some(f) = &self.filter {
            if !id.contains(f.as_str()) {
                return;
            }
        }
        if !self.bench_mode {
            // Test mode: run the body once so it is exercised.
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            if !cfg!(test) {
                write_summary(id, &test_summary_json(id, b.elapsed.as_secs_f64()));
            }
            println!("test-mode {id}: ok");
            return;
        }
        // Warm-up: one iteration to estimate cost and prime caches.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        let estimate = b.elapsed.max(Duration::from_nanos(1));
        // Aim for ~50 ms per sample, clamped to [1, 10_000] iterations.
        let iters =
            (Duration::from_millis(50).as_nanos() / estimate.as_nanos()).clamp(1, 10_000) as u64;

        let mut samples = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        if !cfg!(test) {
            write_summary(
                id,
                &bench_summary_json(id, mean, min, max, sample_size, iters),
            );
        }
        println!(
            "{id:40} mean {:>12} min {:>12} max {:>12} ({sample_size} samples x {iters} iters)",
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
        );
    }
}

/// One-line JSON for a timed (bench-mode) run.
fn bench_summary_json(
    id: &str,
    mean_s: f64,
    min_s: f64,
    max_s: f64,
    samples: usize,
    iters: u64,
) -> String {
    format!(
        "{{\"id\":\"{id}\",\"mode\":\"bench\",\"mean_s\":{mean_s:e},\
         \"min_s\":{min_s:e},\"max_s\":{max_s:e},\
         \"samples\":{samples},\"iters_per_sample\":{iters}}}"
    )
}

/// One-line JSON for a test-mode run (one iteration; the time is a
/// smoke number, not a statistic).
fn test_summary_json(id: &str, once_s: f64) -> String {
    format!("{{\"id\":\"{id}\",\"mode\":\"test\",\"once_s\":{once_s:e}}}")
}

/// File stem for a benchmark id (`group/name` → `group_name`).
fn summary_file_stem(id: &str) -> String {
    id.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// The summary directory: `CRITERION_OUTPUT_DIR` when set, else
/// `criterion/` inside the build's target directory (found by walking
/// up from the bench executable — cargo runs bench binaries with the
/// *package* directory as cwd, so a relative path would scatter
/// summaries across workspace members).
fn output_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CRITERION_OUTPUT_DIR") {
        return dir.into();
    }
    if let Ok(exe) = std::env::current_exe() {
        if let Some(target) = exe
            .ancestors()
            .find(|p| p.file_name().is_some_and(|n| n == "target"))
        {
            return target.join("criterion");
        }
    }
    std::path::PathBuf::from("target/criterion")
}

/// Persist a summary, best-effort: benches must not fail on a
/// read-only checkout.
fn write_summary(id: &str, json: &str) {
    let dir = output_dir();
    let path = dir.join(format!("{}.json", summary_file_stem(id)));
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(path, format!("{json}\n"));
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named group of benchmarks sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run `routine` as `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, sample_size, routine);
        self
    }

    /// Close the group (upstream finalizes reports here; a no-op).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a single runner named `$group`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main()` invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_benchmark_once() {
        let mut calls = 0u32;
        let mut c = Criterion {
            bench_mode: false,
            filter: None,
            default_sample_size: 20,
        };
        c.bench_function("x", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut calls = 0u32;
        let mut c = Criterion {
            bench_mode: false,
            filter: Some("match_me".into()),
            default_sample_size: 20,
        };
        c.bench_function("other", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
        c.bench_function("does_match_me", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn summary_json_is_well_formed() {
        let j = bench_summary_json("g/warm", 1.5e-3, 1.0e-3, 2.0e-3, 10, 33);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"id\":\"g/warm\""));
        assert!(j.contains("\"mode\":\"bench\""));
        assert!(j.contains("\"samples\":10"));
        assert!(j.contains("\"iters_per_sample\":33"));
        let t = test_summary_json("g/warm", 2.5e-4);
        assert!(t.contains("\"mode\":\"test\"") && t.contains("once_s"));
        assert_eq!(summary_file_stem("g/warm-2"), "g_warm_2");
    }

    #[test]
    fn groups_prefix_ids_and_override_sample_size() {
        let mut c = Criterion {
            bench_mode: true,
            filter: None,
            default_sample_size: 20,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut calls = 0u32;
        group.bench_function("fast", |b| b.iter(|| calls += 1));
        group.finish();
        // warm-up + 2 samples, at least one iteration each
        assert!(calls >= 3, "expected warm-up plus two samples, got {calls}");
    }
}
