//! `rv-nvdla` — command-line front end for the bare-metal RISC-V + NVDLA
//! SoC toolflow.
//!
//! ```text
//! rv-nvdla compile <model> [--fp16] [--unfused] [--out DIR]
//! rv-nvdla run     <model> [--fp16] [--unfused] [--wfi] [--timing-only] [--repeat N]
//!                  [--trace-out FILE] [--metrics-out FILE]
//! rv-nvdla sweep   <model> [--fp16] [--unfused] [--clocks MHZ,..] [--threads N]
//! rv-nvdla batch   --models A,B[,..] [--frames N] [--policy rr|sqf|eff] [--threads N]
//!                  [--pipeline] [--functional] [--wfi] [--fp16] [--unfused]
//!                  [--trace-out FILE] [--metrics-out FILE]
//! rv-nvdla serve   --models A,B[,..] [--rate R] [--duration MS] [--seed S]
//!                  [--workers W] [--policy rr|sqf|eff] [--pipeline]
//!                  [--queue-depth D] [--slo-us U] [--arrivals poisson|fixed]
//!                  [--timeout-us U] [--retries N] [--faults SPEC]
//!                  [--fp16] [--unfused] [--json] [--trace-out FILE] [--metrics-out FILE]
//! rv-nvdla fleet   --models A,B[,..] [--pools CLASS[:k=v,..][;..]] [--route POLICY]
//!                  [--shape SHAPE] [--rate R] [--duration MS] [--seed S] [--slo-us U]
//!                  [--scale-window MS] [--scale-up-below PCT] [--scale-down-above PCT]
//!                  [--spot-windows K] [--window-frames N] [--fp16] [--unfused]
//!                  [--json] [--trace-out FILE] [--metrics-out FILE]
//! rv-nvdla fuzz    <target|all> [--seed S] [--budget N] [--shrink]
//! rv-nvdla traces
//! rv-nvdla resources
//! rv-nvdla models
//! ```
//!
//! Unknown flags are rejected with the command's accepted flag list —
//! a mistyped option can never be silently ignored.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rv_nvdla::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("traces") => cmd_traces(),
        Some("resources") => cmd_resources(),
        Some("models") => cmd_models(),
        _ => {
            eprintln!(
                "usage: rv-nvdla <compile|run|sweep|batch|serve|fleet|fuzz|traces|resources|models> [options]\n\
                 \n\
                 compile <model> [--fp16] [--unfused] [--out DIR]\n\
                 \tCompile a zoo model; write config file, weight .bin,\n\
                 \tassembly and program-memory .mem image.\n\
                 run <model> [--fp16] [--unfused] [--wfi] [--timing-only] [--repeat N]\n\
                 \x20   [--trace-out FILE] [--metrics-out FILE]\n\
                 \tRun N bare-metal inferences on the co-simulated SoC;\n\
                 \trepeats after the first reuse the resident weight image\n\
                 \t(compile-once/run-many hot path). --trace-out writes a\n\
                 \tPerfetto-loadable modeled-time trace, --metrics-out a\n\
                 \tJSON metrics dump (docs/OBSERVABILITY.md).\n\
                 sweep <model> [--fp16] [--unfused] [--clocks 50,100,150,200] [--threads N]\n\
                 \tTiming-only system-clock sweep (wfi firmware) against\n\
                 \tthe 100 MHz MIG, fanned out across worker threads.\n\
                 batch --models A,B[,..] [--frames N] [--policy rr|sqf|eff] [--threads N]\n\
                 \x20     [--pipeline] [--functional] [--wfi] [--fp16] [--unfused]\n\
                 \x20     [--trace-out FILE] [--metrics-out FILE]\n\
                 \tKeep every listed model resident in DRAM at disjoint\n\
                 \tbases and drain an interleaved frame queue across them\n\
                 \ton one SoC per worker thread (timing-only + wfi unless\n\
                 \t--functional). --pipeline double-buffers the inputs:\n\
                 \tframe N+1's preload streams during frame N's compute\n\
                 \tand contends at the DRAM arbiter. Reports per-model\n\
                 \tcycles, per-frame latency, arbiter contention and\n\
                 \tend-to-end throughput.\n\
                 serve --models A,B[,..] [--rate R] [--duration MS] [--seed S] [--workers W]\n\
                 \x20     [--policy rr|sqf|eff] [--pipeline] [--queue-depth D] [--slo-us U]\n\
                 \x20     [--arrivals poisson|fixed] [--timeout-us U] [--retries N]\n\
                 \x20     [--faults seed=S,flips=F,errors=E,spikes=P,spike-us=U,hangs=H,crashes=C]\n\
                 \x20     [--fp16] [--unfused] [--json] [--trace-out FILE] [--metrics-out FILE]\n\
                 \tOpen-loop serving: a seeded arrival trace (R req/s of\n\
                 \tmodeled time for MS ms) drains through a bounded\n\
                 \tadmission queue into W warm worker SoCs with every\n\
                 \tmodel resident. Reports queue-wait/service/total\n\
                 \tlatency percentiles (p50/p95/p99), offered vs\n\
                 \tachieved throughput, drops, and SLO attainment at\n\
                 \tthe --slo-us target; the dispatch plan is replayed\n\
                 \ton real SoCs and cross-checked cycle-exactly.\n\
                 \t--faults arms a seeded chaos plan (rates in events\n\
                 \tper million frame attempts); --timeout-us bounds\n\
                 \teach attempt (the watchdog) and --retries the retry\n\
                 \tbudget. See docs/RESILIENCE.md.\n\
                 fleet --models A,B[,..] [--pools CLASS[:k=v,..][;..]] [--route POLICY] [--shape SHAPE]\n\
                 \x20     [--rate R] [--duration MS] [--seed S] [--slo-us U] [--scale-window MS]\n\
                 \x20     [--scale-up-below PCT] [--scale-down-above PCT] [--spot-windows K]\n\
                 \x20     [--window-frames N] [--fp16] [--unfused] [--json]\n\
                 \x20     [--trace-out FILE] [--metrics-out FILE]\n\
                 \tFleet-scale serving: a shaped arrival trace (--shape\n\
                 \tsteady|diurnal|bursty|flash-crowd) drains through a\n\
                 \tfront-end load balancer (--route weighted|least-loaded|\n\
                 \tmodel-affinity) into heterogeneous pools of warm worker\n\
                 \tSoCs, each with bounded admission and a reactive\n\
                 \tautoscaler ([min..max] workers against a rolling SLO\n\
                 \twindow; every scale-up pays the pool's re-warm cost in\n\
                 \tmodeled time). Pool grammar, `;`-separated:\n\
                 \t  --pools \"nv_small:workers=2,queue=8;nv_full:workers=1,models=ResNet-50\"\n\
                 \t(class nv_small|nv_full, keys workers|min|max|queue|models,\n\
                 \tmodels `+`-separated). K windows of the dispatch plan are\n\
                 \tspot-replayed on real per-pool SoCs and cross-checked\n\
                 \tcycle-exactly. See docs/FLEET.md.\n\
                 fuzz <target|all> [--seed S] [--budget N] [--shrink]\n\
                 \tSeeded differential fuzzing over the standing\n\
                 \tcontracts (targets riscv|bus|net|batch|serve|fleet).\n\
                 \tCase i derives its input from seed S+i and checks the\n\
                 \ttarget's oracle; with --shrink a failure is reduced to\n\
                 \ta minimal input and printed as a one-line replay\n\
                 \tcommand. --budget (or env RVNV_FUZZ_BUDGET) bounds the\n\
                 \tcases per target; counterexamples are also written\n\
                 \tunder target/fuzz/. See docs/FUZZING.md.\n\
                 traces\n\
                 \tRun the standard NVDLA validation traces as firmware.\n\
                 resources\n\
                 \tPrint the Table I resource model for nv_small/nv_full.\n\
                 models\n\
                 \tList the model zoo."
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

fn find_model(name: &str) -> Result<Model, AnyError> {
    // Accept both the paper's spelling ("LeNet-5") and the file-stem
    // spelling the compiler emits ("lenet5").
    fn norm(s: &str) -> String {
        s.chars()
            .filter(|c| !matches!(c, '-' | '_'))
            .collect::<String>()
            .to_ascii_lowercase()
    }
    Model::ALL
        .into_iter()
        .find(|m| norm(m.name()) == norm(name))
        .ok_or_else(|| format!("unknown model `{name}`; try `rv-nvdla models`").into())
}

/// Flags that consume the following argument as their value (the model
/// name scan must not mistake such a value for the model).
const VALUE_FLAGS: [&str; 28] = [
    "--out",
    "--trace-out",
    "--metrics-out",
    "--budget",
    "--repeat",
    "--clocks",
    "--threads",
    "--models",
    "--frames",
    "--policy",
    "--rate",
    "--duration",
    "--seed",
    "--workers",
    "--queue-depth",
    "--slo-us",
    "--arrivals",
    "--timeout-us",
    "--retries",
    "--faults",
    "--pools",
    "--route",
    "--shape",
    "--scale-window",
    "--scale-up-below",
    "--scale-down-above",
    "--spot-windows",
    "--window-frames",
];

/// Strict argument validation: every `--flag` must be in the command's
/// accepted set (`bools` or `values`, the latter consuming the next
/// argument), and at most `max_positionals` bare arguments (the model
/// name) may appear. A mistyped flag is an error naming the accepted
/// flags, never a silent no-op.
fn validate_args(
    cmd: &str,
    args: &[String],
    bools: &[&str],
    values: &[&str],
    max_positionals: usize,
) -> Result<(), AnyError> {
    let mut positionals = 0usize;
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with('-') {
            if values.contains(&a) {
                i += 2; // the value is consumed by the flag
                continue;
            }
            if !bools.contains(&a) {
                let mut accepted: Vec<&str> = bools.iter().chain(values).copied().collect();
                accepted.sort_unstable();
                return Err(format!(
                    "unknown flag `{a}` for `{cmd}` (accepted: {})",
                    accepted.join(", ")
                )
                .into());
            }
        } else {
            positionals += 1;
            if positionals > max_positionals {
                return Err(format!(
                    "unexpected argument `{a}` for `{cmd}` ({} expected)",
                    match max_positionals {
                        0 => "no positional argument".to_string(),
                        n => format!("at most {n}"),
                    }
                )
                .into());
            }
        }
        i += 1;
    }
    Ok(())
}

/// Find `--flag`'s value anywhere in `args`; `Ok(None)` when absent,
/// an error when the flag dangles with no value.
fn parse_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, AnyError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.as_str()))
            .ok_or_else(|| format!("{flag} needs a value").into()),
    }
}

/// Parse `--flag N` as a number anywhere in `args`.
fn parse_number(args: &[String], flag: &str) -> Result<Option<u64>, AnyError> {
    parse_value(args, flag)?
        .map(|v| v.parse().map_err(|_| format!("bad {flag} `{v}`").into()))
        .transpose()
}

fn parse_options(args: &[String]) -> Result<(Model, CompileOptions, bool, bool), AnyError> {
    let mut model_name = None;
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if VALUE_FLAGS.contains(&a) {
            i += 2; // skip the flag and its value
            continue;
        }
        if !a.starts_with("--") {
            model_name = Some(&args[i]);
            break;
        }
        i += 1;
    }
    let model = find_model(model_name.ok_or("missing model name")?)?;
    let fp16 = args.iter().any(|a| a == "--fp16");
    let mut opt = if fp16 {
        CompileOptions::fp16()
    } else {
        let mut o = CompileOptions::int8();
        o.calib_inputs = 1;
        o
    };
    if args.iter().any(|a| a == "--unfused") {
        opt = opt.unfused();
    }
    let wfi = args.iter().any(|a| a == "--wfi");
    let timing_only = args.iter().any(|a| a == "--timing-only");
    Ok((model, opt, wfi, timing_only))
}

/// The observability sinks shared by `run`/`batch`/`serve`/`fleet`:
/// `--trace-out FILE` (Chrome-trace/Perfetto JSON of the modeled-time
/// spans) and `--metrics-out FILE` (the unified metrics snapshot). See
/// docs/OBSERVABILITY.md.
struct ObsOut {
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    tracer: Tracer,
}

impl ObsOut {
    /// Parse the two flags. The tracer is armed only when `--trace-out`
    /// asks for spans — disarmed, every emission site in the simulators
    /// is a single branch, and arming never changes a modeled cycle.
    fn from_args(args: &[String]) -> Result<ObsOut, AnyError> {
        let trace_out = parse_value(args, "--trace-out")?.map(PathBuf::from);
        let metrics_out = parse_value(args, "--metrics-out")?.map(PathBuf::from);
        let tracer = if trace_out.is_some() {
            Tracer::armed()
        } else {
            Tracer::disarmed()
        };
        Ok(ObsOut {
            trace_out,
            metrics_out,
            tracer,
        })
    }

    /// Whether `--metrics-out` asked for a metrics dump.
    fn wants_metrics(&self) -> bool {
        self.metrics_out.is_some()
    }

    /// Write whichever sinks were requested: the trace with its µs
    /// timestamps denominated at `soc_hz`, and the metrics snapshot.
    /// Quiet on stdout so `--json` output stays machine-parseable.
    fn write(&self, soc_hz: u64, metrics: &MetricsRegistry) -> Result<(), AnyError> {
        if let Some(path) = &self.trace_out {
            std::fs::write(path, to_chrome_json(&self.tracer.snapshot(), soc_hz))?;
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, format!("{}\n", metrics.snapshot().to_json()))?;
        }
        Ok(())
    }
}

fn cmd_compile(args: &[String]) -> Result<(), AnyError> {
    validate_args("compile", args, &["--fp16", "--unfused"], &["--out"], 1)?;
    let (model, opt, _, _) = parse_options(args)?;
    let out_dir = parse_value(args, "--out")?.map_or_else(|| PathBuf::from("."), PathBuf::from);
    std::fs::create_dir_all(&out_dir)?;

    let net = model.build(1);
    let artifacts = compile(&net, &opt)?;
    let fw = Firmware::build(&artifacts)?;
    let stem = model.name().to_lowercase().replace('-', "");

    let config_path = out_dir.join(format!("{stem}.cfg"));
    std::fs::write(&config_path, write_config_file(&artifacts.commands))?;
    let weights_path = out_dir.join(format!("{stem}_weights.bin"));
    std::fs::write(&weights_path, artifacts.weights.to_bin())?;
    let asm_path = out_dir.join(format!("{stem}.s"));
    std::fs::write(&asm_path, &fw.assembly)?;
    let mem_path = out_dir.join(format!("{stem}.mem"));
    std::fs::write(&mem_path, fw.to_mem_format())?;

    println!(
        "{}: {} ops, {} commands -> {}, {}, {}, {}",
        model.name(),
        artifacts.ops.len(),
        artifacts.commands.len(),
        config_path.display(),
        weights_path.display(),
        asm_path.display(),
        mem_path.display()
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), AnyError> {
    validate_args(
        "run",
        args,
        &["--fp16", "--unfused", "--wfi", "--timing-only"],
        &["--repeat", "--trace-out", "--metrics-out"],
        1,
    )?;
    let (model, opt, wfi, timing_only) = parse_options(args)?;
    let repeat = parse_number(args, "--repeat")?.unwrap_or(1).max(1);
    let obs = ObsOut::from_args(args)?;
    let net = model.build(1);
    // The cache is trivially one entry here; `run` goes through it so
    // the CLI exercises the same path a long-lived server would.
    let cache = ArtifactCache::new();
    let artifacts = cache.get_or_compile(&net, &opt)?;
    let mut config = if timing_only {
        SocConfig::zcu102_timing_only()
    } else {
        SocConfig::zcu102_nv_small()
    };
    config.hw = opt.hw.clone();
    if obs.tracer.is_armed() {
        // Per-op child spans come from the captured timeline.
        config.capture_timeline = true;
    }
    let soc_hz = config.soc_hz;
    let metrics = MetricsRegistry::new();
    let mut soc = Soc::new(config);
    if obs.tracer.is_armed() {
        let track = obs.tracer.track("soc", TrackKind::Sync);
        soc.set_tracer(obs.tracer.clone(), track);
    }
    let input = Tensor::random(net.input_shape(), 7);
    let input_bytes = artifacts.quantize_input(&input);
    let codegen = CodegenOptions {
        wait_mode: if wfi { WaitMode::Wfi } else { WaitMode::Poll },
        ..CodegenOptions::default()
    };
    let fw = Firmware::build_with(&artifacts, codegen)?;

    let cold_start = Instant::now();
    let result = soc.run_firmware(&artifacts, &input_bytes, &fw)?;
    let cold_host = cold_start.elapsed();
    if obs.wants_metrics() {
        result.publish(&metrics);
    }
    println!(
        "{}: {} cycles = {:.2} ms @100 MHz | {} instructions | firmware {} B | class {}",
        model.name(),
        result.cycles,
        result.latency_ms(100_000_000),
        result.instructions,
        result.firmware_bytes,
        result.output.argmax()
    );
    if !result.timeline.is_empty() {
        println!("per-op timeline (first 8):");
        for op in result.timeline.iter().take(8) {
            println!(
                "  {:8} {:>9} .. {:>9}  ({} cycles)",
                op.block.name(),
                op.start,
                op.done,
                op.done - op.start
            );
        }
    }
    if repeat > 1 {
        // Warm repeats: weights stay resident, firmware and quantized
        // input are reused; every run must replay identical cycles.
        let warm_start = Instant::now();
        let mut cache_stats = result.block_cache;
        let mut elided_polls = result.elided_polls;
        for i in 1..repeat {
            let warm = soc.run_firmware(&artifacts, &input_bytes, &fw)?;
            if obs.wants_metrics() {
                warm.publish(&metrics);
            }
            if warm.cycles != result.cycles || warm.raw_output != result.raw_output {
                return Err(format!(
                    "warm run {i} diverged: {} cycles vs {}",
                    warm.cycles, result.cycles
                )
                .into());
            }
            cache_stats = warm.block_cache;
            elided_polls = warm.elided_polls;
        }
        let warm_host = warm_start.elapsed() / (repeat - 1) as u32;
        println!(
            "repeat x{repeat}: all warm runs bit-identical | host {:.2} ms cold, {:.2} ms warm ({:.1}x)",
            cold_host.as_secs_f64() * 1e3,
            warm_host.as_secs_f64() * 1e3,
            cold_host.as_secs_f64() / warm_host.as_secs_f64().max(1e-9),
        );
        println!(
            "block cache: {} hits, {} misses per warm run | {} status polls elided by the read lease",
            cache_stats.hits, cache_stats.misses, elided_polls,
        );
    }
    obs.write(soc_hz, &metrics)?;
    Ok(())
}

/// One point of a `sweep`: system clock in MHz plus its measured result.
struct SweepRow {
    soc_mhz: u64,
    cycles: u64,
    ms: f64,
}

fn cmd_sweep(args: &[String]) -> Result<(), AnyError> {
    validate_args(
        "sweep",
        args,
        &["--fp16", "--unfused"],
        &["--clocks", "--threads"],
        1,
    )?;
    let (model, opt, _, _) = parse_options(args)?;
    let clocks: Vec<u64> = match parse_value(args, "--clocks")? {
        None => vec![50, 100, 150, 200],
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("bad clock `{s}`"))
            })
            .collect::<Result<_, _>>()?,
    };
    if clocks.is_empty() || clocks.contains(&0) {
        return Err("clock list must be nonempty and nonzero".into());
    }
    let threads = parse_number(args, "--threads")?
        .map_or_else(
            || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            |n| n as usize,
        )
        .clamp(1, clocks.len());

    let net = model.build(1);
    let cache = ArtifactCache::new();
    let artifacts = cache.get_or_compile(&net, &opt)?;
    // Sweep points exist for timing throughput: wfi firmware retires
    // ~100x fewer instructions than the poll loop at near-identical
    // modeled latency, so it is the sweep wait mode.
    let fw = Firmware::build_with(
        &artifacts,
        CodegenOptions {
            wait_mode: WaitMode::Wfi,
            ..CodegenOptions::default()
        },
    )?;
    let input = Tensor::random(net.input_shape(), 7);
    let input_bytes = artifacts.quantize_input(&input);

    // Fan the sweep points out across worker threads: each worker owns
    // its SoC, all share the compiled artifacts and firmware.
    let start = Instant::now();
    let results = rvnv_soc::sweep::fan_out(clocks.len(), threads, |i| {
        let soc_mhz = clocks[i];
        let mut config = SocConfig::zcu102_timing_only();
        config.hw = opt.hw.clone();
        config.soc_hz = soc_mhz * 1_000_000;
        let mut soc = Soc::new(config);
        soc.run_firmware(&artifacts, &input_bytes, &fw)
            .map(|r| SweepRow {
                soc_mhz,
                cycles: r.cycles,
                ms: r.cycles as f64 * 1000.0 / (soc_mhz as f64 * 1e6),
            })
            .map_err(|e| format!("{soc_mhz} MHz: {e}"))
    });
    let mut rows: Vec<SweepRow> = Vec::with_capacity(clocks.len());
    for row in results {
        rows.push(row.map_err(|e| -> AnyError { e.into() })?);
    }
    rows.sort_by_key(|r| r.soc_mhz);

    println!(
        "{} timing-only sweep vs 100 MHz MIG DDR4 ({} points, {} threads, host {:.0} ms):",
        model.name(),
        rows.len(),
        threads,
        start.elapsed().as_secs_f64() * 1e3,
    );
    println!("  soc clock   cycles         latency      fps");
    for r in &rows {
        println!(
            "  {:>6} MHz  {:>12}  {:>9.2} ms  {:>7.1}",
            r.soc_mhz,
            r.cycles,
            r.ms,
            1000.0 / r.ms
        );
    }
    Ok(())
}

/// Parse `cmd`'s `--models A,B[,..]` list: every entry must name a zoo
/// model, the list must be nonempty, and a model may appear only once
/// (two copies of one model cannot be resident at one base — compile
/// different seeds as different models instead).
fn parse_model_list(cmd: &str, args: &[String]) -> Result<Vec<Model>, AnyError> {
    let list = parse_value(args, "--models")?
        .ok_or_else(|| format!("{cmd} needs --models A,B[,..] (try `rv-nvdla models`)"))?;
    let names: Vec<&str> = list
        .split(',')
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .collect();
    if names.is_empty() {
        return Err("--models list must not be empty".into());
    }
    let mut models: Vec<Model> = Vec::with_capacity(names.len());
    for name in names {
        let model = find_model(name)?;
        if models.contains(&model) {
            return Err(format!(
                "duplicate model `{name}` in --models (each model can be resident once)"
            )
            .into());
        }
        models.push(model);
    }
    Ok(models)
}

/// Parse `--flag N` as a number that must be at least 1.
fn parse_positive(args: &[String], flag: &str, what: &str) -> Result<Option<u64>, AnyError> {
    match parse_number(args, flag)? {
        Some(0) => Err(format!("{flag} must be >= 1 ({what})").into()),
        other => Ok(other),
    }
}

fn cmd_batch(args: &[String]) -> Result<(), AnyError> {
    validate_args(
        "batch",
        args,
        &["--fp16", "--unfused", "--wfi", "--functional", "--pipeline"],
        &[
            "--models",
            "--frames",
            "--policy",
            "--threads",
            "--trace-out",
            "--metrics-out",
        ],
        0,
    )?;
    let models = parse_model_list("batch", args)?;
    let obs = ObsOut::from_args(args)?;
    let metrics = MetricsRegistry::new();
    let frames =
        parse_positive(args, "--frames", "an empty batch serves nothing")?.unwrap_or(16) as usize;
    let policy: Policy = parse_value(args, "--policy")?.unwrap_or("rr").parse()?;
    let pipeline = args.iter().any(|a| a == "--pipeline");
    let threads = parse_number(args, "--threads")?
        .map_or_else(
            || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            |n| n as usize,
        )
        .clamp(1, frames);
    let functional = args.iter().any(|a| a == "--functional");
    let fp16 = args.iter().any(|a| a == "--fp16");
    let mut opt = if fp16 {
        CompileOptions::fp16()
    } else {
        let mut o = CompileOptions::int8();
        o.calib_inputs = 1;
        o
    };
    if args.iter().any(|a| a == "--unfused") {
        opt = opt.unfused();
    }
    // The server flow is timing throughput; wfi firmware is its wait
    // mode (as in `sweep`). `--functional` computes real outputs with
    // the poll firmware `run` uses, unless `--wfi` asks otherwise.
    let wfi = args.iter().any(|a| a == "--wfi") || !functional;
    let mut config = if functional {
        SocConfig::zcu102_nv_small()
    } else {
        SocConfig::zcu102_timing_only()
    };
    config.hw = opt.hw.clone();
    let codegen = CodegenOptions {
        wait_mode: if wfi { WaitMode::Wfi } else { WaitMode::Poll },
        ..CodegenOptions::default()
    };

    // Lay the models out at disjoint DRAM bases and build the frame
    // stream: frame i exercises model i % N with its own random input.
    let nets: Vec<_> = models.iter().map(|m| m.build(1)).collect();
    let cache = ArtifactCache::new();
    let artifacts = layout_models(&cache, &nets, &opt)?;
    let frame_stream: Vec<Frame> = (0..frames)
        .map(|i| {
            let m = i % models.len();
            let input = Tensor::random(nets[m].input_shape(), 1000 + i as u64);
            Frame {
                model: m,
                bytes: artifacts[m].quantize_input(&input),
            }
        })
        .collect();

    let start = Instant::now();
    let report = if pipeline {
        run_parallel_pipelined_traced(
            &config,
            policy,
            &artifacts,
            codegen,
            &frame_stream,
            threads,
            &obs.tracer,
        )?
    } else {
        run_parallel_traced(
            &config,
            policy,
            &artifacts,
            codegen,
            &frame_stream,
            threads,
            &obs.tracer,
        )?
    };
    let host_ms = start.elapsed().as_secs_f64() * 1e3;

    println!(
        "batch: {} models resident, {} frames, policy {}, {}, {} worker SoC(s):",
        artifacts.len(),
        report.total_frames(),
        policy.name(),
        if report.pipelined {
            "pipelined preload"
        } else {
            "serial preload"
        },
        threads,
    );
    println!("  model       frames  cycles/frame  service lat   arbiter wait");
    for (name, stats) in &report.per_model {
        println!(
            "  {:10} {:>6}  {:>12}  {:>8.2} ms  {:>12}",
            name,
            stats.frames,
            stats.cycles_per_frame(),
            config.cycles_to_ms(stats.latency_per_frame()),
            stats.arbiter_wait,
        );
    }
    println!(
        "  total: {} cycles | modeled {:.1} frames/s compute, {:.1} e2e @{} MHz | warm frame {:.2} ms | host {:.0} ms ({:.1} frames/s)",
        report.total_cycles(),
        report.modeled_fps(config.soc_hz),
        report.e2e_fps(config.soc_hz),
        config.soc_hz / 1_000_000,
        config.cycles_to_ms(report.warm_frame_latency()),
        host_ms,
        // Both host numbers from the same interval (end to end,
        // including per-worker setup), so the pair is self-consistent.
        report.total_frames() as f64 / (host_ms / 1e3).max(1e-9),
    );
    if obs.wants_metrics() {
        report.publish(&metrics);
    }
    obs.write(config.soc_hz, &metrics)?;
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), AnyError> {
    validate_args(
        "serve",
        args,
        &["--fp16", "--unfused", "--pipeline", "--json"],
        &[
            "--models",
            "--rate",
            "--duration",
            "--seed",
            "--workers",
            "--policy",
            "--queue-depth",
            "--slo-us",
            "--arrivals",
            "--timeout-us",
            "--retries",
            "--faults",
            "--trace-out",
            "--metrics-out",
        ],
        0,
    )?;
    let models = parse_model_list("serve", args)?;
    let obs = ObsOut::from_args(args)?;
    let json = args.iter().any(|a| a == "--json");
    let mut spec = ServeSpec::default();
    if let Some(rate) = parse_positive(args, "--rate", "a rate of 0 offers no load")? {
        spec.rate_rps = rate;
    }
    if let Some(ms) = parse_positive(args, "--duration", "modeled milliseconds of arrivals")? {
        spec.duration_ms = ms;
    }
    if let Some(seed) = parse_number(args, "--seed")? {
        spec.seed = seed;
    }
    if let Some(w) = parse_positive(args, "--workers", "the pool needs a worker")? {
        spec.workers = w as usize;
    }
    if let Some(d) = parse_positive(
        args,
        "--queue-depth",
        "an unqueued server drops every burst",
    )? {
        spec.queue_depth = d as usize;
    }
    if let Some(slo) = parse_number(args, "--slo-us")? {
        spec.slo_us = slo;
    }
    if let Some(p) = parse_value(args, "--policy")? {
        spec.policy = p.parse()?;
    }
    if let Some(a) = parse_value(args, "--arrivals")? {
        spec.process = a.parse()?;
    }
    if let Some(t) = parse_positive(
        args,
        "--timeout-us",
        "a zero deadline aborts every attempt at birth",
    )? {
        spec.timeout_us = t;
    }
    if let Some(r) = parse_number(args, "--retries")? {
        spec.retries = u32::try_from(r).map_err(|_| format!("bad --retries `{r}`"))?;
    }
    if let Some(f) = parse_value(args, "--faults")? {
        spec.faults = Some(f.parse::<FaultSpec>()?);
    }
    spec.pipelined = args.iter().any(|a| a == "--pipeline");
    spec.validate()?;

    let fp16 = args.iter().any(|a| a == "--fp16");
    let mut opt = if fp16 {
        CompileOptions::fp16()
    } else {
        let mut o = CompileOptions::int8();
        o.calib_inputs = 1;
        o
    };
    if args.iter().any(|a| a == "--unfused") {
        opt = opt.unfused();
    }
    // Serving is a timing flow: timing-only SoC, wfi firmware (as in
    // `sweep` and the default `batch`).
    let mut config = SocConfig::zcu102_timing_only();
    config.hw = opt.hw.clone();
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };

    let nets: Vec<_> = models.iter().map(|m| m.build(1)).collect();
    let cache = ArtifactCache::new();
    let artifacts = layout_models(&cache, &nets, &opt)?;
    let calib_start = Instant::now();
    let server = Server::new(config.clone(), artifacts, codegen)?;
    let calib_ms = calib_start.elapsed().as_secs_f64() * 1e3;
    let report = server.serve_traced(&spec, &obs.tracer)?;

    let metrics = MetricsRegistry::new();
    if obs.wants_metrics() {
        report.publish(&metrics);
    }
    obs.write(config.soc_hz, &metrics)?;
    if json {
        // Machine-readable report on stdout, nothing else: every field
        // is modeled (host wall-clock excluded), so two runs of the
        // same spec print byte-identical JSON.
        println!("{}", report.to_json());
        return Ok(());
    }

    let ms = |cycles: u64| config.cycles_to_ms(cycles);
    println!(
        "serve: {} model(s) resident, {} arrivals at {} req/s for {} ms (seed {}), \
         {} worker(s), policy {}, {}, queue depth {}:",
        report.per_model.len(),
        report.process.name(),
        report.rate_rps,
        spec.duration_ms,
        report.seed,
        report.workers,
        report.policy.name(),
        if report.pipelined {
            "pipelined preload"
        } else {
            "serial preload"
        },
        report.queue_depth,
    );
    println!("  latency (ms)     p50      p95      p99     mean      max");
    for (name, s) in [
        ("queue wait", report.queue_wait),
        ("service", report.service),
        ("total", report.total),
    ] {
        println!(
            "  {:12} {:>7.3}  {:>7.3}  {:>7.3}  {:>7.3}  {:>7.3}",
            name,
            ms(s.p50),
            ms(s.p95),
            ms(s.p99),
            ms(s.mean),
            ms(s.max),
        );
    }
    println!("  model       offered  served  dropped  p99 total");
    for m in &report.per_model {
        println!(
            "  {:10} {:>8}  {:>6}  {:>7}  {:>7.3} ms",
            m.name,
            m.offered,
            m.served,
            m.dropped,
            ms(m.total.p99),
        );
    }
    for (w, stats) in report.per_worker.iter().enumerate() {
        let util = if report.makespan_cycles == 0 {
            0.0
        } else {
            100.0 * stats.busy_cycles as f64 / report.makespan_cycles as f64
        };
        println!(
            "  worker {w}: {} frame(s), {util:.1}% busy over the {:.1} ms drain",
            stats.frames,
            ms(report.makespan_cycles),
        );
    }
    if spec.faults.is_some() || spec.timeout_us > 0 {
        let f = report.faults;
        println!(
            "  faults: {} injected (hangs {}, bus errors {}, corruptions {}, spikes {}, \
             crashes {}) | timeouts {} retries {} failovers {} sheds {} exhausted {}",
            f.injected(),
            f.hangs,
            f.bus_errors,
            f.corruptions_detected,
            f.spikes,
            f.crashes,
            f.timeouts,
            f.retries,
            f.failovers,
            f.sheds,
            f.exhausted,
        );
    }
    println!(
        "  offered {:.1} req/s -> achieved {:.1} req/s | dropped {} ({:.1}%) | \
         SLO {} us attained {:.1}% | replay divergence {} | calib {:.0} ms + serve host {:.0} ms",
        report.offered_rate(),
        report.achieved_rate(),
        report.dropped,
        100.0 * report.drop_rate(),
        spec.slo_us,
        100.0 * report.slo_attainment(),
        report.replay_divergence,
        calib_ms,
        report.host_seconds * 1e3,
    );
    Ok(())
}

fn cmd_fleet(args: &[String]) -> Result<(), AnyError> {
    validate_args(
        "fleet",
        args,
        &["--fp16", "--unfused", "--json"],
        &[
            "--models",
            "--pools",
            "--route",
            "--shape",
            "--rate",
            "--duration",
            "--seed",
            "--slo-us",
            "--scale-window",
            "--scale-up-below",
            "--scale-down-above",
            "--spot-windows",
            "--window-frames",
            "--trace-out",
            "--metrics-out",
        ],
        0,
    )?;
    let models = parse_model_list("fleet", args)?;
    let obs = ObsOut::from_args(args)?;
    let json = args.iter().any(|a| a == "--json");
    let names: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    let mut spec = FleetSpec::default();
    if let Some(s) = parse_value(args, "--pools")? {
        spec.pools = parse_pools(s, &names)?;
    }
    if let Some(r) = parse_value(args, "--route")? {
        spec.route = r.parse()?;
    }
    if let Some(s) = parse_value(args, "--shape")? {
        spec.shape = s.parse()?;
    }
    if let Some(rate) = parse_positive(args, "--rate", "a rate of 0 offers no load")? {
        spec.rate_rps = rate;
    }
    if let Some(ms) = parse_positive(args, "--duration", "modeled milliseconds of arrivals")? {
        spec.duration_ms = ms;
    }
    if let Some(seed) = parse_number(args, "--seed")? {
        spec.seed = seed;
    }
    if let Some(slo) = parse_number(args, "--slo-us")? {
        spec.slo_us = slo;
    }
    if let Some(w) = parse_number(args, "--scale-window")? {
        spec.scale_window_ms = w;
    }
    if let Some(p) = parse_number(args, "--scale-up-below")? {
        spec.scale_up_below =
            u32::try_from(p).map_err(|_| format!("bad --scale-up-below `{p}`"))?;
    }
    if let Some(p) = parse_number(args, "--scale-down-above")? {
        spec.scale_down_above =
            u32::try_from(p).map_err(|_| format!("bad --scale-down-above `{p}`"))?;
    }
    if let Some(k) = parse_number(args, "--spot-windows")? {
        spec.spot_windows = k as usize;
    }
    if let Some(n) = parse_number(args, "--window-frames")? {
        spec.window_frames = n as usize;
    }
    spec.validate(models.len())?;

    // Fail the class/model mismatch before paying for compilation:
    // nv_small cannot host the larger zoo models.
    for (i, p) in spec.pools.iter().enumerate() {
        if p.class != SocClass::NvSmall {
            continue;
        }
        let resident = p
            .models
            .clone()
            .unwrap_or_else(|| (0..models.len()).collect());
        for m in resident {
            if !Model::NV_SMALL.contains(&models[m]) {
                return Err(format!(
                    "pool {i} (nv_small): model `{}` is nv_full-only — give it an nv_full \
                     pool or restrict this pool's models= list (see `rv-nvdla models`)",
                    models[m].name()
                )
                .into());
            }
        }
    }

    let fp16 = args.iter().any(|a| a == "--fp16");
    let mut opt = if fp16 {
        CompileOptions::fp16()
    } else {
        let mut o = CompileOptions::int8();
        o.calib_inputs = 1;
        o
    };
    if args.iter().any(|a| a == "--unfused") {
        opt = opt.unfused();
    }
    // Fleet serving is a timing flow (wfi firmware, timing-only SoCs);
    // the per-pool hardware class overrides `opt.hw` inside `Fleet::new`.
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };
    let nets: Vec<_> = models.iter().map(|m| m.build(1)).collect();
    let calib_start = Instant::now();
    let fleet = Fleet::new(&nets, &opt, codegen, &spec)?;
    let calib_ms = calib_start.elapsed().as_secs_f64() * 1e3;
    let report = fleet.run_traced(&spec, &obs.tracer)?;

    let metrics = MetricsRegistry::new();
    if obs.wants_metrics() {
        report.publish(&metrics);
    }
    obs.write(report.soc_hz, &metrics)?;
    if json {
        // Machine-readable report on stdout, nothing else: every field
        // is modeled (host wall-clock excluded), so two runs of the
        // same spec print byte-identical JSON.
        println!("{}", report.to_json());
        return Ok(());
    }

    let ms = |cycles: u64| cycles as f64 * 1e3 / report.soc_hz as f64;
    println!(
        "fleet: {} model(s) across {} pool(s), route {}, {} arrivals at {} req/s for {} ms (seed {}):",
        models.len(),
        report.per_pool.len(),
        report.route.name(),
        report.shape.name(),
        report.rate_rps,
        spec.duration_ms,
        report.seed,
    );
    println!("  pool  class     workers              routed  served  dropped  p99 total     SLO%  models");
    for (i, p) in report.per_pool.iter().enumerate() {
        let journey = format!(
            "{} -> {} [{}..{}] +{}/-{}",
            p.workers_start,
            p.workers_final,
            spec.pools[i].min_workers,
            spec.pools[i].max_workers,
            p.scale_ups,
            p.scale_downs,
        );
        let slo_pct = if p.routed == 0 {
            100.0
        } else {
            100.0 * p.slo_attained as f64 / p.routed as f64
        };
        let resident = p
            .models
            .iter()
            .map(|&m| models[m].name())
            .collect::<Vec<_>>()
            .join("+");
        println!(
            "  {i:>4}  {:8}  {journey:<19} {:>6}  {:>6}  {:>7}  {:>7.3} ms  {slo_pct:>5.1}  {resident}",
            p.class.name(),
            p.routed,
            p.served,
            p.dropped,
            ms(p.total.p99),
        );
    }
    println!("  latency (ms)     p50      p95      p99     mean      max");
    for (name, s) in [
        ("queue wait", report.queue_wait),
        ("service", report.service),
        ("total", report.total),
    ] {
        println!(
            "  {name:12} {:>7.3}  {:>7.3}  {:>7.3}  {:>7.3}  {:>7.3}",
            ms(s.p50),
            ms(s.p95),
            ms(s.p99),
            ms(s.mean),
            ms(s.max),
        );
    }
    println!(
        "  offered {:.1} req/s -> achieved {:.1} req/s | dropped {} ({:.1}%) | shed {} | \
         SLO {} us attained {:.1}% | spot replay {} frame(s), divergence {} | \
         calib {:.0} ms + fleet host {:.0} ms",
        report.offered_rate(),
        report.achieved_rate(),
        report.dropped,
        100.0 * report.drop_rate(),
        report.shed,
        spec.slo_us,
        100.0 * report.slo_attainment(),
        report.replayed_frames,
        report.replay_divergence,
        calib_ms,
        report.host_seconds * 1e3,
    );
    Ok(())
}

fn cmd_fuzz(args: &[String]) -> Result<(), AnyError> {
    validate_args("fuzz", args, &["--shrink"], &["--seed", "--budget"], 1)?;
    // The single positional is the target name; value flags consume
    // their argument in the scan, exactly like the model-name scan.
    let mut target = None;
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if VALUE_FLAGS.contains(&a) {
            i += 2;
            continue;
        }
        if !a.starts_with("--") {
            target = Some(a);
            break;
        }
        i += 1;
    }
    let target =
        target.ok_or("missing fuzz target (one of riscv|bus|net|batch|serve|fleet|all)")?;
    let seed = parse_number(args, "--seed")?.unwrap_or(1);
    let budget = match parse_number(args, "--budget")? {
        Some(b) => b,
        None => match std::env::var("RVNV_FUZZ_BUDGET") {
            Ok(v) => v
                .parse()
                .map_err(|_| format!("bad RVNV_FUZZ_BUDGET `{v}`"))?,
            Err(_) => 100,
        },
    };
    if budget == 0 {
        return Err("bad --budget `0` (must be >= 1)".into());
    }
    let do_shrink = args.iter().any(|a| a == "--shrink");
    let started = Instant::now();
    let reports = rvnv_fuzz::run(target, seed, budget, do_shrink)?;
    let mut failures = 0usize;
    for r in &reports {
        match &r.counterexample {
            None => println!(
                "fuzz {:<6} ok: {} cases passed (seeds {}..={})",
                r.target,
                r.executed,
                r.base_seed,
                r.base_seed.wrapping_add(r.budget - 1),
            ),
            Some(cx) => {
                failures += 1;
                println!(
                    "fuzz {:<6} FAILED at seed {} after {} cases",
                    r.target, cx.seed, r.executed
                );
                println!("  oracle: {}", cx.message);
                println!(
                    "  input shrank {} -> {} elements; minimized:",
                    cx.size_orig, cx.size_min
                );
                for line in cx.minimized.lines() {
                    println!("    {line}");
                }
                println!("  repro: {}", cx.repro);
                // Persist the counterexample so CI can upload it.
                let dir = PathBuf::from("target/fuzz");
                std::fs::create_dir_all(&dir)?;
                let path = dir.join(format!("{}.counterexample.txt", r.target));
                std::fs::write(
                    &path,
                    format!(
                        "target: {}\nseed: {}\nsize: {} -> {}\noracle: {}\nrepro: {}\n\n{}\n",
                        cx.target,
                        cx.seed,
                        cx.size_orig,
                        cx.size_min,
                        cx.message,
                        cx.repro,
                        cx.minimized
                    ),
                )?;
                println!("  written: {}", path.display());
            }
        }
    }
    println!(
        "fuzz: {}/{} targets clean in {:.1}s",
        reports.len() - failures,
        reports.len(),
        started.elapsed().as_secs_f64()
    );
    if failures > 0 {
        return Err(format!(
            "fuzz found {failures} counterexample(s); replay with the printed `rv-nvdla fuzz` \
             command(s)"
        )
        .into());
    }
    Ok(())
}

fn cmd_traces() -> Result<(), AnyError> {
    for trace in rvnv_compiler::traces::all() {
        let asm = rvnv_compiler::codegen::generate_assembly(&trace.commands);
        let image = rvnv_riscv::assemble(&asm)?;
        let fw = Firmware {
            assembly: asm,
            image,
        };
        // Minimal artifacts shell for the harness.
        let net = rv_nvdla::prelude::Model::LeNet5.build(1);
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let mut artifacts = compile(&net, &opt)?;
        artifacts.commands = trace.commands.clone();
        artifacts.weights = trace.preload.clone();
        artifacts.input_len = 0;
        artifacts.output_len = 0;
        artifacts.output_shape = rvnv_nn::Shape::new(0, 0, 0);

        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        let result = soc.run_firmware(&artifacts, &[], &fw)?;
        let mut ok = true;
        for (addr, bytes) in &trace.expect {
            ok &= soc.with_dram_peek(*addr, bytes.len(), |got| got == bytes.as_slice());
        }
        println!(
            "trace {:12} {} ({} commands, {} cycles)",
            trace.name,
            if ok { "PASS" } else { "FAIL" },
            trace.commands.len(),
            result.cycles
        );
        if !ok {
            return Err(format!("trace {} failed", trace.name).into());
        }
    }
    Ok(())
}

fn cmd_resources() -> Result<(), AnyError> {
    use rvnv_soc::resources;
    for cfg in [
        rvnv_nvdla::HwConfig::nv_small(),
        rvnv_nvdla::HwConfig::nv_full(),
    ] {
        let u = resources::nvdla(&cfg);
        println!(
            "{:9} LUT {:>7}  Regs {:>7}  BRAM {:>4}  DSP {:>5}  fits ZCU102: {}",
            cfg.name,
            u.lut,
            u.regs,
            u.bram,
            u.dsp,
            resources::fits_zcu102(&u)
        );
    }
    Ok(())
}

fn cmd_models() -> Result<(), AnyError> {
    for m in Model::ALL {
        let net = m.build(1);
        let nv_small = if Model::NV_SMALL.contains(&m) {
            "nv_small+nv_full"
        } else {
            "nv_full only"
        };
        println!(
            "{:10} input {:10} layers {:4} ({nv_small})",
            m.name(),
            net.input_shape().to_string(),
            net.layer_count()
        );
    }
    Ok(())
}
