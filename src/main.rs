//! `rv-nvdla` — command-line front end for the bare-metal RISC-V + NVDLA
//! SoC toolflow.
//!
//! ```text
//! rv-nvdla compile <model> [--fp16] [--unfused] [--out DIR]
//! rv-nvdla run     <model> [--fp16] [--unfused] [--wfi] [--timing-only]
//! rv-nvdla traces
//! rv-nvdla resources
//! rv-nvdla models
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use rv_nvdla::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("traces") => cmd_traces(),
        Some("resources") => cmd_resources(),
        Some("models") => cmd_models(),
        _ => {
            eprintln!(
                "usage: rv-nvdla <compile|run|traces|resources|models> [options]\n\
                 \n\
                 compile <model> [--fp16] [--unfused] [--out DIR]\n\
                 \tCompile a zoo model; write config file, weight .bin,\n\
                 \tassembly and program-memory .mem image.\n\
                 run <model> [--fp16] [--unfused] [--wfi] [--timing-only]\n\
                 \tRun one bare-metal inference on the co-simulated SoC.\n\
                 traces\n\
                 \tRun the standard NVDLA validation traces as firmware.\n\
                 resources\n\
                 \tPrint the Table I resource model for nv_small/nv_full.\n\
                 models\n\
                 \tList the model zoo."
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

fn find_model(name: &str) -> Result<Model, AnyError> {
    // Accept both the paper's spelling ("LeNet-5") and the file-stem
    // spelling the compiler emits ("lenet5").
    fn norm(s: &str) -> String {
        s.chars()
            .filter(|c| !matches!(c, '-' | '_'))
            .collect::<String>()
            .to_ascii_lowercase()
    }
    Model::ALL
        .into_iter()
        .find(|m| norm(m.name()) == norm(name))
        .ok_or_else(|| format!("unknown model `{name}`; try `rv-nvdla models`").into())
}

fn parse_options(args: &[String]) -> Result<(Model, CompileOptions, bool, bool), AnyError> {
    let model_name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing model name")?;
    let model = find_model(model_name)?;
    let fp16 = args.iter().any(|a| a == "--fp16");
    let mut opt = if fp16 {
        CompileOptions::fp16()
    } else {
        let mut o = CompileOptions::int8();
        o.calib_inputs = 1;
        o
    };
    if args.iter().any(|a| a == "--unfused") {
        opt = opt.unfused();
    }
    let wfi = args.iter().any(|a| a == "--wfi");
    let timing_only = args.iter().any(|a| a == "--timing-only");
    Ok((model, opt, wfi, timing_only))
}

fn cmd_compile(args: &[String]) -> Result<(), AnyError> {
    let (model, opt, _, _) = parse_options(args)?;
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    std::fs::create_dir_all(&out_dir)?;

    let net = model.build(1);
    let artifacts = compile(&net, &opt)?;
    let fw = Firmware::build(&artifacts)?;
    let stem = model.name().to_lowercase().replace('-', "");

    let config_path = out_dir.join(format!("{stem}.cfg"));
    std::fs::write(&config_path, write_config_file(&artifacts.commands))?;
    let weights_path = out_dir.join(format!("{stem}_weights.bin"));
    std::fs::write(&weights_path, artifacts.weights.to_bin())?;
    let asm_path = out_dir.join(format!("{stem}.s"));
    std::fs::write(&asm_path, &fw.assembly)?;
    let mem_path = out_dir.join(format!("{stem}.mem"));
    std::fs::write(&mem_path, fw.to_mem_format())?;

    println!(
        "{}: {} ops, {} commands -> {}, {}, {}, {}",
        model.name(),
        artifacts.ops.len(),
        artifacts.commands.len(),
        config_path.display(),
        weights_path.display(),
        asm_path.display(),
        mem_path.display()
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), AnyError> {
    let (model, opt, wfi, timing_only) = parse_options(args)?;
    let net = model.build(1);
    let artifacts = compile(&net, &opt)?;
    let mut config = if timing_only {
        SocConfig::zcu102_timing_only()
    } else {
        SocConfig::zcu102_nv_small()
    };
    config.hw = opt.hw.clone();
    let mut soc = Soc::new(config);
    let input = Tensor::random(net.input_shape(), 7);
    let codegen = CodegenOptions {
        wait_mode: if wfi { WaitMode::Wfi } else { WaitMode::Poll },
        ..CodegenOptions::default()
    };
    let fw = Firmware::build_with(&artifacts, codegen)?;
    let result = soc.run_firmware(&artifacts, &artifacts.quantize_input(&input), &fw)?;
    println!(
        "{}: {} cycles = {:.2} ms @100 MHz | {} instructions | firmware {} B | class {}",
        model.name(),
        result.cycles,
        result.latency_ms(100_000_000),
        result.instructions,
        result.firmware_bytes,
        result.output.argmax()
    );
    println!("per-op timeline (first 8):");
    for op in result.timeline.iter().take(8) {
        println!(
            "  {:8} {:>9} .. {:>9}  ({} cycles)",
            op.block.name(),
            op.start,
            op.done,
            op.done - op.start
        );
    }
    Ok(())
}

fn cmd_traces() -> Result<(), AnyError> {
    for trace in rvnv_compiler::traces::all() {
        let asm = rvnv_compiler::codegen::generate_assembly(&trace.commands);
        let image = rvnv_riscv::assemble(&asm)?;
        let fw = Firmware {
            assembly: asm,
            image,
        };
        // Minimal artifacts shell for the harness.
        let net = rv_nvdla::prelude::Model::LeNet5.build(1);
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let mut artifacts = compile(&net, &opt)?;
        artifacts.commands = trace.commands.clone();
        artifacts.weights = trace.preload.clone();
        artifacts.input_len = 0;
        artifacts.output_len = 0;
        artifacts.output_shape = rvnv_nn::Shape::new(0, 0, 0);

        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        let result = soc.run_firmware(&artifacts, &[], &fw)?;
        let mut ok = true;
        for (addr, bytes) in &trace.expect {
            ok &= soc.dram_peek(*addr, bytes.len()) == *bytes;
        }
        println!(
            "trace {:12} {} ({} commands, {} cycles)",
            trace.name,
            if ok { "PASS" } else { "FAIL" },
            trace.commands.len(),
            result.cycles
        );
        if !ok {
            return Err(format!("trace {} failed", trace.name).into());
        }
    }
    Ok(())
}

fn cmd_resources() -> Result<(), AnyError> {
    use rvnv_soc::resources;
    for cfg in [
        rvnv_nvdla::HwConfig::nv_small(),
        rvnv_nvdla::HwConfig::nv_full(),
    ] {
        let u = resources::nvdla(&cfg);
        println!(
            "{:9} LUT {:>7}  Regs {:>7}  BRAM {:>4}  DSP {:>5}  fits ZCU102: {}",
            cfg.name,
            u.lut,
            u.regs,
            u.bram,
            u.dsp,
            resources::fits_zcu102(&u)
        );
    }
    Ok(())
}

fn cmd_models() -> Result<(), AnyError> {
    for m in Model::ALL {
        let net = m.build(1);
        let nv_small = if Model::NV_SMALL.contains(&m) {
            "nv_small+nv_full"
        } else {
            "nv_full only"
        };
        println!(
            "{:10} input {:10} layers {:4} ({nv_small})",
            m.name(),
            net.input_shape().to_string(),
            net.layer_count()
        );
    }
    Ok(())
}
