//! # rv-nvdla — Bare-Metal RISC-V + NVDLA SoC
//!
//! A full-system, cycle-approximate reproduction (in safe Rust) of the
//! SOCC 2025 paper *"Bare-Metal RISC-V + NVDLA SoC for Efficient Deep
//! Learning Inference"*: a 32-bit 4-stage RISC-V core tightly coupled to
//! the NVDLA accelerator, programmed by compiler-generated bare-metal
//! machine code instead of a Linux driver stack.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`rvnv_bus`] — AHB-Lite/APB/AXI fabric, bridges, arbiter, DRAM;
//! * [`rvnv_riscv`] — RV32IM ISS, 4-stage pipeline timing, assembler;
//! * [`rvnv_nn`] — tensors, the six-model zoo, golden executor, INT8/FP16;
//! * [`rvnv_nvdla`] — the register-level NVDLA model (`nv_small`/`nv_full`);
//! * [`rvnv_compiler`] — layer→engine lowering, traces, VP, codegen;
//! * [`rvnv_soc`] — the SoC, firmware, resource model, baselines;
//! * [`rvnv_obs`] — modeled-time span tracing + the unified metrics
//!   registry (Perfetto export, docs/OBSERVABILITY.md).
//!
//! # Quickstart
//!
//! ```
//! use rv_nvdla::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = Model::LeNet5.build(42);
//! let mut opt = CompileOptions::int8();
//! opt.calib_inputs = 1;
//! let artifacts = compile(&net, &opt)?;
//! let mut soc = Soc::new(SocConfig::zcu102_nv_small());
//! let result = soc.run_inference(&artifacts, &Tensor::random(net.input_shape(), 7))?;
//! println!("{:.2} ms @100 MHz", result.latency_ms(100_000_000));
//! # Ok(())
//! # }
//! ```

pub use rvnv_bus;
pub use rvnv_compiler;
pub use rvnv_nn;
pub use rvnv_nvdla;
pub use rvnv_obs;
pub use rvnv_riscv;
pub use rvnv_soc;

/// Convenient re-exports for applications.
pub mod prelude {
    pub use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
    pub use rvnv_compiler::trace::{parse_config_file, write_config_file};
    pub use rvnv_compiler::{compile, ArtifactCache, Artifacts, CompileOptions, VirtualPlatform};
    pub use rvnv_nn::zoo::Model;
    pub use rvnv_nn::{Shape, Tensor};
    pub use rvnv_nvdla::{HwConfig, Nvdla, Precision};
    pub use rvnv_obs::{
        to_chrome_json, Json, MetricsRegistry, MetricsSnapshot, SpanKind, Trace, Tracer, TrackId,
        TrackKind,
    };
    pub use rvnv_soc::batch::{
        layout_models, run_parallel, run_parallel_pipelined, run_parallel_pipelined_traced,
        run_parallel_traced, BatchReport, BatchScheduler, Frame, FrameLatency, PipelinedScheduler,
        Policy,
    };
    pub use rvnv_soc::firmware::Firmware;
    pub use rvnv_soc::fleet::{
        parse_pools, shaped_trace, Fleet, FleetOutcome, FleetRecord, FleetReport, FleetSpec,
        PoolProfile, PoolReport, PoolSpec, RoutePolicy, SocClass, TrafficShape,
    };
    pub use rvnv_soc::serve::{
        ArrivalProcess, FaultReport, FaultSpec, LatencyStats, RequestTrace, ServeReport, ServeSpec,
        Server, ServiceModel,
    };
    pub use rvnv_soc::soc::{InferenceResult, Soc, SocConfig};
}
