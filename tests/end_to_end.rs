//! Cross-crate integration tests: the complete bare-metal flow from a
//! layer graph to verified SoC output.

use rvnv_compiler::codegen::{generate_machine_code, CodegenOptions};
use rvnv_compiler::trace::{parse_config_file, write_config_file};
use rvnv_compiler::{compile, CompileOptions};
use rvnv_nn::exec::Executor;
use rvnv_nn::graph::{Network, Op, PoolKind};
use rvnv_nn::tensor::{Shape, WeightTensor};
use rvnv_nn::{zoo, Tensor};
use rvnv_nvdla::HwConfig;
use rvnv_soc::firmware::Firmware;
use rvnv_soc::soc::{Soc, SocConfig};

/// A network exercising every NVDLA engine and compiler path: fused
/// conv+BN+ReLU, a residual eltwise, max pooling, concat with both
/// redirection and a RUBIK copy, LRN (CDP), average pooling, a fully
/// connected layer and a CPU-side softmax.
fn kitchen_sink() -> Network {
    let mut net = Network::new("kitchen-sink", Shape::new(4, 8, 8));
    let x = net.input();
    let conv = |o: usize, i: usize, k: usize, pad: usize, seed: u64| {
        Op::Conv2d(rvnv_nn::graph::ConvParams {
            weights: WeightTensor::random(o, i, k, k, seed),
            bias: vec![0.01; o],
            stride: 1,
            pad,
            groups: 1,
        })
    };
    let c1 = net.add("c1", conv(8, 4, 3, 1, 1), &[x]).unwrap();
    let bn1 = net
        .add(
            "bn1",
            Op::BatchNorm {
                scale: vec![0.9; 8],
                shift: vec![0.05; 8],
            },
            &[c1],
        )
        .unwrap();
    let r1 = net.add("r1", Op::Relu, &[bn1]).unwrap();
    // Residual block on r1.
    let c2 = net.add("c2", conv(8, 8, 3, 1, 2), &[r1]).unwrap();
    let add = net.add("add", Op::EltwiseAdd, &[c2, r1]).unwrap();
    let r2 = net.add("r2", Op::Relu, &[add]).unwrap();
    // Branches into a concat; r1 has other consumers, forcing a copy.
    let pa = net.add("pa", conv(4, 8, 1, 0, 3), &[r2]).unwrap();
    let pool_b = net
        .add(
            "pool_b",
            Op::Pool {
                kind: PoolKind::Max,
                k: 3,
                stride: 1,
                pad: 1,
            },
            &[r2],
        )
        .unwrap();
    let pb = net.add("pb", conv(4, 8, 1, 0, 4), &[pool_b]).unwrap();
    let cat = net.add("cat", Op::Concat, &[pa, pb, r1]).unwrap();
    let lrn = net
        .add(
            "lrn",
            Op::Lrn {
                local_size: 5,
                alpha: 1e-4,
                beta: 0.75,
                k: 1.0,
            },
            &[cat],
        )
        .unwrap();
    let ap = net
        .add(
            "ap",
            Op::Pool {
                kind: PoolKind::Avg,
                k: 2,
                stride: 2,
                pad: 0,
            },
            &[lrn],
        )
        .unwrap();
    let fc = net
        .add(
            "fc",
            Op::FullyConnected {
                weights: WeightTensor::random(10, 16 * 4 * 4, 1, 1, 5)
                    .data()
                    .to_vec(),
                out: 10,
                input: 16 * 4 * 4,
                bias: vec![0.0; 10],
            },
            &[ap],
        )
        .unwrap();
    net.add("prob", Op::Softmax, &[fc]).unwrap();
    net
}

#[test]
fn kitchen_sink_fp16_on_nv_full_soc_matches_golden() {
    let net = kitchen_sink();
    let artifacts = compile(&net, &CompileOptions::fp16()).expect("compile");
    // All engines appear.
    let engines: std::collections::BTreeSet<&str> =
        artifacts.ops.iter().map(|o| o.engine).collect();
    for e in ["conv", "pdp", "cdp", "rubik"] {
        assert!(engines.contains(e), "missing engine {e}: {engines:?}");
    }

    let mut config = SocConfig::zcu102_nv_small();
    config.hw = HwConfig::nv_full();
    let mut soc = Soc::new(config);
    let input = Tensor::random(net.input_shape(), 77);
    let result = soc.run_inference(&artifacts, &input).expect("inference");

    // Compare pre-softmax logits against the golden executor.
    let all = Executor::new(&net).run_all(&input).expect("golden");
    let logits = &all[all.len() - 2];
    for (i, (a, b)) in result.output.data().iter().zip(logits.data()).enumerate() {
        assert!((a - b).abs() < 0.05, "logit {i}: nvdla {a} vs golden {b}");
    }
}

#[test]
fn kitchen_sink_int8_argmax_agrees() {
    let net = kitchen_sink();
    let artifacts = compile(&net, &CompileOptions::int8()).expect("compile");
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let input = Tensor::random(net.input_shape(), 123);
    let result = soc.run_inference(&artifacts, &input).expect("inference");
    let all = Executor::new(&net).run_all(&input).expect("golden");
    let logits = &all[all.len() - 2];
    assert_eq!(result.output.argmax(), logits.argmax());
}

#[test]
fn config_file_text_round_trip_runs_identically() {
    let net = zoo::lenet5(9);
    let artifacts = compile(&net, &CompileOptions::int8()).expect("compile");
    // Serialize the configuration file to text and parse it back — the
    // paper's on-disk artifact.
    let text = write_config_file(&artifacts.commands);
    let parsed = parse_config_file(&text).expect("parse");
    assert_eq!(parsed, artifacts.commands);

    // Build firmware from the parsed file and run it.
    let image = generate_machine_code(&parsed, CodegenOptions::default()).expect("assemble");
    let asm = rvnv_compiler::codegen::generate_assembly(&parsed);
    let fw = Firmware {
        assembly: asm,
        image,
    };
    let input = Tensor::random(net.input_shape(), 4);
    let input_bytes = artifacts.quantize_input(&input);
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let via_file = soc
        .run_firmware(&artifacts, &input_bytes, &fw)
        .expect("file path");
    let direct = soc.run_inference(&artifacts, &input).expect("direct path");
    assert_eq!(via_file.cycles, direct.cycles);
    assert_eq!(via_file.raw_output, direct.raw_output);
}

#[test]
fn repeated_runs_are_deterministic() {
    let net = zoo::lenet5(1);
    let artifacts = compile(&net, &CompileOptions::int8()).expect("compile");
    let input = Tensor::random(net.input_shape(), 5);
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let a = soc.run_inference(&artifacts, &input).expect("run 1");
    let b = soc.run_inference(&artifacts, &input).expect("run 2");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.raw_output, b.raw_output);
}

#[test]
fn fused_and_unfused_agree_functionally() {
    let net = zoo::lenet5(33);
    let input = Tensor::random(net.input_shape(), 6);
    let fused = compile(&net, &CompileOptions::int8()).expect("fused");
    let unfused = compile(&net, &CompileOptions::int8().unfused()).expect("unfused");
    assert!(unfused.ops.len() >= fused.ops.len());
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let a = soc.run_inference(&fused, &input).expect("fused run");
    let b = soc.run_inference(&unfused, &input).expect("unfused run");
    assert_eq!(a.output.argmax(), b.output.argmax());
    assert!(
        b.cycles >= a.cycles,
        "per-layer replay ({}) is never faster than fusion ({})",
        b.cycles,
        a.cycles
    );
}

#[test]
fn resnet18_int8_runs_functionally_on_the_soc() {
    let net = zoo::resnet18_cifar(3);
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 2;
    let artifacts = compile(&net, &opt).expect("compile");
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let input = Tensor::random(net.input_shape(), 8);
    let result = soc.run_inference(&artifacts, &input).expect("inference");
    assert_eq!(result.output.shape().c, 10);
    // Deep INT8 chains drift on synthetic weights; require sane output,
    // not bit-exact classification.
    assert!(result.output.data().iter().all(|v| v.is_finite()));
    assert!(result.cycles > 100_000);
}
