//! CLI contract tests for degenerate inputs: a nonsensical request
//! must exit nonzero with an error that names the offending flag and
//! what a valid value looks like — never be silently clamped to
//! something runnable (`--frames 0` used to become `--frames 1`).

use std::process::Command;

/// Run the built binary; return (success, stderr).
fn rv_nvdla(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rv-nvdla"))
        .args(args)
        .output()
        .expect("run rv-nvdla");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The command must fail and the error must contain every needle.
fn assert_rejects(args: &[&str], needles: &[&str]) {
    let (ok, stderr) = rv_nvdla(args);
    assert!(!ok, "`rv-nvdla {}` must fail", args.join(" "));
    for needle in needles {
        assert!(
            stderr.contains(needle),
            "`rv-nvdla {}` stderr must mention {needle:?}, got:\n{stderr}",
            args.join(" ")
        );
    }
}

#[test]
fn batch_rejects_zero_frames() {
    assert_rejects(
        &["batch", "--models", "lenet5", "--frames", "0"],
        &["--frames", ">= 1"],
    );
}

#[test]
fn serve_rejects_zero_rate() {
    assert_rejects(
        &["serve", "--models", "lenet5", "--rate", "0"],
        &["--rate", ">= 1"],
    );
}

#[test]
fn serve_rejects_zero_queue_depth() {
    assert_rejects(
        &["serve", "--models", "lenet5", "--queue-depth", "0"],
        &["--queue-depth", ">= 1"],
    );
}

#[test]
fn serve_rejects_zero_duration_and_workers() {
    assert_rejects(
        &["serve", "--models", "lenet5", "--duration", "0"],
        &["--duration", ">= 1"],
    );
    assert_rejects(
        &["serve", "--models", "lenet5", "--workers", "0"],
        &["--workers", ">= 1"],
    );
}

#[test]
fn batch_and_serve_reject_empty_model_lists() {
    for cmd in ["batch", "serve"] {
        assert_rejects(&[cmd, "--models", ""], &["--models", "empty"]);
        assert_rejects(&[cmd, "--models", " , "], &["--models", "empty"]);
        assert_rejects(&[cmd], &["--models"]);
    }
}

#[test]
fn batch_and_serve_reject_duplicate_models() {
    for cmd in ["batch", "serve"] {
        assert_rejects(
            &[cmd, "--models", "lenet5,lenet5"],
            &["duplicate model `lenet5`"],
        );
        // The normalized spelling is a duplicate too.
        assert_rejects(&[cmd, "--models", "lenet5,LeNet-5"], &["duplicate model"]);
    }
}

#[test]
fn serve_rejects_unknown_policy_and_arrivals() {
    assert_rejects(
        &["serve", "--models", "lenet5", "--policy", "fifo"],
        &["unknown policy `fifo`", "rr|sqf|eff"],
    );
    assert_rejects(
        &["serve", "--models", "lenet5", "--arrivals", "bursty"],
        &["unknown arrival process `bursty`", "poisson|fixed"],
    );
}

#[test]
fn serve_rejects_unknown_flags_with_the_accepted_list() {
    assert_rejects(
        &["serve", "--models", "lenet5", "--rps", "100"],
        &["unknown flag `--rps`", "--rate", "--queue-depth"],
    );
    // And stray positionals: serve takes its models via --models only.
    assert_rejects(&["serve", "lenet5"], &["unexpected argument `lenet5`"]);
}

#[test]
fn serve_rejects_a_zero_timeout() {
    // A zero deadline would abort every attempt at birth.
    assert_rejects(
        &["serve", "--models", "lenet5", "--timeout-us", "0"],
        &["--timeout-us", ">= 1"],
    );
}

#[test]
fn serve_rejects_retries_without_a_timeout() {
    assert_rejects(
        &["serve", "--models", "lenet5", "--retries", "2"],
        &["--retries needs --timeout-us"],
    );
}

#[test]
fn serve_rejects_malformed_fault_specs() {
    // A bare term with no `=` names itself in the error.
    assert_rejects(
        &["serve", "--models", "lenet5", "--faults", "errors"],
        &["`errors`", "not key=value"],
    );
    // An unknown key lists what it could have been.
    assert_rejects(
        &["serve", "--models", "lenet5", "--faults", "seed=1,frobs=9"],
        &["unknown fault-spec key `frobs`"],
    );
    // Hang faults are undetectable without a watchdog.
    assert_rejects(
        &["serve", "--models", "lenet5", "--faults", "hangs=1000"],
        &["hangs", "needs --timeout-us"],
    );
    // The per-attempt lottery draws one ticket per million.
    assert_rejects(
        &[
            "serve",
            "--models",
            "lenet5",
            "--timeout-us",
            "10000",
            "--faults",
            "errors=900000,crashes=200000",
        ],
        &["sum to 1100000", "<= 1000000"],
    );
}

#[test]
fn fleet_rejects_degenerate_pool_specs() {
    assert_rejects(
        &["fleet", "--models", "lenet5", "--pools", "0"],
        &["unknown pool class `0`", "nv_small|nv_full"],
    );
    assert_rejects(
        &[
            "fleet",
            "--models",
            "lenet5",
            "--pools",
            "nv_small:workers=zzz",
        ],
        &["`workers` value `zzz`", "not an integer"],
    );
    assert_rejects(
        &["fleet", "--models", "lenet5", "--pools", "nv_small:frobs=2"],
        &["unknown key `frobs`", "workers|min|max|queue|models"],
    );
    // Autoscaler bounds must bracket the starting worker count.
    assert_rejects(
        &[
            "fleet",
            "--models",
            "lenet5",
            "--pools",
            "nv_small:min=3,max=1",
        ],
        &["min <= workers <= max"],
    );
    assert_rejects(
        &["fleet", "--models", "lenet5", "--pools", ""],
        &["at least one pool"],
    );
}

#[test]
fn fleet_rejects_unknown_route_shape_and_flags() {
    assert_rejects(
        &["fleet", "--models", "lenet5", "--route", "zig"],
        &[
            "unknown route policy `zig`",
            "weighted|least-loaded|model-affinity",
        ],
    );
    assert_rejects(
        &["fleet", "--models", "lenet5", "--shape", "square"],
        &[
            "unknown traffic shape `square`",
            "steady|diurnal|bursty|flash-crowd",
        ],
    );
    // serve's flag is not fleet's flag: workers live in the pool spec.
    assert_rejects(
        &["fleet", "--models", "lenet5", "--workers", "2"],
        &["unknown flag `--workers`", "--pools"],
    );
    assert_rejects(&["fleet", "lenet5"], &["unexpected argument `lenet5`"]);
}

#[test]
fn fleet_rejects_homeless_models_and_misclassed_pools() {
    // Every --models entry needs a home in some pool's models= subset.
    assert_rejects(
        &[
            "fleet",
            "--models",
            "lenet5,resnet18",
            "--pools",
            "nv_small:models=lenet5",
        ],
        &["is resident in no pool"],
    );
    // nv_small silicon cannot host the nv_full-only zoo models.
    assert_rejects(
        &[
            "fleet",
            "--models",
            "alexnet",
            "--pools",
            "nv_small:workers=1",
        ],
        &["nv_full-only"],
    );
    // Inverted autoscaler thresholds would flap forever.
    assert_rejects(
        &[
            "fleet",
            "--models",
            "lenet5",
            "--scale-up-below",
            "90",
            "--scale-down-above",
            "50",
        ],
        &["--scale-up-below", "--scale-down-above"],
    );
}

/// Run the built binary; return (success, stdout) — for commands whose
/// *output* is the contract, not their error path.
fn rv_nvdla_stdout(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rv-nvdla"))
        .args(args)
        .output()
        .expect("run rv-nvdla");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// `run --repeat` reports the decoded-block-cache counters for the
/// warm runs: fully warm replays show hits and zero misses, and the
/// poll firmware's status reads are folded into the MMIO read lease.
/// Timing-only + wfi keeps this fast enough for a debug-profile test.
#[test]
fn run_repeat_reports_block_cache_counters() {
    let (ok, stdout) =
        rv_nvdla_stdout(&["run", "lenet5", "--timing-only", "--wfi", "--repeat", "2"]);
    assert!(ok, "run --repeat must succeed, got:\n{stdout}");
    assert!(
        stdout.contains("all warm runs bit-identical"),
        "missing warm-identity line:\n{stdout}"
    );
    let cache_line = stdout
        .lines()
        .find(|l| l.starts_with("block cache:"))
        .unwrap_or_else(|| panic!("missing block-cache line:\n{stdout}"));
    assert!(
        cache_line.contains("hits") && cache_line.contains("misses"),
        "cache line must report hit/miss counters: {cache_line}"
    );
    assert!(
        cache_line.contains("0 misses"),
        "a warm run must replay without decoding: {cache_line}"
    );
}
