//! CLI contract tests for degenerate inputs: a nonsensical request
//! must exit nonzero with an error that names the offending flag and
//! what a valid value looks like — never be silently clamped to
//! something runnable (`--frames 0` used to become `--frames 1`).

use std::process::Command;

/// Run the built binary; return (success, stderr).
fn rv_nvdla(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rv-nvdla"))
        .args(args)
        .output()
        .expect("run rv-nvdla");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The command must fail and the error must contain every needle.
fn assert_rejects(args: &[&str], needles: &[&str]) {
    let (ok, stderr) = rv_nvdla(args);
    assert!(!ok, "`rv-nvdla {}` must fail", args.join(" "));
    for needle in needles {
        assert!(
            stderr.contains(needle),
            "`rv-nvdla {}` stderr must mention {needle:?}, got:\n{stderr}",
            args.join(" ")
        );
    }
}

#[test]
fn batch_rejects_zero_frames() {
    assert_rejects(
        &["batch", "--models", "lenet5", "--frames", "0"],
        &["--frames", ">= 1"],
    );
}

#[test]
fn serve_rejects_zero_rate() {
    assert_rejects(
        &["serve", "--models", "lenet5", "--rate", "0"],
        &["--rate", ">= 1"],
    );
}

#[test]
fn serve_rejects_zero_queue_depth() {
    assert_rejects(
        &["serve", "--models", "lenet5", "--queue-depth", "0"],
        &["--queue-depth", ">= 1"],
    );
}

#[test]
fn serve_rejects_zero_duration_and_workers() {
    assert_rejects(
        &["serve", "--models", "lenet5", "--duration", "0"],
        &["--duration", ">= 1"],
    );
    assert_rejects(
        &["serve", "--models", "lenet5", "--workers", "0"],
        &["--workers", ">= 1"],
    );
}

#[test]
fn batch_and_serve_reject_empty_model_lists() {
    for cmd in ["batch", "serve"] {
        assert_rejects(&[cmd, "--models", ""], &["--models", "empty"]);
        assert_rejects(&[cmd, "--models", " , "], &["--models", "empty"]);
        assert_rejects(&[cmd], &["--models"]);
    }
}

#[test]
fn batch_and_serve_reject_duplicate_models() {
    for cmd in ["batch", "serve"] {
        assert_rejects(
            &[cmd, "--models", "lenet5,lenet5"],
            &["duplicate model `lenet5`"],
        );
        // The normalized spelling is a duplicate too.
        assert_rejects(&[cmd, "--models", "lenet5,LeNet-5"], &["duplicate model"]);
    }
}

#[test]
fn serve_rejects_unknown_policy_and_arrivals() {
    assert_rejects(
        &["serve", "--models", "lenet5", "--policy", "fifo"],
        &["unknown policy `fifo`", "rr|sqf|eff"],
    );
    assert_rejects(
        &["serve", "--models", "lenet5", "--arrivals", "bursty"],
        &["unknown arrival process `bursty`", "poisson|fixed"],
    );
}

#[test]
fn serve_rejects_unknown_flags_with_the_accepted_list() {
    assert_rejects(
        &["serve", "--models", "lenet5", "--rps", "100"],
        &["unknown flag `--rps`", "--rate", "--queue-depth"],
    );
    // And stray positionals: serve takes its models via --models only.
    assert_rejects(&["serve", "lenet5"], &["unexpected argument `lenet5`"]);
}

#[test]
fn serve_rejects_a_zero_timeout() {
    // A zero deadline would abort every attempt at birth.
    assert_rejects(
        &["serve", "--models", "lenet5", "--timeout-us", "0"],
        &["--timeout-us", ">= 1"],
    );
}

#[test]
fn serve_rejects_retries_without_a_timeout() {
    assert_rejects(
        &["serve", "--models", "lenet5", "--retries", "2"],
        &["--retries needs --timeout-us"],
    );
}

#[test]
fn serve_rejects_malformed_fault_specs() {
    // A bare term with no `=` names itself in the error.
    assert_rejects(
        &["serve", "--models", "lenet5", "--faults", "errors"],
        &["`errors`", "not key=value"],
    );
    // An unknown key lists what it could have been.
    assert_rejects(
        &["serve", "--models", "lenet5", "--faults", "seed=1,frobs=9"],
        &["unknown fault-spec key `frobs`"],
    );
    // Hang faults are undetectable without a watchdog.
    assert_rejects(
        &["serve", "--models", "lenet5", "--faults", "hangs=1000"],
        &["hangs", "needs --timeout-us"],
    );
    // The per-attempt lottery draws one ticket per million.
    assert_rejects(
        &[
            "serve",
            "--models",
            "lenet5",
            "--timeout-us",
            "10000",
            "--faults",
            "errors=900000,crashes=200000",
        ],
        &["sum to 1100000", "<= 1000000"],
    );
}

#[test]
fn fleet_rejects_degenerate_pool_specs() {
    assert_rejects(
        &["fleet", "--models", "lenet5", "--pools", "0"],
        &["unknown pool class `0`", "nv_small|nv_full"],
    );
    assert_rejects(
        &[
            "fleet",
            "--models",
            "lenet5",
            "--pools",
            "nv_small:workers=zzz",
        ],
        &["`workers` value `zzz`", "not an integer"],
    );
    assert_rejects(
        &["fleet", "--models", "lenet5", "--pools", "nv_small:frobs=2"],
        &["unknown key `frobs`", "workers|min|max|queue|models"],
    );
    // Autoscaler bounds must bracket the starting worker count.
    assert_rejects(
        &[
            "fleet",
            "--models",
            "lenet5",
            "--pools",
            "nv_small:min=3,max=1",
        ],
        &["min <= workers <= max"],
    );
    assert_rejects(
        &["fleet", "--models", "lenet5", "--pools", ""],
        &["at least one pool"],
    );
}

#[test]
fn fleet_rejects_unknown_route_shape_and_flags() {
    assert_rejects(
        &["fleet", "--models", "lenet5", "--route", "zig"],
        &[
            "unknown route policy `zig`",
            "weighted|least-loaded|model-affinity",
        ],
    );
    assert_rejects(
        &["fleet", "--models", "lenet5", "--shape", "square"],
        &[
            "unknown traffic shape `square`",
            "steady|diurnal|bursty|flash-crowd",
        ],
    );
    // serve's flag is not fleet's flag: workers live in the pool spec.
    assert_rejects(
        &["fleet", "--models", "lenet5", "--workers", "2"],
        &["unknown flag `--workers`", "--pools"],
    );
    assert_rejects(&["fleet", "lenet5"], &["unexpected argument `lenet5`"]);
}

#[test]
fn fleet_rejects_homeless_models_and_misclassed_pools() {
    // Every --models entry needs a home in some pool's models= subset.
    assert_rejects(
        &[
            "fleet",
            "--models",
            "lenet5,resnet18",
            "--pools",
            "nv_small:models=lenet5",
        ],
        &["is resident in no pool"],
    );
    // nv_small silicon cannot host the nv_full-only zoo models.
    assert_rejects(
        &[
            "fleet",
            "--models",
            "alexnet",
            "--pools",
            "nv_small:workers=1",
        ],
        &["nv_full-only"],
    );
    // Inverted autoscaler thresholds would flap forever.
    assert_rejects(
        &[
            "fleet",
            "--models",
            "lenet5",
            "--scale-up-below",
            "90",
            "--scale-down-above",
            "50",
        ],
        &["--scale-up-below", "--scale-down-above"],
    );
}

/// Run the built binary; return (success, stdout) — for commands whose
/// *output* is the contract, not their error path.
fn rv_nvdla_stdout(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rv-nvdla"))
        .args(args)
        .output()
        .expect("run rv-nvdla");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// `serve --json` is the machine-readable contract: every field is
/// modeled (host wall-clock excluded), so two runs of the same spec
/// print byte-identical JSON, and the totals reconcile exactly like
/// the human table's.
#[test]
fn serve_json_report_is_stable_and_reconciles() {
    use rv_nvdla::prelude::Json;
    let args = [
        "serve",
        "--models",
        "lenet5",
        "--rate",
        "200",
        "--duration",
        "80",
        "--json",
    ];
    let (ok, first) = rv_nvdla_stdout(&args);
    assert!(ok, "serve --json must succeed, got:\n{first}");
    let (ok2, second) = rv_nvdla_stdout(&args);
    assert!(ok2);
    assert_eq!(
        first, second,
        "two runs of the same spec must print byte-identical JSON"
    );
    let v = Json::parse(&first).expect("serve --json must print valid JSON");
    let served = v.get("served").and_then(Json::as_u64).expect("served");
    let dropped = v.get("dropped").and_then(Json::as_u64).expect("dropped");
    let offered = v.get("offered").and_then(Json::as_u64).expect("offered");
    assert!(served > 0, "nothing served:\n{first}");
    assert_eq!(
        served + dropped,
        offered,
        "books must balance in the JSON view"
    );
    assert_eq!(v.get("policy").and_then(Json::as_str), Some("rr"));
    assert_eq!(
        v.get("replay_divergence").and_then(Json::as_u64),
        Some(0),
        "real SoCs must match the plan"
    );
    let per_model = v
        .get("per_model")
        .and_then(Json::as_array)
        .expect("per_model");
    let pm: u64 = per_model
        .iter()
        .map(|m| {
            m.get("served")
                .and_then(Json::as_u64)
                .expect("model served")
        })
        .sum();
    assert_eq!(pm, served, "per-model served must sum to the total");
}

/// `fleet --json`: same contract as serve's — stable bytes, balanced
/// books, per-pool breakdown consistent with the totals.
#[test]
fn fleet_json_report_is_stable_and_reconciles() {
    use rv_nvdla::prelude::Json;
    let args = [
        "fleet",
        "--models",
        "lenet5",
        "--pools",
        "nv_small:workers=2",
        "--rate",
        "200",
        "--duration",
        "80",
        "--json",
    ];
    let (ok, first) = rv_nvdla_stdout(&args);
    assert!(ok, "fleet --json must succeed, got:\n{first}");
    let (ok2, second) = rv_nvdla_stdout(&args);
    assert!(ok2);
    assert_eq!(
        first, second,
        "two runs of the same spec must print byte-identical JSON"
    );
    let v = Json::parse(&first).expect("fleet --json must print valid JSON");
    let served = v.get("served").and_then(Json::as_u64).expect("served");
    let dropped = v.get("dropped").and_then(Json::as_u64).expect("dropped");
    let shed = v.get("shed").and_then(Json::as_u64).expect("shed");
    let offered = v.get("offered").and_then(Json::as_u64).expect("offered");
    assert!(served > 0, "nothing served:\n{first}");
    assert_eq!(served + dropped + shed, offered, "fleet books must balance");
    let per_pool = v
        .get("per_pool")
        .and_then(Json::as_array)
        .expect("per_pool");
    let routed: u64 = per_pool
        .iter()
        .map(|p| p.get("routed").and_then(Json::as_u64).expect("pool routed"))
        .sum();
    assert_eq!(routed + shed, offered, "balancer books must balance");
}

/// `serve --pipeline --trace-out/--metrics-out` writes a Perfetto-
/// loadable trace and a metrics dump that mirror the report: well-formed
/// JSON, a named thread per worker, ≥1 span per phase the pipelined
/// server exercises, and registry counters equal to the `--json`
/// report's. This is the checker behind CI's trace-smoke step.
#[test]
fn serve_trace_out_writes_a_checkable_perfetto_trace() {
    use rv_nvdla::prelude::Json;
    let dir = std::env::temp_dir();
    let trace_path = dir.join(format!("rvnv-trace-{}.json", std::process::id()));
    let metrics_path = dir.join(format!("rvnv-metrics-{}.json", std::process::id()));
    let (ok, stdout) = rv_nvdla_stdout(&[
        "serve",
        "--models",
        "lenet5",
        "--pipeline",
        "--workers",
        "2",
        "--rate",
        "600",
        "--duration",
        "80",
        "--json",
        "--trace-out",
        trace_path.to_str().expect("utf-8 temp path"),
        "--metrics-out",
        metrics_path.to_str().expect("utf-8 temp path"),
    ]);
    assert!(ok, "traced serve must succeed, got:\n{stdout}");
    let report = Json::parse(&stdout).expect("serve --json must print valid JSON");

    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    let v = Json::parse(&trace).expect("trace must be valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    // A named thread per worker.
    for w in 0..2 {
        let name = format!("worker {w}");
        assert!(
            events.iter().any(|e| {
                e.get("name").and_then(Json::as_str) == Some("thread_name")
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        == Some(name.as_str())
            }),
            "trace must have a thread for {name}"
        );
    }
    // ≥1 span per phase the pipelined server exercises.
    for cat in ["queue_wait", "ps_burst", "compute"] {
        assert!(
            events
                .iter()
                .any(|e| e.get("cat").and_then(Json::as_str) == Some(cat)),
            "trace must contain at least one {cat} span"
        );
    }

    // The metrics dump mirrors the structured report.
    let metrics = Json::parse(&std::fs::read_to_string(&metrics_path).expect("metrics written"))
        .expect("metrics must be valid JSON");
    assert_eq!(
        metrics
            .get("counters")
            .and_then(|c| c.get("serve.served"))
            .and_then(Json::as_u64),
        report.get("served").and_then(Json::as_u64),
        "serve.served counter must equal the report's served"
    );
    assert_eq!(
        metrics
            .get("histograms")
            .and_then(|h| h.get("serve.total_cycles"))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64),
        report.get("served").and_then(Json::as_u64),
        "one total-latency observation per served request"
    );
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&metrics_path).ok();
}

/// The observability flags are strictly validated like every other
/// flag: a value flag without a value fails loudly, and `--json` exists
/// only where there is a structured report to print.
#[test]
fn observability_flags_are_strictly_validated() {
    assert_rejects(
        &["serve", "--models", "lenet5", "--trace-out"],
        &["--trace-out needs a value"],
    );
    assert_rejects(
        &["run", "lenet5", "--metrics-out"],
        &["--metrics-out needs a value"],
    );
    assert_rejects(
        &["run", "lenet5", "--json"],
        &["unknown flag `--json`", "--trace-out"],
    );
    assert_rejects(
        &["batch", "--models", "lenet5", "--json"],
        &["unknown flag `--json`", "--metrics-out"],
    );
}

/// `run --repeat` reports the decoded-block-cache counters for the
/// warm runs: fully warm replays show hits and zero misses, and the
/// poll firmware's status reads are folded into the MMIO read lease.
/// Timing-only + wfi keeps this fast enough for a debug-profile test.
#[test]
fn run_repeat_reports_block_cache_counters() {
    let (ok, stdout) =
        rv_nvdla_stdout(&["run", "lenet5", "--timing-only", "--wfi", "--repeat", "2"]);
    assert!(ok, "run --repeat must succeed, got:\n{stdout}");
    assert!(
        stdout.contains("all warm runs bit-identical"),
        "missing warm-identity line:\n{stdout}"
    );
    let cache_line = stdout
        .lines()
        .find(|l| l.starts_with("block cache:"))
        .unwrap_or_else(|| panic!("missing block-cache line:\n{stdout}"));
    assert!(
        cache_line.contains("hits") && cache_line.contains("misses"),
        "cache line must report hit/miss counters: {cache_line}"
    );
    assert!(
        cache_line.contains("0 misses"),
        "a warm run must replay without decoding: {cache_line}"
    );
}
