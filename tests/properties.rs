//! Property-based tests on core data structures and invariants.

use proptest::prelude::*;

use rvnv_bus::dram::{Dram, DramTiming};
use rvnv_bus::sram::Sram;
use rvnv_bus::{Request, Reset, Target};
use rvnv_compiler::layout::{Allocator, WeightImage};
use rvnv_compiler::trace::{parse_config_file, write_config_file, ConfigCmd};
use rvnv_nn::quant::QuantScale;
use rvnv_nn::tensor::{Shape, Tensor};
use rvnv_nn::F16;
use rvnv_riscv::inst::{AluOp, BranchOp, CsrOp, Inst, MemWidth, MulOp};
use rvnv_riscv::reg::Reg;
use rvnv_riscv::{decode, encode};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn inst_strategy() -> impl Strategy<Value = Inst> {
    let alu_op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ];
    let alu_rr = prop_oneof![alu_op.clone(), Just(AluOp::Sub)];
    let mul_op = prop_oneof![
        Just(MulOp::Mul),
        Just(MulOp::Mulh),
        Just(MulOp::Mulhsu),
        Just(MulOp::Mulhu),
        Just(MulOp::Div),
        Just(MulOp::Divu),
        Just(MulOp::Rem),
        Just(MulOp::Remu),
    ];
    let branch_op = prop_oneof![
        Just(BranchOp::Eq),
        Just(BranchOp::Ne),
        Just(BranchOp::Lt),
        Just(BranchOp::Ge),
        Just(BranchOp::Ltu),
        Just(BranchOp::Geu),
    ];
    let width = prop_oneof![
        Just(MemWidth::Byte),
        Just(MemWidth::ByteU),
        Just(MemWidth::Half),
        Just(MemWidth::HalfU),
        Just(MemWidth::Word),
    ];
    let store_width = prop_oneof![
        Just(MemWidth::Byte),
        Just(MemWidth::Half),
        Just(MemWidth::Word),
    ];
    let csr_op = prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)];
    prop_oneof![
        (reg_strategy(), any::<u32>()).prop_map(|(rd, v)| Inst::Lui {
            rd,
            imm: v & 0xFFFF_F000
        }),
        (reg_strategy(), any::<u32>()).prop_map(|(rd, v)| Inst::Auipc {
            rd,
            imm: v & 0xFFFF_F000
        }),
        (reg_strategy(), (-(1i32 << 20)..(1i32 << 20)))
            .prop_map(|(rd, o)| Inst::Jal { rd, offset: o & !1 }),
        (reg_strategy(), reg_strategy(), -2048i32..2048).prop_map(|(rd, rs1, offset)| Inst::Jalr {
            rd,
            rs1,
            offset
        }),
        (branch_op, reg_strategy(), reg_strategy(), -4096i32..4096).prop_map(
            |(op, rs1, rs2, o)| Inst::Branch {
                op,
                rs1,
                rs2,
                offset: o & !1
            }
        ),
        (width, reg_strategy(), reg_strategy(), -2048i32..2048).prop_map(
            |(width, rd, rs1, offset)| Inst::Load {
                width,
                rd,
                rs1,
                offset
            }
        ),
        (store_width, reg_strategy(), reg_strategy(), -2048i32..2048).prop_map(
            |(width, rs1, rs2, offset)| Inst::Store {
                width,
                rs1,
                rs2,
                offset
            }
        ),
        (
            alu_op.clone(),
            reg_strategy(),
            reg_strategy(),
            -2048i32..2048
        )
            .prop_map(|(op, rd, rs1, imm)| {
                let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                    imm & 0x1F
                } else {
                    imm
                };
                Inst::AluImm { op, rd, rs1, imm }
            }),
        (alu_rr, reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Alu { op, rd, rs1, rs2 }),
        (mul_op, reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Mul { op, rd, rs1, rs2 }),
        (csr_op, reg_strategy(), reg_strategy(), any::<u16>()).prop_map(|(op, rd, rs1, c)| {
            Inst::Csr {
                op,
                rd,
                rs1,
                csr: c & 0xFFF,
            }
        }),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        Just(Inst::Fence),
        Just(Inst::Mret),
        Just(Inst::Wfi),
    ]
}

proptest! {
    /// Every encodable instruction decodes back to itself.
    #[test]
    fn riscv_encode_decode_round_trip(inst in inst_strategy()) {
        let word = encode(&inst);
        let back = decode(word, 0).expect("canonical encodings decode");
        prop_assert_eq!(back, inst);
    }

    /// `li` materializes any 32-bit constant exactly.
    #[test]
    fn assembler_li_materializes_any_value(value in any::<u32>()) {
        let src = format!("li a0, 0x{value:08x}\nebreak");
        let image = rvnv_riscv::assemble(&src).expect("assembles");
        let mut core = rvnv_riscv::Core::new(
            rvnv_bus::sram::Sram::rom(image.bytes()),
            rvnv_bus::sram::Sram::new(64),
        );
        core.run(10).expect("runs");
        prop_assert_eq!(core.read_reg(rvnv_riscv::reg::A0), value);
    }

    /// Quantize/dequantize error never exceeds half a step (within the
    /// calibrated range).
    #[test]
    fn quantization_error_bounded(max_abs in 0.01f32..1000.0, frac in -1.0f32..1.0) {
        let scale = QuantScale::from_max_abs(max_abs);
        let v = max_abs * frac;
        let r = scale.dequantize(scale.quantize(v));
        prop_assert!((r - v).abs() <= scale.scale / 2.0 + 1e-6);
    }

    /// SRAM stores and loads arbitrary byte strings.
    #[test]
    fn sram_round_trips(data in proptest::collection::vec(any::<u8>(), 1..256),
                        word_offset in 0usize..16) {
        let offset = word_offset * 4; // block transfers are word-aligned
        let mut mem = Sram::new(512);
        mem.write_block(offset as u32, &data, 0).expect("write");
        let mut out = vec![0u8; data.len()];
        mem.read_block(offset as u32, &mut out, 0).expect("read");
        prop_assert_eq!(out, data);
    }

    /// DRAM timing is monotonic: completion never precedes issue, and
    /// consecutive transactions never complete out of order.
    #[test]
    fn dram_time_is_monotonic(addrs in proptest::collection::vec(0u32..4096, 1..32)) {
        let mut d = Dram::new(8192, DramTiming::mig_ddr4());
        let mut t = 0u64;
        for a in addrs {
            let r = d.access(&Request::read32(a & !3), t).expect("read");
            prop_assert!(r.done_at > t);
            t = r.done_at;
        }
    }

    /// Allocator never hands out overlapping or unaligned regions.
    #[test]
    fn allocator_regions_disjoint(sizes in proptest::collection::vec(0u32..5000, 1..64)) {
        let mut alloc = Allocator::new(0x40, 1 << 20);
        let mut prev_end = 0u64;
        for s in sizes {
            let a = alloc.alloc(s).expect("fits");
            prop_assert_eq!(a % rvnv_compiler::layout::ALLOC_ALIGN, 0);
            prop_assert!(u64::from(a) >= prev_end);
            prev_end = u64::from(a) + u64::from(s);
        }
    }

    /// Weight-image `.bin` serialization round trips.
    #[test]
    fn weight_image_round_trips(
        segs in proptest::collection::vec(
            (0u32..1_000_000, proptest::collection::vec(any::<u8>(), 0..64)),
            0..8,
        )
    ) {
        let mut img = WeightImage::new();
        for (addr, bytes) in segs {
            img.push(addr, bytes);
        }
        let back = WeightImage::from_bin(&img.to_bin()).expect("parse");
        prop_assert_eq!(back, img);
    }

    /// Configuration files survive text round trips.
    #[test]
    fn config_file_round_trips(
        cmds in proptest::collection::vec(
            prop_oneof![
                (any::<u32>(), any::<u32>())
                    .prop_map(|(addr, value)| ConfigCmd::WriteReg { addr, value }),
                (any::<u32>(), any::<u32>(), any::<u32>())
                    .prop_map(|(addr, mask, expect)| ConfigCmd::ReadReg { addr, mask, expect }),
            ],
            0..64,
        )
    ) {
        let text = write_config_file(&cmds);
        prop_assert_eq!(parse_config_file(&text).expect("parse"), cmds);
    }

    /// Tensor NCHW indexing agrees with the flat layout.
    #[test]
    fn tensor_indexing_is_consistent(c in 1usize..4, h in 1usize..6, w in 1usize..6) {
        let shape = Shape::new(c, h, w);
        let t = Tensor::random(shape, 1);
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    let flat = (ci * h + hi) * w + wi;
                    prop_assert_eq!(t.at(ci, hi, wi), t.data()[flat]);
                }
            }
        }
    }

    /// f16→f32→f16 is the identity for every non-NaN bit pattern.
    #[test]
    fn f16_f32_f16_identity(bits in any::<u16>()) {
        let h = F16::from_bits(bits);
        let f = h.to_f32();
        prop_assume!(!f.is_nan());
        prop_assert_eq!(F16::from_f32(f).to_bits(), bits);
    }

    /// f32→f16 rounding error is within half a ULP of the f16 grid for
    /// in-range normal values.
    #[test]
    fn f16_rounding_bounded(v in -60000.0f32..60000.0) {
        prop_assume!(v.abs() >= 6.2e-5); // stay out of the subnormal range
        let r = F16::round_f32(v);
        let rel = ((r - v) / v).abs();
        prop_assert!(rel <= 2f32.powi(-11) + f32::EPSILON, "{v} -> {r}");
    }

    /// Scoped reset (`preserve_across_reset`) — the pipelined frame
    /// boundary — never clobbers a resident weight image, never loses
    /// the preserved (in-flight preload) bytes, and still zeroes every
    /// other written extent. Layout randomized: two disjoint "weight
    /// images", one staged slot, one scratch write, all in distinct
    /// 256-byte lanes of a 64 KB device.
    #[test]
    fn scoped_reset_preserves_slot_and_images(
        lane_a in 0usize..4,
        lane_b in 4usize..8,
        lane_s in 8usize..12,
        lane_x in 12usize..16,
        img_a in proptest::collection::vec(1u8..255, 1..64),
        img_b in proptest::collection::vec(1u8..255, 1..64),
        staged in proptest::collection::vec(1u8..255, 1..64),
        scratch_len in 1usize..64,
    ) {
        let at = |lane: usize| lane * 256;
        let (la, lb, ls, lx) = (at(lane_a), at(lane_b), at(lane_s), at(lane_x));
        let mut d = Dram::new(64 << 10, DramTiming::mig_ddr4());
        let extent = |s: usize, e: usize| {
            let mut r = rvnv_bus::dram::RangeSet::new();
            r.insert(s, e);
            r
        };
        // Two resident images (weights), a staged slot (next frame's
        // preload, landed mid-run), and run scratch (activations).
        d.load(la, &img_a).unwrap();
        d.add_resident(1, extent(la, la + img_a.len())).unwrap();
        d.load(lb, &img_b).unwrap();
        d.add_resident(2, extent(lb, lb + img_b.len())).unwrap();
        d.write_block(ls as u32, &staged, 0).unwrap();
        d.write_block(lx as u32, &vec![0xEE; scratch_len], 10).unwrap();
        d.preserve_across_reset(extent(ls, ls + staged.len()));
        d.reset();
        prop_assert!(d.is_image_resident(1) && d.is_image_resident(2));
        prop_assert_eq!(d.peek(la, img_a.len()), &img_a[..], "image A intact");
        prop_assert_eq!(d.peek(lb, img_b.len()), &img_b[..], "image B intact");
        prop_assert_eq!(d.peek(ls, staged.len()), &staged[..], "staged preload intact");
        prop_assert!(d.peek(lx, scratch_len).iter().all(|&b| b == 0), "scratch zeroed");
        // The preserve is one-shot: a second (full) reset drops the slot
        // but still keeps the images.
        d.reset();
        prop_assert!(d.peek(ls, staged.len()).iter().all(|&b| b == 0));
        prop_assert_eq!(d.peek(la, img_a.len()), &img_a[..]);
    }
}

// ---------------------------------------------------------------------
// Serving-statistics properties (rvnv_soc::serve): percentile order,
// trace replayability, and conservation laws of the queueing
// simulation driven with synthetic service profiles.

use rvnv_soc::batch::Policy;
use rvnv_soc::serve::{
    simulate, ArrivalProcess, FaultSpec, LatencyStats, RequestTrace, ServeSpec, ServiceModel,
};

/// A synthetic two-model service profile from four small numbers.
fn synthetic_profile(c0: u64, c1: u64, pre: u64, stretch: u64) -> ServiceModel {
    let compute = vec![c0, c1];
    ServiceModel {
        preload: vec![pre, pre * 2],
        fill: vec![pre, pre * 2],
        compute: compute.clone(),
        compute_with: vec![
            vec![c0 + stretch, c0 + 2 * stretch],
            vec![c1 + stretch, c1 + 2 * stretch],
        ],
        preload_done: vec![vec![pre, pre * 4], vec![pre * 3, pre * 2]],
        rewarm: pre * 10,
    }
}

fn policy_from(i: u8) -> Policy {
    match i % 3 {
        0 => Policy::RoundRobin,
        1 => Policy::ShortestQueueFirst,
        _ => Policy::EarliestFinish,
    }
}

proptest! {
    /// Nearest-rank percentiles are monotone: p50 <= p95 <= p99 <= max,
    /// and the mean sits inside the sample range.
    #[test]
    fn percentiles_are_monotone(mut samples in proptest::collection::vec(any::<u32>(), 1..200)) {
        let mut cycles: Vec<u64> = samples.drain(..).map(u64::from).collect();
        let s = LatencyStats::from_samples(&mut cycles);
        prop_assert!(s.p50 <= s.p95, "p50 {} > p95 {}", s.p50, s.p95);
        prop_assert!(s.p95 <= s.p99, "p95 {} > p99 {}", s.p95, s.p99);
        prop_assert!(s.p99 <= s.max, "p99 {} > max {}", s.p99, s.max);
        prop_assert!(s.mean <= s.max && s.mean >= cycles[0]);
    }

    /// A seeded arrival trace replays bit-identically, stays sorted,
    /// and never generates outside its window or model set.
    #[test]
    fn seeded_traces_replay_bit_identically(
        poisson in any::<u32>(),
        rate in 1u64..2000,
        window_ms in 1u64..100,
        models in 1usize..5,
        seed in any::<u64>(),
    ) {
        let hz = 100_000_000u64;
        let process = if poisson.is_multiple_of(2) { ArrivalProcess::Poisson } else { ArrivalProcess::Fixed };
        let duration = window_ms * (hz / 1000);
        let a = RequestTrace::generate(process, rate, duration, models, seed, hz);
        let b = RequestTrace::generate(process, rate, duration, models, seed, hz);
        prop_assert_eq!(&a, &b, "same seed must replay the same trace");
        prop_assert!(a.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        prop_assert!(a.requests.iter().all(|r| r.arrival < duration && r.model < models));
    }

    /// Conservation laws of the queueing simulation, under arbitrary
    /// load, pool shape and policy: every request is served or dropped,
    /// achieved throughput never exceeds offered, waits are causal, and
    /// the report's percentiles are monotone.
    #[test]
    fn offered_always_bounds_achieved(
        c0 in 1_000u64..200_000,
        c1 in 1_000u64..200_000,
        pre in 1u64..2_000,
        stretch in 0u64..5_000,
        rate in 50u64..5_000,
        window_ms in 1u64..40,
        workers in 1usize..4,
        queue_depth in 1usize..10,
        pipelined in any::<u32>(),
        policy_pick in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let hz = 100_000_000u64;
        let service = synthetic_profile(c0, c1, pre, stretch);
        let spec = ServeSpec {
            process: ArrivalProcess::Poisson,
            rate_rps: rate,
            duration_ms: window_ms,
            seed,
            workers,
            policy: policy_from(policy_pick),
            pipelined: pipelined.is_multiple_of(2),
            queue_depth,
            slo_us: 5_000,
            timeout_us: 0,
            retries: 0,
            faults: None,
        };
        let trace = RequestTrace::generate(
            spec.process, rate, spec.duration_cycles(hz), 2, seed, hz,
        );
        let names = vec!["a".to_string(), "b".to_string()];
        let r = simulate(&trace, &service, &spec, &names, hz);
        prop_assert_eq!(r.served + r.dropped, r.offered, "every request accounted for");
        prop_assert!(
            r.achieved_rate() <= r.offered_rate() + 1e-9,
            "achieved {} must not exceed offered {}",
            r.achieved_rate(),
            r.offered_rate()
        );
        prop_assert!(r.slo_attained <= r.served);
        prop_assert!(r.total.p50 <= r.total.p95 && r.total.p95 <= r.total.p99);
        prop_assert!(r.queue_wait.p99 <= r.total.p99 && r.service.p99 <= r.total.p99);
        let per_model_served: u64 = r.per_model.iter().map(|m| m.served).sum();
        prop_assert_eq!(per_model_served, r.served);
        let per_worker_frames: u64 = r.per_worker.iter().map(|w| w.frames).sum();
        prop_assert_eq!(per_worker_frames, r.served);
        prop_assert!(r.makespan_cycles >= r.total.max, "completions inside the makespan");
    }

    /// Chaos bookkeeping under arbitrary fault rates, seeds, timeout
    /// and retry budgets: `offered == served + dropped` still holds,
    /// every failed frame attempt resolves exactly once (the
    /// [`rvnv_soc::serve::FaultReport`] reconciliation equation), hangs
    /// are a subset of timeouts, and the whole faulted report replays
    /// bit-identically from the same seeds.
    #[test]
    fn chaos_books_always_balance_and_replay_bit_identically(
        c0 in 1_000u64..200_000,
        c1 in 1_000u64..200_000,
        pre in 1u64..2_000,
        rate in 50u64..3_000,
        window_ms in 1u64..25,
        workers in 1usize..4,
        queue_depth in 1usize..10,
        policy_pick in any::<u8>(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        flips in 0u32..200_000,
        errors in 0u32..200_000,
        spikes in 0u32..200_000,
        spike_us in 0u64..20_000,
        hangs in 0u32..100_000,
        crashes in 0u32..100_000,
        timeout_us in 1u64..30_000,
        retries in 0u32..4,
    ) {
        let hz = 100_000_000u64;
        let service = synthetic_profile(c0, c1, pre, 0);
        let spec = ServeSpec {
            process: ArrivalProcess::Poisson,
            rate_rps: rate,
            duration_ms: window_ms,
            seed,
            workers,
            policy: policy_from(policy_pick),
            pipelined: false,
            queue_depth,
            slo_us: 5_000,
            timeout_us,
            retries,
            faults: Some(FaultSpec {
                seed: fault_seed,
                flip_per_million: flips,
                error_per_million: errors,
                spike_per_million: spikes,
                spike_us,
                hang_per_million: hangs,
                crash_per_million: crashes,
            }),
        };
        spec.validate().expect("generated chaos spec is consistent");
        let trace = RequestTrace::generate(
            spec.process, rate, spec.duration_cycles(hz), 2, seed, hz,
        );
        let names = vec!["a".to_string(), "b".to_string()];
        let r = simulate(&trace, &service, &spec, &names, hz);
        prop_assert_eq!(r.served + r.dropped, r.offered, "every request accounted for");
        let f = r.faults;
        prop_assert_eq!(
            f.timeouts + f.bus_errors + f.corruptions_detected + f.crashes,
            f.retries + f.failovers + f.sheds + f.exhausted,
            "every failed attempt must resolve exactly once"
        );
        prop_assert!(f.hangs <= f.timeouts, "a hang is detected as a timeout");
        prop_assert!(r.slo_attained <= r.served);
        let r2 = simulate(&trace, &service, &spec, &names, hz);
        prop_assert_eq!(r, r2, "a faulted plan must replay bit-identically");
    }

    /// An armed-but-all-zero fault spec (and no timeout) is invisible:
    /// the report is bit-identical to the same spec with `faults: None`
    /// — the chaos machinery costs nothing when it has nothing to do.
    #[test]
    fn quiet_chaos_spec_is_bit_invisible(
        c0 in 1_000u64..200_000,
        c1 in 1_000u64..200_000,
        pre in 1u64..2_000,
        rate in 50u64..3_000,
        window_ms in 1u64..25,
        workers in 1usize..4,
        queue_depth in 1usize..10,
        policy_pick in any::<u8>(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let hz = 100_000_000u64;
        let service = synthetic_profile(c0, c1, pre, 0);
        let quiet = ServeSpec {
            process: ArrivalProcess::Poisson,
            rate_rps: rate,
            duration_ms: window_ms,
            seed,
            workers,
            policy: policy_from(policy_pick),
            pipelined: false,
            queue_depth,
            slo_us: 5_000,
            timeout_us: 0,
            retries: 0,
            faults: Some(FaultSpec { seed: fault_seed, ..FaultSpec::default() }),
        };
        let none = ServeSpec { faults: None, ..quiet };
        let trace = RequestTrace::generate(
            quiet.process, rate, quiet.duration_cycles(hz), 2, seed, hz,
        );
        let names = vec!["a".to_string(), "b".to_string()];
        let a = simulate(&trace, &service, &quiet, &names, hz);
        let b = simulate(&trace, &service, &none, &names, hz);
        prop_assert_eq!(a, b, "a quiet fault plan must be invisible");
    }
}

// ---------------------------------------------------------------------
// Observability properties (rvnv_obs): arming a tracer is byte-invisible
// to the queueing simulation, every emitted span is structurally
// well-formed, and span accounting reconciles with the report —
// per-worker top-level span cycles sum to that worker's busy time, and
// queue-wait spans sum to the served requests' waits. Exercised across
// load, pool shape, policy, both worker modes and chaos.

use rvnv_obs::{SpanKind, Tracer};
use rvnv_soc::serve::{simulate_traced, RequestOutcome};

proptest! {
    /// The tracing honesty contract, as a property: `simulate_traced`
    /// with an armed tracer returns a report byte-identical to
    /// `simulate`'s, and the spans it emits are well-formed and account
    /// for exactly the cycles the report claims.
    #[test]
    fn traced_serve_sim_is_invisible_well_formed_and_reconciles(
        c0 in 1_000u64..200_000,
        c1 in 1_000u64..200_000,
        pre in 1u64..2_000,
        stretch in 0u64..5_000,
        rate in 50u64..3_000,
        window_ms in 1u64..25,
        workers in 1usize..4,
        queue_depth in 1usize..10,
        mode in 0u8..3, // serial / pipelined / serial under chaos
        policy_pick in any::<u8>(),
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let hz = 100_000_000u64;
        let service = synthetic_profile(c0, c1, pre, stretch);
        let spec = ServeSpec {
            process: ArrivalProcess::Poisson,
            rate_rps: rate,
            duration_ms: window_ms,
            seed,
            workers,
            policy: policy_from(policy_pick),
            pipelined: mode == 1,
            queue_depth,
            slo_us: 5_000,
            timeout_us: if mode == 2 { 3_000 } else { 0 },
            retries: if mode == 2 { 2 } else { 0 },
            faults: (mode == 2).then_some(FaultSpec {
                seed: fault_seed,
                flip_per_million: 50_000,
                error_per_million: 50_000,
                spike_per_million: 50_000,
                spike_us: 1_000,
                hang_per_million: 25_000,
                crash_per_million: 25_000,
            }),
        };
        spec.validate().expect("generated spec is consistent");
        let trace = RequestTrace::generate(
            spec.process, rate, spec.duration_cycles(hz), 2, seed, hz,
        );
        let names = vec!["a".to_string(), "b".to_string()];
        let tracer = Tracer::armed();
        let traced = simulate_traced(&trace, &service, &spec, &names, hz, &tracer);
        let quiet = simulate(&trace, &service, &spec, &names, hz);
        prop_assert_eq!(&traced, &quiet, "arming the tracer must be byte-invisible");
        let spans = tracer.snapshot();
        let well_formed = spans.validate();
        prop_assert!(well_formed.is_ok(), "malformed trace: {:?}", well_formed);
        for (w, stats) in traced.per_worker.iter().enumerate() {
            let track = spans
                .track_named(&format!("worker {w}"))
                .expect("one track per worker");
            prop_assert_eq!(
                spans.sum_cycles(track),
                stats.busy_cycles,
                "worker {} span cycles must sum to its busy time", w
            );
        }
        let waits: u64 = traced.records.iter().filter_map(|r| match r.outcome {
            RequestOutcome::Served { queue_wait, .. } => Some(queue_wait),
            RequestOutcome::Dropped => None,
        }).sum();
        prop_assert_eq!(
            spans.sum_kind(SpanKind::QueueWait),
            waits,
            "queue-wait spans must sum to the report's waits"
        );
    }
}

// ---------------------------------------------------------------------
// Differential properties of the fast simulator kernels. The decoded-
// block cache and the MMIO read lease are host-side shortcuts only;
// for random inputs and both firmware wait modes they must leave every
// architectural observable untouched, and the timing-only flow must
// agree with the functional flow cycle for cycle.

use std::sync::OnceLock;

use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::{compile, Artifacts, CompileOptions};
use rvnv_nn::zoo::Model;
use rvnv_soc::firmware::Firmware;
use rvnv_soc::soc::{Soc, SocConfig};

/// One shared LeNet-5 compilation (compiling per proptest case would
/// dominate the suite's runtime).
fn lenet_artifacts() -> &'static Artifacts {
    static ARTIFACTS: OnceLock<Artifacts> = OnceLock::new();
    ARTIFACTS.get_or_init(|| {
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        compile(&Model::LeNet5.build(1), &opt).expect("lenet5 compiles")
    })
}

fn wait_firmware(artifacts: &Artifacts, wfi: bool) -> Firmware {
    let codegen = CodegenOptions {
        wait_mode: if wfi { WaitMode::Wfi } else { WaitMode::Poll },
        ..CodegenOptions::default()
    };
    Firmware::build_with(artifacts, codegen).expect("fw")
}

/// Differential cases are full debug-mode inferences, so the sample
/// count must stay small regardless of `PROPTEST_CASES`; these tests
/// draw their own handful of random points from the deterministic
/// per-test rng instead of going through `proptest!`.
const DIFFERENTIAL_SAMPLES: usize = 3;

/// Cache ON == cache OFF: cycles, retired instructions, output bytes,
/// pipeline and NVDLA statistics, cold and warm, for random inputs and
/// both firmware wait modes.
#[test]
fn block_cache_is_architecturally_invisible() {
    let mut rng = proptest::TestRng::from_name(concat!(
        file!(),
        "::block_cache_is_architecturally_invisible"
    ));
    let artifacts = lenet_artifacts();
    for case in 0..DIFFERENTIAL_SAMPLES {
        let input_seed = rng.next_u64();
        let wfi = case % 2 == 0;
        let input = Tensor::random(Model::LeNet5.build(1).input_shape(), input_seed);
        let bytes = artifacts.quantize_input(&input);
        let fw = wait_firmware(artifacts, wfi);
        let mut soc_on = Soc::new(SocConfig::zcu102_nv_small());
        let mut soc_off = Soc::new(SocConfig {
            block_cache: false,
            ..SocConfig::zcu102_nv_small()
        });
        for run in 0..2 {
            let on = soc_on
                .run_firmware(artifacts, &bytes, &fw)
                .expect("cache on");
            let off = soc_off
                .run_firmware(artifacts, &bytes, &fw)
                .expect("cache off");
            let tag = format!("seed {input_seed:#x} wfi {wfi} run {run}");
            assert_eq!(on.cycles, off.cycles, "cycles, {tag}");
            assert_eq!(on.firmware_cycles, off.firmware_cycles, "mcycle, {tag}");
            assert_eq!(on.instructions, off.instructions, "retired, {tag}");
            assert_eq!(on.raw_output, off.raw_output, "output, {tag}");
            assert_eq!(on.pipeline, off.pipeline, "pipeline stats, {tag}");
            assert_eq!(on.nvdla, off.nvdla, "nvdla stats, {tag}");
            assert_eq!(
                off.block_cache.hits + off.block_cache.misses,
                0,
                "cache-off run must not touch the cache ({tag})"
            );
        }
    }
}

/// The timing-only flow (functional compute off) walks the exact same
/// instruction stream as the functional flow: identical cycles,
/// retired instructions and pipeline accounting — only the output
/// differs (never computed).
#[test]
fn timing_only_matches_functional_cycle_for_cycle() {
    let mut rng = proptest::TestRng::from_name(concat!(
        file!(),
        "::timing_only_matches_functional_cycle_for_cycle"
    ));
    let artifacts = lenet_artifacts();
    for case in 0..DIFFERENTIAL_SAMPLES {
        let input_seed = rng.next_u64();
        let wfi = case % 2 != 0;
        let input = Tensor::random(Model::LeNet5.build(1).input_shape(), input_seed);
        let bytes = artifacts.quantize_input(&input);
        let fw = wait_firmware(artifacts, wfi);
        let mut functional = Soc::new(SocConfig::zcu102_nv_small());
        let mut timing = Soc::new(SocConfig {
            capture_timeline: true,
            ..SocConfig::zcu102_timing_only()
        });
        let f = functional
            .run_firmware(artifacts, &bytes, &fw)
            .expect("functional");
        let t = timing
            .run_firmware(artifacts, &bytes, &fw)
            .expect("timing-only");
        let tag = format!("seed {input_seed:#x} wfi {wfi}");
        assert_eq!(f.cycles, t.cycles, "cycles, {tag}");
        assert_eq!(f.firmware_cycles, t.firmware_cycles, "mcycle, {tag}");
        assert_eq!(f.instructions, t.instructions, "retired, {tag}");
        assert_eq!(f.pipeline, t.pipeline, "pipeline stats, {tag}");
        assert_eq!(f.cpu_arbiter_wait, t.cpu_arbiter_wait, "arbiter, {tag}");
        assert_eq!(f.nvdla, t.nvdla, "engine op/cycle accounting, {tag}");
        assert_eq!(f.timeline.len(), t.timeline.len(), "op schedule, {tag}");
    }
}

/// Recovery is lossless for random inputs and random fault streams: a
/// SoC that took a storm of injected bus errors and bit flips, then was
/// re-warmed ([`Soc::rewarm`] — reset plus re-pinning every resident
/// weight image), runs the next frame bit- and cycle-identical to a SoC
/// that never saw a fault.
#[test]
fn rewarmed_soc_is_bit_identical_to_never_faulted() {
    use rvnv_bus::fault::FaultPlan;

    let mut rng = proptest::TestRng::from_name(concat!(
        file!(),
        "::rewarmed_soc_is_bit_identical_to_never_faulted"
    ));
    let artifacts = lenet_artifacts();
    for case in 0..DIFFERENTIAL_SAMPLES {
        let input_seed = rng.next_u64();
        let fault_seed = rng.next_u64();
        let wfi = case % 2 == 0;
        let input = Tensor::random(Model::LeNet5.build(1).input_shape(), input_seed);
        let bytes = artifacts.quantize_input(&input);
        let fw = wait_firmware(artifacts, wfi);
        let tag = format!("input {input_seed:#x} faults {fault_seed:#x} wfi {wfi}");

        let mut clean = Soc::new(SocConfig::zcu102_nv_small());
        let truth = clean.run_firmware(artifacts, &bytes, &fw).expect("clean");

        let mut victim = Soc::new(SocConfig::zcu102_nv_small());
        victim
            .run_firmware(artifacts, &bytes, &fw)
            .expect("warm-up");
        victim.arm_faults(FaultPlan {
            seed: fault_seed,
            flip_per_million: 200_000,
            error_per_million: 200_000,
            ..FaultPlan::default()
        });
        // The faulted frame may abort (injected error) or "succeed"
        // with silently corrupted bytes (flips) — either way the worker
        // is now suspect and gets the full recovery treatment.
        let _ = victim.run_firmware(artifacts, &bytes, &fw);
        victim.disarm_faults();
        victim.rewarm([artifacts]).expect("re-warm");
        let recovered = victim
            .run_firmware(artifacts, &bytes, &fw)
            .expect("recovered");

        assert_eq!(recovered.cycles, truth.cycles, "cycles, {tag}");
        assert_eq!(recovered.raw_output, truth.raw_output, "output, {tag}");
        assert_eq!(recovered.instructions, truth.instructions, "retired, {tag}");
        assert_eq!(recovered.nvdla, truth.nvdla, "nvdla stats, {tag}");
    }
}
