//! Multi-model residency oracles: N models resident on one SoC, driven
//! by the batch scheduler, must be **bit-identical** — cycle counts,
//! output bytes, statistics — to the same models run cold on freshly
//! built SoCs, in both functional and timing-only modes. Plus the
//! residency edge cases: overlapping layouts are rejected, clobbering
//! one image leaves the others warm, and `Soc::reset()` drops all.

use std::sync::Arc;

use rv_nvdla::prelude::*;
use rvnv_soc::batch;

fn quick_int8() -> CompileOptions {
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    opt
}

/// Two distinct LeNet-5 compilations (different seeds → different
/// weights) laid out at disjoint DRAM bases.
fn two_models(opt: &CompileOptions) -> Vec<Arc<Artifacts>> {
    let cache = ArtifactCache::new();
    let nets = [Model::LeNet5.build(1), Model::LeNet5.build(2)];
    let artifacts = batch::layout_models(&cache, &nets, opt).expect("layout");
    assert!(
        artifacts[0].dram_used <= artifacts[1].dram_base,
        "layout_models must separate the footprints"
    );
    artifacts
}

/// Drain an interleaved frame queue through the scheduler and check
/// every frame against a cold run of the same bytes on a fresh SoC.
fn assert_batch_matches_cold(config: &SocConfig, codegen: CodegenOptions, policy: Policy) {
    let artifacts = two_models(&quick_int8());
    let shape = Model::LeNet5.build(1).input_shape();

    let mut sched = BatchScheduler::new(config.clone(), policy);
    for a in &artifacts {
        sched.add_model(a.clone(), codegen).expect("pin model");
    }
    assert_eq!(sched.soc().resident_count(), 2);
    // 3 frames per model, interleaved enqueue order.
    let frames: Vec<(usize, Vec<u8>)> = (0..6)
        .map(|i| {
            let m = i % 2;
            let input = Tensor::random(shape, 500 + i as u64);
            (m, artifacts[m].quantize_input(&input))
        })
        .collect();
    for (m, bytes) in &frames {
        sched.enqueue_bytes(*m, bytes.clone()).expect("enqueue");
    }
    assert_eq!(sched.pending(), 6);

    // Collect per-frame warm results in service order.
    let mut served: Vec<(usize, u64, Vec<u8>, u64)> = Vec::new();
    let report = sched
        .run_with(|m, r| served.push((m, r.cycles, r.raw_output.clone(), r.cpu_arbiter_wait)))
        .expect("drain");
    assert_eq!(served.len(), 6);
    assert_eq!(report.total_frames(), 6);
    assert_eq!(sched.pending(), 0);

    // Cold oracle: same frame bytes on a fresh single-model SoC.
    let mut next_per_model = [0usize; 2];
    let fws: Vec<Firmware> = artifacts
        .iter()
        .map(|a| Firmware::build_with(a, codegen).expect("fw"))
        .collect();
    for (m, cycles, raw, wait) in &served {
        // The scheduler serves each model's frames in FIFO order; find
        // this served frame's bytes from the enqueue stream.
        let idx = frames
            .iter()
            .enumerate()
            .filter(|(_, (fm, _))| fm == m)
            .map(|(i, _)| i)
            .nth(next_per_model[*m])
            .expect("frame exists");
        next_per_model[*m] += 1;
        let mut cold = Soc::new(config.clone());
        let c = cold
            .run_firmware(&artifacts[*m], &frames[idx].1, &fws[*m])
            .expect("cold run");
        assert_eq!(*cycles, c.cycles, "warm batch cycles == cold cycles");
        assert_eq!(*raw, c.raw_output, "warm batch output == cold output");
        assert_eq!(*wait, c.cpu_arbiter_wait, "arbiter stats identical");
    }
    // Per-model totals line up with the per-frame sums.
    for m in 0..2 {
        let total: u64 = served
            .iter()
            .filter(|(fm, ..)| *fm == m)
            .map(|(_, c, ..)| c)
            .sum();
        assert_eq!(report.per_model[m].1.cycles, total);
        assert_eq!(report.per_model[m].1.frames, 3);
    }
}

#[test]
fn batch_matches_cold_functional() {
    assert_batch_matches_cold(
        &SocConfig::zcu102_nv_small(),
        CodegenOptions::default(),
        Policy::RoundRobin,
    );
}

#[test]
fn batch_matches_cold_timing_only() {
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };
    assert_batch_matches_cold(
        &SocConfig::zcu102_timing_only(),
        codegen,
        Policy::RoundRobin,
    );
}

#[test]
fn policies_agree_on_totals_but_order_differently() {
    let artifacts = two_models(&quick_int8());
    let shape = Model::LeNet5.build(1).input_shape();
    let config = SocConfig::zcu102_timing_only();
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };

    let drain = |policy: Policy, frames_a: usize, frames_b: usize| {
        let mut sched = BatchScheduler::new(config.clone(), policy);
        for a in &artifacts {
            sched.add_model(a.clone(), codegen).expect("pin");
        }
        for i in 0..frames_a {
            let input = Tensor::random(shape, 10 + i as u64);
            sched.enqueue(0, &input).expect("enqueue a");
        }
        for i in 0..frames_b {
            let input = Tensor::random(shape, 20 + i as u64);
            sched.enqueue(1, &input).expect("enqueue b");
        }
        let mut order = Vec::new();
        let report = sched.run_with(|m, _| order.push(m)).expect("drain");
        (order, report)
    };

    // Uneven queues: model 0 has 4 frames, model 1 has 1.
    let (rr_order, rr) = drain(Policy::RoundRobin, 4, 1);
    let (sqf_order, sqf) = drain(Policy::ShortestQueueFirst, 4, 1);
    assert_eq!(rr_order, vec![0, 1, 0, 0, 0], "rr rotates while both pend");
    assert_eq!(sqf_order, vec![1, 0, 0, 0, 0], "sqf drains the straggler");
    // Modeled cycles are policy-independent: every frame is a full
    // in-place reset, so only the service order may differ.
    assert_eq!(rr.total_cycles(), sqf.total_cycles());
    assert_eq!(rr.per_model[0].1.cycles, sqf.per_model[0].1.cycles);
}

#[test]
fn parallel_fan_out_matches_single_worker() {
    let artifacts = two_models(&quick_int8());
    let shape = Model::LeNet5.build(1).input_shape();
    let config = SocConfig::zcu102_timing_only();
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };
    let frames: Vec<Frame> = (0..8)
        .map(|i| {
            let m = i % 2;
            let input = Tensor::random(shape, 700 + i as u64);
            Frame {
                model: m,
                bytes: artifacts[m].quantize_input(&input),
            }
        })
        .collect();
    let one = run_parallel(&config, Policy::RoundRobin, &artifacts, codegen, &frames, 1)
        .expect("1 worker");
    let four = run_parallel(&config, Policy::RoundRobin, &artifacts, codegen, &frames, 4)
        .expect("4 workers");
    assert_eq!(one.total_frames(), four.total_frames());
    assert_eq!(one.total_cycles(), four.total_cycles());
    for m in 0..2 {
        assert_eq!(one.per_model[m].1, four.per_model[m].1);
    }
}

#[test]
fn overlapping_layouts_are_rejected() {
    // Compiled at the same base, the two footprints overlap; a strict
    // pin must refuse (and leave the resident image untouched).
    let opt = quick_int8();
    let a = compile(&Model::LeNet5.build(1), &opt).expect("a");
    let b = compile(&Model::LeNet5.build(2), &opt).expect("b");
    let mut sched = BatchScheduler::new(SocConfig::zcu102_timing_only(), Policy::RoundRobin);
    sched
        .add_model(Arc::new(a.clone()), CodegenOptions::default())
        .expect("first pin");
    let err = sched
        .add_model(Arc::new(b), CodegenOptions::default())
        .expect_err("overlap must be rejected");
    assert!(
        err.to_string().contains("overlap"),
        "helpful error, got: {err}"
    );
    assert!(sched.soc().is_resident(&a), "first image survives");
}

#[test]
fn clobbering_one_image_leaves_the_others_warm() {
    let artifacts = two_models(&quick_int8());
    let shape = Model::LeNet5.build(1).input_shape();
    let input = Tensor::random(shape, 77);
    let mut soc = Soc::new(SocConfig::zcu102_timing_only());
    soc.load_artifacts(&artifacts[0]).expect("pin 0");
    soc.load_artifacts(&artifacts[1]).expect("pin 1");
    let r1 = soc.run_inference(&artifacts[1], &input).expect("warm 1");

    // Trample model 0's first weight segment through the backdoor — as
    // a buggy run would — and reset via the next run's prepare.
    let seg = &artifacts[0].weights.segments()[0];
    let garbage = vec![0xAB; seg.bytes.len()];
    soc.dram_load(seg.addr, &garbage).expect("clobber");
    let r1b = soc
        .run_inference(&artifacts[1], &input)
        .expect("still warm");
    assert!(
        !soc.is_resident(&artifacts[0]),
        "clobbered image must be dropped"
    );
    assert!(soc.is_resident(&artifacts[1]), "other image stays warm");
    assert_eq!(r1b.cycles, r1.cycles);
    assert_eq!(r1b.raw_output, r1.raw_output);

    // Model 0 reloads cold and is correct again.
    let mut fresh = Soc::new(SocConfig::zcu102_timing_only());
    let truth = fresh.run_inference(&artifacts[0], &input).expect("truth");
    let again = soc.run_inference(&artifacts[0], &input).expect("reload");
    assert_eq!(again.cycles, truth.cycles);
    assert_eq!(again.raw_output, truth.raw_output);
}

#[test]
fn soc_reset_drops_all_images() {
    let artifacts = two_models(&quick_int8());
    let mut soc = Soc::new(SocConfig::zcu102_timing_only());
    soc.load_artifacts(&artifacts[0]).expect("pin 0");
    soc.load_artifacts(&artifacts[1]).expect("pin 1");
    assert_eq!(soc.resident_count(), 2);
    soc.reset();
    assert_eq!(soc.resident_count(), 0);
    for a in &artifacts {
        assert!(!soc.is_resident(a));
    }
}

#[test]
fn scheduler_rejects_unknown_model_indices() {
    let artifacts = two_models(&quick_int8());
    let mut sched = BatchScheduler::new(SocConfig::zcu102_timing_only(), Policy::RoundRobin);
    sched
        .add_model(artifacts[0].clone(), CodegenOptions::default())
        .expect("pin");
    let shape = Model::LeNet5.build(1).input_shape();
    let err = sched
        .enqueue(5, &Tensor::random(shape, 1))
        .expect_err("index out of range");
    assert!(err.to_string().contains("out of range"), "got: {err}");
}
