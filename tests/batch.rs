//! Multi-model residency oracles: N models resident on one SoC, driven
//! by the batch scheduler, must be **bit-identical** — cycle counts,
//! output bytes, statistics — to the same models run cold on freshly
//! built SoCs, in both functional and timing-only modes. Plus the
//! residency edge cases: overlapping layouts are rejected, clobbering
//! one image leaves the others warm, and `Soc::reset()` drops all.
//!
//! The pipelined drain adds its own oracles: output bytes stay
//! bit-identical to the serial drain (the overlapped preload moves
//! cycles, never data), the scoped inter-frame reset never unseats a
//! resident weight image, and — unlike the serial drain, whose modeled
//! cycles are policy-independent — rr/sqf/eff produce **different**
//! modeled makespans on an interleaved two-model stream, at lower
//! warm-frame latency than serial.

use std::sync::Arc;

use rv_nvdla::prelude::*;
use rvnv_soc::batch;
use rvnv_soc::batch::input_slots;

fn quick_int8() -> CompileOptions {
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    opt
}

/// Two distinct LeNet-5 compilations (different seeds → different
/// weights) laid out at disjoint DRAM bases.
fn two_models(opt: &CompileOptions) -> Vec<Arc<Artifacts>> {
    let cache = ArtifactCache::new();
    let nets = [Model::LeNet5.build(1), Model::LeNet5.build(2)];
    let artifacts = batch::layout_models(&cache, &nets, opt).expect("layout");
    assert!(
        artifacts[0].dram_used <= artifacts[1].dram_base,
        "layout_models must separate the footprints"
    );
    artifacts
}

/// Drain an interleaved frame queue through the scheduler and check
/// every frame against a cold run of the same bytes on a fresh SoC.
fn assert_batch_matches_cold(config: &SocConfig, codegen: CodegenOptions, policy: Policy) {
    let artifacts = two_models(&quick_int8());
    let shape = Model::LeNet5.build(1).input_shape();

    let mut sched = BatchScheduler::new(config.clone(), policy);
    for a in &artifacts {
        sched.add_model(a.clone(), codegen).expect("pin model");
    }
    assert_eq!(sched.soc().resident_count(), 2);
    // 3 frames per model, interleaved enqueue order.
    let frames: Vec<(usize, Vec<u8>)> = (0..6)
        .map(|i| {
            let m = i % 2;
            let input = Tensor::random(shape, 500 + i as u64);
            (m, artifacts[m].quantize_input(&input))
        })
        .collect();
    for (m, bytes) in &frames {
        sched.enqueue_bytes(*m, bytes.clone()).expect("enqueue");
    }
    assert_eq!(sched.pending(), 6);

    // Collect per-frame warm results in service order.
    let mut served: Vec<(usize, u64, Vec<u8>, u64)> = Vec::new();
    let report = sched
        .run_with(|m, r| served.push((m, r.cycles, r.raw_output.clone(), r.cpu_arbiter_wait)))
        .expect("drain");
    assert_eq!(served.len(), 6);
    assert_eq!(report.total_frames(), 6);
    assert_eq!(sched.pending(), 0);

    // Cold oracle: same frame bytes on a fresh single-model SoC.
    let mut next_per_model = [0usize; 2];
    let fws: Vec<Firmware> = artifacts
        .iter()
        .map(|a| Firmware::build_with(a, codegen).expect("fw"))
        .collect();
    for (m, cycles, raw, wait) in &served {
        // The scheduler serves each model's frames in FIFO order; find
        // this served frame's bytes from the enqueue stream.
        let idx = frames
            .iter()
            .enumerate()
            .filter(|(_, (fm, _))| fm == m)
            .map(|(i, _)| i)
            .nth(next_per_model[*m])
            .expect("frame exists");
        next_per_model[*m] += 1;
        let mut cold = Soc::new(config.clone());
        let c = cold
            .run_firmware(&artifacts[*m], &frames[idx].1, &fws[*m])
            .expect("cold run");
        assert_eq!(*cycles, c.cycles, "warm batch cycles == cold cycles");
        assert_eq!(*raw, c.raw_output, "warm batch output == cold output");
        assert_eq!(*wait, c.cpu_arbiter_wait, "arbiter stats identical");
    }
    // Per-model totals line up with the per-frame sums.
    for m in 0..2 {
        let total: u64 = served
            .iter()
            .filter(|(fm, ..)| *fm == m)
            .map(|(_, c, ..)| c)
            .sum();
        assert_eq!(report.per_model[m].1.cycles, total);
        assert_eq!(report.per_model[m].1.frames, 3);
    }
}

#[test]
fn batch_matches_cold_functional() {
    assert_batch_matches_cold(
        &SocConfig::zcu102_nv_small(),
        CodegenOptions::default(),
        Policy::RoundRobin,
    );
}

#[test]
fn batch_matches_cold_timing_only() {
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };
    assert_batch_matches_cold(
        &SocConfig::zcu102_timing_only(),
        codegen,
        Policy::RoundRobin,
    );
}

#[test]
fn policies_agree_on_totals_but_order_differently() {
    let artifacts = two_models(&quick_int8());
    let shape = Model::LeNet5.build(1).input_shape();
    let config = SocConfig::zcu102_timing_only();
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };

    let drain = |policy: Policy, frames_a: usize, frames_b: usize| {
        let mut sched = BatchScheduler::new(config.clone(), policy);
        for a in &artifacts {
            sched.add_model(a.clone(), codegen).expect("pin");
        }
        for i in 0..frames_a {
            let input = Tensor::random(shape, 10 + i as u64);
            sched.enqueue(0, &input).expect("enqueue a");
        }
        for i in 0..frames_b {
            let input = Tensor::random(shape, 20 + i as u64);
            sched.enqueue(1, &input).expect("enqueue b");
        }
        let mut order = Vec::new();
        let report = sched.run_with(|m, _| order.push(m)).expect("drain");
        (order, report)
    };

    // Uneven queues: model 0 has 4 frames, model 1 has 1.
    let (rr_order, rr) = drain(Policy::RoundRobin, 4, 1);
    let (sqf_order, sqf) = drain(Policy::ShortestQueueFirst, 4, 1);
    assert_eq!(rr_order, vec![0, 1, 0, 0, 0], "rr rotates while both pend");
    assert_eq!(sqf_order, vec![1, 0, 0, 0, 0], "sqf drains the straggler");
    // Modeled cycles are policy-independent: every frame is a full
    // in-place reset, so only the service order may differ.
    assert_eq!(rr.total_cycles(), sqf.total_cycles());
    assert_eq!(rr.per_model[0].1.cycles, sqf.per_model[0].1.cycles);
}

#[test]
fn parallel_fan_out_matches_single_worker() {
    let artifacts = two_models(&quick_int8());
    let shape = Model::LeNet5.build(1).input_shape();
    let config = SocConfig::zcu102_timing_only();
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };
    let frames: Vec<Frame> = (0..8)
        .map(|i| {
            let m = i % 2;
            let input = Tensor::random(shape, 700 + i as u64);
            Frame {
                model: m,
                bytes: artifacts[m].quantize_input(&input),
            }
        })
        .collect();
    let one = run_parallel(&config, Policy::RoundRobin, &artifacts, codegen, &frames, 1)
        .expect("1 worker");
    let four = run_parallel(&config, Policy::RoundRobin, &artifacts, codegen, &frames, 4)
        .expect("4 workers");
    assert_eq!(one.total_frames(), four.total_frames());
    assert_eq!(one.total_cycles(), four.total_cycles());
    for m in 0..2 {
        assert_eq!(one.per_model[m].1, four.per_model[m].1);
    }
}

#[test]
fn overlapping_layouts_are_rejected() {
    // Compiled at the same base, the two footprints overlap; a strict
    // pin must refuse (and leave the resident image untouched).
    let opt = quick_int8();
    let a = compile(&Model::LeNet5.build(1), &opt).expect("a");
    let b = compile(&Model::LeNet5.build(2), &opt).expect("b");
    let mut sched = BatchScheduler::new(SocConfig::zcu102_timing_only(), Policy::RoundRobin);
    sched
        .add_model(Arc::new(a.clone()), CodegenOptions::default())
        .expect("first pin");
    let err = sched
        .add_model(Arc::new(b), CodegenOptions::default())
        .expect_err("overlap must be rejected");
    assert!(
        err.to_string().contains("overlap"),
        "helpful error, got: {err}"
    );
    assert!(sched.soc().is_resident(&a), "first image survives");
}

#[test]
fn clobbering_one_image_leaves_the_others_warm() {
    let artifacts = two_models(&quick_int8());
    let shape = Model::LeNet5.build(1).input_shape();
    let input = Tensor::random(shape, 77);
    let mut soc = Soc::new(SocConfig::zcu102_timing_only());
    soc.load_artifacts(&artifacts[0]).expect("pin 0");
    soc.load_artifacts(&artifacts[1]).expect("pin 1");
    let r1 = soc.run_inference(&artifacts[1], &input).expect("warm 1");

    // Trample model 0's first weight segment through the backdoor — as
    // a buggy run would — and reset via the next run's prepare.
    let seg = &artifacts[0].weights.segments()[0];
    let garbage = vec![0xAB; seg.bytes.len()];
    soc.dram_load(seg.addr, &garbage).expect("clobber");
    let r1b = soc
        .run_inference(&artifacts[1], &input)
        .expect("still warm");
    assert!(
        !soc.is_resident(&artifacts[0]),
        "clobbered image must be dropped"
    );
    assert!(soc.is_resident(&artifacts[1]), "other image stays warm");
    assert_eq!(r1b.cycles, r1.cycles);
    assert_eq!(r1b.raw_output, r1.raw_output);

    // Model 0 reloads cold and is correct again.
    let mut fresh = Soc::new(SocConfig::zcu102_timing_only());
    let truth = fresh.run_inference(&artifacts[0], &input).expect("truth");
    let again = soc.run_inference(&artifacts[0], &input).expect("reload");
    assert_eq!(again.cycles, truth.cycles);
    assert_eq!(again.raw_output, truth.raw_output);
}

#[test]
fn soc_reset_drops_all_images() {
    let artifacts = two_models(&quick_int8());
    let mut soc = Soc::new(SocConfig::zcu102_timing_only());
    soc.load_artifacts(&artifacts[0]).expect("pin 0");
    soc.load_artifacts(&artifacts[1]).expect("pin 1");
    assert_eq!(soc.resident_count(), 2);
    soc.reset();
    assert_eq!(soc.resident_count(), 0);
    for a in &artifacts {
        assert!(!soc.is_resident(a));
    }
}

/// Drain the same frames serially and pipelined under `policy`; the
/// pipelined drain must serve bit-identical output bytes (and, as a
/// scoped-reset safety check, leave every weight image resident).
fn assert_pipelined_matches_serial(config: &SocConfig, codegen: CodegenOptions, policy: Policy) {
    let artifacts = two_models(&quick_int8());
    let shape = Model::LeNet5.build(1).input_shape();
    let frames: Vec<(usize, Vec<u8>)> = (0..6)
        .map(|i| {
            let m = i % 2;
            let input = Tensor::random(shape, 8800 + i as u64);
            (m, artifacts[m].quantize_input(&input))
        })
        .collect();

    let drain = |pipelined: bool| -> (Vec<(usize, Vec<u8>, u64)>, BatchReport) {
        let mut served = Vec::new();
        let report = if pipelined {
            let mut sched = PipelinedScheduler::new(config.clone(), policy);
            for a in &artifacts {
                sched.add_model(a.clone(), codegen).expect("pin");
            }
            for (m, b) in &frames {
                sched.enqueue_bytes(*m, b.clone()).expect("enqueue");
            }
            let report = sched
                .run_with(|m, r| served.push((m, r.raw_output.clone(), r.cycles)))
                .expect("pipelined drain");
            assert_eq!(sched.soc().resident_count(), 2, "weights stay pinned");
            report
        } else {
            let mut sched = BatchScheduler::new(config.clone(), policy);
            for a in &artifacts {
                sched.add_model(a.clone(), codegen).expect("pin");
            }
            for (m, b) in &frames {
                sched.enqueue_bytes(*m, b.clone()).expect("enqueue");
            }
            sched
                .run_with(|m, r| served.push((m, r.raw_output.clone(), r.cycles)))
                .expect("serial drain")
        };
        (served, report)
    };

    let (serial, rs) = drain(false);
    let (piped, rp) = drain(true);
    assert_eq!(serial.len(), piped.len());
    // rr and sqf pick by queue state only, so both drains serve the
    // same order; every served frame's bytes must match exactly.
    for ((ms, raw_s, cyc_s), (mp, raw_p, cyc_p)) in serial.iter().zip(&piped) {
        assert_eq!(ms, mp, "same service order");
        assert_eq!(raw_s, raw_p, "pipelined output bytes == serial");
        assert!(cyc_p >= cyc_s, "contention can only add compute cycles");
    }
    assert!(rp.pipelined && !rs.pipelined);
    assert_eq!(rp.total_frames(), rs.total_frames());
    // The pipeline hides preload behind compute: the stream finishes
    // sooner than the serial preload+compute chain.
    assert!(
        rp.makespan_cycles < rs.makespan_cycles,
        "pipelined {} vs serial {}",
        rp.makespan_cycles,
        rs.makespan_cycles
    );
}

#[test]
fn pipelined_matches_serial_functional() {
    assert_pipelined_matches_serial(
        &SocConfig::zcu102_nv_small(),
        CodegenOptions::default(),
        Policy::RoundRobin,
    );
}

#[test]
fn pipelined_matches_serial_timing_only() {
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };
    assert_pipelined_matches_serial(
        &SocConfig::zcu102_timing_only(),
        codegen,
        Policy::ShortestQueueFirst,
    );
}

#[test]
fn pipelined_policies_diverge_where_serial_policies_cannot() {
    // Two timing-distinct models, uneven interleaved queues: serially,
    // every policy must report the same makespan (full-reset frames are
    // order-independent); pipelined, each policy pairs different frames
    // with different overlapped preloads, so all three makespans differ
    // — the rr/sqf knob stops being decorative.
    let mut opt = quick_int8();
    opt.calib_inputs = 1;
    let nets = [Model::ResNet18.build(1), Model::LeNet5.build(1)];
    let cache = ArtifactCache::new();
    let artifacts = batch::layout_models(&cache, &nets, &opt).expect("layout");
    let frames: Vec<(usize, Vec<u8>)> = [0usize, 1, 0, 1, 1]
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            let input = Tensor::random(nets[m].input_shape(), 300 + i as u64);
            (m, artifacts[m].quantize_input(&input))
        })
        .collect();
    let config = SocConfig::zcu102_timing_only();
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };

    let policies = [
        Policy::RoundRobin,
        Policy::ShortestQueueFirst,
        Policy::EarliestFinish,
    ];
    let mut serial_spans = Vec::new();
    let mut piped_spans = Vec::new();
    for policy in policies {
        let mut serial = BatchScheduler::new(config.clone(), policy);
        let mut piped = PipelinedScheduler::new(config.clone(), policy);
        for a in &artifacts {
            serial.add_model(a.clone(), codegen).expect("pin");
            piped.add_model(a.clone(), codegen).expect("pin");
        }
        for (m, b) in &frames {
            serial.enqueue_bytes(*m, b.clone()).expect("enqueue");
            piped.enqueue_bytes(*m, b.clone()).expect("enqueue");
        }
        let rs = serial.run().expect("serial drain");
        let rp = piped.run().expect("pipelined drain");
        assert_eq!(rs.total_frames(), 5);
        assert_eq!(rp.total_frames(), 5);
        // The stream-wide mean latency compares the same 5 frames on
        // both sides regardless of service order, so it must drop for
        // every policy (the preload leaves the critical path).
        assert!(
            rp.mean_frame_latency() < rs.mean_frame_latency(),
            "{}: pipelined mean {} vs serial mean {}",
            policy.name(),
            rp.mean_frame_latency(),
            rs.mean_frame_latency()
        );
        assert!(rp.makespan_cycles < rs.makespan_cycles, "{}", policy.name());
        // rr and sqf pick by queue state alone, so serial and pipelined
        // serve identical orders — there the *warm* (non-fill) frames
        // can be compared one-to-one against the same serial tail.
        if policy != Policy::EarliestFinish {
            let tail = &rs.frame_latencies[1..];
            let serial_tail = tail.iter().map(|f| f.cycles).sum::<u64>() / tail.len() as u64;
            assert!(
                rp.warm_frame_latency() < serial_tail,
                "{}: pipelined warm {} vs matched serial tail {}",
                policy.name(),
                rp.warm_frame_latency(),
                serial_tail
            );
        }
        serial_spans.push(rs.makespan_cycles);
        piped_spans.push(rp.makespan_cycles);
    }
    assert!(
        serial_spans.iter().all(|&s| s == serial_spans[0]),
        "serial makespan is policy-independent: {serial_spans:?}"
    );
    assert!(
        piped_spans[0] != piped_spans[1]
            && piped_spans[0] != piped_spans[2]
            && piped_spans[1] != piped_spans[2],
        "pipelined makespans must differ per policy: {piped_spans:?}"
    );
}

#[test]
fn pipelined_parallel_single_worker_matches_direct_drain() {
    let artifacts = two_models(&quick_int8());
    let shape = Model::LeNet5.build(1).input_shape();
    let config = SocConfig::zcu102_timing_only();
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };
    let frames: Vec<Frame> = (0..6)
        .map(|i| {
            let m = i % 2;
            let input = Tensor::random(shape, 4400 + i as u64);
            Frame {
                model: m,
                bytes: artifacts[m].quantize_input(&input),
            }
        })
        .collect();
    let one = run_parallel_pipelined(&config, Policy::RoundRobin, &artifacts, codegen, &frames, 1)
        .expect("1 worker");
    let mut direct = PipelinedScheduler::new(config.clone(), Policy::RoundRobin);
    for a in &artifacts {
        direct.add_model(a.clone(), codegen).expect("pin");
    }
    for f in &frames {
        direct.enqueue_bytes(f.model, f.bytes.clone()).expect("enq");
    }
    let d = direct.run().expect("direct drain");
    assert_eq!(one.total_frames(), d.total_frames());
    assert_eq!(one.total_cycles(), d.total_cycles());
    assert_eq!(one.makespan_cycles, d.makespan_cycles);
    for m in 0..2 {
        assert_eq!(one.per_model[m].1, d.per_model[m].1);
    }
    // Sharding across workers conserves frames and keeps every shard
    // pipelined; totals legitimately differ (each shard has its own
    // fill and pairings), so only conservation is asserted.
    let two = run_parallel_pipelined(&config, Policy::RoundRobin, &artifacts, codegen, &frames, 2)
        .expect("2 workers");
    assert_eq!(two.total_frames(), 6);
    assert!(two.pipelined);
    assert_eq!(two.frame_latencies.len(), 6);
}

#[test]
fn input_slots_sit_past_every_model_footprint() {
    let artifacts = two_models(&quick_int8());
    let (slots, len) = input_slots(&artifacts);
    let high = artifacts.iter().map(|a| a.dram_used).max().unwrap();
    assert!(slots[0] >= high, "slot 0 past the model high-water mark");
    assert!(
        u64::from(slots[1]) >= u64::from(slots[0]) + len as u64,
        "slots disjoint"
    );
    assert_eq!(
        len,
        artifacts.iter().map(|a| a.input_len).max().unwrap(),
        "slot fits the largest input"
    );
}

#[test]
fn scheduler_rejects_unknown_model_indices() {
    let artifacts = two_models(&quick_int8());
    let mut sched = BatchScheduler::new(SocConfig::zcu102_timing_only(), Policy::RoundRobin);
    sched
        .add_model(artifacts[0].clone(), CodegenOptions::default())
        .expect("pin");
    let shape = Model::LeNet5.build(1).input_shape();
    let err = sched
        .enqueue(5, &Tensor::random(shape, 1))
        .expect_err("index out of range");
    assert!(err.to_string().contains("out of range"), "got: {err}");
}
