//! Fleet-subsystem oracles: the balancer/autoscaler simulation obeys
//! its invariants on arbitrary synthetic fleets, and a real 2-pool
//! heterogeneous fleet (nv_small + nv_full) replays its plan on real
//! SoCs with divergence 0 under every routing policy.
//!
//! * **Conservation** — every offered request resolves exactly once:
//!   `offered == shed + Σ_pool (served + dropped)`, and per pool
//!   `routed == served + dropped`.
//! * **Residency** — `model-affinity` (and every other policy) only
//!   ever routes a request to a pool where its model is resident.
//! * **Autoscaler bounds** — observed worker counts stay within
//!   `[min_workers, max_workers]` and seeded reruns are bit-identical.
//! * **Replay exactness** — `Fleet::run` spot-replays sampled windows
//!   of the dispatch plan on real per-pool SoCs; divergence must be 0
//!   across policies × heterogeneous pools.

use std::sync::OnceLock;

use proptest::prelude::*;

use rv_nvdla::prelude::*;
use rvnv_soc::fleet::{self, FleetOutcome, PoolProfile, SocClass};
use rvnv_soc::serve::ServiceModel;

const HZ: u64 = 100_000_000;

/// A synthetic pool profile with uniform service cost (zero preload,
/// `svc` compute) over the given global model residency.
fn flat_profile(svc: u64, models: Vec<usize>) -> PoolProfile {
    let n = models.len();
    PoolProfile {
        service: ServiceModel {
            preload: vec![0; n],
            fill: vec![0; n],
            compute: vec![svc; n],
            compute_with: vec![vec![svc; n]; n],
            preload_done: vec![vec![0; n]; n],
            rewarm: 10 * svc,
        },
        models,
    }
}

fn model_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("m{i}")).collect()
}

fn shape_of(ix: usize) -> TrafficShape {
    [
        TrafficShape::Steady,
        TrafficShape::Diurnal,
        TrafficShape::Bursty,
        TrafficShape::FlashCrowd,
    ][ix % 4]
}

fn route_of(ix: usize) -> RoutePolicy {
    [
        RoutePolicy::Weighted,
        RoutePolicy::LeastLoaded,
        RoutePolicy::ModelAffinity,
    ][ix % 3]
}

proptest! {
    /// Every offered request resolves exactly once, whatever the pool
    /// shapes, service costs, routing policy, traffic shape or load.
    #[test]
    fn conservation_offered_splits_into_served_dropped_shed(
        pool_params in proptest::collection::vec(
            (1usize..4, 1usize..6, 100_000u64..2_000_000), 1..4),
        route_ix in 0usize..3,
        shape_ix in 0usize..4,
        rate in 50u64..800,
        seed in 0u64..1000,
    ) {
        let models = 2;
        let pools: Vec<PoolSpec> = pool_params.iter().map(|&(w, q, _)| PoolSpec {
            workers: w,
            min_workers: w,
            max_workers: w,
            queue_depth: q,
            ..PoolSpec::default()
        }).collect();
        let profiles: Vec<PoolProfile> = pool_params
            .iter()
            .map(|&(_, _, svc)| flat_profile(svc, (0..models).collect()))
            .collect();
        let spec = FleetSpec {
            pools,
            route: route_of(route_ix),
            shape: shape_of(shape_ix),
            rate_rps: rate,
            duration_ms: 100,
            seed,
            slo_us: 1_000,
            ..FleetSpec::default()
        };
        let names = model_names(models);
        let trace = fleet::shaped_trace(
            spec.shape, spec.rate_rps, spec.duration_cycles(HZ), models, spec.seed, HZ);
        let offered = trace.requests.len() as u64;
        let r = fleet::simulate(&trace, &profiles, &spec, &names, HZ);
        prop_assert_eq!(r.offered, offered);
        let routed: u64 = r.per_pool.iter().map(|p| p.routed).sum();
        prop_assert_eq!(r.offered, r.shed + routed, "balancer books must balance");
        for p in &r.per_pool {
            prop_assert_eq!(p.routed, p.served + p.dropped, "pool books must balance");
        }
        prop_assert_eq!(r.served + r.dropped + r.shed, r.offered);
        prop_assert_eq!(r.records.len() as u64, offered, "one record per request");
    }

    /// No routing policy ever places a request in a pool that does not
    /// host its model — residency is structural, not probabilistic.
    #[test]
    fn routing_never_leaves_a_models_resident_pools(
        subset_bits in proptest::collection::vec(1usize..8, 1..3),
        route_ix in 0usize..3,
        rate in 100u64..600,
        seed in 0u64..1000,
    ) {
        let models = 3;
        // Pool 0 hosts everything (every model needs a home); the rest
        // host arbitrary nonempty subsets.
        let mut residency: Vec<Vec<usize>> = vec![(0..models).collect()];
        residency.extend(subset_bits.iter().map(|bits| {
            (0..models).filter(|m| bits & (1 << m) != 0).collect::<Vec<_>>()
        }));
        let pools: Vec<PoolSpec> = residency.iter().enumerate().map(|(i, res)| PoolSpec {
            models: if i == 0 { None } else { Some(res.clone()) },
            queue_depth: 4,
            ..PoolSpec::default()
        }).collect();
        let profiles: Vec<PoolProfile> = residency
            .iter()
            .map(|res| flat_profile(400_000, res.clone()))
            .collect();
        let spec = FleetSpec {
            pools,
            route: route_of(route_ix),
            rate_rps: rate,
            duration_ms: 100,
            seed,
            slo_us: 1_000,
            ..FleetSpec::default()
        };
        let names = model_names(models);
        let trace = fleet::shaped_trace(
            spec.shape, spec.rate_rps, spec.duration_cycles(HZ), models, spec.seed, HZ);
        let r = fleet::simulate(&trace, &profiles, &spec, &names, HZ);
        for rec in &r.records {
            let pool = match rec.outcome {
                FleetOutcome::Served { pool, .. } | FleetOutcome::Dropped { pool } => pool,
                FleetOutcome::Shed => continue,
            };
            prop_assert!(
                residency[pool].contains(&rec.model),
                "request for model {} landed in pool {} with residency {:?}",
                rec.model, pool, residency[pool]
            );
        }
    }

    /// The autoscaler never leaves `[min, max]`, and the whole seeded
    /// experiment is bit-identical run-to-run.
    #[test]
    fn autoscaler_stays_in_bounds_and_reruns_bit_identically(
        workers in 1usize..3,
        headroom in 0usize..4,
        shape_ix in 0usize..4,
        rate in 200u64..2000,
        seed in 0u64..1000,
    ) {
        let pools = vec![PoolSpec {
            workers,
            min_workers: 1,
            max_workers: workers + headroom,
            queue_depth: 8,
            ..PoolSpec::default()
        }];
        let profiles = vec![flat_profile(600_000, vec![0, 1])];
        let spec = FleetSpec {
            pools,
            shape: shape_of(shape_ix),
            rate_rps: rate,
            duration_ms: 150,
            seed,
            slo_us: 10_000,
            scale_window_ms: 10,
            ..FleetSpec::default()
        };
        let names = model_names(2);
        let trace = fleet::shaped_trace(
            spec.shape, spec.rate_rps, spec.duration_cycles(HZ), 2, spec.seed, HZ);
        let a = fleet::simulate(&trace, &profiles, &spec, &names, HZ);
        let p = &a.per_pool[0];
        prop_assert!(p.workers_low >= 1, "never scales to zero");
        prop_assert!(p.workers_high <= workers + headroom, "never exceeds max");
        prop_assert!(p.workers_low <= p.workers_high);
        prop_assert!(
            (p.workers_low..=p.workers_high).contains(&p.workers_final),
            "final count within the observed envelope"
        );
        let b = fleet::simulate(&trace, &profiles, &spec, &names, HZ);
        prop_assert_eq!(a, b, "seeded fleet sim must be deterministic");
    }
}

proptest! {
    /// Arming a tracer is byte-invisible to the fleet simulation, the
    /// emitted spans are structurally well-formed, and span accounting
    /// reconciles per pool: worker-track cycles sum to the pool's busy
    /// time, queue-wait spans to its served requests' waits, and the
    /// autoscaler track carries one instant per scaling decision.
    #[test]
    fn traced_fleet_sim_is_invisible_and_reconciles(
        pool_params in proptest::collection::vec(
            (1usize..3, 1usize..6, 100_000u64..1_000_000, 0usize..3), 1..3),
        route_ix in 0usize..3,
        shape_ix in 0usize..4,
        rate in 100u64..1500,
        seed in 0u64..1000,
    ) {
        let models = 2;
        let pools: Vec<PoolSpec> = pool_params.iter().map(|&(w, q, _, headroom)| PoolSpec {
            workers: w,
            min_workers: 1,
            max_workers: w + headroom,
            queue_depth: q,
            ..PoolSpec::default()
        }).collect();
        let profiles: Vec<PoolProfile> = pool_params
            .iter()
            .map(|&(_, _, svc, _)| flat_profile(svc, (0..models).collect()))
            .collect();
        let spec = FleetSpec {
            pools,
            route: route_of(route_ix),
            shape: shape_of(shape_ix),
            rate_rps: rate,
            duration_ms: 80,
            seed,
            slo_us: 5_000,
            scale_window_ms: 10,
            ..FleetSpec::default()
        };
        let names = model_names(models);
        let trace = fleet::shaped_trace(
            spec.shape, spec.rate_rps, spec.duration_cycles(HZ), models, spec.seed, HZ);
        let tracer = Tracer::armed();
        let traced = fleet::simulate_traced(&trace, &profiles, &spec, &names, HZ, &tracer);
        let quiet = fleet::simulate(&trace, &profiles, &spec, &names, HZ);
        prop_assert_eq!(&traced, &quiet, "arming the tracer must be byte-invisible");
        let spans = tracer.snapshot();
        let well_formed = spans.validate();
        prop_assert!(well_formed.is_ok(), "malformed trace: {:?}", well_formed);
        for (p, pool) in traced.per_pool.iter().enumerate() {
            let worker_prefix = format!("pool{p} {} w", pool.class.name());
            let busy: u64 = spans
                .tracks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.name.starts_with(&worker_prefix))
                .map(|(i, _)| spans.sum_cycles(TrackId(i as u32)))
                .sum();
            prop_assert_eq!(busy, pool.busy_cycles, "pool {} busy time", p);
            let queue = spans
                .track_named(&format!("pool{p} {} queue", pool.class.name()))
                .expect("one queue track per pool");
            let waits: u64 = traced.records.iter().filter_map(|r| match r.outcome {
                FleetOutcome::Served { pool: rp, queue_wait, .. } if rp == p => Some(queue_wait),
                _ => None,
            }).sum();
            prop_assert_eq!(spans.sum_cycles(queue), waits, "pool {} queue waits", p);
            let auto = spans
                .track_named(&format!("pool{p} {} autoscaler", pool.class.name()))
                .expect("one autoscaler track per pool");
            prop_assert_eq!(
                spans.spans_on(auto).count() as u64,
                pool.scale_ups + pool.scale_downs,
                "pool {} autoscale instants", p
            );
        }
    }
}

#[test]
fn traced_fleet_run_reconciles_and_metrics_delta_by_since() {
    let (fleet, spec) = fleet2();
    let tracer = Tracer::armed();
    let mut traced = fleet.run_traced(&spec, &tracer).expect("traced run");
    let mut plain = fleet.run(&spec).expect("plain run");
    traced.host_seconds = 0.0;
    plain.host_seconds = 0.0;
    assert_eq!(traced, plain, "arming the tracer must not move the report");
    let trace = tracer.snapshot();
    trace.validate().expect("emitted spans are well-formed");
    assert_eq!(
        trace.count_kind(SpanKind::Compute) as u64,
        traced.served,
        "one compute span per served request"
    );
    // The registry view mirrors the typed report, and registry
    // snapshots delta by `.since` like every other stats struct.
    let registry = MetricsRegistry::new();
    traced.publish(&registry);
    let one = registry.snapshot();
    assert_eq!(one.counters["fleet.offered"], traced.offered);
    assert_eq!(one.counters["fleet.served"], traced.served);
    assert_eq!(
        one.histograms["fleet.total_cycles"].count, traced.served,
        "one latency observation per served request"
    );
    traced.publish(&registry);
    let two = registry.snapshot();
    assert_eq!(
        two.since(&one),
        one,
        "publishing twice and taking `.since` must recover one publish"
    );
}

/// One compiled + calibrated heterogeneous fleet shared by the replay
/// tests (two classes × two models of real calibration is the
/// expensive part — do it once).
fn fleet2() -> (&'static Fleet, FleetSpec) {
    static FLEET: OnceLock<Fleet> = OnceLock::new();
    let spec = FleetSpec {
        pools: vec![
            PoolSpec {
                class: SocClass::NvSmall,
                workers: 2,
                min_workers: 2,
                max_workers: 2,
                queue_depth: 8,
                models: None,
            },
            PoolSpec {
                class: SocClass::NvFull,
                workers: 1,
                min_workers: 1,
                max_workers: 1,
                queue_depth: 8,
                models: None,
            },
        ],
        rate_rps: 300,
        duration_ms: 150,
        seed: 42,
        slo_us: 20_000,
        spot_windows: 3,
        window_frames: 16,
        ..FleetSpec::default()
    };
    let fleet = FLEET.get_or_init(|| {
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let nets = [Model::LeNet5.build(1), Model::ResNet18.build(1)];
        let codegen = CodegenOptions {
            wait_mode: WaitMode::Wfi,
            ..CodegenOptions::default()
        };
        Fleet::new(&nets, &opt, codegen, &spec).expect("calibrate fleet")
    });
    (fleet, spec)
}

#[test]
fn heterogeneous_replay_is_exact_for_every_route_policy() {
    let (fleet, base) = fleet2();
    for route in [
        RoutePolicy::Weighted,
        RoutePolicy::LeastLoaded,
        RoutePolicy::ModelAffinity,
    ] {
        let spec = FleetSpec {
            route,
            ..base.clone()
        };
        let r = fleet.run(&spec).expect("fleet run");
        assert!(r.served > 0, "{}: nothing served", route.name());
        assert!(r.replayed_frames > 0, "{}: nothing replayed", route.name());
        assert_eq!(
            r.replay_divergence,
            0,
            "{}: spot-replay must be cycle-exact on both pool classes",
            route.name()
        );
        assert!(
            r.per_pool.iter().all(|p| p.routed > 0),
            "{}: both pools should see traffic",
            route.name()
        );
    }
}

#[test]
fn fleet_run_is_deterministic_and_agrees_with_the_plan() {
    let (fleet, spec) = fleet2();
    let mut a = fleet.run(&spec).expect("first run");
    let mut b = fleet.run(&spec).expect("second run");
    a.host_seconds = 0.0;
    b.host_seconds = 0.0;
    assert_eq!(a, b, "fixed seed must reproduce the full fleet report");
    // The plan-only path models the same fleet; only the replay
    // bookkeeping differs.
    let mut p = fleet.plan(&spec).expect("plan");
    p.host_seconds = 0.0;
    p.replayed_frames = a.replayed_frames;
    assert_eq!(a, p, "plan and spot-replayed run must agree");
}

#[test]
fn nv_full_pool_is_calibrated_faster_than_nv_small() {
    let (fleet, _) = fleet2();
    let small = fleet.pool_profile(0);
    let full = fleet.pool_profile(1);
    // Same global models resident in both pools, in the same order.
    assert_eq!(small.models, full.models);
    for (lm, (s, f)) in small
        .service
        .compute
        .iter()
        .zip(&full.service.compute)
        .enumerate()
    {
        assert!(
            f < s,
            "model {lm}: nv_full compute {f} should beat nv_small {s}"
        );
    }
}
