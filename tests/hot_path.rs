//! Warm-path determinism: a `Soc` with resident weights reused across N
//! inferences must be bit-identical — cycle counts, outputs, statistics —
//! to N cold runs on freshly built SoCs, in both functional and
//! timing-only modes. These are the oracles behind the in-place
//! reset/resident-weights hot path.

use rv_nvdla::prelude::*;

fn compiled_lenet() -> (rvnv_nn::graph::Network, Artifacts) {
    let net = Model::LeNet5.build(11);
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    let artifacts = compile(&net, &opt).expect("compile");
    (net, artifacts)
}

fn assert_warm_matches_cold(config: &SocConfig) {
    let (net, artifacts) = compiled_lenet();
    let fw = Firmware::build(&artifacts).expect("fw");
    let inputs: Vec<Tensor> = (0..3)
        .map(|i| Tensor::random(net.input_shape(), 100 + i))
        .collect();

    let mut warm = Soc::new(config.clone());
    warm.load_artifacts(&artifacts).expect("preload");
    for input in &inputs {
        let bytes = artifacts.quantize_input(input);
        let w = warm.run_firmware(&artifacts, &bytes, &fw).expect("warm");
        let mut cold_soc = Soc::new(config.clone());
        let c = cold_soc
            .run_firmware(&artifacts, &bytes, &fw)
            .expect("cold");
        assert_eq!(w.cycles, c.cycles, "cycle counts must be bit-identical");
        assert_eq!(w.firmware_cycles, c.firmware_cycles);
        assert_eq!(w.instructions, c.instructions);
        assert_eq!(w.raw_output, c.raw_output, "outputs must be bit-identical");
        assert_eq!(w.cpu_arbiter_wait, c.cpu_arbiter_wait);
        assert_eq!(w.nvdla.total_dma_bytes(), c.nvdla.total_dma_bytes());
        assert_eq!(w.timeline, c.timeline);
    }
}

#[test]
fn warm_soc_matches_cold_socs_functional() {
    assert_warm_matches_cold(&SocConfig::zcu102_nv_small());
}

#[test]
fn warm_soc_matches_cold_socs_timing_only() {
    assert_warm_matches_cold(&SocConfig::zcu102_timing_only());
}

#[test]
fn run_inference_is_warm_after_the_first_call() {
    // The transparent hot path: plain `run_inference` in a loop promotes
    // the artifacts to resident after call one and stays deterministic.
    let (net, artifacts) = compiled_lenet();
    let input = Tensor::random(net.input_shape(), 42);
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let first = soc.run_inference(&artifacts, &input).expect("first");
    assert!(soc.is_resident(&artifacts));
    for _ in 0..2 {
        let again = soc.run_inference(&artifacts, &input).expect("again");
        assert_eq!(again.cycles, first.cycles);
        assert_eq!(again.raw_output, first.raw_output);
    }
}

#[test]
fn explicit_reset_forces_a_cold_run_with_identical_results() {
    let (net, artifacts) = compiled_lenet();
    let input = Tensor::random(net.input_shape(), 9);
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let warm = soc.run_inference(&artifacts, &input).expect("warm-up");
    soc.reset();
    assert!(!soc.is_resident(&artifacts));
    let cold = soc.run_inference(&artifacts, &input).expect("cold");
    assert_eq!(cold.cycles, warm.cycles);
    assert_eq!(cold.raw_output, warm.raw_output);
}

#[test]
fn alternating_models_on_one_soc_stays_deterministic() {
    // Model switches evict residency; switching back must replay the
    // exact original numbers.
    let lenet_net = Model::LeNet5.build(11);
    let resnet_net = Model::ResNet18.build(11);
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    let lenet = compile(&lenet_net, &opt).expect("lenet");
    let resnet = compile(&resnet_net, &opt).expect("resnet");
    let lenet_in = Tensor::random(lenet_net.input_shape(), 5);
    let resnet_in = Tensor::random(resnet_net.input_shape(), 5);

    let mut soc = Soc::new(SocConfig::zcu102_timing_only());
    let l1 = soc.run_inference(&lenet, &lenet_in).expect("lenet 1");
    let r1 = soc.run_inference(&resnet, &resnet_in).expect("resnet 1");
    assert!(soc.is_resident(&resnet));
    assert!(!soc.is_resident(&lenet));
    let l2 = soc.run_inference(&lenet, &lenet_in).expect("lenet 2");
    let r2 = soc.run_inference(&resnet, &resnet_in).expect("resnet 2");
    assert_eq!(l1.cycles, l2.cycles);
    assert_eq!(r1.cycles, r2.cycles);
}

#[test]
fn same_layout_different_weights_is_not_resident() {
    // zoo builds from different seeds share the model name and the
    // exact segment layout; the resident check must see the weight
    // bytes, or a warm run would silently reuse stale weights.
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    let a1 = compile(&Model::LeNet5.build(1), &opt).expect("seed 1");
    let a2 = compile(&Model::LeNet5.build(2), &opt).expect("seed 2");
    let input = Tensor::random(Model::LeNet5.build(1).input_shape(), 4);

    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    soc.run_inference(&a1, &input).expect("seed-1 run");
    assert!(
        !soc.is_resident(&a2),
        "different weights must not look resident"
    );
    let warm = soc.run_inference(&a2, &input).expect("seed-2 run");
    let mut fresh = Soc::new(SocConfig::zcu102_nv_small());
    let truth = fresh.run_inference(&a2, &input).expect("ground truth");
    assert_eq!(warm.raw_output, truth.raw_output, "no stale weights used");
    assert_eq!(warm.cycles, truth.cycles);
}

#[test]
fn with_dram_peek_borrows_the_same_bytes_dram_peek_copies() {
    let (net, artifacts) = compiled_lenet();
    let input = Tensor::random(net.input_shape(), 3);
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let r = soc.run_inference(&artifacts, &input).expect("run");
    let copied = soc.dram_peek(artifacts.output_addr, artifacts.output_len);
    let equal = soc.with_dram_peek(artifacts.output_addr, artifacts.output_len, |raw| {
        raw == copied.as_slice() && raw == r.raw_output.as_slice()
    });
    assert!(equal, "borrowing peek sees the same bytes");
}
