//! Docs-consistency checks, run as a tier-1 test and as a dedicated CI
//! step: every intra-repo markdown link must resolve to a real file,
//! every `rv-nvdla` subcommand a document names must exist in the
//! binary's `--help` (usage) output, and every `--flag` a document
//! names for a subcommand must exist in that subcommand's strict
//! `validate_args` rejection list — documentation can't drift from the
//! CLI it describes, down to the flag grammar.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::process::Command;

/// The documentation surfaces under contract. Walking the whole repo
/// would drag in generated or vendored text; these are the files we
/// promise stay consistent.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![
        root.join("README.md"),
        root.join("ROADMAP.md"),
        root.join("CHANGES.md"),
        root.join("vendor/README.md"),
    ];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extract `](target)` markdown link targets, skipping absolute URLs
/// and pure in-page anchors.
fn relative_links(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find("](") {
        rest = &rest[i + 2..];
        let Some(end) = rest.find(')') else { break };
        let target = &rest[..end];
        rest = &rest[end..];
        if target.is_empty()
            || target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
            || target.starts_with('#')
        {
            continue;
        }
        // Strip an in-page anchor from a file link.
        let path = target.split('#').next().unwrap_or(target);
        out.push(path.to_string());
    }
    out
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let mut missing = Vec::new();
    for file in doc_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let dir = file.parent().expect("doc files have a parent");
        for link in relative_links(&text) {
            if !dir.join(&link).exists() {
                missing.push(format!("{} -> {link}", file.display()));
            }
        }
    }
    assert!(
        missing.is_empty(),
        "markdown links that resolve to nothing:\n{}",
        missing.join("\n")
    );
}

/// Subcommands the binary itself advertises, parsed from the usage
/// banner's `<compile|run|...>` list.
fn advertised_subcommands() -> BTreeSet<String> {
    let out = Command::new(env!("CARGO_BIN_EXE_rv-nvdla"))
        .output()
        .expect("run rv-nvdla with no arguments");
    let usage = String::from_utf8_lossy(&out.stderr).into_owned();
    let start = usage.find('<').expect("usage lists <subcommands>");
    let end = usage[start..].find('>').expect("closing >") + start;
    usage[start + 1..end]
        .split('|')
        .map(str::to_string)
        .collect()
}

/// Every `rv-nvdla <word>` mention in **command position** — a line
/// starting with the binary name, a `$ rv-nvdla ...` shell example, or
/// inline code like `` `rv-nvdla run ...` `` — must name a real
/// subcommand. Prose such as "the rv-nvdla binary" is not a command.
fn mentioned_subcommands(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in text.lines() {
        let mut rest = line;
        while let Some(i) = rest.find("rv-nvdla ") {
            let command_position = i == 0
                || rest[..i].trim_end().is_empty()
                || rest[..i].ends_with("$ ")
                || rest[..i].ends_with('`')
                || rest[..i].ends_with("./target/release/");
            rest = &rest[i + "rv-nvdla ".len()..];
            if !command_position {
                continue;
            }
            let word: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            if !word.is_empty() {
                out.insert(word);
            }
        }
    }
    out
}

/// The subcommands that accept flags at all. `traces`, `resources` and
/// `models` take no arguments, so no document can name flags for them.
const FLAGGED_COMMANDS: [&str; 7] = ["compile", "run", "sweep", "batch", "serve", "fleet", "fuzz"];

/// Flags a subcommand accepts, parsed from its own strict-validation
/// rejection message: feeding it a flag that cannot exist makes
/// `validate_args` answer with the full `(accepted: ...)` list, so the
/// source of truth is the binary itself, not a copy of its tables.
fn accepted_flags(cmd: &str) -> BTreeSet<String> {
    let out = Command::new(env!("CARGO_BIN_EXE_rv-nvdla"))
        .args([cmd, "--no-such-flag-drift-probe"])
        .output()
        .unwrap_or_else(|e| panic!("run rv-nvdla {cmd}: {e}"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let start = stderr
        .find("accepted: ")
        .unwrap_or_else(|| panic!("`{cmd}` rejection must list accepted flags, got:\n{stderr}"))
        + "accepted: ".len();
    let end = stderr[start..]
        .find(')')
        .map_or(stderr.len(), |i| start + i);
    stderr[start..end].split(", ").map(str::to_string).collect()
}

/// Extract `--flag` tokens from a line: a `--` run preceded by line
/// start, whitespace or markdown/grammar punctuation, followed by a
/// letter, spanning `[a-z0-9-]`. Prose em-dashes (` — `, `--` between
/// words) don't match; `[--pools ...]` usage grammar does.
fn flag_tokens(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while let Some(j) = line[i..].find("--") {
        let at = i + j;
        let boundary = at == 0
            || matches!(
                bytes[at - 1],
                b' ' | b'\t' | b'`' | b'(' | b'[' | b'|' | b'"' | b'\''
            );
        let token: String = line[at..]
            .chars()
            .take_while(|&c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
            .collect();
        i = at + token.len().max(2);
        if boundary && token.len() > 2 && token[2..].starts_with(|c: char| c.is_ascii_lowercase()) {
            out.push(token.trim_end_matches('-').to_string());
        }
    }
    out
}

/// File-level scope markers: `<!-- rv-nvdla-flags: CMD -->` declares
/// that bare `--flag` mentions in this document (outside `cargo` lines
/// and lines that name a subcommand explicitly) belong to CMD's
/// grammar.
fn marker_commands(text: &str, file: &std::path::Path) -> Vec<String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("<!-- rv-nvdla-flags:") else {
            continue;
        };
        let cmd = rest.trim_end_matches("-->").trim();
        assert!(
            FLAGGED_COMMANDS.contains(&cmd),
            "{}: flag marker names unknown subcommand `{cmd}`",
            file.display()
        );
        out.push(cmd.to_string());
    }
    out
}

#[test]
fn documented_flags_exist_in_the_cli() {
    let accepted: BTreeMap<&str, BTreeSet<String>> = FLAGGED_COMMANDS
        .iter()
        .map(|&cmd| (cmd, accepted_flags(cmd)))
        .collect();
    // Parse sanity: the probe really extracted the rejection lists.
    assert!(
        accepted["serve"].contains("--rate"),
        "{:?}",
        accepted["serve"]
    );
    assert!(
        accepted["fleet"].contains("--pools"),
        "{:?}",
        accepted["fleet"]
    );

    let mut drift = Vec::new();
    for file in doc_files() {
        // The changelog narrates historical flag grammars (and flags of
        // several subcommands on one line); it is not a contract about
        // the current CLI. Links and subcommand names are still checked.
        if file.file_name().is_some_and(|n| n == "CHANGES.md") {
            continue;
        }
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let markers = marker_commands(&text, &file);
        for (n, line) in text.lines().enumerate() {
            // Lines invoking cargo talk about cargo's flags, not ours.
            if line.contains("cargo ") {
                continue;
            }
            let line_cmds: Vec<String> = FLAGGED_COMMANDS
                .iter()
                .filter(|c| line.contains(&format!("rv-nvdla {c}")))
                .map(|c| (*c).to_string())
                .collect();
            let scope = if line_cmds.is_empty() {
                &markers
            } else {
                &line_cmds
            };
            if scope.is_empty() {
                continue;
            }
            for flag in flag_tokens(line) {
                if !scope.iter().any(|c| accepted[c.as_str()].contains(&flag)) {
                    drift.push(format!(
                        "{}:{}: `{flag}` is not a flag of `{}`",
                        file.display(),
                        n + 1,
                        scope.join("`/`"),
                    ));
                }
            }
        }
    }
    assert!(
        drift.is_empty(),
        "documents name flags the CLI would reject:\n{}",
        drift.join("\n")
    );
}

#[test]
fn documented_subcommands_exist_in_help_output() {
    let known = advertised_subcommands();
    assert!(
        known.contains("batch") && known.contains("run"),
        "usage parse sanity: {known:?}"
    );
    let mut unknown = Vec::new();
    for file in doc_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        for word in mentioned_subcommands(&text) {
            if !known.contains(&word) {
                unknown.push(format!("{}: rv-nvdla {word}", file.display()));
            }
        }
    }
    assert!(
        unknown.is_empty(),
        "documents name rv-nvdla subcommands missing from --help:\n{}\n(known: {:?})",
        unknown.join("\n"),
        known
    );
}
