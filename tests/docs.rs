//! Docs-consistency checks, run as a tier-1 test and as a dedicated CI
//! step: every intra-repo markdown link must resolve to a real file,
//! and every `rv-nvdla` subcommand a document names must exist in the
//! binary's `--help` (usage) output — documentation can't drift from
//! the CLI it describes.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

/// The documentation surfaces under contract. Walking the whole repo
/// would drag in generated or vendored text; these are the files we
/// promise stay consistent.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![
        root.join("README.md"),
        root.join("ROADMAP.md"),
        root.join("CHANGES.md"),
        root.join("vendor/README.md"),
    ];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extract `](target)` markdown link targets, skipping absolute URLs
/// and pure in-page anchors.
fn relative_links(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find("](") {
        rest = &rest[i + 2..];
        let Some(end) = rest.find(')') else { break };
        let target = &rest[..end];
        rest = &rest[end..];
        if target.is_empty()
            || target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
            || target.starts_with('#')
        {
            continue;
        }
        // Strip an in-page anchor from a file link.
        let path = target.split('#').next().unwrap_or(target);
        out.push(path.to_string());
    }
    out
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let mut missing = Vec::new();
    for file in doc_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let dir = file.parent().expect("doc files have a parent");
        for link in relative_links(&text) {
            if !dir.join(&link).exists() {
                missing.push(format!("{} -> {link}", file.display()));
            }
        }
    }
    assert!(
        missing.is_empty(),
        "markdown links that resolve to nothing:\n{}",
        missing.join("\n")
    );
}

/// Subcommands the binary itself advertises, parsed from the usage
/// banner's `<compile|run|...>` list.
fn advertised_subcommands() -> BTreeSet<String> {
    let out = Command::new(env!("CARGO_BIN_EXE_rv-nvdla"))
        .output()
        .expect("run rv-nvdla with no arguments");
    let usage = String::from_utf8_lossy(&out.stderr).into_owned();
    let start = usage.find('<').expect("usage lists <subcommands>");
    let end = usage[start..].find('>').expect("closing >") + start;
    usage[start + 1..end]
        .split('|')
        .map(str::to_string)
        .collect()
}

/// Every `rv-nvdla <word>` mention in **command position** — a line
/// starting with the binary name, a `$ rv-nvdla ...` shell example, or
/// inline code like `` `rv-nvdla run ...` `` — must name a real
/// subcommand. Prose such as "the rv-nvdla binary" is not a command.
fn mentioned_subcommands(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in text.lines() {
        let mut rest = line;
        while let Some(i) = rest.find("rv-nvdla ") {
            let command_position = i == 0
                || rest[..i].trim_end().is_empty()
                || rest[..i].ends_with("$ ")
                || rest[..i].ends_with('`')
                || rest[..i].ends_with("./target/release/");
            rest = &rest[i + "rv-nvdla ".len()..];
            if !command_position {
                continue;
            }
            let word: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            if !word.is_empty() {
                out.insert(word);
            }
        }
    }
    out
}

#[test]
fn documented_subcommands_exist_in_help_output() {
    let known = advertised_subcommands();
    assert!(
        known.contains("batch") && known.contains("run"),
        "usage parse sanity: {known:?}"
    );
    let mut unknown = Vec::new();
    for file in doc_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        for word in mentioned_subcommands(&text) {
            if !known.contains(&word) {
                unknown.push(format!("{}: rv-nvdla {word}", file.display()));
            }
        }
    }
    assert!(
        unknown.is_empty(),
        "documents name rv-nvdla subcommands missing from --help:\n{}\n(known: {:?})",
        unknown.join("\n"),
        known
    );
}
