//! Serving-subsystem oracles on an interleaved LeNet-5/ResNet-18 mix:
//!
//! * **Determinism** — with a fixed seed, `Server::serve` produces the
//!   bit-identical report run-to-run, and the plan-only path agrees
//!   with the full replay.
//! * **Replay exactness** — the queueing simulation runs on calibrated
//!   per-model/per-pair cycle counts; replaying the dispatch plan on
//!   real worker SoCs must reproduce every frame's modeled latency
//!   (`replay_divergence == 0`), in both worker modes and under every
//!   policy.
//! * **Queueing behavior** — below saturation p99 total latency is the
//!   service latency (nothing waits); above saturation queue-wait
//!   dominates, p99 grows, achieved throughput plateaus at capacity,
//!   and the bounded admission queue drops the excess.
//! * **Policy tails** — under the pipelined worker mode, rr vs sqf vs
//!   eff pair different frames behind different preloads and order the
//!   backlog differently, so their p99 tails genuinely differ.

use std::sync::{Arc, OnceLock};

use rv_nvdla::prelude::*;
use rvnv_soc::batch;
use rvnv_soc::serve::{ArrivalProcess, RequestOutcome};

/// One calibrated server shared by every test (calibration compiles
/// both models and runs N + N² real frames — do it once).
fn server() -> &'static Server {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER.get_or_init(|| {
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let nets = [Model::LeNet5.build(1), Model::ResNet18.build(1)];
        let cache = ArtifactCache::new();
        let artifacts: Vec<Arc<Artifacts>> =
            batch::layout_models(&cache, &nets, &opt).expect("layout");
        let codegen = CodegenOptions {
            wait_mode: WaitMode::Wfi,
            ..CodegenOptions::default()
        };
        Server::new(SocConfig::zcu102_timing_only(), artifacts, codegen).expect("calibrate")
    })
}

fn base_spec() -> ServeSpec {
    ServeSpec {
        process: ArrivalProcess::Poisson,
        rate_rps: 150,
        duration_ms: 150,
        seed: 42,
        workers: 1,
        policy: Policy::RoundRobin,
        pipelined: false,
        queue_depth: 8,
        slo_us: 20_000,
        timeout_us: 0,
        retries: 0,
        faults: None,
    }
}

#[test]
fn serve_is_deterministic_and_replays_the_plan_exactly() {
    let server = server();
    let spec = base_spec();
    let mut a = server.serve(&spec).expect("first run");
    let mut b = server.serve(&spec).expect("second run");
    assert!(a.offered > 0 && a.served > 0);
    assert_eq!(a.replay_divergence, 0, "real SoCs must match the plan");
    // Bit-identical run-to-run (host wall-clock aside).
    a.host_seconds = 0.0;
    b.host_seconds = 0.0;
    assert_eq!(a, b, "fixed seed must reproduce the full report");
    // The plan-only path models the same system.
    let mut p = server.plan(&spec).expect("plan");
    p.host_seconds = 0.0;
    assert_eq!(a, p, "plan and replayed serve must agree");
}

#[test]
fn pipelined_replay_is_exact_for_every_policy() {
    let server = server();
    for policy in [
        Policy::RoundRobin,
        Policy::ShortestQueueFirst,
        Policy::EarliestFinish,
    ] {
        let spec = ServeSpec {
            pipelined: true,
            policy,
            rate_rps: 300,
            duration_ms: 100,
            workers: 2,
            ..base_spec()
        };
        let r = server.serve(&spec).expect("serve");
        assert!(r.served > 0);
        assert_eq!(
            r.replay_divergence,
            0,
            "{}: pipelined replay must be cycle-exact",
            policy.name()
        );
        assert!(
            r.per_worker.iter().all(|w| w.frames > 0),
            "both workers serve"
        );
    }
}

#[test]
fn below_saturation_p99_is_the_service_latency() {
    let server = server();
    // 60 req/s evenly spaced against ~230 req/s capacity: every
    // request meets an idle worker.
    let spec = ServeSpec {
        process: ArrivalProcess::Fixed,
        rate_rps: 60,
        duration_ms: 200,
        ..base_spec()
    };
    let r = server.serve(&spec).expect("serve");
    assert_eq!(r.dropped, 0);
    assert_eq!(r.replay_divergence, 0);
    assert_eq!(r.queue_wait.max, 0, "idle workers never queue");
    assert_eq!(
        r.total.p99, r.service.p99,
        "below saturation, tail latency IS service latency"
    );
    assert_eq!(r.slo_attainment(), 1.0, "20 ms SLO holds at 60 req/s");
}

#[test]
fn above_saturation_queueing_dominates_and_throughput_plateaus() {
    let server = server();
    let at = |rate: u64| {
        let spec = ServeSpec {
            rate_rps: rate,
            duration_ms: 300,
            ..base_spec()
        };
        server.plan(&spec).expect("plan")
    };
    let below = at(100);
    let above = at(400);
    let far_above = at(600);

    // Below: waits are burst noise, the SLO holds.
    assert_eq!(below.dropped, 0);
    assert!(below.queue_wait.p50 < below.service.p50);

    // Above: the queue is the story — waits dominate service, the tail
    // stretches far past the below-saturation tail, and the bounded
    // queue drops the excess.
    assert!(above.dropped > 0, "overload must drop");
    assert!(
        above.queue_wait.p50 > above.service.p99,
        "median wait {} must exceed even the service tail {}",
        above.queue_wait.p50,
        above.service.p99
    );
    assert!(above.total.p99 > 2 * below.total.p99, "the hockey stick");

    // Offered keeps climbing, achieved pins at capacity. The whole
    // pipeline is seeded (seed 42), so the plateau is not a tolerance
    // band but an exact count: both overloaded plans serve precisely
    // the 78 requests one worker can clear inside the window.
    assert!(above.offered_rate() > 1.5 * above.achieved_rate());
    assert_eq!(
        above.served, 78,
        "seed-42 single-worker capacity over 300 ms"
    );
    assert_eq!(
        far_above.served, above.served,
        "pushing offered 400 -> 600 req/s must not move the served count"
    );
    assert!(
        far_above.total.p99 >= above.total.p99 / 2,
        "tail stays saturated"
    );
    assert!(
        above.slo_attainment() < below.slo_attainment(),
        "SLO attainment collapses past saturation"
    );
}

#[test]
fn pipelined_policies_produce_different_tails() {
    let server = server();
    // Sustained overload on one pipelined worker: the backlog is deep
    // enough that what rr/sqf/eff pair behind what — and whom they
    // starve — shows up in the tail.
    let tail = |policy: Policy| {
        let spec = ServeSpec {
            pipelined: true,
            policy,
            rate_rps: 400,
            duration_ms: 200,
            ..base_spec()
        };
        let r = server.serve(&spec).expect("serve");
        assert_eq!(r.replay_divergence, 0, "{}", policy.name());
        r.total.p99
    };
    let rr = tail(Policy::RoundRobin);
    let sqf = tail(Policy::ShortestQueueFirst);
    let eff = tail(Policy::EarliestFinish);
    assert!(
        rr != sqf && rr != eff && sqf != eff,
        "pipelined policies must have distinct p99 tails: rr {rr} sqf {sqf} eff {eff}"
    );
}

#[test]
fn adding_workers_raises_the_saturation_knee() {
    let server = server();
    let at = |workers: usize| {
        let spec = ServeSpec {
            rate_rps: 400,
            duration_ms: 200,
            workers,
            ..base_spec()
        };
        server.plan(&spec).expect("plan")
    };
    let one = at(1);
    let two = at(2);
    assert!(two.served >= one.served);
    assert!(two.achieved_rate() > 1.5 * one.achieved_rate());
    assert!(two.total.p99 < one.total.p99);
}

#[test]
fn trace_is_seeded_and_offered_bounds_achieved() {
    let server = server();
    let spec = base_spec();
    let t1 = server.trace(&spec);
    let t2 = server.trace(&spec);
    assert_eq!(t1, t2, "same seed, same trace");
    let other = server.trace(&ServeSpec { seed: 43, ..spec });
    assert_ne!(t1, other, "a different seed moves the arrivals");
    let r = server.plan(&spec).expect("plan");
    assert!(r.achieved_rate() <= r.offered_rate() + 1e-9);
    assert_eq!(r.served + r.dropped, r.offered);
}

#[test]
fn traced_pipelined_serve_reconciles_with_the_report() {
    let server = server();
    let spec = ServeSpec {
        pipelined: true,
        rate_rps: 300,
        duration_ms: 100,
        workers: 2,
        ..base_spec()
    };
    let tracer = Tracer::armed();
    let mut traced = server.serve_traced(&spec, &tracer).expect("traced serve");
    let mut plain = server.serve(&spec).expect("plain serve");
    traced.host_seconds = 0.0;
    plain.host_seconds = 0.0;
    assert_eq!(traced, plain, "arming the tracer must not move the report");
    let trace = tracer.snapshot();
    trace.validate().expect("emitted spans are well-formed");
    // Span accounting reconciles with the report: every worker's
    // top-level span cycles are exactly its busy time...
    for (w, stats) in traced.per_worker.iter().enumerate() {
        let track = trace
            .track_named(&format!("worker {w}"))
            .expect("one track per worker");
        assert_eq!(
            trace.sum_cycles(track),
            stats.busy_cycles,
            "worker {w} span cycles must sum to its busy time"
        );
    }
    // ...and queue-wait spans sum to the served requests' waits.
    let waits: u64 = traced
        .records
        .iter()
        .filter_map(|r| match r.outcome {
            RequestOutcome::Served { queue_wait, .. } => Some(queue_wait),
            RequestOutcome::Dropped => None,
        })
        .sum();
    assert_eq!(
        trace.sum_kind(SpanKind::QueueWait),
        waits,
        "queue-wait spans must sum to the report's waits"
    );
    // The pipelined story is visible: one compute span per served frame,
    // with ps_burst fills overlapped behind them.
    assert_eq!(trace.count_kind(SpanKind::Compute) as u64, traced.served);
    assert!(
        trace.count_kind(SpanKind::PsBurst) > 0,
        "pipelined fills must show up as ps_burst spans"
    );
}

#[test]
fn fault_stats_since_isolates_one_runs_share() {
    use rvnv_bus::fault::{FaultPlan, FaultStats};
    // A worker SoC under a sustained (non-aborting) fault storm:
    // `FaultStats::since` — the repo-wide snapshot-delta convention —
    // isolates one frame's injector activity from the cumulative
    // counters.
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    let net = Model::LeNet5.build(1);
    let artifacts = compile(&net, &opt).expect("compile");
    let input = Tensor::random(net.input_shape(), 7);
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    soc.arm_faults(FaultPlan {
        seed: 9,
        flip_per_million: 5_000,
        spike_per_million: 5_000,
        ..FaultPlan::default()
    });
    let _ = soc.run_inference(&artifacts, &input);
    let baseline = soc.fault_stats();
    assert!(baseline.accesses > 0, "the armed plan must observe traffic");
    let _ = soc.run_inference(&artifacts, &input);
    let cumulative = soc.fault_stats();
    let delta = cumulative.since(&baseline);
    assert!(
        delta.accesses > 0,
        "the second frame saw traffic of its own"
    );
    assert_eq!(delta.accesses, cumulative.accesses - baseline.accesses);
    assert_eq!(delta.total(), cumulative.total() - baseline.total());
    // A self-delta is zero — the convention's fixed point.
    assert_eq!(cumulative.since(&cumulative), FaultStats::default());
}

#[test]
fn chaos_serve_keeps_replay_divergence_at_zero_and_books_balanced() {
    let server = server();
    let spec = ServeSpec {
        duration_ms: 100,
        workers: 2,
        timeout_us: 10_000,
        retries: 2,
        faults: Some(FaultSpec {
            seed: 0xFA1175,
            flip_per_million: 30_000,
            error_per_million: 60_000,
            spike_per_million: 30_000,
            spike_us: 2_000,
            hang_per_million: 15_000,
            crash_per_million: 15_000,
        }),
        ..base_spec()
    };
    let r = server.serve(&spec).expect("chaos serve");
    // The seeded storm actually fired...
    assert!(r.faults.injected() > 0, "no faults at a 15% composite rate");
    // ...every fault is accounted for: offered splits into served +
    // dropped, and every failed attempt resolved exactly once.
    assert_eq!(r.served + r.dropped, r.offered);
    let f = r.faults;
    assert_eq!(
        f.timeouts + f.bus_errors + f.corruptions_detected + f.crashes,
        f.retries + f.failovers + f.sheds + f.exhausted,
        "fault ledger must reconcile: {f:?}"
    );
    assert!(f.hangs <= f.timeouts, "hangs are detected as timeouts");
    // The served frames replay cycle-exact on the real worker SoCs even
    // with the chaos machinery armed: fault burns exist in modeled time
    // only, so the dispatch plan stays honest.
    assert_eq!(r.replay_divergence, 0, "chaos must not move the replay");
    // And the whole faulted run is bit-identical from the same seeds
    // (host wall-clock aside).
    let mut again = server.serve(&spec).expect("chaos serve again");
    again.host_seconds = r.host_seconds;
    assert_eq!(r, again, "seeded chaos must replay bit-identically");
}
