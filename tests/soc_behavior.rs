//! SoC-level behavioural tests: interrupt-driven waits, the standard
//! NVDLA validation traces on real firmware, and bus-level properties
//! observable from the top.

use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::traces;
use rvnv_compiler::{compile, Artifacts, CompileOptions};
use rvnv_nn::{zoo, Tensor};
use rvnv_soc::firmware::Firmware;
use rvnv_soc::soc::{Soc, SocConfig};

fn wfi_options() -> CodegenOptions {
    CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    }
}

#[test]
fn wfi_firmware_produces_identical_results_with_fewer_instructions() {
    let net = zoo::lenet5(4);
    let artifacts = compile(&net, &CompileOptions::int8()).expect("compile");
    let input = Tensor::random(net.input_shape(), 9);
    let input_bytes = artifacts.quantize_input(&input);

    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let poll_fw = Firmware::build(&artifacts).expect("poll fw");
    let poll = soc
        .run_firmware(&artifacts, &input_bytes, &poll_fw)
        .expect("poll run");

    let wfi_fw = Firmware::build_with(&artifacts, wfi_options()).expect("wfi fw");
    let wfi = soc
        .run_firmware(&artifacts, &input_bytes, &wfi_fw)
        .expect("wfi run");

    assert_eq!(poll.raw_output, wfi.raw_output, "same functional result");
    assert!(
        wfi.instructions * 5 < poll.instructions,
        "wfi retires far fewer instructions: {} vs {}",
        wfi.instructions,
        poll.instructions
    );
    // Total latency is dominated by the accelerator either way.
    let ratio = wfi.cycles as f64 / poll.cycles as f64;
    assert!(
        (0.8..1.2).contains(&ratio),
        "latency comparable: wfi {} vs poll {}",
        wfi.cycles,
        poll.cycles
    );
}

#[test]
fn wfi_with_nothing_outstanding_is_a_deadlock_error() {
    // Firmware that sleeps with no NVDLA operation in flight.
    let asm = "wfi\nebreak";
    let image = rvnv_riscv::assemble(asm).expect("asm");
    let net = zoo::lenet5(1);
    let artifacts = compile(&net, &CompileOptions::int8()).expect("compile");
    let fw = Firmware {
        assembly: asm.to_string(),
        image,
    };
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let input = vec![0u8; artifacts.input_len];
    let e = soc.run_firmware(&artifacts, &input, &fw).unwrap_err();
    assert!(e.to_string().contains("wfi"), "{e}");
}

/// Run a standard validation trace as bare-metal firmware on the SoC.
fn run_trace_on_soc(trace: &traces::TestTrace) {
    let asm = rvnv_compiler::codegen::generate_assembly(&trace.commands);
    let image = rvnv_riscv::assemble(&asm)
        .unwrap_or_else(|e| panic!("{}: assembly failed: {e}", trace.name));
    let fw = Firmware {
        assembly: asm,
        image,
    };
    // Wrap the trace in a pseudo-Artifacts so the SoC harness can
    // preload and run it: a zero-length input at a scratch address.
    let net = zoo::lenet5(1);
    let mut artifacts: Artifacts =
        compile(&net, &CompileOptions::int8()).expect("artifact scaffold");
    artifacts.commands = trace.commands.clone();
    artifacts.weights = trace.preload.clone();
    artifacts.input_len = 0;
    artifacts.input_addr = 0xF000;
    artifacts.output_addr = 0xF000;
    artifacts.output_len = 0;
    artifacts.output_shape = rvnv_nn::Shape::new(0, 0, 0);

    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let result = soc
        .run_firmware(&artifacts, &[], &fw)
        .unwrap_or_else(|e| panic!("{}: {e}", trace.name));
    for (addr, bytes) in &trace.expect {
        let got = soc.dram_peek(*addr, bytes.len());
        assert_eq!(&got, bytes, "{}: dram at {addr:#x}", trace.name);
    }
    assert!(result.cycles > 0);
}

#[test]
fn sanity_trace_runs_as_firmware() {
    run_trace_on_soc(&traces::sanity());
}

#[test]
fn convolution_trace_runs_as_firmware() {
    run_trace_on_soc(&traces::convolution());
}

#[test]
fn memory_trace_runs_as_firmware() {
    run_trace_on_soc(&traces::memory());
}

#[test]
fn per_op_timeline_is_ordered_and_complete() {
    let net = zoo::lenet5(2);
    let artifacts = compile(&net, &CompileOptions::int8()).expect("compile");
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let input = Tensor::random(net.input_shape(), 3);
    let result = soc.run_inference(&artifacts, &input).expect("run");
    assert_eq!(result.timeline.len(), artifacts.ops.len());
    let mut prev_done = 0;
    for op in &result.timeline {
        assert!(op.done > op.start, "{op:?}");
        assert!(op.start >= prev_done, "ops execute serially: {op:?}");
        prev_done = op.done;
    }
    assert!(result.timeline.last().expect("ops").done <= result.cycles);
}

#[test]
fn higher_clock_ratio_increases_memory_stalls() {
    // Fig. 4: the SoC can run at 300 MHz against 100 MHz DDR4; memory
    // stalls (in SoC cycles) grow with the ratio.
    let net = zoo::lenet5(1);
    let artifacts = compile(&net, &CompileOptions::int8()).expect("compile");
    let input = Tensor::random(net.input_shape(), 2);
    let run_at = |soc_hz: u64| {
        let mut cfg = SocConfig::zcu102_timing_only();
        cfg.soc_hz = soc_hz;
        let mut soc = Soc::new(cfg);
        soc.run_inference(&artifacts, &input).expect("run").cycles
    };
    let cycles_100 = run_at(100_000_000);
    let cycles_300 = run_at(300_000_000);
    assert!(
        cycles_300 > cycles_100 * 2,
        "at 3x clock the same inference takes >2x the cycles \
         (memory-bound): {cycles_300} vs {cycles_100}"
    );
    // But wall-clock latency still improves (or at least does not
    // degrade much) with the faster clock.
    let ms_100 = cycles_100 as f64 / 100e3;
    let ms_300 = cycles_300 as f64 / 300e3;
    assert!(ms_300 < ms_100 * 1.4, "{ms_300:.2} vs {ms_100:.2}");
}
