//! SoC-level edges of the warm decoded-firmware cache: retention
//! across runs, invalidation on `Soc::reset`, and bit-identity of
//! arbitrarily-late warm runs.

use rvnv_compiler::{compile, CompileOptions};
use rvnv_nn::zoo::Model;
use rvnv_nn::Tensor;
use rvnv_soc::firmware::Firmware;
use rvnv_soc::soc::{Soc, SocConfig};

fn lenet_setup() -> (rvnv_compiler::Artifacts, Vec<u8>, Firmware) {
    let net = Model::LeNet5.build(1);
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    let artifacts = compile(&net, &opt).expect("compile");
    let input = Tensor::random(net.input_shape(), 11);
    let bytes = artifacts.quantize_input(&input);
    let fw = Firmware::build(&artifacts).expect("fw");
    (artifacts, bytes, fw)
}

/// Run N+1 is bit-identical to run 1, and every warm run replays the
/// whole firmware from the retained cache — zero new decodes.
#[test]
fn warm_run_n_plus_one_is_bit_identical_and_fully_cached() {
    let (artifacts, bytes, fw) = lenet_setup();
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let cold = soc.run_firmware(&artifacts, &bytes, &fw).expect("cold");
    assert!(cold.block_cache.misses > 0, "cold run must decode");
    for n in 1..=3 {
        let warm = soc.run_firmware(&artifacts, &bytes, &fw).expect("warm");
        assert_eq!(warm.cycles, cold.cycles, "run {n}: cycles");
        assert_eq!(warm.instructions, cold.instructions, "run {n}: retired");
        assert_eq!(warm.raw_output, cold.raw_output, "run {n}: output");
        assert_eq!(warm.pipeline, cold.pipeline, "run {n}: pipeline stats");
        assert_eq!(warm.nvdla, cold.nvdla, "run {n}: nvdla stats");
        assert_eq!(
            warm.block_cache.misses, 0,
            "run {n}: warm runs must not decode (stats {:?})",
            warm.block_cache
        );
        assert!(warm.block_cache.hits > 0, "run {n}: warm runs replay");
    }
}

/// `Soc::reset` drops the retained decode: the next run decodes from
/// scratch (misses again) yet produces the same architectural result.
#[test]
fn soc_reset_clears_the_decoded_firmware_cache() {
    let (artifacts, bytes, fw) = lenet_setup();
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let cold = soc.run_firmware(&artifacts, &bytes, &fw).expect("cold");
    let warm = soc.run_firmware(&artifacts, &bytes, &fw).expect("warm");
    assert_eq!(warm.block_cache.misses, 0, "sanity: cache retained");

    soc.reset();
    let after_reset = soc.run_firmware(&artifacts, &bytes, &fw).expect("reset");
    assert_eq!(
        after_reset.block_cache.misses, cold.block_cache.misses,
        "a reset SoC decodes exactly like a cold one"
    );
    assert_eq!(after_reset.cycles, cold.cycles);
    assert_eq!(after_reset.instructions, cold.instructions);
    assert_eq!(after_reset.raw_output, cold.raw_output);
}

/// A different firmware image must not reuse the previous firmware's
/// decode: the cache is keyed by image content, so swapping firmwares
/// decodes anew and swapping back is warm again only if the image is
/// truly identical.
#[test]
fn decoded_cache_is_keyed_by_firmware_image() {
    let (artifacts, bytes, fw) = lenet_setup();
    let wfi_fw = Firmware::build_with(
        &artifacts,
        rvnv_compiler::codegen::CodegenOptions {
            wait_mode: rvnv_compiler::codegen::WaitMode::Wfi,
            ..rvnv_compiler::codegen::CodegenOptions::default()
        },
    )
    .expect("wfi fw");

    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let poll = soc.run_firmware(&artifacts, &bytes, &fw).expect("poll");
    let wfi = soc.run_firmware(&artifacts, &bytes, &wfi_fw).expect("wfi");
    assert!(
        wfi.block_cache.misses > 0,
        "a different image must decode from scratch"
    );
    assert_eq!(wfi.raw_output, poll.raw_output, "same model, same output");

    // Back to the first firmware: its decode was replaced, so this is
    // cold again — but still bit-identical to the first run.
    let poll2 = soc.run_firmware(&artifacts, &bytes, &fw).expect("poll 2");
    assert_eq!(poll2.cycles, poll.cycles);
    assert_eq!(poll2.instructions, poll.instructions);
    assert_eq!(poll2.raw_output, poll.raw_output);
}
