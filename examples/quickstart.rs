//! Quickstart: compile LeNet-5 and run one bare-metal inference on the
//! co-simulated SoC, then check the result against the golden executor.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rvnv_compiler::{compile, CompileOptions};
use rvnv_nn::exec::Executor;
use rvnv_nn::{zoo, Tensor};
use rvnv_soc::soc::{Soc, SocConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the model (deterministic synthetic weights).
    let net = zoo::lenet5(42);
    println!("model: {} ({} layers)", net.name(), net.layer_count());

    // 2. Compile for nv_small INT8: calibration, fusion, DRAM layout,
    //    register-command stream, weight file.
    let artifacts = compile(&net, &CompileOptions::int8())?;
    println!(
        "compiled: {} hardware ops, {} register writes, {} weight bytes",
        artifacts.ops.len(),
        artifacts.reg_writes(),
        artifacts.weights.total_bytes()
    );

    // 3. Build the ZCU102-like SoC and run the bare-metal flow:
    //    PS preload -> SmartConnect switch -> firmware executes from
    //    program memory, programming NVDLA via load/store.
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let input = Tensor::random(net.input_shape(), 7);
    let result = soc.run_inference(&artifacts, &input)?;
    println!(
        "inference: {} cycles = {:.2} ms @100 MHz ({} instructions, firmware {} B)",
        result.cycles,
        result.latency_ms(100_000_000),
        result.instructions,
        result.firmware_bytes,
    );

    // 4. Verify against the golden f32 executor (pre-softmax logits).
    let all = Executor::new(&net).run_all(&input)?;
    let logits = &all[all.len() - 2];
    println!(
        "classification: NVDLA says {}, golden executor says {} -> {}",
        result.output.argmax(),
        logits.argmax(),
        if result.output.argmax() == logits.argmax() {
            "MATCH"
        } else {
            "MISMATCH"
        }
    );

    // 5. Where did the cycles go?
    let p = result.pipeline;
    println!(
        "core: {} retired, CPI(milli) {}, mem stalls {}, branch stalls {}",
        p.retired,
        p.cpi_milli(),
        p.mem_stalls,
        p.branch_stalls
    );
    println!(
        "nvdla: {} ops, {} MACs, {} DMA bytes",
        result.nvdla.total_ops(),
        result.nvdla.total_macs(),
        result.nvdla.total_dma_bytes()
    );
    Ok(())
}
