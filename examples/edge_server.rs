//! Multi-model edge server: several networks resident in one DRAM,
//! frames batched across them.
//!
//! Where `edge_deployment` serves one model, an edge *server* juggles a
//! mixed request stream — say a detector and a classifier sharing one
//! accelerator. This example pins LeNet-5 and ResNet-18 side by side at
//! disjoint DRAM bases (`rvnv_soc::batch::layout_models`), drains an
//! interleaved frame queue under all three scheduling policies — first
//! serially, then **pipelined** (frame N+1's input streams through the
//! SmartConnect into the other double-buffer slot while frame N
//! computes, contending at the DRAM arbiter) — and shows the host-side
//! scale-out across worker SoC replicas. Every frame is warm: an
//! in-place (scoped) fabric reset plus an input reload — never a
//! recompile, never a weight restream, even when consecutive frames hit
//! different models. Serially, modeled cycles are policy-independent;
//! pipelined, the policies genuinely trade latency against makespan
//! (see docs/SCHEDULING.md).
//!
//! ```sh
//! cargo run --release --example edge_server
//! ```

use std::sync::Arc;

use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::{ArtifactCache, Artifacts, CompileOptions};
use rvnv_nn::zoo::Model;
use rvnv_nn::Tensor;
use rvnv_soc::batch::{
    layout_models, run_parallel, BatchScheduler, Frame, PipelinedScheduler, Policy,
};
use rvnv_soc::soc::SocConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The server flow is timing throughput: timing-only SoC, wfi
    // firmware (the poll loop retires ~100x more instructions for the
    // same modeled latency).
    let config = SocConfig::zcu102_timing_only();
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;

    let nets = [Model::LeNet5.build(1), Model::ResNet18.build(1)];
    let cache = ArtifactCache::new();
    let artifacts: Vec<Arc<Artifacts>> = layout_models(&cache, &nets, &opt)?;
    for a in &artifacts {
        println!(
            "{:10} footprint [{:#010x}, {:#010x}) — {} KB weights",
            a.model,
            a.dram_base,
            a.dram_used,
            a.weights.total_bytes() / 1024,
        );
    }

    // A mixed stream: two LeNet frames per ResNet frame, as a camera
    // pipeline with a cheap gating model in front would produce.
    let frames: Vec<Frame> = (0..12)
        .map(|i| {
            let m = usize::from(i % 3 == 2);
            let input = Tensor::random(nets[m].input_shape(), 4000 + i as u64);
            Frame {
                model: m,
                bytes: artifacts[m].quantize_input(&input),
            }
        })
        .collect();

    let policies = [
        Policy::RoundRobin,
        Policy::ShortestQueueFirst,
        Policy::EarliestFinish,
    ];
    for policy in policies {
        let mut sched = BatchScheduler::new(config.clone(), policy);
        for a in &artifacts {
            sched.add_model(a.clone(), codegen)?;
        }
        for f in &frames {
            sched.enqueue_bytes(f.model, f.bytes.clone())?;
        }
        let mut order = String::new();
        let report = sched.run_with(|m, _| order.push(if m == 0 { 'L' } else { 'R' }))?;
        println!(
            "\npolicy {:3} (serial): service order {order}, {} cycle makespan, {:.1} frames/s e2e",
            policy.name(),
            report.makespan_cycles,
            report.e2e_fps(config.soc_hz),
        );
        for (name, stats) in &report.per_model {
            println!(
                "  {:10} {} frames, {:>9} cycles/frame ({:.2} ms service), arbiter wait {}",
                name,
                stats.frames,
                stats.cycles_per_frame(),
                config.cycles_to_ms(stats.latency_per_frame()),
                stats.arbiter_wait,
            );
        }
    }

    // The same stream with the preload pipelined behind the previous
    // frame's compute: outputs stay bit-identical; the makespan and
    // warm-frame latency drop, and — unlike the serial drain — the
    // totals now *depend on the policy*, because each frame's DRAM
    // contention depends on which frame preloads behind it.
    for policy in policies {
        let mut sched = PipelinedScheduler::new(config.clone(), policy);
        for a in &artifacts {
            sched.add_model(a.clone(), codegen)?;
        }
        for f in &frames {
            sched.enqueue_bytes(f.model, f.bytes.clone())?;
        }
        let mut order = String::new();
        let report = sched.run_with(|m, _| order.push(if m == 0 { 'L' } else { 'R' }))?;
        println!(
            "policy {:3} (pipelined): order {order}, {} cycle makespan, warm frame {:.3} ms",
            policy.name(),
            report.makespan_cycles,
            config.cycles_to_ms(report.warm_frame_latency()),
        );
    }

    // Host-side scale-out: the same stream sharded across worker SoC
    // replicas (each with both models resident). Modeled cycles are
    // identical by construction; host wall-clock drops with cores.
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    for workers in [1, threads] {
        let start = std::time::Instant::now();
        let report = run_parallel(
            &config,
            Policy::RoundRobin,
            &artifacts,
            codegen,
            &frames,
            workers,
        )?;
        let host = start.elapsed().as_secs_f64();
        println!(
            "\n{workers} worker SoC(s): {} frames in host {:.1} ms ({:.1} frames/s simulated)",
            report.total_frames(),
            host * 1e3,
            report.total_frames() as f64 / host.max(1e-9),
        );
    }
    Ok(())
}
