//! Chaos sweep: fault rate vs. SLO attainment — the graceful
//! degradation curve.
//!
//! A resilient server's defining curve is SLO attainment against
//! injected fault rate: flat near 100% while the retry/failover
//! machinery absorbs the faults, then degrading *gracefully* (no
//! cliff) as retry burns and re-warm recoveries eat the pool's
//! headroom. This example sweeps a composite seeded fault plan — bit
//! flips, typed bus errors, latency spikes, firmware hangs and worker
//! crashes in a fixed mix — from quiet to a 20% composite rate over an
//! interleaved LeNet-5/ResNet-18 mix, and prints that curve.
//!
//! The sweep runs on the **plan** path (each point is a pure queueing
//! simulation against the calibrated service profile, with the fault
//! lottery drawn per frame attempt), so a dense curve is host-cheap.
//! One faulted point is then **replayed** on real worker SoCs
//! (`Server::serve`): the served frames run clean on the machine while
//! the fault burns exist in modeled time, so replay divergence stays 0
//! even under chaos — see docs/RESILIENCE.md for why that is the right
//! decomposition (the bus-level realism of each fault class is pinned
//! separately by the SoC chaos tests).
//!
//! ```sh
//! cargo run --release --example chaos
//! ```

use std::sync::Arc;

use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::{ArtifactCache, Artifacts, CompileOptions};
use rvnv_nn::zoo::Model;
use rvnv_soc::batch::layout_models;
use rvnv_soc::serve::{ArrivalProcess, FaultSpec, ServeReport, ServeSpec, Server};
use rvnv_soc::soc::SocConfig;
use rvnv_soc::sweep::fan_out;

/// The fault mix at a composite rate of `per_million` events per
/// million frame attempts: mostly transient (errors, spikes), some
/// silent corruption, a few hangs, rare crashes.
fn fault_mix(per_million: u32) -> FaultSpec {
    FaultSpec {
        seed: 0xC0FFEE,
        flip_per_million: per_million / 5,
        error_per_million: 2 * per_million / 5,
        spike_per_million: per_million / 5,
        spike_us: 2_000,
        hang_per_million: per_million / 10,
        crash_per_million: per_million / 10,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SocConfig::zcu102_timing_only();
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;

    let nets = [Model::LeNet5.build(1), Model::ResNet18.build(1)];
    let cache = ArtifactCache::new();
    let artifacts: Vec<Arc<Artifacts>> = layout_models(&cache, &nets, &opt)?;
    let calib = std::time::Instant::now();
    let server = Server::new(config.clone(), artifacts, codegen)?;
    println!(
        "calibrated 2-model service profile in {:.0} ms (re-warm recovery {} cycles)",
        calib.elapsed().as_secs_f64() * 1e3,
        server.service_model().rewarm,
    );

    // Moderate load (below the saturation knee) so the curve isolates
    // fault handling, not queueing collapse.
    let spec_at = |rate: u32| ServeSpec {
        process: ArrivalProcess::Poisson,
        rate_rps: 120,
        duration_ms: 1_000,
        seed: 42,
        workers: 2,
        policy: rvnv_soc::batch::Policy::RoundRobin,
        pipelined: false,
        queue_depth: 8,
        slo_us: 20_000,
        timeout_us: 10_000,
        retries: 2,
        faults: Some(fault_mix(rate)),
    };
    let rates: Vec<u32> = vec![0, 10_000, 25_000, 50_000, 75_000, 100_000, 150_000, 200_000];

    // Rate points are independent plans against the shared profile:
    // fan them out across host threads like any other sweep.
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let reports: Vec<Result<ServeReport, String>> = fan_out(rates.len(), threads, |i| {
        server.plan(&spec_at(rates[i])).map_err(|e| e.to_string())
    });
    println!(
        "\n2 workers, 1 s of Poisson arrivals per point, timeout 10 ms, 2 retries, SLO 20 ms:"
    );
    println!("  fault%  injected  retries  failover  shed+exh   p99 ms  drop%   SLO%");
    for (rate, report) in rates.iter().zip(reports) {
        let r = report.map_err(|e| -> Box<dyn std::error::Error> { e.into() })?;
        let f = r.faults;
        println!(
            "  {:>5.1}  {:>8}  {:>7}  {:>8}  {:>8}  {:>7.2}  {:>5.1}  {:>5.1}",
            *rate as f64 / 10_000.0,
            f.injected(),
            f.retries,
            f.failovers,
            f.sheds + f.exhausted,
            config.cycles_to_ms(r.total.p99),
            100.0 * r.drop_rate(),
            100.0 * r.slo_attainment(),
        );
    }

    // Replay one faulted point on real SoCs: the dispatch plan must
    // stay cycle-exact even with the chaos machinery armed.
    let spec = ServeSpec {
        duration_ms: 200,
        ..spec_at(100_000)
    };
    let r = server.serve(&spec)?;
    println!(
        "\nreplayed the 10% point on real worker SoCs: {} frames, {} faults injected, \
         replay divergence {}, host {:.0} ms",
        r.served,
        r.faults.injected(),
        r.replay_divergence,
        r.host_seconds * 1e3,
    );
    assert_eq!(r.replay_divergence, 0, "chaos must not move the replay");
    Ok(())
}
