//! Edge-deployment scenario: ResNet-18 (CIFAR) on the `nv_small` SoC.
//!
//! This is the paper's motivating use case — a resource-constrained
//! edge device classifying camera frames without an OS. The example
//! runs a batch of frames on the compile-once/run-many hot path (the
//! weight image is made resident in DRAM before the first frame, and
//! every frame is a warm in-place reset + input reload), then reports
//! per-engine utilization, arbiter contention and the storage budget
//! versus a Linux deployment.
//!
//! ```sh
//! cargo run --release --example edge_deployment
//! ```

use rvnv_compiler::{compile, CompileOptions};
use rvnv_nn::exec::Executor;
use rvnv_nn::{zoo, Tensor};
use rvnv_nvdla::regs::Block;
use rvnv_soc::baseline::LinuxRuntimeModel;
use rvnv_soc::firmware::{Firmware, StorageFootprint};
use rvnv_soc::soc::{Soc, SocConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = zoo::resnet18_cifar(2024);
    // Trace-replay flow, as the paper deploys it.
    let options = CompileOptions::int8().unfused();
    let artifacts = compile(&net, &options)?;
    let fw = Firmware::build(&artifacts)?;
    println!(
        "ResNet-18 (CIFAR): {} layers -> {} hardware ops, firmware {} B, weights {} B",
        net.layer_count(),
        artifacts.ops.len(),
        fw.size_bytes(),
        artifacts.weights.total_bytes()
    );

    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    // Edge servers preload the weights once, before the first frame
    // arrives; every frame after that is a warm run.
    let preload = std::time::Instant::now();
    soc.load_artifacts(&artifacts)?;
    println!(
        "weights resident in DRAM ({} B preloaded once, host {:.1} ms)",
        artifacts.weights.total_bytes(),
        preload.elapsed().as_secs_f64() * 1e3
    );
    let golden = Executor::new(&net);
    let frames = 5;
    let mut agree = 0;
    let mut total_cycles = 0u64;
    let mut host_secs = 0.0f64;
    let mut last = None;
    for frame in 0..frames {
        let input = Tensor::random(net.input_shape(), 1000 + frame);
        let frame_start = std::time::Instant::now();
        let result = soc.run_firmware(&artifacts, &artifacts.quantize_input(&input), &fw)?;
        host_secs += frame_start.elapsed().as_secs_f64();
        let all = golden.run_all(&input)?;
        let logits = &all[all.len() - 2];
        if result.output.argmax() == logits.argmax() {
            agree += 1;
        }
        total_cycles += result.cycles;
        println!(
            "frame {frame}: class {} ({:.2} ms, golden class {})",
            result.output.argmax(),
            result.latency_ms(100_000_000),
            logits.argmax()
        );
        last = Some(result);
    }
    let result = last.expect("ran at least one frame");
    println!(
        "\nINT8 vs golden-f32 agreement: {agree}/{frames} frames \
         (disagreements are quantization noise on synthetic weights)"
    );
    println!(
        "throughput: {:.1} frames/s @100 MHz modeled, {:.1} frames/s simulated on the host",
        frames as f64 / (total_cycles as f64 / 100e6),
        frames as f64 / host_secs
    );

    // Per-layer hotspots from the joined profile.
    let profile = rvnv_soc::profile::InferenceProfile::new(&artifacts, &result);
    println!(
        "\naccelerator occupancy {}%; three hottest layers:",
        profile.occupancy_percent()
    );
    for l in profile.hotspots(3) {
        println!("  {:<18} {:<5} {:>9} cycles", l.name, l.engine, l.cycles());
    }

    println!("\nper-engine activity (last frame):");
    for block in [Block::Cacc, Block::Sdp, Block::Pdp] {
        let e = result.nvdla.engine(block);
        println!(
            "  {:5} ops {:3}  compute cycles {:>9}  dma r/w {:>9}/{:>9} B",
            block.name(),
            e.ops,
            e.compute_cycles,
            e.dma_read_bytes,
            e.dma_write_bytes
        );
    }
    println!(
        "core: {} instructions, {} cycles stalled on memory, {} cycles at the arbiter",
        result.instructions, result.pipeline.mem_stalls, result.cpu_arbiter_wait
    );

    // Deployment budget.
    let bm = StorageFootprint::bare_metal(&fw, &artifacts);
    let lx = StorageFootprint::linux(&artifacts);
    println!(
        "\nstorage: bare-metal {} B software vs Linux {} B — {}x smaller",
        bm.software_bytes,
        lx.software_bytes,
        lx.software_bytes / bm.software_bytes.max(1)
    );
    let baseline = LinuxRuntimeModel::esp_ariane_50mhz();
    let data = artifacts.weights.total_bytes() as u64 + artifacts.input_len as u64;
    println!(
        "latency:  bare-metal {:.1} ms vs Linux-stack {:.0} ms",
        result.latency_ms(100_000_000),
        baseline.latency_ms(result.cycles, artifacts.ops.len() as u64, data)
    );
    Ok(())
}
