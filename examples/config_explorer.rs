//! Configuration explorer: `nv_small` vs `nv_full` across the model zoo.
//!
//! The paper's conclusion claims the SoC "has the flexibility to
//! support nv_full by modifying parameters such as the AXI interface
//! width". This example sweeps both configurations over all six models
//! on the virtual platform (timing-only), prints the speedups, and
//! checks each configuration against the ZCU102 resource budget.
//!
//! The sweep fans out across worker threads with `std::thread::scope`:
//! every (model, configuration) cell is an independent task — its own
//! compilation and its own virtual platform — pulled from a shared work
//! queue. On an N-core host the sweep finishes close to N× faster than
//! the old serial walk. (No [`rvnv_compiler::ArtifactCache`] here: each
//! cell compiles a distinct (model, options) pair exactly once, so
//! there is nothing to share — see `rv-nvdla run --repeat`/`sweep` for
//! the flows the cache serves.)
//!
//! ```sh
//! cargo run --release --example config_explorer
//! ```

use std::time::Instant;

use rvnv_bus::dram::DramTiming;
use rvnv_compiler::{compile, CompileOptions, VirtualPlatform};
use rvnv_nn::zoo::Model;
use rvnv_nvdla::{HwConfig, Precision};
use rvnv_soc::resources;

fn vp_cycles(model: Model, hw: &HwConfig, precision: Precision) -> Option<u64> {
    let mut opt = match precision {
        Precision::Int8 => CompileOptions::int8(),
        Precision::Fp16 => CompileOptions::fp16(),
    };
    opt.hw = hw.clone();
    opt.calib_inputs = usize::from(precision == Precision::Int8);
    let artifacts = compile(&model.build(1), &opt).ok()?;
    let timing = DramTiming {
        cas: 6,
        rcd: 6,
        rp: 6,
        controller: 4,
        row_bytes: 2048,
        bytes_per_beat: 4,
    };
    let mut vp = VirtualPlatform::with_timing(hw.clone(), 512 << 20, timing);
    vp.set_functional(false);
    let input = vec![0u8; artifacts.input_len];
    Some(vp.run(&artifacts, &input, false).ok()?.cycles)
}

fn main() {
    let small = HwConfig::nv_small();
    let full = HwConfig::nv_full();

    // Build the task list: each cell of the table is independent work.
    // INT8 calibration needs a golden run; the heavyweight models stay
    // nv_full-only (the paper's nv_small flow also only covers the
    // small set).
    let tasks: Vec<(usize, bool)> = Model::ALL
        .iter()
        .enumerate()
        .flat_map(|(i, m)| {
            let mut t = vec![(i, false)];
            if Model::NV_SMALL.contains(m) {
                t.push((i, true));
            }
            t
        })
        .collect();

    let threads = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(tasks.len());
    let start = Instant::now();
    let cells = rvnv_soc::sweep::fan_out(tasks.len(), threads, |i| {
        let (model, is_small) = tasks[i];
        let m = Model::ALL[model];
        if is_small {
            vp_cycles(m, &small, Precision::Int8)
        } else {
            vp_cycles(m, &full, Precision::Fp16)
        }
    });

    let mut small_cycles = vec![None; Model::ALL.len()];
    let mut full_cycles = vec![None; Model::ALL.len()];
    for (&(model, is_small), cycles) in tasks.iter().zip(cells) {
        if is_small {
            small_cycles[model] = cycles;
        } else {
            full_cycles[model] = cycles;
        }
    }
    println!(
        "swept {} configurations on {} threads in {:.0} ms\n",
        tasks.len(),
        threads,
        start.elapsed().as_secs_f64() * 1e3,
    );

    println!("model           nv_small(int8)    nv_full(fp16)     speedup");
    for (i, model) in Model::ALL.iter().enumerate() {
        let s = small_cycles[i].map_or("no calib".to_string(), |c| c.to_string());
        let f = full_cycles[i].map_or("-".to_string(), |c| c.to_string());
        let ratio = match (small_cycles[i], full_cycles[i]) {
            (Some(a), Some(b)) if b > 0 => format!("{:.1}x", a as f64 / b as f64),
            _ => "-".to_string(),
        };
        println!("{:<15} {:<17} {:<17} {}", model.name(), s, f, ratio);
    }

    println!("\nZCU102 fit check:");
    for hw in [&small, &full] {
        let u = resources::nvdla(hw);
        println!(
            "  {:<9} {:>7} LUTs, {:>4} BRAM, {:>4} DSP -> fits: {}",
            hw.name,
            u.lut,
            u.bram,
            u.dsp,
            resources::fits_zcu102(&u)
        );
    }
    println!(
        "\n(The paper: nv_full 'is an enormous design and does not fit on most \
         FPGAs, including the ZCU102'.)"
    );
}
