//! Configuration explorer: `nv_small` vs `nv_full` across the model zoo.
//!
//! The paper's conclusion claims the SoC "has the flexibility to
//! support nv_full by modifying parameters such as the AXI interface
//! width". This example sweeps both configurations over all six models
//! on the virtual platform (timing-only), prints the speedups, and
//! checks each configuration against the ZCU102 resource budget.
//!
//! ```sh
//! cargo run --release --example config_explorer
//! ```

use rvnv_bus::dram::DramTiming;
use rvnv_compiler::{compile, CompileOptions, VirtualPlatform};
use rvnv_nn::zoo::Model;
use rvnv_nvdla::{HwConfig, Precision};
use rvnv_soc::resources;

fn vp_cycles(model: Model, hw: &HwConfig, precision: Precision) -> Option<u64> {
    let mut opt = match precision {
        Precision::Int8 => CompileOptions::int8(),
        Precision::Fp16 => CompileOptions::fp16(),
    };
    opt.hw = hw.clone();
    opt.calib_inputs = usize::from(precision == Precision::Int8);
    let artifacts = compile(&model.build(1), &opt).ok()?;
    let timing = DramTiming {
        cas: 6,
        rcd: 6,
        rp: 6,
        controller: 4,
        row_bytes: 2048,
        bytes_per_beat: 4,
    };
    let mut vp = VirtualPlatform::with_timing(hw.clone(), 512 << 20, timing);
    vp.set_functional(false);
    let input = vec![0u8; artifacts.input_len];
    Some(vp.run(&artifacts, &input, false).ok()?.cycles)
}

fn main() {
    let small = HwConfig::nv_small();
    let full = HwConfig::nv_full();

    println!("model           nv_small(int8)    nv_full(fp16)     speedup");
    // INT8 calibration needs a golden run; keep the heavyweight models
    // timing-only on the small config by skipping calibration-expensive
    // ones (the paper's nv_small flow also only covers the small set).
    for model in Model::ALL {
        let small_cycles = if Model::NV_SMALL.contains(&model) {
            vp_cycles(model, &small, Precision::Int8)
        } else {
            None // no INT8 calibration tables — the paper's limitation
        };
        let full_cycles = vp_cycles(model, &full, Precision::Fp16);
        let s = small_cycles.map_or("no calib".to_string(), |c| c.to_string());
        let f = full_cycles.map_or("-".to_string(), |c| c.to_string());
        let ratio = match (small_cycles, full_cycles) {
            (Some(a), Some(b)) if b > 0 => format!("{:.1}x", a as f64 / b as f64),
            _ => "-".to_string(),
        };
        println!("{:<15} {:<17} {:<17} {}", model.name(), s, f, ratio);
    }

    println!("\nZCU102 fit check:");
    for hw in [&small, &full] {
        let u = resources::nvdla(hw);
        println!(
            "  {:<9} {:>7} LUTs, {:>4} BRAM, {:>4} DSP -> fits: {}",
            hw.name,
            u.lut,
            u.bram,
            u.dsp,
            resources::fits_zcu102(&u)
        );
    }
    println!(
        "\n(The paper: nv_full 'is an enormous design and does not fit on most \
         FPGAs, including the ZCU102'.)"
    );
}
