//! The paper's software generation flow (Fig. 1 / Fig. 3), end to end.
//!
//! Compiles LeNet-5, executes it on the virtual platform with
//! transaction logging, scrapes the log into the configuration file and
//! weight file, converts the configuration file to RISC-V assembly,
//! assembles it, and finally runs the *scraped* firmware on the SoC —
//! proving the toolflow is closed.
//!
//! ```sh
//! cargo run --release --example trace_toolflow
//! ```

use rvnv_compiler::codegen::{generate_assembly, generate_machine_code, CodegenOptions};
use rvnv_compiler::trace::{parse_config_file, write_config_file};
use rvnv_compiler::vplog::{extract_config, extract_weights};
use rvnv_compiler::{compile, CompileOptions, VirtualPlatform};
use rvnv_nn::{zoo, Tensor};
use rvnv_nvdla::HwConfig;
use rvnv_soc::firmware::Firmware;
use rvnv_soc::soc::{Soc, SocConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = zoo::lenet5(1);
    let artifacts = compile(&net, &CompileOptions::int8())?;
    let input = Tensor::random(net.input_shape(), 3);
    let input_bytes = artifacts.quantize_input(&input);

    // --- Stage 1: execution on the virtual platform, logging CSB/DBB.
    let mut vp = VirtualPlatform::new(HwConfig::nv_small(), 16 << 20);
    let run = vp.run(&artifacts, &input_bytes, true)?;
    println!(
        "VP executed {} commands in {} cycles",
        run.commands, run.cycles
    );
    let text = run.log.to_text();
    println!("VP log: {} lines; first five:", text.lines().count());
    for line in text.lines().take(5) {
        println!("    {line}");
    }

    // --- Stage 2: configuration file generation from csb_adaptor lines.
    let config = extract_config(&run.log);
    let config_text = write_config_file(&config);
    println!(
        "\nconfiguration file: {} commands ({} bytes); first three:",
        config.len(),
        config_text.len()
    );
    for line in config_text.lines().skip(1).take(3) {
        println!("    {line}");
    }
    // It parses back and matches what the compiler emitted.
    assert_eq!(parse_config_file(&config_text)?, artifacts.commands);

    // --- Stage 3: weight extraction from dbb_adaptor lines
    //     (first-occurrence dedup).
    let weights = extract_weights(&run.log);
    println!(
        "\nweight file: {} deduplicated 64-bit beats ({} bytes of weights+tables)",
        weights.len(),
        artifacts.weights.total_bytes()
    );

    // --- Stage 4: RISC-V assembly + machine code.
    let asm = generate_assembly(&config);
    let image = generate_machine_code(&config, CodegenOptions::default())?;
    println!(
        "\nassembly: {} lines -> machine code {} bytes; first five lines:",
        asm.lines().count(),
        image.len()
    );
    for line in asm.lines().take(5) {
        println!("    {line}");
    }

    // --- Stage 5: run the scraped firmware on the SoC and compare with
    //     the firmware built directly from the compiler's commands.
    let mut soc = Soc::new(SocConfig::zcu102_nv_small());
    let fw = Firmware {
        assembly: asm,
        image,
    };
    let result = soc.run_firmware(&artifacts, &input_bytes, &fw)?;
    println!(
        "\nscraped firmware on SoC: {} cycles, argmax {}",
        result.cycles,
        result.output.argmax()
    );
    let direct = soc.run_inference(&artifacts, &input)?;
    assert_eq!(result.cycles, direct.cycles, "toolflow round trip is exact");
    assert_eq!(result.output.argmax(), direct.output.argmax());
    println!("round trip: scraped firmware is cycle-identical to direct compilation");
    Ok(())
}
