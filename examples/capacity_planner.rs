//! Capacity planner: the minimal worker count that holds an SLO.
//!
//! The question a fleet operator actually asks is not "what is the
//! p99?" but "**how many workers** do I need so the p99 stays under my
//! SLO at my expected rate?". This example answers it twice:
//!
//! 1. **Homogeneous**: one nv_small pool serving a LeNet-5/ResNet-18
//!    mix under a diurnal trace — sweep the worker count, find the
//!    smallest N whose p99 total latency meets the SLO, then
//!    spot-replay sampled windows of that plan on real SoCs
//!    (divergence must be 0: the answer is pinned to the machine, not
//!    to a curve fit).
//! 2. **Heterogeneous**: attach one nv_full worker behind a
//!    model-affinity balancer and re-ask — how much nv_small capacity
//!    does one big-configuration worker replace?
//!
//! The sweep runs on the **plan** path (calibrate once, then each
//! worker count is a pure queueing simulation in modeled time), which
//! is what makes asking "what if N=1..8?" cheap. See docs/FLEET.md.
//!
//! ```sh
//! cargo run --release --example capacity_planner
//! ```

use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::CompileOptions;
use rvnv_nn::zoo::Model;
use rvnv_soc::fleet::{Fleet, FleetSpec, PoolSpec, RoutePolicy, SocClass, TrafficShape};

const RATE_RPS: u64 = 500;
const SLO_US: u64 = 12_000;
const MAX_WORKERS: usize = 8;

fn spec_with(pools: Vec<PoolSpec>) -> FleetSpec {
    FleetSpec {
        pools,
        route: RoutePolicy::ModelAffinity,
        shape: TrafficShape::Diurnal,
        rate_rps: RATE_RPS,
        duration_ms: 1_000,
        seed: 42,
        slo_us: SLO_US,
        ..FleetSpec::default()
    }
}

fn pool(class: SocClass, workers: usize) -> PoolSpec {
    PoolSpec {
        class,
        workers,
        min_workers: workers,
        max_workers: workers,
        queue_depth: 16,
        models: None,
    }
}

/// Sweep pool 0's worker count and return the smallest N that holds
/// the SLO at p99 (printing the whole curve on the way).
fn min_workers(fleet: &Fleet, base: &FleetSpec) -> Result<usize, Box<dyn std::error::Error>> {
    println!("  workers  offered  achieved   p99 ms  drop%  shed   SLO%");
    let mut winner = None;
    for n in 1..=MAX_WORKERS {
        let mut spec = base.clone();
        spec.pools[0] = PoolSpec {
            workers: n,
            min_workers: n,
            max_workers: n,
            ..spec.pools[0].clone()
        };
        let r = fleet.plan(&spec)?;
        let p99_ms = r.total.p99 as f64 * 1e3 / r.soc_hz as f64;
        let holds = r.total.p99 < r.slo_cycles && r.shed == 0;
        println!(
            "  {n:>7}  {:>7.1}  {:>8.1}  {:>7.2}  {:>5.1}  {:>4}  {:>5.1}{}",
            r.offered_rate(),
            r.achieved_rate(),
            p99_ms,
            100.0 * r.drop_rate(),
            r.shed,
            100.0 * r.slo_attainment(),
            if holds && winner.is_none() {
                "  <- minimal"
            } else {
                ""
            },
        );
        if holds && winner.is_none() {
            winner = Some(n);
        }
    }
    winner.ok_or_else(|| {
        format!("no worker count up to {MAX_WORKERS} holds p99 < {SLO_US} us").into()
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    let nets = [Model::LeNet5.build(1), Model::ResNet18.build(1)];

    // Question 1: how many nv_small workers hold p99 < 12 ms at
    // 500 req/s of diurnal traffic?
    let small_spec = spec_with(vec![pool(SocClass::NvSmall, 1)]);
    let calib = std::time::Instant::now();
    let small_fleet = Fleet::new(&nets, &opt, codegen, &small_spec)?;
    println!(
        "calibrated nv_small pool in {:.0} ms; asking: minimal workers with \
         p99 < {} ms at {RATE_RPS} req/s (diurnal)?",
        calib.elapsed().as_secs_f64() * 1e3,
        SLO_US / 1000,
    );
    let n_small = min_workers(&small_fleet, &small_spec)?;
    println!("  answer: {n_small} nv_small worker(s)");

    // Pin the answer to the machine: spot-replay sampled windows of the
    // winning plan cycle-exactly on real SoCs.
    let mut winning = small_spec.clone();
    winning.pools[0] = PoolSpec {
        workers: n_small,
        min_workers: n_small,
        max_workers: n_small,
        ..winning.pools[0].clone()
    };
    winning.duration_ms = 300;
    let r = small_fleet.run(&winning)?;
    println!(
        "  spot-replay of the winning plan: {} frame(s) on real SoCs, divergence {}\n",
        r.replayed_frames, r.replay_divergence,
    );
    if r.replay_divergence != 0 {
        return Err("spot-replay diverged from the plan".into());
    }

    // Question 2: with one nv_full worker behind a model-affinity
    // balancer, how many nv_small workers does the same SLO need?
    let hetero_spec = spec_with(vec![pool(SocClass::NvSmall, 1), pool(SocClass::NvFull, 1)]);
    let calib = std::time::Instant::now();
    let hetero_fleet = Fleet::new(&nets, &opt, codegen, &hetero_spec)?;
    println!(
        "calibrated nv_small+nv_full fleet in {:.0} ms; same question with one \
         nv_full worker attached:",
        calib.elapsed().as_secs_f64() * 1e3,
    );
    let n_hetero = min_workers(&hetero_fleet, &hetero_spec)?;
    println!(
        "  answer: {n_hetero} nv_small worker(s) + 1 nv_full — one nv_full worker \
         replaces {} nv_small worker(s) at this SLO",
        n_small.saturating_sub(n_hetero),
    );
    Ok(())
}
