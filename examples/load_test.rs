//! Load test: offered rate vs. tail latency — the serving hockey stick.
//!
//! A server's defining curve is p99 latency against offered load: flat
//! (p99 ≈ service latency) while workers keep up, then bending sharply
//! upward at the saturation knee, where queue-wait takes over the tail
//! while achieved throughput pins at capacity and the bounded admission
//! queue starts dropping. This example sweeps an interleaved
//! LeNet-5/ResNet-18 mix across offered rates on one warm worker SoC
//! and prints that curve, serial vs. pipelined.
//!
//! The sweep runs on the **plan** path: the server calibrates its
//! per-model/per-pair service profile on a real SoC once, then each
//! rate point is a pure queueing simulation in modeled time — which is
//! what makes a dense sweep cheap. One point is then **replayed** on
//! real worker SoCs (`Server::serve`) to show the plan is cycle-exact
//! (`replay divergence 0`). See docs/SERVING.md.
//!
//! ```sh
//! cargo run --release --example load_test
//! ```

use std::sync::Arc;

use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::{ArtifactCache, Artifacts, CompileOptions};
use rvnv_nn::zoo::Model;
use rvnv_soc::batch::layout_models;
use rvnv_soc::serve::{ArrivalProcess, ServeReport, ServeSpec, Server};
use rvnv_soc::soc::SocConfig;
use rvnv_soc::sweep::fan_out;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SocConfig::zcu102_timing_only();
    let codegen = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;

    let nets = [Model::LeNet5.build(1), Model::ResNet18.build(1)];
    let cache = ArtifactCache::new();
    let artifacts: Vec<Arc<Artifacts>> = layout_models(&cache, &nets, &opt)?;
    let calib = std::time::Instant::now();
    let server = Server::new(config.clone(), artifacts, codegen)?;
    println!(
        "calibrated 2-model service profile in {:.0} ms (per-model compute {:?} cycles)",
        calib.elapsed().as_secs_f64() * 1e3,
        server.service_model().compute,
    );

    let rates: Vec<u64> = vec![40, 80, 120, 160, 200, 230, 260, 300, 400, 600];
    let spec_at = |rate: u64, pipelined: bool| ServeSpec {
        process: ArrivalProcess::Poisson,
        rate_rps: rate,
        duration_ms: 1_000,
        seed: 42,
        workers: 1,
        policy: rvnv_soc::batch::Policy::RoundRobin,
        pipelined,
        queue_depth: 8,
        slo_us: 20_000,
        timeout_us: 0,
        retries: 0,
        faults: None,
    };

    for pipelined in [false, true] {
        // Rate points are independent plans against the shared profile:
        // fan them out across host threads like any other sweep.
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let reports: Vec<Result<ServeReport, String>> = fan_out(rates.len(), threads, |i| {
            server
                .plan(&spec_at(rates[i], pipelined))
                .map_err(|e| e.to_string())
        });
        println!(
            "\n{} worker, 1 s of Poisson arrivals per point, queue depth 8, SLO 20 ms:",
            if pipelined { "pipelined" } else { "serial" },
        );
        println!("  rate   offered  achieved   p50 ms   p99 ms  wait p99  drop%   SLO%");
        for (rate, report) in rates.iter().zip(reports) {
            let r = report.map_err(|e| -> Box<dyn std::error::Error> { e.into() })?;
            println!(
                "  {rate:>4}  {:>7.1}  {:>8.1}  {:>7.2}  {:>7.2}  {:>8.2}  {:>5.1}  {:>5.1}",
                r.offered_rate(),
                r.achieved_rate(),
                config.cycles_to_ms(r.total.p50),
                config.cycles_to_ms(r.total.p99),
                config.cycles_to_ms(r.queue_wait.p99),
                100.0 * r.drop_rate(),
                100.0 * r.slo_attainment(),
            );
        }
    }

    // Replay one above-knee point on real SoCs: the plan must be
    // cycle-exact against the actual machine.
    let spec = ServeSpec {
        duration_ms: 200,
        ..spec_at(300, true)
    };
    let r = server.serve(&spec)?;
    println!(
        "\nreplayed rate 300 pipelined on a real worker SoC: {} frames, \
         replay divergence {}, host {:.0} ms",
        r.served,
        r.replay_divergence,
        r.host_seconds * 1e3,
    );
    Ok(())
}
