//! Content fingerprinting (FNV-1a over 64-bit words).
//!
//! One hash implementation feeds every content-identity check in the
//! workspace — [`crate::graph::Network::content_fingerprint`] and the
//! compiler's weight-image fingerprint — so the fold can never silently
//! diverge between them. Weight slices fold two `f32`s (or eight bytes)
//! per step: fingerprinting even a ~100 MB model costs tens of
//! milliseconds, far below the compilations and simulated inferences
//! the fingerprints gate.

/// An incremental FNV-1a 64-bit hasher over word-sized chunks.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// Start from the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Fold one word.
    pub fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
    }

    /// Fold a byte slice (length-prefixed; tail zero-padded to a word).
    pub fn bytes(&mut self, data: &[u8]) {
        self.mix(data.len() as u64);
        let mut words = data.chunks_exact(8);
        for w in &mut words {
            self.mix(u64::from_le_bytes(w.try_into().expect("8 bytes")));
        }
        let rem = words.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    /// Fold a string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Fold an `f32` slice by bit pattern, two values per step.
    pub fn floats(&mut self, data: &[f32]) {
        self.mix(data.len() as u64);
        let mut pairs = data.chunks_exact(2);
        for p in &mut pairs {
            self.mix(u64::from(p[0].to_bits()) | u64::from(p[1].to_bits()) << 32);
        }
        if let [last] = pairs.remainder() {
            self.mix(u64::from(last.to_bits()));
        }
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        let hash = |f: &dyn Fn(&mut Fnv)| {
            let mut h = Fnv::new();
            f(&mut h);
            h.finish()
        };
        assert_eq!(
            hash(&|h| h.bytes(b"abcdefghij")),
            hash(&|h| h.bytes(b"abcdefghij"))
        );
        assert_ne!(
            hash(&|h| h.bytes(b"abcdefghij")),
            hash(&|h| h.bytes(b"abcdefghiK"))
        );
        // Length prefix distinguishes a short slice from its padding.
        assert_ne!(hash(&|h| h.bytes(b"ab")), hash(&|h| h.bytes(b"ab\0\0")));
        assert_ne!(
            hash(&|h| h.floats(&[1.0, 2.0])),
            hash(&|h| h.floats(&[2.0, 1.0]))
        );
        // -0.0 and 0.0 are different bit patterns, hence different.
        assert_ne!(hash(&|h| h.floats(&[0.0])), hash(&|h| h.floats(&[-0.0])));
    }
}
