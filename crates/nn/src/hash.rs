//! Content fingerprinting (FNV-1a over 64-bit words).
//!
//! The hasher itself now lives in `rvnv_util` (shared with the fuzz
//! harness's corpus fingerprints); this module re-exports it under its
//! long-standing path. One hash implementation feeds every
//! content-identity check in the workspace —
//! [`crate::graph::Network::content_fingerprint`] and the compiler's
//! weight-image fingerprint — so the fold can never silently diverge
//! between them.

pub use rvnv_util::Fnv;
