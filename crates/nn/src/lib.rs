//! Neural-network models, golden executor and quantization.
//!
//! The paper evaluates its SoC on Caffe models (LeNet-5, ResNet-18,
//! ResNet-50 on the FPGA; MobileNet, GoogLeNet and AlexNet in `nv_full`
//! simulation). No Caffe model zoo is available offline, so this crate
//! provides:
//!
//! * [`tensor`] — NCHW tensors and weight tensors,
//! * [`graph`] — a Caffe-like layer DAG ([`Network`]),
//! * [`zoo`] — builders for all six evaluated architectures with
//!   deterministic pseudo-random weights,
//! * [`exec`] — a reference (golden) f32 executor used to verify the
//!   NVDLA model's arithmetic,
//! * [`quant`] — symmetric INT8 quantization with max-abs calibration
//!   (the "calibration table" machinery the paper lists as future work),
//! * `f16` — software half-precision floats ([`F16`]) for `nv_full` FP16 runs,
//! * [`stats`] — parameter/MAC/size accounting used by the timing model
//!   and by the Table II/III "Model Size" columns.
//!
//! # Example
//!
//! ```
//! use rvnv_nn::zoo;
//! use rvnv_nn::exec::Executor;
//!
//! let net = zoo::lenet5(42);
//! let input = rvnv_nn::tensor::Tensor::random(net.input_shape(), 7);
//! let out = Executor::new(&net).run(&input).unwrap();
//! assert_eq!(out.shape().c, 10); // ten digit classes
//! ```

pub mod exec;
pub mod f16;
pub mod graph;
pub mod hash;
pub mod prototxt;
pub mod quant;
pub mod stats;
pub mod tensor;
pub mod zoo;

pub use f16::F16;
pub use graph::{Network, Node, NodeId, Op};
pub use tensor::{Shape, Tensor};
