//! Caffe-like layer graph.
//!
//! A [`Network`] is a DAG of [`Node`]s in topological order (builders
//! append nodes only after their inputs), mirroring a Caffe prototxt:
//! convolutions, pooling, inner products, activations, batch-norm/scale,
//! element-wise sums (ResNet), concats (GoogLeNet) and LRN (AlexNet).

use crate::hash::Fnv;
use crate::tensor::{Shape, WeightTensor};
use std::fmt;

/// Identifier of a node within its [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's index in topological order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Convolution hyper-parameters and parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvParams {
    /// OIHW weights (`in_c` is per-group).
    pub weights: WeightTensor,
    /// Per-output-channel bias.
    pub bias: Vec<f32>,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Group count (`in_c_total / weights.in_c`); depthwise when groups
    /// equals the input channel count.
    pub groups: usize,
}

/// One layer operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// The network input placeholder.
    Input,
    /// 2-D convolution.
    Conv2d(ConvParams),
    /// Fully connected (Caffe `InnerProduct`): weights are `out × in`.
    FullyConnected {
        /// Row-major `out × in` weight matrix.
        weights: Vec<f32>,
        /// Output dimension.
        out: usize,
        /// Input dimension (flattened CHW).
        input: usize,
        /// Per-output bias.
        bias: Vec<f32>,
    },
    /// Max/average pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Kernel size.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Global average pooling (one value per channel).
    GlobalAvgPool,
    /// Rectified linear unit.
    Relu,
    /// Folded batch-norm + scale: `y = x * scale[c] + shift[c]`.
    BatchNorm {
        /// Per-channel multiplier.
        scale: Vec<f32>,
        /// Per-channel offset.
        shift: Vec<f32>,
    },
    /// Element-wise sum of two inputs (ResNet shortcut).
    EltwiseAdd,
    /// Channel concatenation (GoogLeNet inception).
    Concat,
    /// Local response normalization across channels (AlexNet).
    Lrn {
        /// Window size across channels.
        local_size: usize,
        /// Alpha coefficient.
        alpha: f32,
        /// Beta exponent.
        beta: f32,
        /// Bias constant k.
        k: f32,
    },
    /// Softmax over the flattened activations.
    Softmax,
}

impl Op {
    /// Short Caffe-style type name.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Op::Input => "Input",
            Op::Conv2d(_) => "Convolution",
            Op::FullyConnected { .. } => "InnerProduct",
            Op::Pool { .. } => "Pooling",
            Op::GlobalAvgPool => "GlobalPooling",
            Op::Relu => "ReLU",
            Op::BatchNorm { .. } => "BatchNorm",
            Op::EltwiseAdd => "Eltwise",
            Op::Concat => "Concat",
            Op::Lrn { .. } => "LRN",
            Op::Softmax => "Softmax",
        }
    }
}

/// A named node of the layer DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Layer name (unique within the network).
    pub name: String,
    /// The operation.
    pub op: Op,
    /// Input nodes (empty only for [`Op::Input`]).
    pub inputs: Vec<NodeId>,
}

/// A complete model: nodes in topological order plus the input shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    name: String,
    input_shape: Shape,
    nodes: Vec<Node>,
}

/// Error produced when building or shape-checking a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphError {
    /// Offending node name.
    pub node: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node `{}`: {}", self.node, self.message)
    }
}

impl std::error::Error for GraphError {}

impl Network {
    /// Create a network with an input node of the given shape.
    #[must_use]
    pub fn new(name: impl Into<String>, input_shape: Shape) -> Self {
        Network {
            name: name.into(),
            input_shape,
            nodes: vec![Node {
                name: "data".into(),
                op: Op::Input,
                inputs: Vec::new(),
            }],
        }
    }

    /// Model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shape of the input tensor.
    #[must_use]
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// The input node's id.
    #[must_use]
    pub fn input(&self) -> NodeId {
        NodeId(0)
    }

    /// All nodes in topological order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes (the paper's "Layers" column counts these,
    /// excluding the input placeholder).
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Look up a node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// The last node (the network output).
    #[must_use]
    pub fn output(&self) -> NodeId {
        NodeId(self.nodes.len() - 1)
    }

    /// A 64-bit fingerprint of the network's *content*: structure,
    /// parameters and every weight value. Two networks with the same
    /// display name but different weights (e.g. the same zoo model
    /// built from different seeds) get different fingerprints, which is
    /// what compile caches and resident-weight checks key on — the name
    /// alone is not an identity.
    #[must_use]
    pub fn content_fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.str(&self.name);
        let s = self.input_shape;
        h.mix(s.c as u64 | (s.h as u64) << 21 | (s.w as u64) << 42);
        for node in &self.nodes {
            h.str(&node.name);
            for i in &node.inputs {
                h.mix(i.index() as u64);
            }
            h.str(node.op.kind_name());
            match &node.op {
                Op::Input
                | Op::GlobalAvgPool
                | Op::Relu
                | Op::EltwiseAdd
                | Op::Concat
                | Op::Softmax => {}
                Op::Conv2d(p) => {
                    let w = &p.weights;
                    h.mix(w.out_c as u64 | (w.in_c as u64) << 32);
                    h.mix(w.kh as u64 | (w.kw as u64) << 32);
                    h.mix(p.stride as u64 | (p.pad as u64) << 21 | (p.groups as u64) << 42);
                    h.floats(w.data());
                    h.floats(&p.bias);
                }
                Op::FullyConnected {
                    weights,
                    out,
                    input,
                    bias,
                } => {
                    h.mix(*out as u64 | (*input as u64) << 32);
                    h.floats(weights);
                    h.floats(bias);
                }
                Op::Pool {
                    kind,
                    k,
                    stride,
                    pad,
                } => {
                    h.mix(u64::from(*kind == PoolKind::Avg));
                    h.mix(*k as u64 | (*stride as u64) << 21 | (*pad as u64) << 42);
                }
                Op::BatchNorm { scale, shift } => {
                    h.floats(scale);
                    h.floats(shift);
                }
                Op::Lrn {
                    local_size,
                    alpha,
                    beta,
                    k,
                } => {
                    h.mix(*local_size as u64);
                    h.floats(&[*alpha, *beta, *k]);
                }
            }
        }
        h.finish()
    }

    /// Append a node whose inputs must already exist.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an input id is out of range (forward
    /// reference) or the name duplicates an existing node.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        op: Op,
        inputs: &[NodeId],
    ) -> Result<NodeId, GraphError> {
        let name = name.into();
        if self.nodes.iter().any(|n| n.name == name) {
            return Err(GraphError {
                node: name.clone(),
                message: "duplicate node name".into(),
            });
        }
        if let Some(bad) = inputs.iter().find(|i| i.0 >= self.nodes.len()) {
            return Err(GraphError {
                node: name.clone(),
                message: format!("input #{} does not exist yet", bad.0),
            });
        }
        let needs_input = !matches!(op, Op::Input);
        if needs_input && inputs.is_empty() {
            return Err(GraphError {
                node: name,
                message: "non-input node requires at least one input".into(),
            });
        }
        self.nodes.push(Node {
            name,
            op,
            inputs: inputs.to_vec(),
        });
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Infer the output shape of every node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on inconsistent shapes (mismatched eltwise
    /// inputs, FC dimension mismatch, kernel larger than input, …).
    pub fn infer_shapes(&self) -> Result<Vec<Shape>, GraphError> {
        let mut shapes: Vec<Shape> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let fail = |message: String| GraphError {
                node: node.name.clone(),
                message,
            };
            let input_shape = |k: usize| -> Shape { shapes[node.inputs[k].0] };
            let s = match &node.op {
                Op::Input => self.input_shape,
                Op::Conv2d(p) => {
                    let s = input_shape(0);
                    if p.weights.in_c * p.groups != s.c {
                        return Err(fail(format!(
                            "conv expects {} input channels, got {}",
                            p.weights.in_c * p.groups,
                            s.c
                        )));
                    }
                    if p.bias.len() != p.weights.out_c {
                        return Err(fail("bias length != out channels".into()));
                    }
                    let h = (s.h + 2 * p.pad).checked_sub(p.weights.kh).ok_or_else(|| {
                        fail(format!("kernel {} taller than input {}", p.weights.kh, s.h))
                    })? / p.stride
                        + 1;
                    let w = (s.w + 2 * p.pad).checked_sub(p.weights.kw).ok_or_else(|| {
                        fail(format!("kernel {} wider than input {}", p.weights.kw, s.w))
                    })? / p.stride
                        + 1;
                    Shape::new(p.weights.out_c, h, w)
                }
                Op::FullyConnected { out, input, .. } => {
                    let s = input_shape(0);
                    if s.elements() != *input {
                        return Err(fail(format!(
                            "FC expects {input} inputs, got {} ({s})",
                            s.elements()
                        )));
                    }
                    Shape::new(*out, 1, 1)
                }
                Op::Pool { k, stride, pad, .. } => {
                    let s = input_shape(0);
                    if *k > s.h + 2 * pad || *k > s.w + 2 * pad {
                        return Err(fail(format!("pool kernel {k} larger than input {s}")));
                    }
                    // Caffe uses ceil division for pooling output sizes.
                    let h = (s.h + 2 * pad - k).div_ceil(*stride) + 1;
                    let w = (s.w + 2 * pad - k).div_ceil(*stride) + 1;
                    Shape::new(s.c, h, w)
                }
                Op::GlobalAvgPool => {
                    let s = input_shape(0);
                    Shape::new(s.c, 1, 1)
                }
                Op::Relu | Op::Softmax => input_shape(0),
                Op::BatchNorm { scale, shift } => {
                    let s = input_shape(0);
                    if scale.len() != s.c || shift.len() != s.c {
                        return Err(fail("batchnorm parameter length != channels".into()));
                    }
                    s
                }
                Op::EltwiseAdd => {
                    if node.inputs.len() != 2 {
                        return Err(fail("eltwise needs exactly two inputs".into()));
                    }
                    let a = input_shape(0);
                    let b = input_shape(1);
                    if a != b {
                        return Err(fail(format!("eltwise shape mismatch {a} vs {b}")));
                    }
                    a
                }
                Op::Concat => {
                    if node.inputs.is_empty() {
                        return Err(fail("concat needs inputs".into()));
                    }
                    let first = input_shape(0);
                    let mut c = 0;
                    for (k, _) in node.inputs.iter().enumerate() {
                        let s = input_shape(k);
                        if s.h != first.h || s.w != first.w {
                            return Err(fail(format!("concat spatial mismatch {s} vs {first}")));
                        }
                        c += s.c;
                    }
                    Shape::new(c, first.h, first.w)
                }
                Op::Lrn { local_size, .. } => {
                    if local_size % 2 == 0 {
                        return Err(fail("LRN local_size must be odd".into()));
                    }
                    input_shape(0)
                }
            };
            shapes.push(s);
        }
        Ok(shapes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::WeightTensor;

    fn conv(out_c: usize, in_c: usize, k: usize, stride: usize, pad: usize) -> Op {
        Op::Conv2d(ConvParams {
            weights: WeightTensor::random(out_c, in_c, k, k, 1),
            bias: vec![0.0; out_c],
            stride,
            pad,
            groups: 1,
        })
    }

    #[test]
    fn content_fingerprint_sees_weights_not_just_names() {
        let build = |seed| {
            let mut net = Network::new("twin", Shape::new(1, 8, 8));
            let weights = WeightTensor::random(4, 1, 3, 3, seed);
            net.add(
                "c1",
                Op::Conv2d(ConvParams {
                    weights,
                    bias: vec![0.0; 4],
                    stride: 1,
                    pad: 0,
                    groups: 1,
                }),
                &[net.input()],
            )
            .unwrap();
            net
        };
        assert_eq!(
            build(1).content_fingerprint(),
            build(1).content_fingerprint(),
            "deterministic"
        );
        assert_ne!(
            build(1).content_fingerprint(),
            build(2).content_fingerprint(),
            "same name, different weights, different identity"
        );
    }

    #[test]
    fn shapes_propagate_through_a_small_cnn() {
        let mut net = Network::new("tiny", Shape::new(1, 28, 28));
        let c1 = net
            .add("conv1", conv(20, 1, 5, 1, 0), &[net.input()])
            .unwrap();
        let p1 = net
            .add(
                "pool1",
                Op::Pool {
                    kind: PoolKind::Max,
                    k: 2,
                    stride: 2,
                    pad: 0,
                },
                &[c1],
            )
            .unwrap();
        let fc = net
            .add(
                "ip1",
                Op::FullyConnected {
                    weights: vec![0.0; 10 * 20 * 12 * 12],
                    out: 10,
                    input: 20 * 12 * 12,
                    bias: vec![0.0; 10],
                },
                &[p1],
            )
            .unwrap();
        let shapes = net.infer_shapes().unwrap();
        assert_eq!(shapes[c1.index()], Shape::new(20, 24, 24));
        assert_eq!(shapes[p1.index()], Shape::new(20, 12, 12));
        assert_eq!(shapes[fc.index()], Shape::new(10, 1, 1));
        assert_eq!(net.layer_count(), 3);
    }

    #[test]
    fn stride_and_padding_shapes() {
        let mut net = Network::new("t", Shape::new(3, 224, 224));
        let c = net.add("c", conv(64, 3, 7, 2, 3), &[net.input()]).unwrap();
        let shapes = net.infer_shapes().unwrap();
        assert_eq!(shapes[c.index()], Shape::new(64, 112, 112));
    }

    #[test]
    fn caffe_ceil_mode_pooling() {
        // 112x112, pool 3/2 -> ceil((112-3)/2)+1 = 56 (Caffe semantics).
        let mut net = Network::new("t", Shape::new(64, 112, 112));
        net.add(
            "p",
            Op::Pool {
                kind: PoolKind::Max,
                k: 3,
                stride: 2,
                pad: 0,
            },
            &[net.input()],
        )
        .unwrap();
        let shapes = net.infer_shapes().unwrap();
        assert_eq!(shapes[1], Shape::new(64, 56, 56));
    }

    #[test]
    fn eltwise_mismatch_detected() {
        let mut net = Network::new("t", Shape::new(8, 8, 8));
        let a = net.add("a", conv(8, 8, 1, 1, 0), &[net.input()]).unwrap();
        let b = net.add("b", conv(16, 8, 1, 1, 0), &[net.input()]).unwrap();
        net.add("sum", Op::EltwiseAdd, &[a, b]).unwrap();
        let e = net.infer_shapes().unwrap_err();
        assert!(e.to_string().contains("mismatch"));
    }

    #[test]
    fn concat_accumulates_channels() {
        let mut net = Network::new("t", Shape::new(4, 8, 8));
        let a = net.add("a", conv(3, 4, 1, 1, 0), &[net.input()]).unwrap();
        let b = net.add("b", conv(5, 4, 1, 1, 0), &[net.input()]).unwrap();
        let cat = net.add("cat", Op::Concat, &[a, b]).unwrap();
        let shapes = net.infer_shapes().unwrap();
        assert_eq!(shapes[cat.index()], Shape::new(8, 8, 8));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut net = Network::new("t", Shape::new(1, 4, 4));
        net.add("x", Op::Relu, &[net.input()]).unwrap();
        assert!(net.add("x", Op::Relu, &[net.input()]).is_err());
    }

    #[test]
    fn conv_channel_mismatch_detected() {
        let mut net = Network::new("t", Shape::new(3, 8, 8));
        net.add("c", conv(8, 4, 3, 1, 1), &[net.input()]).unwrap();
        assert!(net.infer_shapes().is_err());
    }

    #[test]
    fn fc_dimension_mismatch_detected() {
        let mut net = Network::new("t", Shape::new(2, 2, 2));
        net.add(
            "fc",
            Op::FullyConnected {
                weights: vec![0.0; 10 * 9],
                out: 10,
                input: 9,
                bias: vec![0.0; 10],
            },
            &[net.input()],
        )
        .unwrap();
        assert!(net.infer_shapes().is_err());
    }
}
