//! Symmetric INT8 quantization with max-abs calibration.
//!
//! `nv_small` "supports only INT8 precision", and the paper names the
//! missing INT8 calibration tables as the main limitation of its model
//! coverage. This module implements the standard NVDLA-style scheme:
//! per-tensor symmetric scales derived from a calibration run of the
//! golden executor, i.e. the calibration-table generation the paper
//! defers to future work.

use crate::exec::Executor;
use crate::graph::{GraphError, Network};
use crate::tensor::{Tensor, WeightTensor};

/// A symmetric per-tensor quantization scale: `real = scale * int8`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantScale {
    /// Real value represented by int8 value 1.
    pub scale: f32,
}

impl QuantScale {
    /// Scale chosen so that `max_abs` maps to ±127.
    #[must_use]
    pub fn from_max_abs(max_abs: f32) -> Self {
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        QuantScale { scale }
    }

    /// Quantize one value (round-to-nearest, saturating).
    #[must_use]
    pub fn quantize(&self, v: f32) -> i8 {
        let q = (v / self.scale).round();
        q.clamp(-127.0, 127.0) as i8
    }

    /// Dequantize one value.
    #[must_use]
    pub fn dequantize(&self, q: i8) -> f32 {
        f32::from(q) * self.scale
    }
}

/// An INT8 tensor with its scale.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    /// Quantized elements (same layout as the source tensor).
    pub data: Vec<i8>,
    /// The scale.
    pub scale: QuantScale,
}

impl QuantTensor {
    /// Quantize an activation tensor with the given scale.
    #[must_use]
    pub fn from_tensor(t: &Tensor, scale: QuantScale) -> Self {
        QuantTensor {
            data: t.data().iter().map(|&v| scale.quantize(v)).collect(),
            scale,
        }
    }

    /// Quantize a weight tensor with its own max-abs scale.
    #[must_use]
    pub fn from_weights(w: &WeightTensor) -> Self {
        let scale = QuantScale::from_max_abs(w.max_abs());
        QuantTensor {
            data: w.data().iter().map(|&v| scale.quantize(v)).collect(),
            scale,
        }
    }

    /// Dequantize back to f32 values.
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        self.data
            .iter()
            .map(|&q| self.scale.dequantize(q))
            .collect()
    }
}

/// Per-node activation scales — the NVDLA compiler's "calibration table".
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationTable {
    scales: Vec<QuantScale>,
}

impl CalibrationTable {
    /// Build a table by running `calib_inputs` through the golden
    /// executor and recording each node's max-abs activation.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an input does not match the network.
    pub fn calibrate(net: &Network, calib_inputs: &[Tensor]) -> Result<Self, GraphError> {
        let exec = Executor::new(net);
        let mut max_abs = vec![0.0f32; net.nodes().len()];
        for input in calib_inputs {
            let acts = exec.run_all(input)?;
            for (m, t) in max_abs.iter_mut().zip(&acts) {
                *m = m.max(t.max_abs());
            }
        }
        Ok(CalibrationTable {
            scales: max_abs.into_iter().map(QuantScale::from_max_abs).collect(),
        })
    }

    /// Scale of node `idx` (topological index).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn scale(&self, idx: usize) -> QuantScale {
        self.scales[idx]
    }

    /// Number of entries (== node count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.scales.len()
    }

    /// True when the table has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }

    /// Serialize to the on-disk calibration-table format the NVDLA
    /// compiler consumes: one `index scale` pair per line. Generating
    /// these tables is the paper's first named piece of future work.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from("# NVDLA INT8 calibration table (node-index scale)\n");
        for (i, s) in self.scales.iter().enumerate() {
            out.push_str(&format!("{i} {:e}\n", s.scale));
        }
        out
    }

    /// Parse the textual calibration-table format.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut scales = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let idx: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad index", n + 1))?;
            let scale: f32 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad scale", n + 1))?;
            if idx != scales.len() {
                return Err(format!("line {}: indices must be dense", n + 1));
            }
            if !(scale.is_finite() && scale > 0.0) {
                return Err(format!("line {}: scale must be positive", n + 1));
            }
            scales.push(QuantScale { scale });
        }
        Ok(CalibrationTable { scales })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Network, Op};
    use crate::tensor::Shape;

    #[test]
    fn scale_maps_extremes_to_127() {
        let s = QuantScale::from_max_abs(6.35);
        assert_eq!(s.quantize(6.35), 127);
        assert_eq!(s.quantize(-6.35), -127);
        assert_eq!(s.quantize(0.0), 0);
    }

    #[test]
    fn quantize_saturates_beyond_calibrated_range() {
        let s = QuantScale::from_max_abs(1.0);
        assert_eq!(s.quantize(50.0), 127);
        assert_eq!(s.quantize(-50.0), -127);
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let s = QuantScale::from_max_abs(10.0);
        for i in -100..=100 {
            let v = i as f32 * 0.1;
            let r = s.dequantize(s.quantize(v));
            assert!((r - v).abs() <= s.scale / 2.0 + 1e-6, "{v} -> {r}");
        }
    }

    #[test]
    fn zero_tensor_has_unit_scale() {
        let s = QuantScale::from_max_abs(0.0);
        assert_eq!(s.scale, 1.0);
    }

    #[test]
    fn weight_quantization_uses_own_scale() {
        let w = crate::tensor::WeightTensor::from_vec(1, 1, 1, 2, vec![0.5, -0.25]);
        let q = QuantTensor::from_weights(&w);
        assert_eq!(q.data[0], 127);
        assert_eq!(q.data[1], -64);
    }

    #[test]
    fn calibration_covers_every_node() {
        let mut net = Network::new("t", Shape::new(1, 4, 4));
        let r = net.add("r", Op::Relu, &[net.input()]).unwrap();
        net.add("s", Op::Softmax, &[r]).unwrap();
        let inputs = [
            Tensor::random(Shape::new(1, 4, 4), 1),
            Tensor::random(Shape::new(1, 4, 4), 2),
        ];
        let table = CalibrationTable::calibrate(&net, &inputs).unwrap();
        assert_eq!(table.len(), 3);
        // ReLU output scale is ≤ input scale (negatives clipped).
        assert!(table.scale(1).scale <= table.scale(0).scale + 1e-9);
    }

    #[test]
    fn calibration_table_text_round_trips() {
        let mut net = Network::new("t", Shape::new(1, 4, 4));
        net.add("r", Op::Relu, &[net.input()]).unwrap();
        let inputs = [Tensor::random(Shape::new(1, 4, 4), 1)];
        let table = CalibrationTable::calibrate(&net, &inputs).unwrap();
        let text = table.to_text();
        let back = CalibrationTable::from_text(&text).unwrap();
        assert_eq!(back.len(), table.len());
        for i in 0..table.len() {
            assert!((back.scale(i).scale - table.scale(i).scale).abs() < 1e-9);
        }
    }

    #[test]
    fn calibration_table_rejects_corrupt_text() {
        assert!(CalibrationTable::from_text("0 nope").is_err());
        assert!(
            CalibrationTable::from_text("1 0.5").is_err(),
            "sparse index"
        );
        assert!(CalibrationTable::from_text("0 -1.0").is_err(), "negative");
        assert!(CalibrationTable::from_text("# only comments\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn calibration_takes_max_over_inputs() {
        let mut net = Network::new("t", Shape::new(1, 1, 1));
        net.add("r", Op::Relu, &[net.input()]).unwrap();
        let a = Tensor::from_vec(Shape::new(1, 1, 1), vec![0.5]);
        let b = Tensor::from_vec(Shape::new(1, 1, 1), vec![2.0]);
        let t = CalibrationTable::calibrate(&net, &[a, b]).unwrap();
        assert!((t.scale(0).scale - 2.0 / 127.0).abs() < 1e-6);
    }
}
