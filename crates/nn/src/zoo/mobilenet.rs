//! MobileNet v1 (depthwise-separable convolutions), Table III model.

use super::NetBuilder;
use crate::graph::{Network, NodeId};
use crate::tensor::Shape;

/// A depthwise 3×3 + pointwise 1×1 separable block.
fn separable(
    b: &mut NetBuilder,
    name: &str,
    x: NodeId,
    in_c: usize,
    out_c: usize,
    stride: usize,
) -> NodeId {
    let dw = b.conv_grouped(&format!("{name}_dw"), x, in_c, in_c, 3, stride, 1, in_c);
    let dn = b.bn(&format!("{name}_dw_bn"), dw, in_c);
    let dr = b.relu(&format!("{name}_dw_relu"), dn);
    let pw = b.conv(&format!("{name}_pw"), dr, out_c, in_c, 1, 1, 0);
    let pn = b.bn(&format!("{name}_pw_bn"), pw, out_c);
    b.relu(&format!("{name}_pw_relu"), pn)
}

/// Build MobileNet v1 (3×224×224, 1000 classes, width multiplier 1.0).
///
/// 4.2 M parameters → 17 MB as fp32, matching Table III.
#[must_use]
pub fn mobilenet_v1(seed: u64) -> Network {
    let mut b = NetBuilder::new("mobilenet-v1", Shape::new(3, 224, 224), seed);
    let x = b.input();
    let stem = b.conv("conv1", x, 32, 3, 3, 2, 1);
    let stem_bn = b.bn("conv1_bn", stem, 32);
    let mut cur = b.relu("conv1_relu", stem_bn);
    // (in, out, stride) of the 13 separable blocks.
    let blocks: [(usize, usize, usize); 13] = [
        (32, 64, 1),
        (64, 128, 2),
        (128, 128, 1),
        (128, 256, 2),
        (256, 256, 1),
        (256, 512, 2),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 1024, 2),
        (1024, 1024, 1),
    ];
    for (i, &(in_c, out_c, stride)) in blocks.iter().enumerate() {
        cur = separable(&mut b, &format!("sep{}", i + 1), cur, in_c, out_c, stride);
    }
    let gap = b.global_avg_pool("pool6", cur);
    let fc = b.fc("fc1000", gap, 1000, 1024);
    b.softmax("prob", fc);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{ModelStats, Precision};

    #[test]
    fn mobilenet_size_and_macs() {
        let stats = ModelStats::of(&mobilenet_v1(1));
        let mb = stats.model_bytes(Precision::Fp32) as f64 / (1024.0 * 1024.0);
        assert!(
            (14.0..18.5).contains(&mb),
            "MobileNet fp32 {mb:.1} MB vs paper 17 MB"
        );
        // ~0.57 GMACs.
        assert!(stats.macs > 400_000_000 && stats.macs < 700_000_000);
    }

    #[test]
    fn depthwise_blocks_use_groups() {
        let net = mobilenet_v1(1);
        let dw = net
            .nodes()
            .iter()
            .find(|n| n.name == "sep1_dw")
            .expect("depthwise layer");
        if let crate::graph::Op::Conv2d(p) = &dw.op {
            assert_eq!(p.groups, 32);
            assert_eq!(p.weights.in_c, 1);
        } else {
            panic!("sep1_dw is not a conv");
        }
    }

    #[test]
    fn final_feature_map_is_7x7() {
        let net = mobilenet_v1(1);
        let shapes = net.infer_shapes().unwrap();
        let gap_idx = net.nodes().iter().position(|n| n.name == "pool6").unwrap();
        let pre = shapes[net.nodes()[gap_idx].inputs[0].index()];
        assert_eq!((pre.c, pre.h, pre.w), (1024, 7, 7));
    }
}
