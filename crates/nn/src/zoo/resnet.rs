//! ResNet-18 (thin CIFAR variant) and ResNet-50 (ImageNet).
//!
//! The paper's ResNet-18 runs on 3×32×32 inputs with an 813.5 KB model
//! file — a thin CIFAR variant (a full ImageNet ResNet-18 is 45 MB), so
//! we use base width 8 with stages [8, 16, 32, 64], which lands at the
//! same file size. ResNet-50 is the standard 3×224×224 bottleneck
//! network (25.5 M parameters → 102.5 MB fp32).

use super::NetBuilder;
use crate::graph::{Network, NodeId};
use crate::tensor::Shape;

/// One basic (two 3×3 convs) residual block.
fn basic_block(
    b: &mut NetBuilder,
    name: &str,
    x: NodeId,
    in_c: usize,
    out_c: usize,
    stride: usize,
) -> NodeId {
    let c1 = b.conv(&format!("{name}_conv1"), x, out_c, in_c, 3, stride, 1);
    let n1 = b.bn(&format!("{name}_bn1"), c1, out_c);
    let r1 = b.relu(&format!("{name}_relu1"), n1);
    let c2 = b.conv(&format!("{name}_conv2"), r1, out_c, out_c, 3, 1, 1);
    let n2 = b.bn(&format!("{name}_bn2"), c2, out_c);
    let shortcut = if stride != 1 || in_c != out_c {
        let ds = b.conv(&format!("{name}_down"), x, out_c, in_c, 1, stride, 0);
        b.bn(&format!("{name}_down_bn"), ds, out_c)
    } else {
        x
    };
    let sum = b.add_op(&format!("{name}_add"), n2, shortcut);
    b.relu(&format!("{name}_relu2"), sum)
}

/// One bottleneck (1×1 → 3×3 → 1×1) residual block.
fn bottleneck(
    b: &mut NetBuilder,
    name: &str,
    x: NodeId,
    in_c: usize,
    mid_c: usize,
    out_c: usize,
    stride: usize,
) -> NodeId {
    let c1 = b.conv(&format!("{name}_conv1"), x, mid_c, in_c, 1, 1, 0);
    let n1 = b.bn(&format!("{name}_bn1"), c1, mid_c);
    let r1 = b.relu(&format!("{name}_relu1"), n1);
    let c2 = b.conv(&format!("{name}_conv2"), r1, mid_c, mid_c, 3, stride, 1);
    let n2 = b.bn(&format!("{name}_bn2"), c2, mid_c);
    let r2 = b.relu(&format!("{name}_relu2"), n2);
    let c3 = b.conv(&format!("{name}_conv3"), r2, out_c, mid_c, 1, 1, 0);
    let n3 = b.bn(&format!("{name}_bn3"), c3, out_c);
    let shortcut = if stride != 1 || in_c != out_c {
        let ds = b.conv(&format!("{name}_down"), x, out_c, in_c, 1, stride, 0);
        b.bn(&format!("{name}_down_bn"), ds, out_c)
    } else {
        x
    };
    let sum = b.add_op(&format!("{name}_add"), n3, shortcut);
    b.relu(&format!("{name}_relu3"), sum)
}

/// Build the thin CIFAR ResNet-18 (3×32×32, 10 classes).
#[must_use]
pub fn resnet18_cifar(seed: u64) -> Network {
    let widths = [8usize, 16, 32, 64];
    let mut b = NetBuilder::new("resnet-18", Shape::new(3, 32, 32), seed);
    let x = b.input();
    let stem = b.conv("conv1", x, widths[0], 3, 3, 1, 1);
    let stem_bn = b.bn("bn1", stem, widths[0]);
    let mut cur = b.relu("relu1", stem_bn);
    let mut in_c = widths[0];
    for (stage, &w) in widths.iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            cur = basic_block(
                &mut b,
                &format!("res{}_{block}", stage + 2),
                cur,
                in_c,
                w,
                stride,
            );
            in_c = w;
        }
    }
    let gap = b.global_avg_pool("pool5", cur);
    let fc = b.fc("fc10", gap, 10, widths[3]);
    b.softmax("prob", fc);
    b.finish()
}

/// Build ResNet-50 (3×224×224, 1000 classes).
#[must_use]
pub fn resnet50(seed: u64) -> Network {
    // (mid, out, blocks) per stage — the standard [3, 4, 6, 3] layout.
    let stages: [(usize, usize, usize); 4] =
        [(64, 256, 3), (128, 512, 4), (256, 1024, 6), (512, 2048, 3)];
    let mut b = NetBuilder::new("resnet-50", Shape::new(3, 224, 224), seed);
    let x = b.input();
    let stem = b.conv("conv1", x, 64, 3, 7, 2, 3);
    let stem_bn = b.bn("bn1", stem, 64);
    let stem_relu = b.relu("relu1", stem_bn);
    let mut cur = b.max_pool("pool1", stem_relu, 3, 2, 0);
    let mut in_c = 64usize;
    for (stage, &(mid, out, blocks)) in stages.iter().enumerate() {
        for block in 0..blocks {
            // Stage 1 keeps stride 1 (pool already downsampled).
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            cur = bottleneck(
                &mut b,
                &format!("res{}_{block}", stage + 2),
                cur,
                in_c,
                mid,
                out,
                stride,
            );
            in_c = out;
        }
    }
    let gap = b.global_avg_pool("pool5", cur);
    let fc = b.fc("fc1000", gap, 1000, 2048);
    b.softmax("prob", fc);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::stats::{ModelStats, Precision};
    use crate::tensor::Tensor;

    #[test]
    fn resnet18_size_near_813kb() {
        let stats = ModelStats::of(&resnet18_cifar(1));
        let kb = stats.model_bytes(Precision::Fp32) as f64 / 1024.0;
        assert!(
            (550.0..1100.0).contains(&kb),
            "ResNet-18 fp32 {kb:.1} KB vs paper 813.5 KB"
        );
    }

    #[test]
    fn resnet18_runs_and_classifies() {
        let net = resnet18_cifar(3);
        let out = Executor::new(&net)
            .run(&Tensor::random(net.input_shape(), 1))
            .unwrap();
        assert_eq!(out.shape().c, 10);
    }

    #[test]
    fn resnet50_has_25m_params() {
        let stats = ModelStats::of(&resnet50(1));
        assert!(
            (24_000_000..27_000_000).contains(&stats.params),
            "ResNet-50 params {}",
            stats.params
        );
        // ~4 GMACs at 224x224.
        assert!(stats.macs > 3_000_000_000 && stats.macs < 5_000_000_000);
    }

    #[test]
    fn resnet50_shapes_propagate() {
        let net = resnet50(1);
        let shapes = net.infer_shapes().unwrap();
        // Final feature map before GAP is 2048 x 7 x 7.
        let gap_idx = net.nodes().iter().position(|n| n.name == "pool5").unwrap();
        let pre_gap = shapes[net.nodes()[gap_idx].inputs[0].index()];
        assert_eq!((pre_gap.c, pre_gap.h, pre_gap.w), (2048, 7, 7));
    }

    #[test]
    fn residual_blocks_downsample_once_per_stage() {
        let net = resnet18_cifar(1);
        let shapes = net.infer_shapes().unwrap();
        let out = shapes[net.output().index()];
        assert_eq!(out.c, 10);
        // Spatial size decreased 32 -> 4 through three stride-2 stages.
        let last_conv = net
            .nodes()
            .iter()
            .position(|n| n.name == "res5_1_conv2")
            .unwrap();
        assert_eq!(shapes[last_conv].h, 4);
    }
}
