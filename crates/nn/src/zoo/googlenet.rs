//! GoogLeNet (Inception v1), Table III model.

use super::NetBuilder;
use crate::graph::{Network, NodeId};
use crate::tensor::Shape;

/// Channel plan of one inception module.
struct Inception {
    b1: usize,        // 1x1 branch
    b3_reduce: usize, // 1x1 before 3x3
    b3: usize,        // 3x3 branch
    b5_reduce: usize, // 1x1 before 5x5
    b5: usize,        // 5x5 branch
    pool_proj: usize, // 1x1 after pool
}

fn inception(b: &mut NetBuilder, name: &str, x: NodeId, in_c: usize, p: &Inception) -> NodeId {
    let br1 = b.conv(&format!("{name}_1x1"), x, p.b1, in_c, 1, 1, 0);
    let br1 = b.relu(&format!("{name}_relu_1x1"), br1);

    let r3 = b.conv(&format!("{name}_3x3_reduce"), x, p.b3_reduce, in_c, 1, 1, 0);
    let r3 = b.relu(&format!("{name}_relu_3x3_reduce"), r3);
    let br3 = b.conv(&format!("{name}_3x3"), r3, p.b3, p.b3_reduce, 3, 1, 1);
    let br3 = b.relu(&format!("{name}_relu_3x3"), br3);

    let r5 = b.conv(&format!("{name}_5x5_reduce"), x, p.b5_reduce, in_c, 1, 1, 0);
    let r5 = b.relu(&format!("{name}_relu_5x5_reduce"), r5);
    let br5 = b.conv(&format!("{name}_5x5"), r5, p.b5, p.b5_reduce, 5, 1, 2);
    let br5 = b.relu(&format!("{name}_relu_5x5"), br5);

    let pool = b.max_pool(&format!("{name}_pool"), x, 3, 1, 1);
    let brp = b.conv(
        &format!("{name}_pool_proj"),
        pool,
        p.pool_proj,
        in_c,
        1,
        1,
        0,
    );
    let brp = b.relu(&format!("{name}_relu_pool_proj"), brp);

    b.concat(&format!("{name}_output"), &[br1, br3, br5, brp])
}

/// Build GoogLeNet (3×224×224, 1000 classes).
///
/// 13 M parameters → 53.5 MB fp32, matching Table III. Auxiliary
/// classifier heads are omitted (inference only, as in deployment).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn googlenet(seed: u64) -> Network {
    let mut b = NetBuilder::new("googlenet", Shape::new(3, 224, 224), seed);
    let x = b.input();
    let c1 = b.conv("conv1", x, 64, 3, 7, 2, 3);
    let c1 = b.relu("conv1_relu", c1);
    let p1 = b.max_pool("pool1", c1, 3, 2, 0);
    let n1 = b.lrn("pool1_norm1", p1);
    let c2r = b.conv("conv2_reduce", n1, 64, 64, 1, 1, 0);
    let c2r = b.relu("conv2_reduce_relu", c2r);
    let c2 = b.conv("conv2", c2r, 192, 64, 3, 1, 1);
    let c2 = b.relu("conv2_relu", c2);
    let n2 = b.lrn("conv2_norm2", c2);
    let p2 = b.max_pool("pool2", n2, 3, 2, 0);

    let i3a = inception(
        &mut b,
        "inception_3a",
        p2,
        192,
        &Inception {
            b1: 64,
            b3_reduce: 96,
            b3: 128,
            b5_reduce: 16,
            b5: 32,
            pool_proj: 32,
        },
    );
    let i3b = inception(
        &mut b,
        "inception_3b",
        i3a,
        256,
        &Inception {
            b1: 128,
            b3_reduce: 128,
            b3: 192,
            b5_reduce: 32,
            b5: 96,
            pool_proj: 64,
        },
    );
    let p3 = b.max_pool("pool3", i3b, 3, 2, 0);

    let i4a = inception(
        &mut b,
        "inception_4a",
        p3,
        480,
        &Inception {
            b1: 192,
            b3_reduce: 96,
            b3: 208,
            b5_reduce: 16,
            b5: 48,
            pool_proj: 64,
        },
    );
    let i4b = inception(
        &mut b,
        "inception_4b",
        i4a,
        512,
        &Inception {
            b1: 160,
            b3_reduce: 112,
            b3: 224,
            b5_reduce: 24,
            b5: 64,
            pool_proj: 64,
        },
    );
    let i4c = inception(
        &mut b,
        "inception_4c",
        i4b,
        512,
        &Inception {
            b1: 128,
            b3_reduce: 128,
            b3: 256,
            b5_reduce: 24,
            b5: 64,
            pool_proj: 64,
        },
    );
    let i4d = inception(
        &mut b,
        "inception_4d",
        i4c,
        512,
        &Inception {
            b1: 112,
            b3_reduce: 144,
            b3: 288,
            b5_reduce: 32,
            b5: 64,
            pool_proj: 64,
        },
    );
    let i4e = inception(
        &mut b,
        "inception_4e",
        i4d,
        528,
        &Inception {
            b1: 256,
            b3_reduce: 160,
            b3: 320,
            b5_reduce: 32,
            b5: 128,
            pool_proj: 128,
        },
    );
    // Auxiliary classifier heads. The Caffe model file ships them (they
    // account for ~half of its 53.5 MB), so we keep them as side
    // branches; deployment flows simply ignore their outputs.
    let a1p = b.avg_pool("loss1_ave_pool", i4a, 5, 3, 0);
    let a1c = b.conv("loss1_conv", a1p, 128, 512, 1, 1, 0);
    let a1r = b.relu("loss1_relu_conv", a1c);
    let a1f = b.fc("loss1_fc", a1r, 1024, 128 * 4 * 4);
    let a1r2 = b.relu("loss1_relu_fc", a1f);
    let _aux1 = b.fc("loss1_classifier", a1r2, 1000, 1024);

    let a2p = b.avg_pool("loss2_ave_pool", i4d, 5, 3, 0);
    let a2c = b.conv("loss2_conv", a2p, 128, 528, 1, 1, 0);
    let a2r = b.relu("loss2_relu_conv", a2c);
    let a2f = b.fc("loss2_fc", a2r, 1024, 128 * 4 * 4);
    let a2r2 = b.relu("loss2_relu_fc", a2f);
    let _aux2 = b.fc("loss2_classifier", a2r2, 1000, 1024);

    let p4 = b.max_pool("pool4", i4e, 3, 2, 0);

    let i5a = inception(
        &mut b,
        "inception_5a",
        p4,
        832,
        &Inception {
            b1: 256,
            b3_reduce: 160,
            b3: 320,
            b5_reduce: 32,
            b5: 128,
            pool_proj: 128,
        },
    );
    let i5b = inception(
        &mut b,
        "inception_5b",
        i5a,
        832,
        &Inception {
            b1: 384,
            b3_reduce: 192,
            b3: 384,
            b5_reduce: 48,
            b5: 128,
            pool_proj: 128,
        },
    );
    let gap = b.global_avg_pool("pool5", i5b);
    let fc = b.fc("loss3_classifier", gap, 1000, 1024);
    b.softmax("prob", fc);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{ModelStats, Precision};

    #[test]
    fn googlenet_size_matches_paper() {
        let stats = ModelStats::of(&googlenet(1));
        let mb = stats.model_bytes(Precision::Fp32) as f64 / (1024.0 * 1024.0);
        assert!(
            (45.0..60.0).contains(&mb),
            "GoogLeNet fp32 {mb:.1} MB vs paper 53.5 MB"
        );
        // ~1.6 GMACs.
        assert!(stats.macs > 1_000_000_000 && stats.macs < 2_500_000_000);
    }

    #[test]
    fn inception_concat_channel_plan() {
        let net = googlenet(1);
        let shapes = net.infer_shapes().unwrap();
        let idx = net
            .nodes()
            .iter()
            .position(|n| n.name == "inception_3a_output")
            .unwrap();
        assert_eq!(shapes[idx].c, 64 + 128 + 32 + 32);
        let idx = net
            .nodes()
            .iter()
            .position(|n| n.name == "inception_5b_output")
            .unwrap();
        assert_eq!(shapes[idx].c, 1024);
        assert_eq!((shapes[idx].h, shapes[idx].w), (7, 7));
    }

    #[test]
    fn has_many_layers() {
        // Caffe GoogLeNet has ~140 layers; ours counts similar.
        let n = googlenet(1).layer_count();
        assert!((100..180).contains(&n), "layers {n}");
    }
}
