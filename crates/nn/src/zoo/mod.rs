//! Model zoo: the six networks evaluated in the paper.
//!
//! * Table II (`nv_small`, FPGA): [`lenet5`], [`resnet18_cifar`],
//!   [`resnet50`];
//! * Table III (`nv_full`, simulation): those three plus
//!   [`mobilenet_v1`], [`googlenet`], [`alexnet`].
//!
//! All weights are deterministic pseudo-random (seeded per layer), which
//! exercises identical compute and memory traffic to trained weights.

mod alexnet;
mod googlenet;
mod lenet;
mod mobilenet;
mod resnet;

pub use alexnet::alexnet;
pub use googlenet::googlenet;
pub use lenet::lenet5;
pub use mobilenet::mobilenet_v1;
pub use resnet::{resnet18_cifar, resnet50};

use crate::graph::{ConvParams, Network, NodeId, Op, PoolKind};
use crate::tensor::{Shape, WeightTensor};

/// Which models run on which configuration in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// LeNet-5 on 1×28×28.
    LeNet5,
    /// Thin CIFAR ResNet-18 on 3×32×32.
    ResNet18,
    /// ResNet-50 on 3×224×224.
    ResNet50,
    /// MobileNet v1 on 3×224×224.
    MobileNet,
    /// GoogLeNet (Inception v1) on 3×224×224.
    GoogLeNet,
    /// AlexNet on 3×227×227.
    AlexNet,
}

impl Model {
    /// All models of Table III (the superset).
    pub const ALL: [Model; 6] = [
        Model::LeNet5,
        Model::ResNet18,
        Model::ResNet50,
        Model::MobileNet,
        Model::GoogLeNet,
        Model::AlexNet,
    ];

    /// The Table II subset supported on `nv_small`.
    pub const NV_SMALL: [Model; 3] = [Model::LeNet5, Model::ResNet18, Model::ResNet50];

    /// Human name as printed in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Model::LeNet5 => "LeNet-5",
            Model::ResNet18 => "ResNet-18",
            Model::ResNet50 => "ResNet-50",
            Model::MobileNet => "MobileNet",
            Model::GoogLeNet => "GoogleNet",
            Model::AlexNet => "AlexNet",
        }
    }

    /// Build the network with deterministic weights.
    #[must_use]
    pub fn build(self, seed: u64) -> Network {
        match self {
            Model::LeNet5 => lenet5(seed),
            Model::ResNet18 => resnet18_cifar(seed),
            Model::ResNet50 => resnet50(seed),
            Model::MobileNet => mobilenet_v1(seed),
            Model::GoogLeNet => googlenet(seed),
            Model::AlexNet => alexnet(seed),
        }
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Internal builder with per-layer seeded weights and Caffe-ish helpers.
pub(crate) struct NetBuilder {
    net: Network,
    seed: u64,
    counter: u64,
}

impl NetBuilder {
    pub(crate) fn new(name: &str, input: Shape, seed: u64) -> Self {
        NetBuilder {
            net: Network::new(name, input),
            seed,
            counter: 0,
        }
    }

    pub(crate) fn input(&self) -> NodeId {
        self.net.input()
    }

    fn next_seed(&mut self) -> u64 {
        self.counter += 1;
        // SplitMix64-style mix keeps per-layer streams independent.
        let mut z = self
            .seed
            .wrapping_add(self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn small_bias(&mut self, n: usize) -> Vec<f32> {
        let s = self.next_seed();
        (0..n)
            .map(|i| {
                let x = s.wrapping_add(i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
                ((x >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 0.02
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn conv(
        &mut self,
        name: &str,
        from: NodeId,
        out_c: usize,
        in_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> NodeId {
        self.conv_grouped(name, from, out_c, in_c, k, stride, pad, 1)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn conv_grouped(
        &mut self,
        name: &str,
        from: NodeId,
        out_c: usize,
        in_c_total: usize,
        k: usize,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> NodeId {
        let seed = self.next_seed();
        let weights = WeightTensor::random(out_c, in_c_total / groups, k, k, seed);
        let bias = self.small_bias(out_c);
        self.net
            .add(
                name,
                Op::Conv2d(ConvParams {
                    weights,
                    bias,
                    stride,
                    pad,
                    groups,
                }),
                &[from],
            )
            .expect("builder names are unique")
    }

    /// Batch-norm with gentle scales so deep nets keep sane magnitudes.
    pub(crate) fn bn(&mut self, name: &str, from: NodeId, c: usize) -> NodeId {
        let s = self.next_seed();
        let scale: Vec<f32> = (0..c)
            .map(|i| {
                let x = s.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                0.8 + 0.4 * ((x >> 40) as f32 / (1u64 << 24) as f32)
            })
            .collect();
        let shift: Vec<f32> = (0..c)
            .map(|i| {
                let x = s
                    .wrapping_add(i as u64 + 7)
                    .wrapping_mul(0x2545_F491_4F6C_DD1D);
                ((x >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 0.02
            })
            .collect();
        self.net
            .add(name, Op::BatchNorm { scale, shift }, &[from])
            .expect("builder names are unique")
    }

    pub(crate) fn relu(&mut self, name: &str, from: NodeId) -> NodeId {
        self.net
            .add(name, Op::Relu, &[from])
            .expect("builder names are unique")
    }

    pub(crate) fn max_pool(
        &mut self,
        name: &str,
        from: NodeId,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> NodeId {
        self.net
            .add(
                name,
                Op::Pool {
                    kind: PoolKind::Max,
                    k,
                    stride,
                    pad,
                },
                &[from],
            )
            .expect("builder names are unique")
    }

    pub(crate) fn avg_pool(
        &mut self,
        name: &str,
        from: NodeId,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> NodeId {
        self.net
            .add(
                name,
                Op::Pool {
                    kind: PoolKind::Avg,
                    k,
                    stride,
                    pad,
                },
                &[from],
            )
            .expect("builder names are unique")
    }

    pub(crate) fn global_avg_pool(&mut self, name: &str, from: NodeId) -> NodeId {
        self.net
            .add(name, Op::GlobalAvgPool, &[from])
            .expect("builder names are unique")
    }

    pub(crate) fn fc(&mut self, name: &str, from: NodeId, out: usize, input: usize) -> NodeId {
        let seed = self.next_seed();
        // Reuse WeightTensor's deterministic init for the matrix.
        let w = WeightTensor::random(out, input, 1, 1, seed);
        let bias = self.small_bias(out);
        self.net
            .add(
                name,
                Op::FullyConnected {
                    weights: w.data().to_vec(),
                    out,
                    input,
                    bias,
                },
                &[from],
            )
            .expect("builder names are unique")
    }

    pub(crate) fn add_op(&mut self, name: &str, a: NodeId, b: NodeId) -> NodeId {
        self.net
            .add(name, Op::EltwiseAdd, &[a, b])
            .expect("builder names are unique")
    }

    pub(crate) fn concat(&mut self, name: &str, inputs: &[NodeId]) -> NodeId {
        self.net
            .add(name, Op::Concat, inputs)
            .expect("builder names are unique")
    }

    pub(crate) fn lrn(&mut self, name: &str, from: NodeId) -> NodeId {
        self.net
            .add(
                name,
                Op::Lrn {
                    local_size: 5,
                    alpha: 1e-4,
                    beta: 0.75,
                    k: 1.0,
                },
                &[from],
            )
            .expect("builder names are unique")
    }

    pub(crate) fn softmax(&mut self, name: &str, from: NodeId) -> NodeId {
        self.net
            .add(name, Op::Softmax, &[from])
            .expect("builder names are unique")
    }

    pub(crate) fn finish(self) -> Network {
        let net = self.net;
        debug_assert!(net.infer_shapes().is_ok(), "{} shapes", net.name());
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{ModelStats, Precision};

    #[test]
    fn all_models_build_and_shape_check() {
        for m in Model::ALL {
            let net = m.build(1);
            net.infer_shapes().unwrap_or_else(|e| panic!("{m}: {e}"));
            assert!(net.layer_count() > 5, "{m} too shallow");
        }
    }

    #[test]
    fn model_sizes_match_paper_magnitudes() {
        // Paper Table II/III model sizes (fp32 Caffe files).
        let cases: &[(Model, f64, f64)] = &[
            (Model::LeNet5, 1.7, 0.25),     // 1.7 MB
            (Model::ResNet18, 0.79, 0.35),  // 813.5 KB
            (Model::ResNet50, 102.5, 15.0), // 102.5 MB
            (Model::MobileNet, 17.0, 4.0),  // 17 MB
            (Model::GoogLeNet, 53.5, 12.0), // 53.5 MB
            (Model::AlexNet, 243.9, 25.0),  // 243.9 MB
        ];
        for &(m, expect_mb, tol_mb) in cases {
            let stats = ModelStats::of(&m.build(1));
            let mb = stats.model_bytes(Precision::Fp32) as f64 / (1024.0 * 1024.0);
            assert!(
                (mb - expect_mb).abs() <= tol_mb,
                "{m}: {mb:.1} MB, paper {expect_mb} MB"
            );
        }
    }

    #[test]
    fn layer_counts_match_paper_magnitudes() {
        // Paper Table II layer counts: 9 / 86 / 228. Our DAG node counts
        // differ slightly from Caffe's (scale layers folded into BN) but
        // must be the same order.
        let lenet = Model::LeNet5.build(1).layer_count();
        assert!((8..=12).contains(&lenet), "LeNet-5 layers {lenet}");
        let r18 = Model::ResNet18.build(1).layer_count();
        assert!((60..=95).contains(&r18), "ResNet-18 layers {r18}");
        let r50 = Model::ResNet50.build(1).layer_count();
        assert!((170..=240).contains(&r50), "ResNet-50 layers {r50}");
    }

    #[test]
    fn weights_deterministic_per_seed() {
        let a = Model::LeNet5.build(9);
        let b = Model::LeNet5.build(9);
        let c = Model::LeNet5.build(10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mac_ordering_matches_compute_intensity() {
        let lenet = ModelStats::of(&Model::LeNet5.build(1)).macs;
        let r18 = ModelStats::of(&Model::ResNet18.build(1)).macs;
        let r50 = ModelStats::of(&Model::ResNet50.build(1)).macs;
        assert!(lenet < r18 && r18 < r50);
        // ResNet-50 is a multi-GMAC network.
        assert!(r50 > 3_000_000_000);
    }
}
