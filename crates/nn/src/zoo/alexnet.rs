//! AlexNet (Caffe `bvlc_alexnet` shape), Table III model.

use super::NetBuilder;
use crate::graph::Network;
use crate::tensor::Shape;

/// Build AlexNet (3×227×227, 1000 classes).
///
/// 61 M parameters → 243.9 MB fp32, matching Table III (the only model
/// in the paper with a 227×227 input).
#[must_use]
pub fn alexnet(seed: u64) -> Network {
    let mut b = NetBuilder::new("alexnet", Shape::new(3, 227, 227), seed);
    let x = b.input();
    let c1 = b.conv("conv1", x, 96, 3, 11, 4, 0);
    let r1 = b.relu("relu1", c1);
    let n1 = b.lrn("norm1", r1);
    let p1 = b.max_pool("pool1", n1, 3, 2, 0);

    let c2 = b.conv_grouped("conv2", p1, 256, 96, 5, 1, 2, 2);
    let r2 = b.relu("relu2", c2);
    let n2 = b.lrn("norm2", r2);
    let p2 = b.max_pool("pool2", n2, 3, 2, 0);

    let c3 = b.conv("conv3", p2, 384, 256, 3, 1, 1);
    let r3 = b.relu("relu3", c3);
    let c4 = b.conv_grouped("conv4", r3, 384, 384, 3, 1, 1, 2);
    let r4 = b.relu("relu4", c4);
    let c5 = b.conv_grouped("conv5", r4, 256, 384, 3, 1, 1, 2);
    let r5 = b.relu("relu5", c5);
    let p5 = b.max_pool("pool5", r5, 3, 2, 0);

    let fc6 = b.fc("fc6", p5, 4096, 256 * 6 * 6);
    let r6 = b.relu("relu6", fc6);
    let fc7 = b.fc("fc7", r6, 4096, 4096);
    let r7 = b.relu("relu7", fc7);
    let fc8 = b.fc("fc8", r7, 1000, 4096);
    b.softmax("prob", fc8);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{ModelStats, Precision};

    #[test]
    fn alexnet_size_matches_paper() {
        let stats = ModelStats::of(&alexnet(1));
        let mb = stats.model_bytes(Precision::Fp32) as f64 / (1024.0 * 1024.0);
        assert!(
            (225.0..245.0).contains(&mb),
            "AlexNet fp32 {mb:.1} MB vs paper 243.9 MB"
        );
    }

    #[test]
    fn conv_tower_shapes() {
        let net = alexnet(1);
        let shapes = net.infer_shapes().unwrap();
        let by_name = |name: &str| {
            let idx = net.nodes().iter().position(|n| n.name == name).unwrap();
            shapes[idx]
        };
        assert_eq!(by_name("conv1"), Shape::new(96, 55, 55));
        assert_eq!(by_name("pool1"), Shape::new(96, 27, 27));
        assert_eq!(by_name("conv2"), Shape::new(256, 27, 27));
        assert_eq!(by_name("pool5"), Shape::new(256, 6, 6));
        assert_eq!(by_name("fc8"), Shape::new(1000, 1, 1));
    }

    #[test]
    fn grouped_convs_match_original() {
        let net = alexnet(1);
        let conv2 = net.nodes().iter().find(|n| n.name == "conv2").unwrap();
        if let crate::graph::Op::Conv2d(p) = &conv2.op {
            assert_eq!(p.groups, 2);
            assert_eq!(p.weights.in_c, 48);
        } else {
            panic!("conv2 missing");
        }
    }

    #[test]
    fn fc_layers_dominate_parameters() {
        let stats = ModelStats::of(&alexnet(1));
        let fc_params: usize = stats
            .layers
            .iter()
            .filter(|l| l.kind == "InnerProduct")
            .map(|l| l.params)
            .sum();
        assert!(fc_params * 10 > stats.params * 9, "fc >90% of params");
    }
}
