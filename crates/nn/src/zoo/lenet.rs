//! LeNet-5 (Caffe `lenet.prototxt` shape): the paper's smallest model.

use super::NetBuilder;
use crate::graph::Network;
use crate::tensor::Shape;

/// Build LeNet-5 for 1×28×28 inputs (MNIST).
///
/// Matches the Caffe reference: conv 20@5×5 → pool → conv 50@5×5 → pool
/// → ip 500 + ReLU → ip 10 → softmax. About 431 k parameters, 1.7 MB as
/// an fp32 file — the "1.7 MB" of Table II.
#[must_use]
pub fn lenet5(seed: u64) -> Network {
    let mut b = NetBuilder::new("lenet-5", Shape::new(1, 28, 28), seed);
    let x = b.input();
    let c1 = b.conv("conv1", x, 20, 1, 5, 1, 0);
    let p1 = b.max_pool("pool1", c1, 2, 2, 0);
    let c2 = b.conv("conv2", p1, 50, 20, 5, 1, 0);
    let p2 = b.max_pool("pool2", c2, 2, 2, 0);
    let ip1 = b.fc("ip1", p2, 500, 50 * 4 * 4);
    let r1 = b.relu("relu1", ip1);
    let ip2 = b.fc("ip2", r1, 10, 500);
    b.softmax("prob", ip2);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::stats::{ModelStats, Precision};
    use crate::tensor::Tensor;

    #[test]
    fn lenet_has_nine_ish_layers_and_431k_params() {
        let net = lenet5(1);
        assert_eq!(net.layer_count(), 8);
        let stats = ModelStats::of(&net);
        assert_eq!(stats.params, 431_080);
        // 1.64 MiB fp32, the paper rounds to 1.7 MB.
        let mb = stats.model_bytes(Precision::Fp32) as f64 / (1024.0 * 1024.0);
        assert!((1.5..1.8).contains(&mb));
    }

    #[test]
    fn lenet_runs_end_to_end() {
        let net = lenet5(2);
        let out = Executor::new(&net)
            .run(&Tensor::random(net.input_shape(), 3))
            .unwrap();
        assert_eq!(out.shape().c, 10);
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "softmax output");
    }
}
