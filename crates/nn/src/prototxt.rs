//! Caffe-prototxt rendering of a [`Network`].
//!
//! The paper's toolflow consumes "arbitrary Caffe neural network
//! models"; our zoo builds the graphs programmatically. This module
//! renders them back into deploy-prototxt text, which makes the graphs
//! diffable against the upstream Caffe definitions and gives the
//! examples a familiar artifact to print.

use crate::graph::{Network, Op, PoolKind};

fn quote(s: &str) -> String {
    format!("\"{s}\"")
}

/// Render a network as a Caffe deploy prototxt.
#[must_use]
pub fn to_prototxt(net: &Network) -> String {
    let shapes = net
        .infer_shapes()
        .expect("network shapes must be consistent");
    let mut out = String::new();
    out.push_str(&format!("name: {}\n", quote(net.name())));
    let input = net.input_shape();
    out.push_str(&format!(
        "input: \"data\"\ninput_dim: 1\ninput_dim: {}\ninput_dim: {}\ninput_dim: {}\n",
        input.c, input.h, input.w
    ));
    for (idx, node) in net.nodes().iter().enumerate().skip(1) {
        let bottoms: Vec<String> = node
            .inputs
            .iter()
            .map(|i| quote(&net.nodes()[i.index()].name))
            .collect();
        out.push_str("layer {\n");
        out.push_str(&format!("  name: {}\n", quote(&node.name)));
        out.push_str(&format!("  type: {}\n", quote(caffe_type(&node.op))));
        for b in &bottoms {
            out.push_str(&format!("  bottom: {b}\n"));
        }
        out.push_str(&format!("  top: {}\n", quote(&node.name)));
        match &node.op {
            Op::Conv2d(p) => {
                out.push_str("  convolution_param {\n");
                out.push_str(&format!("    num_output: {}\n", p.weights.out_c));
                out.push_str(&format!("    kernel_size: {}\n", p.weights.kh));
                if p.stride != 1 {
                    out.push_str(&format!("    stride: {}\n", p.stride));
                }
                if p.pad != 0 {
                    out.push_str(&format!("    pad: {}\n", p.pad));
                }
                if p.groups != 1 {
                    out.push_str(&format!("    group: {}\n", p.groups));
                }
                out.push_str("  }\n");
            }
            Op::FullyConnected { out: o, .. } => {
                out.push_str(&format!(
                    "  inner_product_param {{\n    num_output: {o}\n  }}\n"
                ));
            }
            Op::Pool {
                kind,
                k,
                stride,
                pad,
            } => {
                out.push_str("  pooling_param {\n");
                out.push_str(&format!(
                    "    pool: {}\n",
                    match kind {
                        PoolKind::Max => "MAX",
                        PoolKind::Avg => "AVE",
                    }
                ));
                out.push_str(&format!("    kernel_size: {k}\n    stride: {stride}\n"));
                if *pad != 0 {
                    out.push_str(&format!("    pad: {pad}\n"));
                }
                out.push_str("  }\n");
            }
            Op::GlobalAvgPool => {
                out.push_str("  pooling_param {\n    pool: AVE\n    global_pooling: true\n  }\n");
            }
            Op::Lrn {
                local_size,
                alpha,
                beta,
                ..
            } => {
                out.push_str(&format!(
                    "  lrn_param {{\n    local_size: {local_size}\n    alpha: {alpha}\n    beta: {beta}\n  }}\n"
                ));
            }
            _ => {}
        }
        let s = shapes[idx];
        out.push_str(&format!("  # output: 1x{}x{}x{}\n", s.c, s.h, s.w));
        out.push_str("}\n");
    }
    out
}

fn caffe_type(op: &Op) -> &'static str {
    match op {
        Op::Input => "Input",
        Op::Conv2d(_) => "Convolution",
        Op::FullyConnected { .. } => "InnerProduct",
        Op::Pool { .. } | Op::GlobalAvgPool => "Pooling",
        Op::Relu => "ReLU",
        Op::BatchNorm { .. } => "BatchNorm",
        Op::EltwiseAdd => "Eltwise",
        Op::Concat => "Concat",
        Op::Lrn { .. } => "LRN",
        Op::Softmax => "Softmax",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn lenet_prototxt_has_caffe_structure() {
        let text = to_prototxt(&zoo::lenet5(1));
        assert!(text.starts_with("name: \"lenet-5\""));
        assert!(text.contains("type: \"Convolution\""));
        assert!(text.contains("num_output: 20"));
        assert!(text.contains("kernel_size: 5"));
        assert!(text.contains("type: \"InnerProduct\""));
        assert!(text.contains("num_output: 500"));
        assert!(text.contains("pool: MAX"));
        assert!(text.contains("type: \"Softmax\""));
        // One layer block per non-input node.
        assert_eq!(
            text.matches("layer {").count(),
            zoo::lenet5(1).layer_count()
        );
    }

    #[test]
    fn grouped_and_padded_convs_render_params() {
        let text = to_prototxt(&zoo::alexnet(1));
        assert!(text.contains("group: 2"));
        assert!(text.contains("stride: 4"));
        assert!(text.contains("lrn_param"));
    }

    #[test]
    fn residual_nets_render_eltwise_with_two_bottoms() {
        let text = to_prototxt(&zoo::resnet18_cifar(1));
        let add_block = text
            .split("layer {")
            .find(|b| b.contains("type: \"Eltwise\""))
            .expect("an eltwise layer");
        assert_eq!(add_block.matches("bottom:").count(), 2);
    }

    #[test]
    fn output_shape_comments_match_inference() {
        let net = zoo::lenet5(1);
        let text = to_prototxt(&net);
        assert!(text.contains("# output: 1x20x24x24"), "conv1 shape comment");
        assert!(text.contains("# output: 1x10x1x1"), "logits shape comment");
    }
}
