//! Model accounting: parameters, MACs and weight-file sizes.
//!
//! Feeds the Table II/III "Model Size" columns and the NVDLA timing
//! model (MAC counts and per-layer data traffic).

use crate::graph::{Network, Op};
use crate::tensor::Shape;

/// Numeric precision of stored weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 8-bit integers (`nv_small`).
    Int8,
    /// 16-bit floats (`nv_full`).
    Fp16,
    /// 32-bit floats (Caffe model file).
    Fp32,
}

impl Precision {
    /// Bytes per element.
    #[must_use]
    pub fn bytes(self) -> usize {
        match self {
            Precision::Int8 => 1,
            Precision::Fp16 => 2,
            Precision::Fp32 => 4,
        }
    }
}

/// Per-layer cost numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerStats {
    /// Node name.
    pub name: String,
    /// Caffe-style kind name.
    pub kind: &'static str,
    /// Parameter count (weights + biases).
    pub params: usize,
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// Input activation elements read.
    pub input_elems: usize,
    /// Output activation elements written.
    pub output_elems: usize,
}

/// Whole-model totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// Per-layer rows in topological order (input node excluded).
    pub layers: Vec<LayerStats>,
    /// Total parameters.
    pub params: usize,
    /// Total MACs for one inference.
    pub macs: u64,
    /// Total activation elements moved (inputs + outputs of all layers).
    pub activation_elems: usize,
}

impl ModelStats {
    /// Compute statistics for a network.
    ///
    /// # Panics
    ///
    /// Panics if the network's shapes are inconsistent.
    #[must_use]
    pub fn of(net: &Network) -> Self {
        let shapes = net
            .infer_shapes()
            .expect("network shapes must be consistent");
        let mut layers = Vec::new();
        for (idx, node) in net.nodes().iter().enumerate().skip(1) {
            let out: Shape = shapes[idx];
            let input_elems: usize = node
                .inputs
                .iter()
                .map(|i| shapes[i.index()].elements())
                .sum();
            let (params, macs) = match &node.op {
                Op::Conv2d(p) => {
                    let params = p.weights.len() + p.bias.len();
                    let macs = (p.weights.in_c * p.weights.kh * p.weights.kw) as u64
                        * out.elements() as u64;
                    (params, macs)
                }
                Op::FullyConnected {
                    out: o, input: i, ..
                } => (o * i + o, (o * i) as u64),
                Op::BatchNorm { scale, shift } => {
                    (scale.len() + shift.len(), out.elements() as u64)
                }
                Op::Pool { k, .. } => (0, (k * k * out.elements()) as u64),
                Op::GlobalAvgPool => (0, input_elems as u64),
                Op::Lrn { local_size, .. } => (0, (local_size * out.elements()) as u64),
                Op::EltwiseAdd | Op::Relu | Op::Softmax => (0, out.elements() as u64),
                Op::Input | Op::Concat => (0, 0),
            };
            layers.push(LayerStats {
                name: node.name.clone(),
                kind: node.op.kind_name(),
                params,
                macs,
                input_elems,
                output_elems: out.elements(),
            });
        }
        let params = layers.iter().map(|l| l.params).sum();
        let macs = layers.iter().map(|l| l.macs).sum();
        let activation_elems = layers.iter().map(|l| l.input_elems + l.output_elems).sum();
        ModelStats {
            layers,
            params,
            macs,
            activation_elems,
        }
    }

    /// Weight-file size in bytes at the given precision (the paper's
    /// "Model Size" column is the Caffe fp32 file).
    #[must_use]
    pub fn model_bytes(&self, precision: Precision) -> usize {
        self.params * precision.bytes()
    }

    /// Model size as a human string (MB with one decimal, or KB).
    #[must_use]
    pub fn model_size_string(&self, precision: Precision) -> String {
        let bytes = self.model_bytes(precision) as f64;
        if bytes >= 1024.0 * 1024.0 {
            format!("{:.1} MB", bytes / (1024.0 * 1024.0))
        } else {
            format!("{:.1} KB", bytes / 1024.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConvParams, Network, PoolKind};
    use crate::tensor::{Shape, WeightTensor};

    fn sample_net() -> Network {
        let mut net = Network::new("t", Shape::new(1, 28, 28));
        let c1 = net
            .add(
                "conv1",
                Op::Conv2d(ConvParams {
                    weights: WeightTensor::zeros(20, 1, 5, 5),
                    bias: vec![0.0; 20],
                    stride: 1,
                    pad: 0,
                    groups: 1,
                }),
                &[net.input()],
            )
            .unwrap();
        net.add(
            "pool1",
            Op::Pool {
                kind: PoolKind::Max,
                k: 2,
                stride: 2,
                pad: 0,
            },
            &[c1],
        )
        .unwrap();
        net
    }

    #[test]
    fn conv_macs_and_params() {
        let stats = ModelStats::of(&sample_net());
        let conv = &stats.layers[0];
        assert_eq!(conv.params, 20 * 25 + 20);
        // 24x24 outputs × 20 channels × 25 MACs each.
        assert_eq!(conv.macs, 25 * 20 * 24 * 24);
        assert_eq!(conv.output_elems, 20 * 24 * 24);
    }

    #[test]
    fn precision_scales_model_bytes() {
        let stats = ModelStats::of(&sample_net());
        assert_eq!(stats.model_bytes(Precision::Fp32), stats.params * 4);
        assert_eq!(stats.model_bytes(Precision::Int8), stats.params);
        assert_eq!(stats.model_bytes(Precision::Fp16), stats.params * 2);
    }

    #[test]
    fn size_string_formats() {
        let stats = ModelStats::of(&sample_net());
        let s = stats.model_size_string(Precision::Fp32);
        assert!(s.ends_with("KB") || s.ends_with("MB"));
    }

    #[test]
    fn pool_has_no_params() {
        let stats = ModelStats::of(&sample_net());
        assert_eq!(stats.layers[1].params, 0);
        assert!(stats.layers[1].macs > 0);
    }
}
