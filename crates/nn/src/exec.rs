//! Reference (golden) f32 executor.
//!
//! Executes a [`Network`] layer by layer in plain f32 arithmetic. The
//! NVDLA model's INT8/FP16 results are verified against this executor in
//! the integration tests, exactly as the paper validates its SoC output
//! against the NVDLA virtual platform.

use crate::graph::{ConvParams, GraphError, Network, NodeId, Op, PoolKind};
use crate::tensor::{Shape, Tensor};

/// Executes a network and retains every intermediate activation.
#[derive(Debug)]
pub struct Executor<'a> {
    net: &'a Network,
    shapes: Vec<Shape>,
}

impl<'a> Executor<'a> {
    /// Prepare an executor (infers shapes once).
    ///
    /// # Panics
    ///
    /// Panics if the network's shapes are inconsistent; validate with
    /// [`Network::infer_shapes`] first for a `Result`.
    #[must_use]
    pub fn new(net: &'a Network) -> Self {
        let shapes = net
            .infer_shapes()
            .expect("network shapes must be consistent");
        Executor { net, shapes }
    }

    /// Inferred output shape of each node.
    #[must_use]
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Run inference, returning the final output.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the input shape does not match the
    /// network.
    pub fn run(&self, input: &Tensor) -> Result<Tensor, GraphError> {
        Ok(self.run_all(input)?.pop().expect("network has nodes"))
    }

    /// Run inference, returning every node's activation (used for
    /// calibration and layer-by-layer verification).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the input shape does not match.
    pub fn run_all(&self, input: &Tensor) -> Result<Vec<Tensor>, GraphError> {
        if input.shape() != self.net.input_shape() {
            return Err(GraphError {
                node: "data".into(),
                message: format!(
                    "input shape {} does not match network input {}",
                    input.shape(),
                    self.net.input_shape()
                ),
            });
        }
        let mut acts: Vec<Tensor> = Vec::with_capacity(self.net.nodes().len());
        for (idx, node) in self.net.nodes().iter().enumerate() {
            let out_shape = self.shapes[idx];
            let get = |k: usize| -> &Tensor { &acts[node.inputs[k].index()] };
            let out = match &node.op {
                Op::Input => input.clone(),
                Op::Conv2d(p) => conv2d(get(0), p, out_shape),
                Op::FullyConnected {
                    weights,
                    out,
                    input: in_dim,
                    bias,
                } => fully_connected(get(0), weights, *out, *in_dim, bias),
                Op::Pool {
                    kind,
                    k,
                    stride,
                    pad,
                } => pool(get(0), *kind, *k, *stride, *pad, out_shape),
                Op::GlobalAvgPool => global_avg_pool(get(0)),
                Op::Relu => relu(get(0)),
                Op::BatchNorm { scale, shift } => batch_norm(get(0), scale, shift),
                Op::EltwiseAdd => eltwise_add(get(0), get(1)),
                Op::Concat => concat(&node.inputs, &acts, out_shape),
                Op::Lrn {
                    local_size,
                    alpha,
                    beta,
                    k,
                } => lrn(get(0), *local_size, *alpha, *beta, *k),
                Op::Softmax => softmax(get(0)),
            };
            debug_assert_eq!(out.shape(), out_shape, "node {} shape", node.name);
            acts.push(out);
        }
        Ok(acts)
    }

    /// Run and return the activation of one specific node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the input shape does not match.
    pub fn run_to(&self, input: &Tensor, node: NodeId) -> Result<Tensor, GraphError> {
        let mut all = self.run_all(input)?;
        Ok(all.swap_remove(node.index()))
    }
}

fn conv2d(x: &Tensor, p: &ConvParams, out_shape: Shape) -> Tensor {
    let mut y = Tensor::zeros(out_shape);
    let in_shape = x.shape();
    let (kh, kw) = (p.weights.kh, p.weights.kw);
    let in_per_group = p.weights.in_c;
    let out_per_group = p.weights.out_c / p.groups;
    for oc in 0..out_shape.c {
        let g = oc / out_per_group;
        let in_base = g * in_per_group;
        for oy in 0..out_shape.h {
            for ox in 0..out_shape.w {
                let mut acc = p.bias[oc];
                for ic in 0..in_per_group {
                    for ky in 0..kh {
                        let iy = (oy * p.stride + ky) as isize - p.pad as isize;
                        if iy < 0 || iy as usize >= in_shape.h {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * p.stride + kx) as isize - p.pad as isize;
                            if ix < 0 || ix as usize >= in_shape.w {
                                continue;
                            }
                            acc += x.at(in_base + ic, iy as usize, ix as usize)
                                * p.weights.at(oc, ic, ky, kx);
                        }
                    }
                }
                y.set(oc, oy, ox, acc);
            }
        }
    }
    y
}

fn fully_connected(x: &Tensor, weights: &[f32], out: usize, in_dim: usize, bias: &[f32]) -> Tensor {
    let mut y = Tensor::zeros(Shape::new(out, 1, 1));
    let xv = x.data();
    for o in 0..out {
        let row = &weights[o * in_dim..(o + 1) * in_dim];
        let mut acc = bias[o];
        for (w, v) in row.iter().zip(xv) {
            acc += w * v;
        }
        y.data_mut()[o] = acc;
    }
    y
}

fn pool(x: &Tensor, kind: PoolKind, k: usize, stride: usize, pad: usize, out: Shape) -> Tensor {
    let mut y = Tensor::zeros(out);
    let s = x.shape();
    for c in 0..out.c {
        for oy in 0..out.h {
            for ox in 0..out.w {
                let mut best = f32::NEG_INFINITY;
                let mut sum = 0.0f32;
                let mut count = 0usize;
                for ky in 0..k {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy as usize >= s.h {
                        continue;
                    }
                    for kx in 0..k {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix as usize >= s.w {
                            continue;
                        }
                        let v = x.at(c, iy as usize, ix as usize);
                        best = best.max(v);
                        sum += v;
                        count += 1;
                    }
                }
                let v = match kind {
                    PoolKind::Max => best,
                    // Caffe averages over the full window including padding.
                    PoolKind::Avg => sum / (k * k) as f32,
                };
                let _ = count;
                y.set(c, oy, ox, v);
            }
        }
    }
    y
}

fn global_avg_pool(x: &Tensor) -> Tensor {
    let s = x.shape();
    let mut y = Tensor::zeros(Shape::new(s.c, 1, 1));
    let denom = (s.h * s.w) as f32;
    for c in 0..s.c {
        let mut sum = 0.0;
        for h in 0..s.h {
            for w in 0..s.w {
                sum += x.at(c, h, w);
            }
        }
        y.data_mut()[c] = sum / denom;
    }
    y
}

fn relu(x: &Tensor) -> Tensor {
    let mut y = x.clone();
    for v in y.data_mut() {
        *v = v.max(0.0);
    }
    y
}

fn batch_norm(x: &Tensor, scale: &[f32], shift: &[f32]) -> Tensor {
    let s = x.shape();
    let mut y = x.clone();
    for c in 0..s.c {
        let (a, b) = (scale[c], shift[c]);
        let plane = &mut y.data_mut()[c * s.h * s.w..(c + 1) * s.h * s.w];
        for v in plane {
            *v = *v * a + b;
        }
    }
    y
}

fn eltwise_add(a: &Tensor, b: &Tensor) -> Tensor {
    let mut y = a.clone();
    for (v, w) in y.data_mut().iter_mut().zip(b.data()) {
        *v += w;
    }
    y
}

fn concat(inputs: &[NodeId], acts: &[Tensor], out: Shape) -> Tensor {
    let mut y = Tensor::zeros(out);
    let mut c0 = 0usize;
    for id in inputs {
        let t = &acts[id.index()];
        let s = t.shape();
        let plane = s.h * s.w;
        y.data_mut()[c0 * plane..(c0 + s.c) * plane].copy_from_slice(t.data());
        c0 += s.c;
    }
    y
}

fn lrn(x: &Tensor, local_size: usize, alpha: f32, beta: f32, k: f32) -> Tensor {
    let s = x.shape();
    let mut y = Tensor::zeros(s);
    let half = local_size / 2;
    for c in 0..s.c {
        let lo = c.saturating_sub(half);
        let hi = (c + half).min(s.c - 1);
        for h in 0..s.h {
            for w in 0..s.w {
                let mut sum_sq = 0.0;
                for cc in lo..=hi {
                    let v = x.at(cc, h, w);
                    sum_sq += v * v;
                }
                let denom = (k + alpha * sum_sq / local_size as f32).powf(beta);
                y.set(c, h, w, x.at(c, h, w) / denom);
            }
        }
    }
    y
}

fn softmax(x: &Tensor) -> Tensor {
    let mut y = x.clone();
    let max = y.data().iter().fold(f32::NEG_INFINITY, |m, v| m.max(*v));
    let mut sum = 0.0;
    for v in y.data_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in y.data_mut() {
        *v /= sum;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ConvParams, Network};
    use crate::tensor::WeightTensor;

    fn identity_conv(c: usize) -> Op {
        // 1x1 conv with identity weights.
        let mut data = vec![0.0f32; c * c];
        for o in 0..c {
            data[o * c + o] = 1.0;
        }
        Op::Conv2d(ConvParams {
            weights: WeightTensor::from_vec(c, c, 1, 1, data),
            bias: vec![0.0; c],
            stride: 1,
            pad: 0,
            groups: 1,
        })
    }

    fn weight_from(o: usize, i: usize, kh: usize, kw: usize, data: Vec<f32>) -> WeightTensor {
        WeightTensor::from_vec(o, i, kh, kw, data)
    }

    #[test]
    fn identity_conv_preserves_input() {
        let mut net = Network::new("t", Shape::new(3, 4, 4));
        net.add("c", identity_conv(3), &[net.input()]).unwrap();
        let x = Tensor::random(Shape::new(3, 4, 4), 5);
        let y = Executor::new(&net).run(&x).unwrap();
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn conv_known_answer() {
        // 1 input channel 3x3, one 2x2 kernel of ones, stride 1, no pad:
        // each output = sum of 2x2 window.
        let mut net = Network::new("t", Shape::new(1, 3, 3));
        let w = weight_from(1, 1, 2, 2, vec![1.0; 4]);
        net.add(
            "c",
            Op::Conv2d(ConvParams {
                weights: w,
                bias: vec![0.5],
                stride: 1,
                pad: 0,
                groups: 1,
            }),
            &[net.input()],
        )
        .unwrap();
        let x = Tensor::from_vec(
            Shape::new(1, 3, 3),
            vec![1., 2., 3., 4., 5., 6., 7., 8., 9.],
        );
        let y = Executor::new(&net).run(&x).unwrap();
        assert_eq!(y.shape(), Shape::new(1, 2, 2));
        assert_eq!(y.data(), &[12.5, 16.5, 24.5, 28.5]);
    }

    #[test]
    fn depthwise_conv_groups() {
        // groups == channels: each channel convolved independently.
        let mut net = Network::new("t", Shape::new(2, 2, 2));
        let w = weight_from(2, 1, 1, 1, vec![2.0, 3.0]);
        net.add(
            "dw",
            Op::Conv2d(ConvParams {
                weights: w,
                bias: vec![0.0, 0.0],
                stride: 1,
                pad: 0,
                groups: 2,
            }),
            &[net.input()],
        )
        .unwrap();
        let x = Tensor::from_vec(Shape::new(2, 2, 2), vec![1., 1., 1., 1., 1., 1., 1., 1.]);
        let y = Executor::new(&net).run(&x).unwrap();
        assert_eq!(&y.data()[..4], &[2., 2., 2., 2.]);
        assert_eq!(&y.data()[4..], &[3., 3., 3., 3.]);
    }

    #[test]
    fn max_and_avg_pool() {
        let mut net = Network::new("t", Shape::new(1, 2, 2));
        net.add(
            "p",
            Op::Pool {
                kind: PoolKind::Max,
                k: 2,
                stride: 2,
                pad: 0,
            },
            &[net.input()],
        )
        .unwrap();
        let x = Tensor::from_vec(Shape::new(1, 2, 2), vec![1., 5., 3., 2.]);
        let y = Executor::new(&net).run(&x).unwrap();
        assert_eq!(y.data(), &[5.0]);

        let mut net2 = Network::new("t", Shape::new(1, 2, 2));
        net2.add(
            "p",
            Op::Pool {
                kind: PoolKind::Avg,
                k: 2,
                stride: 2,
                pad: 0,
            },
            &[net2.input()],
        )
        .unwrap();
        let y = Executor::new(&net2).run(&x).unwrap();
        assert_eq!(y.data(), &[2.75]);
    }

    #[test]
    fn relu_and_batchnorm() {
        let mut net = Network::new("t", Shape::new(2, 1, 1));
        let bn = net
            .add(
                "bn",
                Op::BatchNorm {
                    scale: vec![2.0, -1.0],
                    shift: vec![0.0, 1.0],
                },
                &[net.input()],
            )
            .unwrap();
        net.add("r", Op::Relu, &[bn]).unwrap();
        let x = Tensor::from_vec(Shape::new(2, 1, 1), vec![3.0, 4.0]);
        let y = Executor::new(&net).run(&x).unwrap();
        assert_eq!(y.data(), &[6.0, 0.0]); // -4+1=-3 -> relu 0
    }

    #[test]
    fn residual_add_matches_manual_sum() {
        let mut net = Network::new("t", Shape::new(1, 2, 2));
        let r = net.add("r", Op::Relu, &[net.input()]).unwrap();
        net.add("sum", Op::EltwiseAdd, &[r, net.input()]).unwrap();
        let x = Tensor::from_vec(Shape::new(1, 2, 2), vec![-1., 2., -3., 4.]);
        let y = Executor::new(&net).run(&x).unwrap();
        assert_eq!(y.data(), &[-1., 4., -3., 8.]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut net = Network::new("t", Shape::new(4, 1, 1));
        net.add("s", Op::Softmax, &[net.input()]).unwrap();
        let x = Tensor::from_vec(Shape::new(4, 1, 1), vec![1., 2., 3., 4.]);
        let y = Executor::new(&net).run(&x).unwrap();
        let sum: f32 = y.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert_eq!(y.argmax(), 3);
    }

    #[test]
    fn lrn_reduces_magnitude() {
        let mut net = Network::new("t", Shape::new(5, 1, 1));
        net.add(
            "lrn",
            Op::Lrn {
                local_size: 5,
                alpha: 1.0,
                beta: 0.75,
                k: 1.0,
            },
            &[net.input()],
        )
        .unwrap();
        let x = Tensor::from_vec(Shape::new(5, 1, 1), vec![1.0; 5]);
        let y = Executor::new(&net).run(&x).unwrap();
        for v in y.data() {
            assert!(*v < 1.0 && *v > 0.0);
        }
    }

    #[test]
    fn wrong_input_shape_is_error() {
        let mut net = Network::new("t", Shape::new(1, 4, 4));
        net.add("r", Op::Relu, &[net.input()]).unwrap();
        let e = Executor::new(&net)
            .run(&Tensor::zeros(Shape::new(1, 5, 5)))
            .unwrap_err();
        assert!(e.to_string().contains("does not match"));
    }
}
