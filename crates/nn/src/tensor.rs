//! NCHW activation tensors and OIHW weight tensors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of an activation tensor (batch is always 1 for inference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Shape {
    /// Construct a shape.
    #[must_use]
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Shape { c, h, w }
    }

    /// Total element count.
    #[must_use]
    pub fn elements(&self) -> usize {
        self.c * self.h * self.w
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// A dense f32 activation tensor in NCHW (N=1) layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A zero tensor of the given shape.
    #[must_use]
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![0.0; shape.elements()],
        }
    }

    /// Construct from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.elements()`.
    #[must_use]
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.elements(),
            "data length does not match shape {shape}"
        );
        Tensor { shape, data }
    }

    /// Deterministic pseudo-random tensor in `[-1, 1)` (synthetic input
    /// images).
    #[must_use]
    pub fn random(shape: Shape, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.elements())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Flat element view.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat element view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    #[must_use]
    pub fn at(&self, c: usize, h: usize, w: usize) -> f32 {
        self.data[(c * self.shape.h + h) * self.shape.w + w]
    }

    /// Set element at `(c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, c: usize, h: usize, w: usize, v: f32) {
        self.data[(c * self.shape.h + h) * self.shape.w + w] = v;
    }

    /// Largest absolute value (0 for an empty tensor).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Index of the maximum element (argmax over the flattened tensor).
    #[must_use]
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i)
    }
}

/// A convolution weight tensor in OIHW layout.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightTensor {
    /// Output channels.
    pub out_c: usize,
    /// Input channels (per group).
    pub in_c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    data: Vec<f32>,
}

impl WeightTensor {
    /// Zero-filled weights.
    #[must_use]
    pub fn zeros(out_c: usize, in_c: usize, kh: usize, kw: usize) -> Self {
        WeightTensor {
            out_c,
            in_c,
            kh,
            kw,
            data: vec![0.0; out_c * in_c * kh * kw],
        }
    }

    /// Deterministic He-style initialization: uniform in `±sqrt(2/fan_in)`.
    #[must_use]
    pub fn random(out_c: usize, in_c: usize, kh: usize, kw: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = (in_c * kh * kw).max(1) as f32;
        let bound = (2.0 / fan_in).sqrt();
        let data = (0..out_c * in_c * kh * kw)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        WeightTensor {
            out_c,
            in_c,
            kh,
            kw,
            data,
        }
    }

    /// Construct from raw OIHW data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != out_c * in_c * kh * kw`.
    #[must_use]
    pub fn from_vec(out_c: usize, in_c: usize, kh: usize, kw: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            out_c * in_c * kh * kw,
            "weight data length mismatch"
        );
        WeightTensor {
            out_c,
            in_c,
            kh,
            kw,
            data,
        }
    }

    /// Element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Mutable flat element view (OIHW order).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// True when the tensor has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat element view (OIHW order).
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Element at `(o, i, kh, kw)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    #[must_use]
    pub fn at(&self, o: usize, i: usize, y: usize, x: usize) -> f32 {
        self.data[((o * self.in_c + i) * self.kh + y) * self.kw + x]
    }

    /// Largest absolute value.
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_elements_and_display() {
        let s = Shape::new(3, 224, 224);
        assert_eq!(s.elements(), 150_528);
        assert_eq!(s.to_string(), "3x224x224");
    }

    #[test]
    fn indexing_is_nchw() {
        let mut t = Tensor::zeros(Shape::new(2, 3, 4));
        t.set(1, 2, 3, 7.0);
        assert_eq!(t.at(1, 2, 3), 7.0);
        // Last element of the flat buffer.
        assert_eq!(t.data()[23], 7.0);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Tensor::random(Shape::new(1, 8, 8), 42);
        let b = Tensor::random(Shape::new(1, 8, 8), 42);
        let c = Tensor::random(Shape::new(1, 8, 8), 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.max_abs() <= 1.0);
    }

    #[test]
    fn argmax_finds_peak() {
        let mut t = Tensor::zeros(Shape::new(10, 1, 1));
        t.set(7, 0, 0, 3.5);
        assert_eq!(t.argmax(), 7);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(Shape::new(1, 2, 2), vec![0.0; 3]);
    }

    #[test]
    fn weights_he_bound_scales_with_fan_in() {
        let small_fan = WeightTensor::random(4, 1, 1, 1, 1);
        let large_fan = WeightTensor::random(4, 512, 3, 3, 1);
        assert!(small_fan.max_abs() > large_fan.max_abs());
        assert_eq!(large_fan.len(), 4 * 512 * 9);
    }

    #[test]
    fn weight_indexing_oihw() {
        let mut w = WeightTensor::zeros(2, 3, 5, 5);
        w.data = (0..w.len()).map(|i| i as f32).collect();
        assert_eq!(w.at(0, 0, 0, 1), 1.0);
        assert_eq!(w.at(0, 1, 0, 0), 25.0);
        assert_eq!(w.at(1, 0, 0, 0), 75.0);
    }
}
