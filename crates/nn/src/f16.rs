//! Software IEEE 754 half-precision floats.
//!
//! `nv_full` "additionally supports FP16 computations" (Table III runs
//! use FP16). No half-precision crate is available offline, so this is a
//! minimal, correctly-rounded f32↔f16 converter; arithmetic is performed
//! in f32 and rounded through F16, which matches an accelerator whose
//! accumulators are wider than its operands.

use std::fmt;

/// An IEEE 754 binary16 value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);

    /// Construct from the raw bit pattern.
    #[must_use]
    pub fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// The raw bit pattern.
    #[must_use]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from f32 with round-to-nearest-even.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let frac = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN.
            let payload = if frac != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | payload);
        }
        // Re-bias: f32 bias 127, f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            return F16(sign | 0x7C00); // overflow -> inf
        }
        if unbiased >= -14 {
            // Normal f16. Keep 10 fraction bits, round-to-nearest-even.
            let exp16 = (unbiased + 15) as u16;
            let mant = frac >> 13;
            let round_bits = frac & 0x1FFF;
            let mut h = sign | (exp16 << 10) | mant as u16;
            if round_bits > 0x1000 || (round_bits == 0x1000 && (mant & 1) == 1) {
                h = h.wrapping_add(1); // may carry into exponent, correctly
            }
            return F16(h);
        }
        if unbiased >= -25 {
            // Subnormal f16.
            let shift = (-14 - unbiased) as u32;
            let full = 0x0080_0000 | frac; // implicit leading 1
            let mant_shift = 13 + shift;
            let mant = full >> mant_shift;
            let rem = full & ((1 << mant_shift) - 1);
            let half = 1u32 << (mant_shift - 1);
            let mut h = sign | mant as u16;
            if rem > half || (rem == half && (mant & 1) == 1) {
                h = h.wrapping_add(1);
            }
            return F16(h);
        }
        F16(sign) // underflow -> signed zero
    }

    /// Convert to f32 (exact).
    #[must_use]
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 >> 15) << 31;
        let exp = u32::from(self.0 >> 10) & 0x1F;
        let frac = u32::from(self.0) & 0x3FF;
        let bits = if exp == 0 {
            if frac == 0 {
                sign
            } else {
                // Subnormal: value = frac × 2^-24. Normalize the leading 1
                // to bit 10, counting the shifts.
                let mut shifts = 0u32;
                let mut f = frac;
                while f & 0x400 == 0 {
                    f <<= 1;
                    shifts += 1;
                }
                f &= 0x3FF;
                let exp_field = 127 - 15 + 1 - shifts; // 2^(10-shifts-24)
                sign | (exp_field << 23) | (f << 13)
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (frac << 13)
        } else {
            sign | ((exp + 127 - 15) << 23) | (frac << 13)
        };
        f32::from_bits(bits)
    }

    /// Round an f32 through f16 precision (quantize-dequantize).
    #[must_use]
    pub fn round_f32(value: f32) -> f32 {
        Self::from_f32(value).to_f32()
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values_round_trip() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, -0.25, 1024.0, 65504.0] {
            assert_eq!(F16::round_f32(v), v, "{v} should be exact in f16");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xC000);
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7BFF);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(F16::from_f32(1e6), F16::INFINITY);
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e6).to_bits(), 0xFC00);
    }

    #[test]
    fn nan_propagates() {
        let h = F16::from_f32(f32::NAN);
        assert!(h.to_f32().is_nan());
    }

    #[test]
    fn subnormals_round_trip() {
        // Smallest positive subnormal f16 = 2^-24.
        let tiny = 2f32.powi(-24);
        assert_eq!(F16::round_f32(tiny), tiny);
        // Below half of it underflows to zero.
        assert_eq!(F16::round_f32(tiny / 4.0), 0.0);
        // Largest subnormal.
        let sub = 2f32.powi(-14) - 2f32.powi(-24);
        assert_eq!(F16::round_f32(sub), sub);
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10;
        // nearest-even keeps 1.0.
        let halfway = 1.0 + 2f32.powi(-11);
        assert_eq!(F16::round_f32(halfway), 1.0);
        // Slightly above goes up.
        let above = 1.0 + 2f32.powi(-11) + 2f32.powi(-16);
        assert_eq!(F16::round_f32(above), 1.0 + 2f32.powi(-10));
    }

    #[test]
    fn precision_loss_is_bounded() {
        // Relative error of f16 rounding is at most 2^-11 for normals.
        for i in 1..1000 {
            let v = i as f32 * 0.37;
            let r = F16::round_f32(v);
            assert!(
                (r - v).abs() / v <= 2f32.powi(-11) + f32::EPSILON,
                "{v} -> {r}"
            );
        }
    }
}
