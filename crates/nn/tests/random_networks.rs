//! Property tests over randomized networks, driven by the shared
//! `rvnv_fuzz` generator library: shape inference and the content
//! fingerprint must be stable across rebuilds of the same plan, and
//! the fingerprint must track content (weights), not just structure.

use rvnv_fuzz::gen::{self, NetPlan};

/// Build a plan twice; both builds must infer identical shapes and
/// hash to the identical content fingerprint. 100 seeds.
#[test]
fn rebuilds_are_shape_and_fingerprint_stable() {
    for seed in 0..100u64 {
        let plan = gen::net_plan(seed);
        let a = plan.build().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let b = plan.build().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let shapes_a = a
            .infer_shapes()
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        let shapes_b = b
            .infer_shapes()
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        assert_eq!(shapes_a, shapes_b, "seed {seed}: shape inference drifted");
        assert_eq!(
            a.content_fingerprint(),
            b.content_fingerprint(),
            "seed {seed}: fingerprint drifted across rebuilds"
        );
        assert_eq!(
            a.input_shape(),
            plan.input_shape(),
            "seed {seed}: built input shape disagrees with the plan"
        );
    }
}

/// Same structure, different weight seed: the content fingerprint must
/// differ — it hashes weights, not just topology.
#[test]
fn fingerprint_sees_weights_not_just_structure() {
    for seed in 0..100u64 {
        let plan = gen::net_plan(seed);
        let weighted = plan.layers.iter().any(|l| {
            matches!(
                l,
                gen::LayerPlan::Conv { .. } | gen::LayerPlan::Fc { .. } | gen::LayerPlan::BatchNorm
            )
        });
        if !weighted {
            // A pool/relu-only body draws nothing from the weight seed.
            continue;
        }
        let reseeded = NetPlan {
            weight_seed: plan.weight_seed.wrapping_add(1),
            ..plan.clone()
        };
        let a = plan.build().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let b = reseeded
            .build()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_ne!(
            a.content_fingerprint(),
            b.content_fingerprint(),
            "seed {seed}: reseeded weights hashed identically"
        );
    }
}

/// The generator's shape tracker agrees with the graph's inference:
/// every generated plan builds AND its inferred output is consistent
/// with what the layer list implies (FC/GAP heads end at 1×1).
#[test]
fn generated_plans_infer_consistent_heads() {
    for seed in 0..100u64 {
        let plan = gen::net_plan(seed);
        let net = plan.build().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let shapes = net
            .infer_shapes()
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        let out = shapes[net.output().index()];
        let ends_flat = matches!(
            plan.layers.last(),
            Some(gen::LayerPlan::Fc { .. } | gen::LayerPlan::GlobalAvgPool)
        );
        if ends_flat {
            assert_eq!(
                (out.h, out.w),
                (1, 1),
                "seed {seed}: flat head left a spatial output {out}"
            );
        }
    }
}
