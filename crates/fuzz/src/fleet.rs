//! `fleet` target: random fleet specs — per-pool worker counts and
//! autoscaler bounds, queue depths, routing policy, traffic shape,
//! rate, duration, spot-replay sampling — against one calibrated
//! heterogeneous [`Fleet`] (nv_small + nv_full). The standing
//! contracts (pinned for fixed specs by `tests/fleet.rs`): sampled
//! dispatch windows replay on real per-pool SoCs with **zero
//! divergence**, and the balancer's books balance — every offered
//! request resolves exactly once, per pool and in total.
//!
//! Pool count, class and residency are fixed at [`Fleet::new`] by
//! contract (`check_spec`); the generator only varies the knobs a
//! built fleet accepts.

use std::sync::OnceLock;

use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::CompileOptions;
use rvnv_nn::zoo::Model;
use rvnv_soc::fleet::{Fleet, FleetSpec, PoolSpec, RoutePolicy, SocClass, TrafficShape};
use rvnv_util::SplitMix64;

use crate::{shrink, FuzzTarget};

/// The fixed 2-pool shape every spec must keep (class + residency).
fn base_pools() -> Vec<PoolSpec> {
    vec![
        PoolSpec {
            class: SocClass::NvSmall,
            workers: 2,
            min_workers: 1,
            max_workers: 3,
            queue_depth: 8,
            models: None,
        },
        PoolSpec {
            class: SocClass::NvFull,
            workers: 1,
            min_workers: 1,
            max_workers: 2,
            queue_depth: 8,
            models: None,
        },
    ]
}

/// One calibrated heterogeneous fleet shared by every case (building
/// compiles both models for both classes and calibrates each pool).
fn fleet() -> &'static Fleet {
    static FLEET: OnceLock<Fleet> = OnceLock::new();
    FLEET.get_or_init(|| {
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let nets = [Model::LeNet5.build(1), Model::LeNet5.build(2)];
        let codegen = CodegenOptions {
            wait_mode: WaitMode::Wfi,
            ..CodegenOptions::default()
        };
        let spec = FleetSpec {
            pools: base_pools(),
            ..FleetSpec::default()
        };
        Fleet::new(&nets, &opt, codegen, &spec).expect("calibrate fleet")
    })
}

/// A random fleet case: every knob a built fleet accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetCase {
    /// `(workers, min, max, queue)` per pool, same order as the base.
    pub pools: Vec<(usize, usize, usize, usize)>,
    /// Routing policy index (weighted / least-loaded / model-affinity).
    pub route: u8,
    /// Traffic shape index (steady / diurnal / bursty / flash-crowd).
    pub shape: u8,
    /// Mean offered rate, requests per modeled second.
    pub rate_rps: u64,
    /// Arrival window, modeled milliseconds.
    pub duration_ms: u64,
    /// Workload seed.
    pub seed: u64,
    /// Spot-replay windows sampled per pool.
    pub spot_windows: usize,
    /// Frames per spot-replay window.
    pub window_frames: usize,
}

fn spec_of(case: &FleetCase) -> FleetSpec {
    let mut pools = base_pools();
    for (p, &(w, lo, hi, q)) in pools.iter_mut().zip(&case.pools) {
        p.workers = w;
        p.min_workers = lo;
        p.max_workers = hi;
        p.queue_depth = q;
    }
    FleetSpec {
        pools,
        route: [
            RoutePolicy::Weighted,
            RoutePolicy::LeastLoaded,
            RoutePolicy::ModelAffinity,
        ][case.route as usize % 3],
        shape: [
            TrafficShape::Steady,
            TrafficShape::Diurnal,
            TrafficShape::Bursty,
            TrafficShape::FlashCrowd,
        ][case.shape as usize % 4],
        rate_rps: case.rate_rps,
        duration_ms: case.duration_ms,
        seed: case.seed,
        slo_us: 20_000,
        spot_windows: case.spot_windows,
        window_frames: case.window_frames,
        ..FleetSpec::default()
    }
}

/// The simulate-vs-replay fleet target.
pub struct FleetTarget;

impl FuzzTarget for FleetTarget {
    type Input = FleetCase;
    const NAME: &'static str = "fleet";

    fn generate(&self, seed: u64) -> FleetCase {
        let mut rng = SplitMix64::new(seed);
        let pools = (0..2)
            .map(|_| {
                let lo = rng.range(1, 2) as usize;
                let hi = rng.range(lo as u64, 3) as usize;
                let w = rng.range(lo as u64, hi as u64) as usize;
                (w, lo, hi, rng.range(1, 8) as usize)
            })
            .collect();
        FleetCase {
            pools,
            route: rng.below(3) as u8,
            shape: rng.below(4) as u8,
            rate_rps: rng.range(50, 400),
            duration_ms: rng.range(20, 80),
            seed: rng.next_u64(),
            spot_windows: rng.range(1, 2) as usize,
            window_frames: rng.range(2, 8) as usize,
        }
    }

    fn check(&self, case: &FleetCase) -> Result<(), String> {
        let spec = spec_of(case);
        let r = fleet()
            .run(&spec)
            .map_err(|e| format!("fleet run failed: {e}"))?;
        if r.replay_divergence != 0 {
            return Err(format!(
                "replay divergence {} over {} spot-replayed frames",
                r.replay_divergence, r.replayed_frames
            ));
        }
        let routed: u64 = r.per_pool.iter().map(|p| p.routed).sum();
        if r.offered != r.shed + routed {
            return Err(format!(
                "balancer books broke: offered {} != shed {} + routed {routed}",
                r.offered, r.shed
            ));
        }
        for (i, p) in r.per_pool.iter().enumerate() {
            if p.routed != p.served + p.dropped {
                return Err(format!(
                    "pool {i} books broke: routed {} != served {} + dropped {}",
                    p.routed, p.served, p.dropped
                ));
            }
        }
        if r.served + r.dropped + r.shed != r.offered {
            return Err(format!(
                "conservation broke: served {} + dropped {} + shed {} != offered {}",
                r.served, r.dropped, r.shed, r.offered
            ));
        }
        if r.records.len() as u64 != r.offered {
            return Err(format!(
                "{} records for {} offered requests",
                r.records.len(),
                r.offered
            ));
        }
        Ok(())
    }

    fn shrink(&self, input: FleetCase, fails: &dyn Fn(&FleetCase) -> bool) -> FleetCase {
        let mut cur = input;
        let dur = shrink::shrink_scalar(cur.duration_ms, 1, |v| {
            fails(&FleetCase {
                duration_ms: v,
                ..cur.clone()
            })
        });
        cur.duration_ms = dur;
        let rate = shrink::shrink_scalar(cur.rate_rps, 1, |v| {
            fails(&FleetCase {
                rate_rps: v,
                ..cur.clone()
            })
        });
        cur.rate_rps = rate;
        cur
    }

    fn size(input: &FleetCase) -> usize {
        (input.rate_rps * input.duration_ms / 1000).max(1) as usize
    }
}
