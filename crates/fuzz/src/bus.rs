//! `bus` target: seeded random programs over the SoC's composed DRAM
//! path — `Arbiter<ClockCrossing<SmartConnect<FaultInjector<Dram>>>>`
//! — checked against a host-side predicting mirror, the style of
//! `crates/bus/tests/fuzz_fabric.rs` made shrinkable: the program is
//! plain data ([`BusOp`] steps), so the delete-chunk pass can drop
//! steps and replay the remainder against a freshly-predicted mirror.
//!
//! Invariants per program: hostile accesses fail only with the exact
//! typed [`BusError`] the mirror predicts, successful reads match a
//! shadow DRAM byte-for-byte, completion times never run backwards,
//! the arbiter/DRAM counters conserve, and a second execution of the
//! same program produces a bit-identical event fingerprint.

use rvnv_bus::arbiter::Arbiter;
use rvnv_bus::cdc::ClockCrossing;
use rvnv_bus::dram::{Dram, DramTiming};
use rvnv_bus::fault::FaultInjector;
use rvnv_bus::smartconnect::{Side, SmartConnect};
use rvnv_bus::{AccessSize, BusError, Cycle, MasterId, Request, Reset, Target};
use rvnv_util::mix64;

use crate::gen::{self, BusOp, BUS_DRAM_BYTES};
use crate::{shrink, FuzzTarget};

type DramPath = Arbiter<ClockCrossing<SmartConnect<FaultInjector<Dram>>>>;

fn build_path() -> DramPath {
    let dram = Dram::new(BUS_DRAM_BYTES, DramTiming::mig_ddr4());
    let mux = SmartConnect::new(FaultInjector::new(dram));
    Arbiter::new(ClockCrossing::new(mux, 100_000_000, 100_000_000, 2))
}

fn mux_of(path: &mut DramPath) -> &mut SmartConnect<FaultInjector<Dram>> {
    path.downstream_mut().downstream_mut()
}

const MASTERS: [MasterId; 3] = [MasterId::Cpu, MasterId::NvdlaDbb, MasterId::ZynqPs];
const SIZES: [AccessSize; 4] = [
    AccessSize::Byte,
    AccessSize::Half,
    AccessSize::Word,
    AccessSize::Double,
];

fn side_of(master: MasterId) -> Side {
    match master {
        MasterId::ZynqPs => Side::ZynqPs,
        MasterId::Cpu | MasterId::NvdlaDbb => Side::Soc,
    }
}

fn midx(master: MasterId) -> usize {
    match master {
        MasterId::Cpu => 0,
        MasterId::NvdlaDbb => 1,
        MasterId::ZynqPs => 2,
    }
}

/// What the mirror predicts for one single-beat transaction, in fabric
/// order: the SmartConnect gates on ownership, then DRAM checks
/// alignment, then range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    Ok,
    WrongSide,
    Misaligned(u32),
    OutOfRange,
}

/// Deliberate oracle mutations, used only by the harness's own
/// planted-bug tests to prove the fuzzer catches and shrinks a real
/// oracle violation. Never set outside tests.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// The faithful mirror.
    #[default]
    None,
    /// Predict that misaligned single beats succeed — the mirror bug
    /// the fuzzer must catch and shrink to a one-op program.
    IgnoreAlignment,
}

/// The predicting-mirror fabric target.
#[derive(Default)]
pub struct BusTarget {
    /// Planted-bug knob for the harness's own tests.
    #[doc(hidden)]
    pub mutation: Mutation,
}

impl BusTarget {
    fn classify(&self, owner: Side, master: MasterId, addr: u32, size: AccessSize) -> Expect {
        let n = size.bytes();
        if side_of(master) != owner {
            Expect::WrongSide
        } else if !addr.is_multiple_of(n) && self.mutation != Mutation::IgnoreAlignment {
            Expect::Misaligned(n)
        } else if addr as usize + n as usize > BUS_DRAM_BYTES {
            Expect::OutOfRange
        } else {
            Expect::Ok
        }
    }

    /// Execute the program once, checking every prediction, and return
    /// the event fingerprint.
    fn execute(&self, ops: &[BusOp]) -> Result<u64, String> {
        let mut path = build_path();
        mux_of(&mut path).switch_to(Side::Soc);
        let mut owner = Side::Soc;
        let mut shadow = vec![0u8; BUS_DRAM_BYTES];
        let mut attempts = [0u64; 3];
        let mut ok_bytes = [0u64; 3];
        let (mut singles_ok, mut bursts_ok) = (0u64, 0u64);
        let mut now: Cycle = 0;
        let mut fp = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match *op {
                BusOp::Single {
                    master,
                    write,
                    addr,
                    size,
                    data,
                } => {
                    let master = MASTERS[master as usize % 3];
                    let size = SIZES[size as usize % 4];
                    let n = size.bytes();
                    let req = if write {
                        Request::write(addr, data, size)
                    } else {
                        Request::read(addr, size)
                    }
                    .with_master(master);
                    let expect = self.classify(owner, master, addr, size);
                    let mi = midx(master);
                    attempts[mi] += 1;
                    match path.access(&req, now) {
                        Ok(resp) => {
                            if expect != Expect::Ok {
                                return Err(format!(
                                    "op {i}: mirror predicted {expect:?} at {addr:#x}, \
                                     fabric succeeded"
                                ));
                            }
                            if resp.done_at < now {
                                return Err(format!("op {i}: time ran backwards"));
                            }
                            let (o, n) = (addr as usize, n as usize);
                            if write {
                                shadow[o..o + n].copy_from_slice(&data.to_le_bytes()[..n]);
                            } else {
                                let mut want = [0u8; 8];
                                want[..n].copy_from_slice(&shadow[o..o + n]);
                                if resp.data != u64::from_le_bytes(want) {
                                    return Err(format!(
                                        "op {i}: read at {addr:#x} diverged from the shadow \
                                         model ({:#x} != {:#x})",
                                        resp.data,
                                        u64::from_le_bytes(want)
                                    ));
                                }
                            }
                            ok_bytes[mi] += n as u64;
                            singles_ok += 1;
                            fp = mix64(fp ^ resp.done_at ^ resp.data.rotate_left(17));
                            now = resp.done_at;
                        }
                        Err(e) => {
                            check_error(expect, addr, &e).map_err(|m| format!("op {i}: {m}"))?;
                            fp = mix64(fp ^ u64::from(addr));
                        }
                    }
                }
                BusOp::Burst {
                    master,
                    write,
                    addr,
                    len,
                    fill,
                } => {
                    // Bursts bypass the ownership gate (the SoC switches
                    // the mux before streaming), so only range can fail.
                    let master = MASTERS[master as usize % 3];
                    let len = len as usize;
                    let in_range = addr as usize + len <= BUS_DRAM_BYTES;
                    let mi = midx(master);
                    attempts[mi] += 1;
                    let result = if write {
                        let buf: Vec<u8> = (0..len)
                            .map(|j| (mix64(fill ^ j as u64) & 0xFF) as u8)
                            .collect();
                        let r = path.write_block_as(master, addr, &buf, now);
                        if r.is_ok() {
                            shadow[addr as usize..addr as usize + len].copy_from_slice(&buf);
                        }
                        r
                    } else {
                        let mut buf = vec![0u8; len];
                        let r = path.read_block_as(master, addr, &mut buf, now);
                        if r.is_ok() && buf != shadow[addr as usize..addr as usize + len] {
                            return Err(format!(
                                "op {i}: burst read at {addr:#x}+{len} diverged from the \
                                 shadow model"
                            ));
                        }
                        r
                    };
                    match result {
                        Ok(done) => {
                            if !in_range {
                                return Err(format!(
                                    "op {i}: out-of-range burst at {addr:#x}+{len} succeeded"
                                ));
                            }
                            if done < now {
                                return Err(format!("op {i}: time ran backwards"));
                            }
                            ok_bytes[mi] += len as u64;
                            bursts_ok += 1;
                            fp = mix64(fp ^ done);
                            now = done;
                        }
                        Err(e) => {
                            if in_range {
                                return Err(format!(
                                    "op {i}: in-range burst at {addr:#x}+{len} failed: {e}"
                                ));
                            }
                            check_error(Expect::OutOfRange, addr, &e)
                                .map_err(|m| format!("op {i}: {m}"))?;
                            fp = mix64(fp ^ u64::from(addr));
                        }
                    }
                }
                BusOp::Switch { soc } => {
                    let side = if soc { Side::Soc } else { Side::ZynqPs };
                    mux_of(&mut path).switch_to(side);
                    owner = side;
                }
                BusOp::Reset => {
                    path.reset();
                    shadow.fill(0);
                    owner = Side::ZynqPs;
                    attempts = [0; 3];
                    ok_bytes = [0; 3];
                    singles_ok = 0;
                    bursts_ok = 0;
                    // Modeled time is the master's clock; no rewind.
                }
                BusOp::Advance(d) => now += u64::from(d),
            }
        }
        // Conservation: the fabric's books against the mirror's.
        for (mi, master) in MASTERS.iter().enumerate() {
            let s = path.port_stats(*master);
            if s.grants != attempts[mi] {
                return Err(format!(
                    "grants {} != attempts {} for {master:?}",
                    s.grants, attempts[mi]
                ));
            }
            if s.bytes != ok_bytes[mi] {
                return Err(format!(
                    "bytes {} != moved bytes {} for {master:?}",
                    s.bytes, ok_bytes[mi]
                ));
            }
        }
        let dram = mux_of(&mut path).dram_mut().inner().stats();
        if dram.accesses != singles_ok {
            return Err(format!(
                "DRAM beats {} != successful beats {singles_ok}",
                dram.accesses
            ));
        }
        if dram.bursts != bursts_ok {
            return Err(format!(
                "DRAM bursts {} != successful bursts {bursts_ok}",
                dram.bursts
            ));
        }
        Ok(fp)
    }
}

/// Assert an error is the typed variant the mirror predicted, with the
/// payload a recovery layer would need.
fn check_error(expect: Expect, addr: u32, err: &BusError) -> Result<(), String> {
    match (expect, err) {
        (Expect::WrongSide, BusError::SlaveError { addr: a, .. }) if *a == addr => Ok(()),
        (Expect::Misaligned(n), BusError::Misaligned { addr: a, align })
            if (*a, *align) == (addr, n) =>
        {
            Ok(())
        }
        (Expect::OutOfRange, BusError::OutOfRange { size, .. }) if *size == BUS_DRAM_BYTES => {
            Ok(())
        }
        _ => Err(format!(
            "mirror predicted {expect:?} at {addr:#x}, fabric returned {err}"
        )),
    }
}

impl FuzzTarget for BusTarget {
    type Input = Vec<BusOp>;
    const NAME: &'static str = "bus";

    fn generate(&self, seed: u64) -> Vec<BusOp> {
        gen::bus_program(seed)
    }

    fn check(&self, ops: &Vec<BusOp>) -> Result<(), String> {
        let first = self.execute(ops)?;
        let second = self.execute(ops)?;
        if first != second {
            return Err(format!(
                "replay diverged: fingerprint {first:#x} then {second:#x}"
            ));
        }
        Ok(())
    }

    fn shrink(&self, input: Vec<BusOp>, fails: &dyn Fn(&Vec<BusOp>) -> bool) -> Vec<BusOp> {
        shrink::shrink_elements(input, |xs| fails(&xs.to_vec()))
    }

    fn size(input: &Vec<BusOp>) -> usize {
        input.len()
    }
}
