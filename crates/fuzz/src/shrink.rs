//! Hand-rolled, deterministic counterexample shrinking.
//!
//! The vendored `proptest` stub cannot shrink, so a failing property
//! used to hand you an unminimized blob. These two passes are the whole
//! replacement: [`shrink_elements`] is a ddmin-style delete-chunk pass
//! over a sequence (drop half, then quarters, … then single elements,
//! looping to a fixed point), [`shrink_scalar`] halves a number toward
//! a floor. Both are fully deterministic — given the same failing
//! input and the same oracle they always land on the same minimum — so
//! a one-line `rv-nvdla fuzz <target> --seed S` command re-derives the
//! exact minimized repro from nothing but the seed.

/// Delete-chunk (ddmin-style) minimization of a failing sequence.
///
/// `fails` is the oracle: `true` means "this candidate still exhibits
/// the failure". The input must fail; the result is a subsequence that
/// still fails and from which no single contiguous chunk (of any size
/// this pass tried, down to one element) can be removed without losing
/// the failure — a local minimum, which in practice is the global one
/// for order-independent bugs.
pub fn shrink_elements<T, F>(mut cur: Vec<T>, fails: F) -> Vec<T>
where
    T: Clone,
    F: Fn(&[T]) -> bool,
{
    loop {
        let before = cur.len();
        let mut chunk = (cur.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < cur.len() {
                let end = (start + chunk).min(cur.len());
                let mut cand = Vec::with_capacity(cur.len() - (end - start));
                cand.extend_from_slice(&cur[..start]);
                cand.extend_from_slice(&cur[end..]);
                if fails(&cand) {
                    // Keep the deletion and retry the same position —
                    // the tail shifted left into it.
                    cur = cand;
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // A full sweep at every chunk size removed nothing: fixed point.
        if cur.len() == before {
            break;
        }
    }
    cur
}

/// Minimize a failing scalar toward `floor` by bisection.
///
/// Requires `fails(orig)`; returns the smallest value in
/// `floor..=orig` the bisection can prove failing (exactly `floor`
/// when `fails(floor)`). The oracle need not be monotonic — the result
/// is then merely a deterministic local minimum, which is all a repro
/// needs.
pub fn shrink_scalar<F>(orig: u64, floor: u64, fails: F) -> u64
where
    F: Fn(u64) -> bool,
{
    if orig <= floor {
        return orig;
    }
    if fails(floor) {
        return floor;
    }
    // Invariant: lo passes, hi fails.
    let (mut lo, mut hi) = (floor, orig);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fails(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic pair bug: fails iff the list holds both an even and
    /// an odd number. Minimal failing input: exactly two elements.
    #[test]
    fn delete_chunk_finds_the_two_element_core() {
        let input: Vec<u32> = (0..100).collect();
        let fails = |xs: &[u32]| xs.iter().any(|x| x % 2 == 0) && xs.iter().any(|x| x % 2 == 1);
        assert!(fails(&input));
        let min = shrink_elements(input, fails);
        assert_eq!(min.len(), 2, "got {min:?}");
        assert!(fails(&min));
    }

    /// A single guilty element is always isolated, wherever it hides.
    #[test]
    fn delete_chunk_isolates_a_single_element() {
        for pos in [0usize, 1, 49, 98, 99] {
            let mut input = vec![0u32; 100];
            input[pos] = 7;
            let min = shrink_elements(input, |xs| xs.contains(&7));
            assert_eq!(min, vec![7], "guilty element at {pos}");
        }
    }

    /// Deterministic: same input + same oracle = same minimum, every
    /// time (the repro-from-seed contract rests on this).
    #[test]
    fn shrinking_is_deterministic() {
        let input: Vec<u32> = (0..64).rev().collect();
        let fails = |xs: &[u32]| xs.iter().sum::<u32>() >= 100;
        let a = shrink_elements(input.clone(), fails);
        let b = shrink_elements(input, fails);
        assert_eq!(a, b);
        assert!(fails(&a));
    }

    #[test]
    fn scalar_bisects_to_the_threshold() {
        // Monotonic oracle: fails at >= 37.
        assert_eq!(shrink_scalar(1_000_000, 1, |v| v >= 37), 37);
        // Floor itself failing returns the floor.
        assert_eq!(shrink_scalar(500, 2, |v| v >= 1), 2);
        // Already at the floor: untouched.
        assert_eq!(shrink_scalar(3, 3, |_| true), 3);
    }
}
