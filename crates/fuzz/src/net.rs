//! `net` target: randomized small networks compiled and run through
//! the full SoC, functional flow vs timing-only flow. The standing
//! contract (pinned for the zoo models by `tests/properties.rs`) is
//! that the timing-only flow walks the exact same instruction stream:
//! identical cycles, retired instructions, pipeline and engine
//! accounting, and op schedule length — the output alone is never
//! computed. Here the same equality must hold for networks nobody
//! hand-tuned the compiler for.
//!
//! A plan that fails to build or compile is a passing case, not a
//! counterexample — the generator only emits buildable plans, but the
//! shrinker explores arbitrary layer subsets and must be free to cross
//! inconsistent intermediates.

use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::{compile, CompileOptions};
use rvnv_nn::tensor::Tensor;
use rvnv_soc::firmware::Firmware;
use rvnv_soc::soc::{Soc, SocConfig};
use rvnv_util::mix64;

use crate::gen::{self, NetPlan};
use crate::{shrink, FuzzTarget};

/// The functional-vs-timing-only differential target.
pub struct NetTarget;

impl FuzzTarget for NetTarget {
    type Input = NetPlan;
    const NAME: &'static str = "net";

    fn generate(&self, seed: u64) -> NetPlan {
        gen::net_plan(seed)
    }

    fn check(&self, plan: &NetPlan) -> Result<(), String> {
        let Ok(net) = plan.build() else {
            return Ok(());
        };
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let Ok(artifacts) = compile(&net, &opt) else {
            return Ok(());
        };
        // A compiled artifact must always yield firmware and run; from
        // here on every failure is a finding.
        let wfi = plan.weight_seed & 1 == 0;
        let codegen = CodegenOptions {
            wait_mode: if wfi { WaitMode::Wfi } else { WaitMode::Poll },
            ..CodegenOptions::default()
        };
        let fw = Firmware::build_with(&artifacts, codegen)
            .map_err(|e| format!("firmware build failed on a compiled artifact: {e}"))?;
        let input = Tensor::random(plan.input_shape(), mix64(plan.weight_seed));
        let bytes = artifacts.quantize_input(&input);
        let mut functional = Soc::new(SocConfig::zcu102_nv_small());
        let mut timing = Soc::new(SocConfig {
            capture_timeline: true,
            ..SocConfig::zcu102_timing_only()
        });
        let f = functional
            .run_firmware(&artifacts, &bytes, &fw)
            .map_err(|e| format!("functional run failed: {e}"))?;
        let t = timing
            .run_firmware(&artifacts, &bytes, &fw)
            .map_err(|e| format!("timing-only run failed: {e}"))?;
        let mut diffs = Vec::new();
        if f.cycles != t.cycles {
            diffs.push(format!("cycles {} != {}", f.cycles, t.cycles));
        }
        if f.firmware_cycles != t.firmware_cycles {
            diffs.push(format!(
                "mcycle {} != {}",
                f.firmware_cycles, t.firmware_cycles
            ));
        }
        if f.instructions != t.instructions {
            diffs.push(format!("retired {} != {}", f.instructions, t.instructions));
        }
        if f.pipeline != t.pipeline {
            diffs.push("pipeline stats diverged".into());
        }
        if f.cpu_arbiter_wait != t.cpu_arbiter_wait {
            diffs.push(format!(
                "arbiter wait {} != {}",
                f.cpu_arbiter_wait, t.cpu_arbiter_wait
            ));
        }
        if f.nvdla != t.nvdla {
            diffs.push("engine op/cycle accounting diverged".into());
        }
        if diffs.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "timing-only diverged from functional (wfi={wfi}): {}",
                diffs.join("; ")
            ))
        }
    }

    fn shrink(&self, input: NetPlan, fails: &dyn Fn(&NetPlan) -> bool) -> NetPlan {
        let template = input.clone();
        let layers = shrink::shrink_elements(input.layers, |ls| {
            let cand = NetPlan {
                layers: ls.to_vec(),
                ..template.clone()
            };
            fails(&cand)
        });
        NetPlan { layers, ..template }
    }

    fn size(input: &NetPlan) -> usize {
        input.layers.len()
    }
}
