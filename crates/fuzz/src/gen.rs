//! The generator library: every random input the differential oracles
//! consume, derived from one [`SplitMix64`] stream per case so a bare
//! `u64` seed reproduces any of them bit-for-bit (the same discipline
//! as `rvnv_bus::fault::FaultPlan`).
//!
//! Generators here are shared surface — the fuzz targets in this crate
//! drive them, and the property suites in `crates/compiler/tests` and
//! `crates/nn/tests` reuse [`net_plan`] — so the grammar of "a random
//! small network" or "a random bus program" is defined exactly once.

use rvnv_nn::graph::{ConvParams, Network, Op, PoolKind};
use rvnv_nn::tensor::{Shape, WeightTensor};
use rvnv_riscv::encode;
use rvnv_riscv::inst::{AluOp, BranchOp, CsrOp, Inst, MemWidth, MulOp};
use rvnv_riscv::reg::Reg;
use rvnv_util::SplitMix64;

fn reg(rng: &mut SplitMix64) -> Reg {
    Reg::new(rng.below(32) as u8)
}

/// A random *valid* instruction, biased toward control flow and memory
/// so streams actually loop, fault and hammer the decoded-block cache.
/// Mirrors the distribution the ISS fuzz suite has used since PR 6.
pub fn valid_inst(rng: &mut SplitMix64) -> Inst {
    match rng.below(12) {
        0 => Inst::Lui {
            rd: reg(rng),
            imm: rng.next_u32() & 0xFFFF_F000,
        },
        1 => Inst::AluImm {
            op: AluOp::Add,
            rd: reg(rng),
            rs1: reg(rng),
            imm: (rng.below(4096) as i32) - 2048,
        },
        2 => Inst::Alu {
            op: [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And][rng.below(4) as usize],
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        3 => Inst::Mul {
            op: [MulOp::Mul, MulOp::Mulhu, MulOp::Div, MulOp::Rem][rng.below(4) as usize],
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        4 => Inst::Load {
            width: [
                MemWidth::Byte,
                MemWidth::ByteU,
                MemWidth::Half,
                MemWidth::HalfU,
                MemWidth::Word,
            ][rng.below(5) as usize],
            rd: reg(rng),
            rs1: reg(rng),
            offset: (rng.below(4096) as i32) - 2048,
        },
        5 => Inst::Store {
            width: [MemWidth::Byte, MemWidth::Half, MemWidth::Word][rng.below(3) as usize],
            rs1: reg(rng),
            rs2: reg(rng),
            offset: (rng.below(4096) as i32) - 2048,
        },
        6 => Inst::Branch {
            op: [BranchOp::Eq, BranchOp::Ne, BranchOp::Ltu, BranchOp::Geu][rng.below(4) as usize],
            rs1: reg(rng),
            rs2: reg(rng),
            // Short even offsets: mostly in-range, some past the end.
            offset: ((rng.below(32) as i32) - 8) * 4,
        },
        7 => Inst::Jal {
            rd: reg(rng),
            offset: ((rng.below(64) as i32) - 16) * 4,
        },
        8 => Inst::Jalr {
            rd: reg(rng),
            rs1: reg(rng),
            offset: ((rng.below(32) as i32) - 8) * 4,
        },
        9 => Inst::Csr {
            op: [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc][rng.below(3) as usize],
            rd: reg(rng),
            rs1: reg(rng),
            // Cycle/instret/custom — whatever the CSR file makes of it.
            csr: [0xC00, 0xC02, 0x340, 0x305][rng.below(4) as usize],
        },
        10 => Inst::Fence,
        _ => Inst::Ebreak,
    }
}

/// A seeded instruction stream. One seed in three generates raw random
/// words (mostly illegal encodings), one generates all-valid streams,
/// one generates the mixed case — valid prefixes decaying into garbage,
/// the nastiest input for a decoded-block cache.
#[must_use]
pub fn instruction_stream(seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    let flavor = rng.below(3);
    let len = rng.range(4, 120) as usize;
    (0..len)
        .map(|_| match flavor {
            0 => rng.next_u32(),
            1 => encode(&valid_inst(&mut rng)),
            _ => {
                if rng.chance(1, 3) {
                    rng.next_u32()
                } else {
                    encode(&valid_inst(&mut rng))
                }
            }
        })
        .collect()
}

/// One step of a random bus program over the SoC's composed DRAM path.
/// Plain data so the delete-chunk shrinker can drop steps and replay
/// the remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusOp {
    /// A single beat: read or write, any master, any size, sometimes a
    /// hostile (unowned / misaligned / out-of-range) address.
    Single {
        /// Index into the canonical `[Cpu, NvdlaDbb, ZynqPs]` order.
        master: u8,
        /// Write (true) or read.
        write: bool,
        /// Byte address.
        addr: u32,
        /// Index into `[Byte, Half, Word, Double]`.
        size: u8,
        /// Write data (ignored for reads).
        data: u64,
    },
    /// A block transfer through the explicit-master arbiter ports.
    Burst {
        /// Index into the canonical `[Cpu, NvdlaDbb, ZynqPs]` order.
        master: u8,
        /// Write (true) or read.
        write: bool,
        /// Byte address.
        addr: u32,
        /// Transfer length in bytes (0 is legal and must succeed).
        len: u16,
        /// Seed for the write payload.
        fill: u64,
    },
    /// Flip SmartConnect ownership.
    Switch {
        /// New owner: the SoC side (true) or the Zynq PS.
        soc: bool,
    },
    /// Board reset: DRAM zeroes, ownership back to the PS, stats clear.
    Reset,
    /// Let modeled time idle forward.
    Advance(u8),
}

/// DRAM size every bus program runs against (1 MiB, matching the bus
/// crate's own fuzz suite).
pub const BUS_DRAM_BYTES: usize = 1 << 20;

/// A seeded bus program in the quiet-program distribution of
/// `crates/bus/tests/fuzz_fabric.rs`: mostly singles, a quarter bursts,
/// occasional ownership flips, resets and idle gaps.
#[must_use]
pub fn bus_program(seed: u64) -> Vec<BusOp> {
    let mut rng = SplitMix64::new(seed);
    let len = rng.range(4, 96) as usize;
    (0..len)
        .map(|_| match rng.below(100) {
            0..=54 => {
                let size = rng.below(4) as u8;
                let n = 1u32 << size;
                let addr = if rng.chance(1, 8) {
                    rng.next_u32() % (2 * BUS_DRAM_BYTES as u32)
                } else {
                    (rng.next_u32() % (BUS_DRAM_BYTES as u32 - 8)) & !(n - 1)
                };
                BusOp::Single {
                    master: rng.below(3) as u8,
                    write: rng.chance(1, 2),
                    addr,
                    size,
                    data: rng.next_u64(),
                }
            }
            55..=79 => BusOp::Burst {
                master: rng.below(3) as u8,
                write: rng.chance(1, 2),
                addr: if rng.chance(1, 8) {
                    rng.next_u32() % (2 * BUS_DRAM_BYTES as u32)
                } else {
                    rng.next_u32() % (BUS_DRAM_BYTES as u32 - 600)
                },
                len: if rng.chance(1, 32) {
                    0
                } else {
                    rng.range(1, 512) as u16
                },
                fill: rng.next_u64(),
            },
            80..=89 => BusOp::Switch {
                soc: rng.chance(1, 2),
            },
            90..=92 => BusOp::Reset,
            _ => BusOp::Advance(rng.below(16) as u8),
        })
        .collect()
}

/// One layer of a random small network, as plain data: the network is
/// rebuilt from the plan on every check, so the shrinker can delete
/// layers and the compiler sees a fresh consistent graph each time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerPlan {
    /// Square convolution; weights derived from the plan seed.
    Conv {
        /// Output channels.
        out_c: u8,
        /// Kernel size (square).
        k: u8,
        /// Stride.
        stride: u8,
        /// Zero padding.
        pad: u8,
    },
    /// Rectified linear unit.
    Relu,
    /// Folded batch-norm with seeded per-channel scale/shift.
    BatchNorm,
    /// 2×2 pooling.
    Pool {
        /// Max (true) or average pooling.
        max: bool,
    },
    /// Global average pooling down to 1×1.
    GlobalAvgPool,
    /// Fully connected head (terminal).
    Fc {
        /// Output dimension.
        out: u8,
    },
}

/// A buildable description of a random small network: input shape,
/// layer list, and the seed all weights derive from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetPlan {
    /// Input channels.
    pub in_c: u8,
    /// Input height == width.
    pub in_hw: u8,
    /// Seed for every weight, bias, scale and shift tensor.
    pub weight_seed: u64,
    /// The layer sequence (applied in order; single chain).
    pub layers: Vec<LayerPlan>,
}

impl NetPlan {
    /// The input shape the plan starts from.
    #[must_use]
    pub fn input_shape(&self) -> Shape {
        Shape::new(self.in_c as usize, self.in_hw as usize, self.in_hw as usize)
    }

    /// Build the network, or explain why the plan is inconsistent (a
    /// shrunk plan may pool a 1×1 activation, feed an FC twice, …).
    /// Inconsistent plans are not counterexamples — the oracle treats
    /// a build error as a passing case.
    ///
    /// # Errors
    ///
    /// A human-readable reason the plan does not describe a network.
    pub fn build(&self) -> Result<Network, String> {
        let mut rng = SplitMix64::new(self.weight_seed);
        let mut net = Network::new("fuzz", self.input_shape());
        let (mut c, mut hw) = (self.in_c as usize, self.in_hw as usize);
        let mut prev = net.input();
        let mut done = false;
        for (i, layer) in self.layers.iter().enumerate() {
            if done {
                return Err("layer after the FC head".into());
            }
            let id = match *layer {
                LayerPlan::Conv {
                    out_c,
                    k,
                    stride,
                    pad,
                } => {
                    let (out_c, k, s, p) =
                        (out_c as usize, k as usize, stride as usize, pad as usize);
                    if out_c == 0 || k == 0 || s == 0 {
                        return Err(format!("degenerate conv at layer {i}"));
                    }
                    if hw + 2 * p < k {
                        return Err(format!("kernel {k} larger than input {hw}+2*{p}"));
                    }
                    let out_hw = (hw + 2 * p - k) / s + 1;
                    let bias: Vec<f32> = (0..out_c)
                        .map(|_| (rng.below(200) as f32 - 100.0) / 1000.0)
                        .collect();
                    let node = net.add(
                        format!("conv{i}"),
                        Op::Conv2d(ConvParams {
                            weights: WeightTensor::random(out_c, c, k, k, rng.next_u64()),
                            bias,
                            stride: s,
                            pad: p,
                            groups: 1,
                        }),
                        &[prev],
                    );
                    c = out_c;
                    hw = out_hw;
                    node
                }
                LayerPlan::Relu => net.add(format!("relu{i}"), Op::Relu, &[prev]),
                LayerPlan::BatchNorm => {
                    let scale: Vec<f32> = (0..c)
                        .map(|_| 0.5 + (rng.below(100) as f32) / 100.0)
                        .collect();
                    let shift: Vec<f32> = (0..c)
                        .map(|_| (rng.below(100) as f32 - 50.0) / 100.0)
                        .collect();
                    net.add(format!("bn{i}"), Op::BatchNorm { scale, shift }, &[prev])
                }
                LayerPlan::Pool { max } => {
                    if hw < 2 {
                        return Err(format!("pooling a {hw}×{hw} activation at layer {i}"));
                    }
                    // Pool output uses Caffe ceil semantics, unlike conv.
                    hw = (hw - 2).div_ceil(2) + 1;
                    net.add(
                        format!("pool{i}"),
                        Op::Pool {
                            kind: if max { PoolKind::Max } else { PoolKind::Avg },
                            k: 2,
                            stride: 2,
                            pad: 0,
                        },
                        &[prev],
                    )
                }
                LayerPlan::GlobalAvgPool => {
                    hw = 1;
                    net.add(format!("gap{i}"), Op::GlobalAvgPool, &[prev])
                }
                LayerPlan::Fc { out } => {
                    let out = out as usize;
                    if out == 0 {
                        return Err(format!("zero-width FC at layer {i}"));
                    }
                    let input = c * hw * hw;
                    let bound = (2.0 / input as f32).sqrt();
                    let weights: Vec<f32> = (0..out * input)
                        .map(|_| (rng.below(2000) as f32 / 1000.0 - 1.0) * bound)
                        .collect();
                    let bias: Vec<f32> = (0..out)
                        .map(|_| (rng.below(200) as f32 - 100.0) / 1000.0)
                        .collect();
                    done = true;
                    c = out;
                    hw = 1;
                    net.add(
                        format!("fc{i}"),
                        Op::FullyConnected {
                            weights,
                            out,
                            input,
                            bias,
                        },
                        &[prev],
                    )
                }
            };
            prev = id.map_err(|e| format!("{}: {}", e.node, e.message))?;
        }
        if net.layer_count() == 0 {
            return Err("empty plan".into());
        }
        Ok(net)
    }
}

/// A seeded random small network plan: 1–5 layers over a tiny input
/// (≤ 4 channels, ≤ 14×14), convs/norms/pools in the body, optionally
/// an FC head. Small enough that a full compile + two simulated
/// inferences per case stays in the tens-of-milliseconds range.
#[must_use]
pub fn net_plan(seed: u64) -> NetPlan {
    let mut rng = SplitMix64::new(seed);
    let in_c = rng.range(1, 4) as u8;
    let in_hw = rng.range(6, 14) as u8;
    let body = rng.range(1, 4) as usize;
    let mut layers = Vec::new();
    let (mut c, mut hw) = (in_c as usize, in_hw as usize);
    for _ in 0..body {
        match rng.below(5) {
            0 | 1 => {
                let k = [1usize, 3, 5][rng.below(3) as usize];
                let pad = rng.below(u64::from(k as u32)) as usize % 3;
                let stride = rng.range(1, 2) as usize;
                if hw + 2 * pad < k {
                    continue;
                }
                let out_c = rng.range(1, 6) as u8;
                layers.push(LayerPlan::Conv {
                    out_c,
                    k: k as u8,
                    stride: stride as u8,
                    pad: pad as u8,
                });
                c = out_c as usize;
                hw = (hw + 2 * pad - k) / stride + 1;
            }
            2 => layers.push(LayerPlan::Relu),
            3 => layers.push(LayerPlan::BatchNorm),
            _ => {
                if hw >= 2 {
                    layers.push(LayerPlan::Pool {
                        max: rng.chance(1, 2),
                    });
                    hw = (hw - 2).div_ceil(2) + 1;
                }
            }
        }
    }
    let _ = c;
    if rng.chance(1, 3) {
        layers.push(LayerPlan::GlobalAvgPool);
    }
    if rng.chance(1, 2) || layers.is_empty() {
        layers.push(LayerPlan::Fc {
            out: rng.range(1, 10) as u8,
        });
    }
    NetPlan {
        in_c,
        in_hw,
        weight_seed: rng.next_u64(),
        layers,
    }
}

/// A seeded interleaved frame stream over `models` resident models:
/// `(model index, input seed)` pairs, FIFO enqueue order.
#[must_use]
pub fn frame_stream(seed: u64, models: usize, max_frames: u64) -> Vec<(usize, u64)> {
    let mut rng = SplitMix64::new(seed);
    let len = rng.range(1, max_frames.max(1)) as usize;
    (0..len)
        .map(|_| (rng.below(models as u64) as usize, rng.next_u64()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_replay_bit_identically() {
        for seed in 0..32u64 {
            assert_eq!(instruction_stream(seed), instruction_stream(seed));
            assert_eq!(bus_program(seed), bus_program(seed));
            assert_eq!(net_plan(seed), net_plan(seed));
            assert_eq!(frame_stream(seed, 2, 6), frame_stream(seed, 2, 6));
        }
    }

    #[test]
    fn generated_net_plans_build() {
        let mut built = 0;
        for seed in 0..100u64 {
            let plan = net_plan(seed);
            match plan.build() {
                Ok(net) => {
                    net.infer_shapes().expect("generated plans infer");
                    built += 1;
                }
                Err(e) => panic!("seed {seed}: generator emitted unbuildable plan: {e}"),
            }
        }
        assert_eq!(built, 100);
    }

    /// Promoted regression: the first 100-seed sweep caught this
    /// module's shape tracker using floor division for pool outputs
    /// while the graph uses Caffe ceil semantics, so the FC head was
    /// sized off the wrong activation ("FC expects 18 inputs, got 32
    /// (2x4x4)"). Minimal input: an odd 7×7 activation pooled 2/2 —
    /// ceil gives 4×4, floor gave 3×3.
    #[test]
    fn regression_pool_tracking_uses_caffe_ceil() {
        let plan = NetPlan {
            in_c: 2,
            in_hw: 7,
            weight_seed: 1,
            layers: vec![LayerPlan::Pool { max: true }, LayerPlan::Fc { out: 3 }],
        };
        let net = plan.build().expect("a pooled 7×7 plan is consistent");
        // If the tracker drifts from the graph again, the FC head is
        // mis-sized and shape inference rejects the network.
        net.infer_shapes()
            .expect("tracker and graph must agree on pooled shapes");
    }
}
