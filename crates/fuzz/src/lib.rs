//! Seeded differential fuzzing for the whole stack.
//!
//! Every standing contract in this repo — typed CPU errors only, the
//! predicting bus mirror, functional-vs-timing-only equality, the
//! serial-vs-pipelined byte identity, zero simulate-vs-replay
//! divergence for serving and fleets — is pinned by example-based
//! tests elsewhere. This crate turns each into a [`FuzzTarget`]: a
//! seeded generator for random inputs, a check that re-states the
//! contract as an oracle, and a hand-rolled shrinker that reduces any
//! counterexample to a minimal input.
//!
//! Everything is deterministic. A run is fully described by `(target,
//! base_seed, budget)`; case `i` uses seed `base_seed + i`, and a
//! failure prints a one-line `rv-nvdla fuzz <target> --seed S` command
//! that re-derives, re-fails, and re-shrinks the exact same input.
//! The vendored `proptest` stub can generate but cannot shrink, so
//! shrinking is hand-rolled in [`shrink`]: delete-chunk over element
//! lists, bisection over scalar knobs.
//!
//! Targets: `riscv`, `bus`, `net`, `batch`, `serve`, `fleet` — see
//! each module for the oracle it enforces.

use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

pub mod batch;
pub mod bus;
pub mod fleet;
pub mod gen;
pub mod net;
pub mod riscv;
pub mod serve;
pub mod shrink;

/// One differential-fuzzing target: a seeded input generator plus an
/// oracle over a standing contract, with a deterministic shrinker.
pub trait FuzzTarget {
    /// The input the generator produces and the oracle consumes.
    type Input: Clone + Debug;
    /// CLI name of the target (`rv-nvdla fuzz <NAME>`).
    const NAME: &'static str;

    /// Derive the input for one case. Must be a pure function of the
    /// seed — replaying a printed seed must re-derive the same input.
    fn generate(&self, seed: u64) -> Self::Input;

    /// Check the contract. `Err` is a counterexample; panics inside
    /// are caught by the driver and treated the same.
    fn check(&self, input: &Self::Input) -> Result<(), String>;

    /// Reduce a failing input, preserving `fails`. Must be
    /// deterministic so the printed repro shrinks identically.
    fn shrink(&self, input: Self::Input, fails: &dyn Fn(&Self::Input) -> bool) -> Self::Input;

    /// Size metric reported for an input (elements, layers, requests).
    fn size(input: &Self::Input) -> usize;
}

/// A shrunk failure, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Which target failed.
    pub target: &'static str,
    /// The case seed (pass to `--seed` to re-derive the input).
    pub seed: u64,
    /// Input size as generated.
    pub size_orig: usize,
    /// Input size after shrinking.
    pub size_min: usize,
    /// The oracle's message on the minimized input.
    pub message: String,
    /// Debug rendering of the minimized input.
    pub minimized: String,
    /// One-line command that replays this exact failure.
    pub repro: String,
}

/// Outcome of driving one target for a seed budget.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Which target ran.
    pub target: &'static str,
    /// First case seed; case `i` used `base_seed + i`.
    pub base_seed: u64,
    /// Cases requested.
    pub budget: u64,
    /// Cases actually executed (stops at the first failure).
    pub executed: u64,
    /// The shrunk failure, if any case failed.
    pub counterexample: Option<Counterexample>,
}

impl FuzzReport {
    /// True when every executed case passed.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Serializes panic-hook swaps: `drive` silences the default hook while
/// probing with `catch_unwind` (a shrink run may cross hundreds of
/// intentional panics), and concurrent drives must not race the swap.
static PANIC_HOOK: Mutex<()> = Mutex::new(());

fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let _guard = PANIC_HOOK.lock().unwrap_or_else(|e| e.into_inner());
    let saved = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let out = f();
    panic::set_hook(saved);
    out
}

/// Run the oracle once, converting panics into failures.
fn run_check<T: FuzzTarget>(target: &T, input: &T::Input) -> Result<(), String> {
    match panic::catch_unwind(AssertUnwindSafe(|| target.check(input))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Drive one target: `budget` cases from `base_seed`, stopping at the
/// first failure, which is shrunk (when asked) and packaged with its
/// replay command.
pub fn drive<T: FuzzTarget>(
    target: &T,
    base_seed: u64,
    budget: u64,
    do_shrink: bool,
) -> FuzzReport {
    with_quiet_panics(|| {
        let mut executed = 0;
        for i in 0..budget {
            let seed = base_seed.wrapping_add(i);
            let input = target.generate(seed);
            executed += 1;
            if run_check(target, &input).is_ok() {
                continue;
            }
            let size_orig = T::size(&input);
            let minimized = if do_shrink {
                target.shrink(input, &|cand| run_check(target, cand).is_err())
            } else {
                input
            };
            let message = run_check(target, &minimized)
                .err()
                .unwrap_or_else(|| "failure did not reproduce on the minimized input".into());
            return FuzzReport {
                target: T::NAME,
                base_seed,
                budget,
                executed,
                counterexample: Some(Counterexample {
                    target: T::NAME,
                    seed,
                    size_orig,
                    size_min: T::size(&minimized),
                    message,
                    minimized: format!("{minimized:#?}"),
                    repro: format!(
                        "rv-nvdla fuzz {} --seed {seed} --budget 1 --shrink",
                        T::NAME
                    ),
                }),
            };
        }
        FuzzReport {
            target: T::NAME,
            base_seed,
            budget,
            executed,
            counterexample: None,
        }
    })
}

/// Every CLI-addressable target name, in the order `all` runs them.
pub const TARGETS: [&str; 6] = ["riscv", "bus", "net", "batch", "serve", "fleet"];

/// Drive targets by CLI name (`all` runs every target in [`TARGETS`]
/// order). Returns one report per target driven.
pub fn run(
    target: &str,
    base_seed: u64,
    budget: u64,
    do_shrink: bool,
) -> Result<Vec<FuzzReport>, String> {
    let names: Vec<&str> = if target == "all" {
        TARGETS.to_vec()
    } else if TARGETS.contains(&target) {
        vec![target]
    } else {
        return Err(format!(
            "unknown fuzz target '{target}' (expected one of: {}, all)",
            TARGETS.join(", ")
        ));
    };
    Ok(names
        .into_iter()
        .map(|name| match name {
            "riscv" => drive(&riscv::RiscvTarget, base_seed, budget, do_shrink),
            "bus" => drive(&bus::BusTarget::default(), base_seed, budget, do_shrink),
            "net" => drive(&net::NetTarget, base_seed, budget, do_shrink),
            "batch" => drive(&batch::BatchTarget, base_seed, budget, do_shrink),
            "serve" => drive(&serve::ServeTarget, base_seed, budget, do_shrink),
            "fleet" => drive(&fleet::FleetTarget, base_seed, budget, do_shrink),
            _ => unreachable!("names are drawn from TARGETS"),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every oracle family holds over a modest seed sweep. CI drives
    /// the same targets in release mode with a 100+ budget via
    /// `rv-nvdla fuzz`; these debug-mode budgets keep `cargo test`
    /// honest without dominating it.
    #[test]
    fn riscv_oracle_holds() {
        let r = drive(&riscv::RiscvTarget, 0xF0, 40, true);
        assert!(r.passed(), "{:#?}", r.counterexample);
    }

    #[test]
    fn bus_oracle_holds() {
        let r = drive(&bus::BusTarget::default(), 0xF1, 40, true);
        assert!(r.passed(), "{:#?}", r.counterexample);
    }

    #[test]
    fn net_oracle_holds() {
        let r = drive(&net::NetTarget, 0xF2, 4, true);
        assert!(r.passed(), "{:#?}", r.counterexample);
    }

    #[test]
    fn batch_oracle_holds() {
        let r = drive(&batch::BatchTarget, 0xF3, 3, true);
        assert!(r.passed(), "{:#?}", r.counterexample);
    }

    #[test]
    fn serve_oracle_holds() {
        let r = drive(&serve::ServeTarget, 0xF4, 3, true);
        assert!(r.passed(), "{:#?}", r.counterexample);
    }

    #[test]
    fn fleet_oracle_holds() {
        let r = drive(&fleet::FleetTarget, 0xF5, 2, true);
        assert!(r.passed(), "{:#?}", r.counterexample);
    }

    /// The acceptance gate for the harness itself: plant a bug in the
    /// bus mirror (predict misaligned beats succeed), and the fuzzer
    /// must catch it AND shrink it to a tiny repro with a replayable
    /// command line.
    #[test]
    fn planted_misalignment_bug_is_caught_and_shrunk() {
        let buggy = bus::BusTarget {
            mutation: bus::Mutation::IgnoreAlignment,
        };
        let r = drive(&buggy, 0, 64, true);
        let cx = r
            .counterexample
            .expect("a planted mirror bug must be found within 64 seeds");
        assert!(
            cx.size_min <= 10,
            "shrinker left {} ops (orig {}); expected a near-minimal program",
            cx.size_min,
            cx.size_orig
        );
        assert!(
            cx.message.contains("aligned"),
            "counterexample must be the alignment misprediction: {}",
            cx.message
        );
        assert_eq!(
            cx.repro,
            format!("rv-nvdla fuzz bus --seed {} --budget 1 --shrink", cx.seed)
        );
        // The repro must actually replay: re-derive from the printed
        // seed and re-fail the same way.
        let replayed = buggy.generate(cx.seed);
        assert!(run_check(&buggy, &replayed).is_err());
    }

    /// A panic inside an oracle is a counterexample, not a crash.
    #[test]
    fn panics_become_shrinkable_failures() {
        struct Panicky;
        impl FuzzTarget for Panicky {
            type Input = Vec<u8>;
            const NAME: &'static str = "panicky";
            fn generate(&self, seed: u64) -> Vec<u8> {
                vec![(seed & 0xFF) as u8; 5]
            }
            fn check(&self, input: &Vec<u8>) -> Result<(), String> {
                assert!(!input.contains(&7), "sevens are forbidden");
                Ok(())
            }
            fn shrink(&self, input: Vec<u8>, fails: &dyn Fn(&Vec<u8>) -> bool) -> Vec<u8> {
                shrink::shrink_elements(input, |xs| fails(&xs.to_vec()))
            }
            fn size(input: &Vec<u8>) -> usize {
                input.len()
            }
        }
        let r = drive(&Panicky, 7, 1, true);
        let cx = r.counterexample.expect("seed 7 generates [7; 5]");
        assert_eq!(cx.size_min, 1, "one seven suffices");
        assert!(
            cx.message.contains("sevens are forbidden"),
            "{}",
            cx.message
        );
    }

    #[test]
    fn unknown_target_is_rejected() {
        let err = run("nonsense", 0, 1, false).unwrap_err();
        assert!(err.contains("unknown fuzz target"), "{err}");
        assert!(err.contains("riscv"), "must list valid targets: {err}");
    }
}
