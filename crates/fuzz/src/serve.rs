//! `serve` target: random serve specs — rate, duration, workers,
//! policy, worker mode, queue depth, arrival process, optionally a
//! fault storm — against one calibrated [`Server`]. The standing
//! contracts (pinned for fixed specs by `tests/serve.rs` and the chaos
//! ledger properties): the queueing plan replays on real SoCs with
//! **zero divergence**, every offered request resolves exactly once,
//! and under faults the failure ledger balances the recovery ledger.
//!
//! Shrinking halves the duration and then the rate toward 1, so a
//! failing spec reduces to the smallest workload that still diverges.

use std::sync::{Arc, OnceLock};

use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::{ArtifactCache, Artifacts, CompileOptions};
use rvnv_nn::zoo::Model;
use rvnv_soc::batch::{self, Policy};
use rvnv_soc::serve::{ArrivalProcess, FaultSpec, ServeSpec, Server};
use rvnv_soc::soc::SocConfig;
use rvnv_util::SplitMix64;

use crate::{shrink, FuzzTarget};

/// One calibrated server shared by every case (calibration compiles
/// both models and runs N + N² real frames — do it once).
fn server() -> &'static Server {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER.get_or_init(|| {
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let nets = [Model::LeNet5.build(1), Model::LeNet5.build(2)];
        let cache = ArtifactCache::new();
        let artifacts: Vec<Arc<Artifacts>> =
            batch::layout_models(&cache, &nets, &opt).expect("layout");
        let codegen = CodegenOptions {
            wait_mode: WaitMode::Wfi,
            ..CodegenOptions::default()
        };
        Server::new(SocConfig::zcu102_timing_only(), artifacts, codegen).expect("calibrate")
    })
}

/// The simulate-vs-replay serving target.
pub struct ServeTarget;

fn spec_of(case: &ServeCase) -> ServeSpec {
    ServeSpec {
        process: if case.poisson {
            ArrivalProcess::Poisson
        } else {
            ArrivalProcess::Fixed
        },
        rate_rps: case.rate_rps,
        duration_ms: case.duration_ms,
        seed: case.seed,
        workers: case.workers,
        policy: [
            Policy::RoundRobin,
            Policy::ShortestQueueFirst,
            Policy::EarliestFinish,
        ][case.policy as usize % 3],
        pipelined: case.pipelined,
        queue_depth: case.queue_depth,
        slo_us: 20_000,
        timeout_us: case.timeout_us,
        retries: case.retries,
        faults: case.faults,
    }
}

/// A random serve case, scalar knobs kept shrinkable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeCase {
    /// Mean offered rate, requests per modeled second.
    pub rate_rps: u64,
    /// Arrival window, modeled milliseconds.
    pub duration_ms: u64,
    /// Workload seed.
    pub seed: u64,
    /// Replay worker count.
    pub workers: usize,
    /// Policy index (rr / sqf / eff).
    pub policy: u8,
    /// Pipelined worker mode (forced off when faults are armed).
    pub pipelined: bool,
    /// Admission-queue bound.
    pub queue_depth: usize,
    /// Poisson (true) or fixed arrivals.
    pub poisson: bool,
    /// Watchdog deadline, modeled µs (0 = disabled).
    pub timeout_us: u64,
    /// Per-request retry budget.
    pub retries: u32,
    /// Optional seeded fault storm.
    pub faults: Option<FaultSpec>,
}

impl FuzzTarget for ServeTarget {
    type Input = ServeCase;
    const NAME: &'static str = "serve";

    fn generate(&self, seed: u64) -> ServeCase {
        let mut rng = SplitMix64::new(seed);
        let chaos = rng.chance(1, 4);
        let faults = chaos.then(|| FaultSpec {
            seed: rng.next_u64(),
            flip_per_million: rng.below(60_000) as u32,
            error_per_million: rng.below(60_000) as u32,
            spike_per_million: rng.below(60_000) as u32,
            spike_us: rng.range(100, 3_000),
            hang_per_million: rng.below(30_000) as u32,
            crash_per_million: rng.below(30_000) as u32,
        });
        ServeCase {
            rate_rps: rng.range(50, 400),
            duration_ms: rng.range(10, 60),
            seed: rng.next_u64(),
            workers: rng.range(1, 2) as usize,
            policy: rng.below(3) as u8,
            // Faults require serial workers (spec validation).
            pipelined: !chaos && rng.chance(1, 2),
            queue_depth: rng.range(1, 10) as usize,
            poisson: rng.chance(1, 2),
            timeout_us: if chaos { rng.range(2_000, 20_000) } else { 0 },
            retries: if chaos { rng.below(3) as u32 } else { 0 },
            faults,
        }
    }

    fn check(&self, case: &ServeCase) -> Result<(), String> {
        let spec = spec_of(case);
        spec.validate()
            .map_err(|e| format!("generated spec invalid: {e}"))?;
        let r = server()
            .serve(&spec)
            .map_err(|e| format!("serve failed: {e}"))?;
        if r.replay_divergence != 0 {
            return Err(format!(
                "replay divergence {} (plan must replay cycle-exactly on real SoCs)",
                r.replay_divergence
            ));
        }
        if r.served + r.dropped != r.offered {
            return Err(format!(
                "conservation broke: served {} + dropped {} != offered {}",
                r.served, r.dropped, r.offered
            ));
        }
        if r.records.len() as u64 != r.offered {
            return Err(format!(
                "{} records for {} offered requests",
                r.records.len(),
                r.offered
            ));
        }
        if r.slo_attained > r.served {
            return Err(format!(
                "slo_attained {} > served {}",
                r.slo_attained, r.served
            ));
        }
        let f = &r.faults;
        let failures = f.timeouts + f.bus_errors + f.corruptions_detected + f.crashes;
        let resolutions = f.retries + f.failovers + f.sheds + f.exhausted;
        if failures != resolutions {
            return Err(format!(
                "chaos ledger broke: {failures} failures vs {resolutions} resolutions \
                 ({f:?})"
            ));
        }
        Ok(())
    }

    fn shrink(&self, input: ServeCase, fails: &dyn Fn(&ServeCase) -> bool) -> ServeCase {
        let mut cur = input;
        let dur = shrink::shrink_scalar(cur.duration_ms, 1, |v| {
            fails(&ServeCase {
                duration_ms: v,
                ..cur.clone()
            })
        });
        cur.duration_ms = dur;
        let rate = shrink::shrink_scalar(cur.rate_rps, 1, |v| {
            fails(&ServeCase {
                rate_rps: v,
                ..cur.clone()
            })
        });
        cur.rate_rps = rate;
        cur
    }

    fn size(input: &ServeCase) -> usize {
        // "Size" for a spec is its workload volume in expected requests.
        (input.rate_rps * input.duration_ms / 1000).max(1) as usize
    }
}
