//! `riscv` target: seeded instruction streams must never panic the
//! ISS, must fault only through typed [`CpuError`]s, and must execute
//! identically with the decoded-block cache on and off — the same
//! contract `crates/riscv/tests/fuzz_decode_execute.rs` pins with
//! fixed seeds, here under an open-ended seed supply with shrinking.

use rvnv_bus::sram::Sram;
use rvnv_riscv::reg::Reg;
use rvnv_riscv::{Core, CpuError};

use crate::gen;
use crate::{shrink, FuzzTarget};

/// Everything an equivalent run must reproduce exactly.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    stop: String,
    pc: u32,
    cycle: u64,
    retired: u64,
    regs: Vec<u32>,
}

const STEP_BUDGET: u64 = 512;

/// Run `words` from address 0 with a zeroed 1 KB data RAM until a
/// stop, a typed error, or the step budget.
fn run_stream(words: &[u32], cache: bool) -> Result<Outcome, String> {
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    let imem_bytes = bytes.len();
    let mut core = Core::new(Sram::rom(bytes), Sram::new(1024));
    if cache {
        core.enable_block_cache(imem_bytes);
    }
    let mut steps = 0u64;
    let stop = loop {
        if steps >= STEP_BUDGET {
            break "budget".to_string();
        }
        steps += 1;
        match core.step() {
            Ok(None) => {}
            Ok(Some(reason)) => break format!("{reason:?}"),
            Err(e) => {
                check_typed(&e)?;
                break format!("{e:?}");
            }
        }
    };
    Ok(Outcome {
        stop,
        pc: core.pc(),
        cycle: core.cycle(),
        retired: core.retired(),
        regs: (0..32).map(|i| core.read_reg(Reg::new(i))).collect(),
    })
}

/// The error contract: every failure is one of the typed variants (the
/// match is trivially exhaustive today; it exists so adding a variant
/// forces this oracle to acknowledge it).
fn check_typed(e: &CpuError) -> Result<(), String> {
    match e {
        CpuError::FetchFault { .. } | CpuError::Illegal(_) | CpuError::DataFault { .. } => Ok(()),
    }
}

/// The decode→execute→memory differential target.
pub struct RiscvTarget;

impl FuzzTarget for RiscvTarget {
    type Input = Vec<u32>;
    const NAME: &'static str = "riscv";

    fn generate(&self, seed: u64) -> Vec<u32> {
        gen::instruction_stream(seed)
    }

    fn check(&self, words: &Vec<u32>) -> Result<(), String> {
        let plain = run_stream(words, false)?;
        let cached = run_stream(words, true)?;
        if plain != cached {
            return Err(format!(
                "decoded-block cache changed execution:\n  plain:  {plain:?}\n  cached: {cached:?}"
            ));
        }
        Ok(())
    }

    fn shrink(&self, input: Vec<u32>, fails: &dyn Fn(&Vec<u32>) -> bool) -> Vec<u32> {
        shrink::shrink_elements(input, |xs| fails(&xs.to_vec()))
    }

    fn size(input: &Vec<u32>) -> usize {
        input.len()
    }
}
