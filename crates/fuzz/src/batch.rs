//! `batch` target: random interleaved frame streams drained twice over
//! the same two resident models — serially and pipelined — must serve
//! the same frames in the same order with **bit-identical output
//! bytes** (the overlapped preload moves cycles, never data), and the
//! pipelined drain can only add contention cycles to a frame, never
//! remove them. The `tests/batch.rs` oracles, under random streams.
//!
//! Policies are restricted to rr/sqf: both pick by queue state alone,
//! so the serial and pipelined drains provably serve identical orders
//! and frames can be compared one-to-one. (`eff` orders by finish-time
//! predictions that legitimately differ between the two drains.)

use std::sync::{Arc, OnceLock};

use rvnv_compiler::codegen::CodegenOptions;
use rvnv_compiler::{ArtifactCache, Artifacts, CompileOptions};
use rvnv_nn::tensor::{Shape, Tensor};
use rvnv_nn::zoo::Model;
use rvnv_soc::batch::{self, BatchScheduler, PipelinedScheduler, Policy};
use rvnv_soc::soc::SocConfig;
use rvnv_util::SplitMix64;

use crate::{shrink, FuzzTarget};

/// A random batch case: the frame stream plus the scheduling policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchCase {
    /// `(model index, input seed)` in enqueue order.
    pub frames: Vec<(usize, u64)>,
    /// 0 = round-robin, 1 = shortest-queue-first.
    pub policy: u8,
}

/// Two distinct LeNet-5 compilations laid out at disjoint DRAM bases,
/// shared across every case (compiling per case would dominate).
fn artifacts() -> &'static Vec<Arc<Artifacts>> {
    static ARTIFACTS: OnceLock<Vec<Arc<Artifacts>>> = OnceLock::new();
    ARTIFACTS.get_or_init(|| {
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let cache = ArtifactCache::new();
        let nets = [Model::LeNet5.build(1), Model::LeNet5.build(2)];
        batch::layout_models(&cache, &nets, &opt).expect("layout two lenets")
    })
}

fn input_shape() -> Shape {
    Model::LeNet5.build(1).input_shape()
}

/// The serial-vs-pipelined byte-equality target.
pub struct BatchTarget;

impl FuzzTarget for BatchTarget {
    type Input = BatchCase;
    const NAME: &'static str = "batch";

    fn generate(&self, seed: u64) -> BatchCase {
        let mut rng = SplitMix64::new(seed);
        let policy = rng.below(2) as u8;
        BatchCase {
            frames: crate::gen::frame_stream(rng.next_u64(), 2, 6),
            policy,
        }
    }

    fn check(&self, case: &BatchCase) -> Result<(), String> {
        if case.frames.is_empty() {
            return Ok(());
        }
        let artifacts = artifacts();
        let shape = input_shape();
        let config = SocConfig::zcu102_nv_small();
        let codegen = CodegenOptions::default();
        let policy = if case.policy == 0 {
            Policy::RoundRobin
        } else {
            Policy::ShortestQueueFirst
        };
        let frames: Vec<(usize, Vec<u8>)> = case
            .frames
            .iter()
            .map(|&(m, seed)| {
                let input = Tensor::random(shape, seed);
                (m, artifacts[m].quantize_input(&input))
            })
            .collect();

        let mut serial = Vec::new();
        let mut sched = BatchScheduler::new(config.clone(), policy);
        for a in artifacts {
            sched
                .add_model(a.clone(), codegen)
                .map_err(|e| format!("serial pin: {e}"))?;
        }
        for (m, b) in &frames {
            sched
                .enqueue_bytes(*m, b.clone())
                .map_err(|e| format!("serial enqueue: {e}"))?;
        }
        sched
            .run_with(|m, r| serial.push((m, r.raw_output.clone(), r.cycles)))
            .map_err(|e| format!("serial drain: {e}"))?;

        let mut piped = Vec::new();
        let mut sched = PipelinedScheduler::new(config, policy);
        for a in artifacts {
            sched
                .add_model(a.clone(), codegen)
                .map_err(|e| format!("pipelined pin: {e}"))?;
        }
        for (m, b) in &frames {
            sched
                .enqueue_bytes(*m, b.clone())
                .map_err(|e| format!("pipelined enqueue: {e}"))?;
        }
        sched
            .run_with(|m, r| piped.push((m, r.raw_output.clone(), r.cycles)))
            .map_err(|e| format!("pipelined drain: {e}"))?;

        if serial.len() != piped.len() {
            return Err(format!(
                "frame counts diverged: serial {} vs pipelined {}",
                serial.len(),
                piped.len()
            ));
        }
        for (i, ((ms, raw_s, cyc_s), (mp, raw_p, cyc_p))) in serial.iter().zip(&piped).enumerate() {
            if ms != mp {
                return Err(format!(
                    "service order diverged at frame {i}: serial model {ms}, pipelined {mp}"
                ));
            }
            if raw_s != raw_p {
                return Err(format!(
                    "output bytes diverged at frame {i} (model {ms}): pipelined drain \
                     must be bit-identical to serial"
                ));
            }
            if cyc_p < cyc_s {
                return Err(format!(
                    "frame {i}: pipelined cycles {cyc_p} < serial {cyc_s} \
                     (contention can only add compute cycles)"
                ));
            }
        }
        Ok(())
    }

    fn shrink(&self, input: BatchCase, fails: &dyn Fn(&BatchCase) -> bool) -> BatchCase {
        let policy = input.policy;
        let frames = shrink::shrink_elements(input.frames, |fs| {
            fails(&BatchCase {
                frames: fs.to_vec(),
                policy,
            })
        });
        BatchCase { frames, policy }
    }

    fn size(input: &BatchCase) -> usize {
        input.frames.len()
    }
}
