//! The bare-metal NVDLA compiler toolflow (paper Fig. 1 / Fig. 3).
//!
//! The paper's key software contribution is a flow that turns a trained
//! Caffe model into (a) a *configuration file* of `write_reg`/`read_reg`
//! commands and (b) a deduplicated *weight file*, then translates the
//! configuration file into bare-metal RISC-V assembly. This crate
//! implements every stage:
//!
//! * [`compile()`] — the NVDLA compiler: fuses layers onto engines
//!   (Conv+BN+Add+ReLU → conv pipeline + SDP, pooling → PDP, LRN → CDP),
//!   allocates DRAM, quantizes weights (INT8 with calibration tables, or
//!   FP16) and emits the register-command stream,
//! * [`trace`] — the `write_reg`/`read_reg` command representation and
//!   the textual configuration-file format,
//! * [`vp`] — the "virtual platform": replays a compiled model on the
//!   NVDLA model and logs `nvdla.csb_adaptor` / `nvdla.dbb_adaptor`
//!   transactions exactly as the paper scrapes them,
//! * [`vplog`] — the log scraper: configuration-file generation from CSB
//!   lines and weight extraction (first-occurrence dedup) from DBB lines,
//! * [`codegen`] — configuration file → RISC-V assembly → machine code
//!   (via [`rvnv_riscv::assemble`]),
//! * [`cache`] — the in-process artifact cache behind compile-once/
//!   run-many CLI runs and multi-threaded configuration sweeps.
//!
//! # Example
//!
//! ```
//! use rvnv_compiler::{compile, CompileOptions};
//! use rvnv_nvdla::Precision;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = rvnv_nn::zoo::lenet5(1);
//! let artifacts = compile(&net, &CompileOptions::int8())?;
//! assert!(artifacts.commands.len() > 50);
//! assert_eq!(artifacts.precision, Precision::Int8);
//! let asm = rvnv_compiler::codegen::generate_assembly(&artifacts.commands);
//! let image = rvnv_riscv::assemble(&asm)?;
//! assert!(!image.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod codegen;
pub mod compile;
pub mod layout;
pub mod trace;
pub mod traces;
pub mod vp;
pub mod vplog;

pub use cache::ArtifactCache;
pub use compile::{compile, Artifacts, CompileError, CompileOptions, OpInfo};
pub use trace::ConfigCmd;
pub use vp::{VirtualPlatform, VpRun};
