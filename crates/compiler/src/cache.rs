//! In-process artifact cache: compile once, run (and sweep) many.
//!
//! `rv-nvdla run` used to recompile its model on every invocation, and a
//! configuration sweep recompiled once per swept point. Compilation is
//! deterministic in `(network, CompileOptions)`, so its results are
//! perfectly cacheable: [`ArtifactCache`] memoizes [`compile`] outputs
//! behind [`Arc`]s that sweeps can share across threads without cloning
//! megabytes of weights.
//!
//! The cache is in-memory only. Cross-process persistence needs real
//! `serde` (the vendored derives are no-ops — see ROADMAP "Real serde");
//! the key type is already stable and printable so a disk layer can slot
//! in underneath later.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rvnv_nn::graph::Network;

use crate::compile::{compile, Artifacts, CompileError, CompileOptions};

/// Cache key: model identity plus the full compile-options fingerprint.
///
/// Model identity is the display name **and**
/// [`Network::content_fingerprint`] — structure and weight values — so
/// two networks sharing a name (the same zoo model built from different
/// seeds) never alias. `CompileOptions` does not implement `Hash`/`Eq`
/// (it holds floats via `HwConfig`), but its `Debug` rendering covers
/// every field, is stable within a build, and is cheap to produce
/// relative to a compile — so it serves as the options fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Model (network) name.
    pub model: String,
    /// Content fingerprint of the network (structure + weights).
    pub network: u64,
    /// `Debug` rendering of the [`CompileOptions`].
    pub options: String,
}

impl CacheKey {
    /// Build the key for a `(network, options)` pair.
    #[must_use]
    pub fn of(net: &Network, options: &CompileOptions) -> Self {
        CacheKey {
            model: net.name().to_string(),
            network: net.content_fingerprint(),
            options: format!("{options:?}"),
        }
    }
}

/// A thread-safe memo table in front of [`compile`].
///
/// Hits return a shared [`Arc<Artifacts>`] without copying the weight
/// image; misses compile outside the lock, so a slow compilation never
/// blocks hits on other keys. Two threads racing on the *same* cold key
/// may both compile; the results are identical (compilation is
/// deterministic) and one wins the insert.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    entries: Mutex<HashMap<CacheKey, Arc<Artifacts>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl ArtifactCache {
    /// Create an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Compile `net` with `options`, or return the cached artifacts for
    /// an identical earlier compilation.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] from the underlying compilation (errors
    /// are not cached; a failing key retries on every call).
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking compile on
    /// another thread.
    pub fn get_or_compile(
        &self,
        net: &Network,
        options: &CompileOptions,
    ) -> Result<Arc<Artifacts>, CompileError> {
        use std::sync::atomic::Ordering::Relaxed;
        let key = CacheKey::of(net, options);
        if let Some(hit) = self.entries.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return Ok(hit.clone());
        }
        // Compile outside the lock; last writer wins on a racing key.
        let artifacts = Arc::new(compile(net, options)?);
        self.misses.fetch_add(1, Relaxed);
        let mut entries = self.entries.lock().expect("cache lock");
        Ok(entries.entry(key).or_insert(artifacts).clone())
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Cache misses (actual compilations) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of cached compilations.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvnv_nn::zoo;

    fn int8_quick() -> CompileOptions {
        let mut o = CompileOptions::int8();
        o.calib_inputs = 1;
        o
    }

    #[test]
    fn second_compile_hits_and_shares_the_artifacts() {
        let cache = ArtifactCache::new();
        let net = zoo::lenet5(1);
        let a = cache.get_or_compile(&net, &int8_quick()).unwrap();
        let b = cache.get_or_compile(&net, &int8_quick()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit returns the same allocation");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_options_are_distinct_entries() {
        let cache = ArtifactCache::new();
        let net = zoo::lenet5(1);
        let fused = cache.get_or_compile(&net, &int8_quick()).unwrap();
        let unfused = cache.get_or_compile(&net, &int8_quick().unfused()).unwrap();
        assert!(!Arc::ptr_eq(&fused, &unfused));
        assert_eq!(cache.misses(), 2);
        assert!(
            unfused.ops.len() > fused.ops.len(),
            "unfused lowers more ops"
        );
    }

    #[test]
    fn same_name_different_weights_are_distinct_entries() {
        // zoo::lenet5(seed) always names the network "LeNet-5"; the key
        // must see the weight content, not just the name.
        let cache = ArtifactCache::new();
        let a = cache
            .get_or_compile(&zoo::lenet5(1), &int8_quick())
            .unwrap();
        let b = cache
            .get_or_compile(&zoo::lenet5(2), &int8_quick())
            .unwrap();
        assert_eq!(cache.misses(), 2, "different seeds must both compile");
        assert_ne!(
            a.weights.fingerprint(),
            b.weights.fingerprint(),
            "distinct weight images"
        );
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ArtifactCache::new();
        let net = zoo::lenet5(1);
        let mut bad = int8_quick();
        bad.dram_bytes = 1 << 12;
        assert!(cache.get_or_compile(&net, &bad).is_err());
        assert!(cache.is_empty());
        // Same model with workable options still compiles.
        assert!(cache.get_or_compile(&net, &int8_quick()).is_ok());
    }

    #[test]
    fn threads_share_one_compilation_per_key() {
        let cache = ArtifactCache::new();
        let net = zoo::lenet5(1);
        // Warm the key first so the racing-miss path is not in play.
        let first = cache.get_or_compile(&net, &int8_quick()).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let a = cache.get_or_compile(&net, &int8_quick()).unwrap();
                    assert!(Arc::ptr_eq(&a, &first));
                });
            }
        });
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 4);
    }
}
