//! Register-command streams and the textual configuration-file format.
//!
//! The configuration file is the paper's central artifact: a sequence of
//! `write_reg` and `read_reg` commands that "directly configure NVDLA's
//! registers, serving as an execution control sequence". `read_reg`
//! stores the expected register value; for the interrupt-status register
//! this is a poll (read until `value & mask == expect`), which is exactly
//! how the generated assembly implements it.

use std::error::Error;
use std::fmt;

/// One command of a configuration file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigCmd {
    /// Write `value` to the CSB register at `addr`.
    WriteReg {
        /// CSB byte address.
        addr: u32,
        /// Value to write.
        value: u32,
    },
    /// Read the CSB register at `addr` until `value & mask == expect`.
    /// A full-mask read with `expect == value` degenerates into the
    /// paper's "store the expected register value" check.
    ReadReg {
        /// CSB byte address.
        addr: u32,
        /// Bits to compare.
        mask: u32,
        /// Expected value of the masked bits.
        expect: u32,
    },
}

impl fmt::Display for ConfigCmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigCmd::WriteReg { addr, value } => {
                write!(f, "write_reg {addr:#010x} {value:#010x}")
            }
            ConfigCmd::ReadReg { addr, mask, expect } => {
                write!(f, "read_reg {addr:#010x} {mask:#010x} {expect:#010x}")
            }
        }
    }
}

/// Error parsing a configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config file line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// Serialize a command stream into the textual configuration-file
/// format (one command per line, `#` comments allowed).
#[must_use]
pub fn write_config_file(cmds: &[ConfigCmd]) -> String {
    let mut out = String::with_capacity(cmds.len() * 36);
    out.push_str("# NVDLA configuration file (write_reg/read_reg command sequence)\n");
    for c in cmds {
        out.push_str(&c.to_string());
        out.push('\n');
    }
    out
}

/// Parse a textual configuration file.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed lines.
pub fn parse_config_file(text: &str) -> Result<Vec<ConfigCmd>, ParseError> {
    let mut cmds = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut it = body.split_whitespace();
        let kind = it.next().expect("non-empty line has a token");
        let mut arg = |name: &str| -> Result<u32, ParseError> {
            let tok = it.next().ok_or_else(|| ParseError {
                line,
                message: format!("missing {name}"),
            })?;
            let hex = tok
                .strip_prefix("0x")
                .or_else(|| tok.strip_prefix("0X"))
                .unwrap_or(tok);
            u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                line,
                message: format!("bad {name} `{tok}`"),
            })
        };
        let cmd = match kind {
            "write_reg" => ConfigCmd::WriteReg {
                addr: arg("address")?,
                value: arg("value")?,
            },
            "read_reg" => ConfigCmd::ReadReg {
                addr: arg("address")?,
                mask: arg("mask")?,
                expect: arg("expect")?,
            },
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unknown command `{other}`"),
                })
            }
        };
        if it.next().is_some() {
            return Err(ParseError {
                line,
                message: "trailing tokens".into(),
            });
        }
        cmds.push(cmd);
    }
    Ok(cmds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let cmds = vec![
            ConfigCmd::WriteReg {
                addr: 0x5008,
                value: 1,
            },
            ConfigCmd::ReadReg {
                addr: 0xC,
                mask: 0b11,
                expect: 0b11,
            },
            ConfigCmd::WriteReg {
                addr: 0xC,
                value: 0b11,
            },
        ];
        let text = write_config_file(&cmds);
        let back = parse_config_file(&text).unwrap();
        assert_eq!(back, cmds);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\nwrite_reg 0x10 0x20  # inline comment\n";
        let cmds = parse_config_file(text).unwrap();
        assert_eq!(
            cmds,
            vec![ConfigCmd::WriteReg {
                addr: 0x10,
                value: 0x20
            }]
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_config_file("write_reg 0x10 0x20\nfrobnicate 1 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_config_file("write_reg 0x10\n").unwrap_err();
        assert!(e.message.contains("missing value"));
        let e = parse_config_file("read_reg 0x10 0x1 0x1 0x9\n").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = parse_config_file("write_reg zzz 0x1\n").unwrap_err();
        assert!(e.message.contains("bad address"));
    }

    #[test]
    fn display_format_is_stable() {
        let c = ConfigCmd::WriteReg {
            addr: 0x1234,
            value: 0xDEAD_BEEF,
        };
        assert_eq!(c.to_string(), "write_reg 0x00001234 0xdeadbeef");
    }

    #[test]
    fn plain_hex_without_prefix_accepted() {
        let cmds = parse_config_file("write_reg 10 20\n").unwrap();
        assert_eq!(
            cmds[0],
            ConfigCmd::WriteReg {
                addr: 0x10,
                value: 0x20
            }
        );
    }
}
