//! The NVDLA virtual platform (paper Fig. 3).
//!
//! The real VP co-simulates QEMU and the SystemC NVDLA model; its value
//! to the paper's flow is (a) executing a compiled network without the
//! SoC and (b) producing the CSB/DBB transaction log that the toolflow
//! scrapes. This module does both against our register-level model: it
//! replays a command stream on an [`Nvdla`] whose DBB is instrumented
//! with a beat-level logger.

use std::error::Error;
use std::fmt;

use rvnv_bus::dram::{Dram, DramTiming};
use rvnv_bus::{BusError, Cycle, Request, Target};
use rvnv_nvdla::{HwConfig, Nvdla};

use crate::compile::Artifacts;
use crate::trace::ConfigCmd;
use crate::vplog::VpLog;

/// A DBB wrapper that logs every 64-bit beat like `nvdla.dbb_adaptor`.
#[derive(Debug)]
pub struct DbbLogger<T> {
    inner: T,
    log: VpLog,
    enabled: bool,
}

impl<T: Target> DbbLogger<T> {
    /// Wrap a memory; logging starts disabled.
    pub fn new(inner: T) -> Self {
        DbbLogger {
            inner,
            log: VpLog::new(),
            enabled: false,
        }
    }

    /// Enable/disable beat logging (large models produce huge logs).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Take the accumulated log, leaving an empty one.
    pub fn take_log(&mut self) -> VpLog {
        std::mem::take(&mut self.log)
    }

    /// Access the wrapped memory.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    fn log_block(&mut self, addr: u32, buf: &[u8], iswrite: bool) {
        if !self.enabled {
            return;
        }
        for (i, chunk) in buf.chunks(8).enumerate() {
            let mut beat = [0u8; 8];
            beat[..chunk.len()].copy_from_slice(chunk);
            self.log
                .dbb(addr + (i * 8) as u32, u64::from_le_bytes(beat), iswrite);
        }
    }
}

impl<T: Target> Target for DbbLogger<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<rvnv_bus::Response, BusError> {
        let resp = self.inner.access(req, now)?;
        if self.enabled {
            let data = req.write_data().unwrap_or(resp.data);
            self.log.dbb(req.addr, data, req.is_write());
        }
        Ok(resp)
    }

    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        let done = self.inner.read_block(addr, buf, now)?;
        self.log_block(addr, buf, false);
        Ok(done)
    }

    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        let done = self.inner.write_block(addr, buf, now)?;
        self.log_block(addr, buf, true);
        Ok(done)
    }
}

/// Result of one VP run.
#[derive(Debug)]
pub struct VpRun {
    /// Total cycles from first command to accelerator idle.
    pub cycles: u64,
    /// Raw output bytes.
    pub output: Vec<u8>,
    /// The transaction log (empty when logging was off).
    pub log: VpLog,
    /// CSB commands replayed.
    pub commands: usize,
}

/// VP failure.
#[derive(Debug)]
pub enum VpError {
    /// A register command faulted.
    Bus(BusError),
    /// A `read_reg` expectation never became true.
    Mismatch {
        /// The failing command.
        cmd: ConfigCmd,
        /// Value observed.
        got: u32,
    },
}

impl fmt::Display for VpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VpError::Bus(e) => write!(f, "vp bus fault: {e}"),
            VpError::Mismatch { cmd, got } => {
                write!(f, "vp expectation failed: `{cmd}` observed {got:#010x}")
            }
        }
    }
}

impl Error for VpError {}

impl From<BusError> for VpError {
    fn from(e: BusError) -> Self {
        VpError::Bus(e)
    }
}

/// The virtual platform: an NVDLA with a logged, DRAM-backed DBB.
#[derive(Debug)]
pub struct VirtualPlatform {
    nvdla: Nvdla<DbbLogger<Dram>>,
    /// CSB cost per replayed command (the VP's host-driven CSB is quick).
    csb_interval: u64,
}

impl VirtualPlatform {
    /// Build a VP for the given configuration with default (MIG-like)
    /// memory timing and `mem_bytes` of DRAM.
    #[must_use]
    pub fn new(cfg: HwConfig, mem_bytes: usize) -> Self {
        Self::with_timing(cfg, mem_bytes, DramTiming::mig_ddr4())
    }

    /// Build a VP with explicit memory timing (Table III `nv_full` runs
    /// use a wider, lower-latency memory than the FPGA MIG).
    #[must_use]
    pub fn with_timing(cfg: HwConfig, mem_bytes: usize, timing: DramTiming) -> Self {
        VirtualPlatform {
            nvdla: Nvdla::new(cfg, DbbLogger::new(Dram::new(mem_bytes, timing))),
            csb_interval: 4,
        }
    }

    /// Disable functional computation (timing-only sweeps).
    pub fn set_functional(&mut self, functional: bool) {
        self.nvdla.set_functional(functional);
    }

    /// The underlying accelerator (for statistics).
    #[must_use]
    pub fn nvdla(&self) -> &Nvdla<DbbLogger<Dram>> {
        &self.nvdla
    }

    /// Run a compiled model on `input` (raw quantized bytes).
    ///
    /// # Errors
    ///
    /// Returns [`VpError`] on register faults or failed expectations.
    ///
    /// # Panics
    ///
    /// Panics if the weight image or input do not fit in VP memory.
    pub fn run(
        &mut self,
        artifacts: &Artifacts,
        input: &[u8],
        log_transactions: bool,
    ) -> Result<VpRun, VpError> {
        assert_eq!(input.len(), artifacts.input_len, "input byte length");
        // Preload weights and input (backdoor: not part of inference).
        let dram = self.nvdla.dbb_mut().inner_mut();
        for seg in artifacts.weights.segments() {
            dram.load(seg.addr as usize, &seg.bytes)
                .expect("weights fit");
        }
        dram.load(artifacts.input_addr as usize, input)
            .expect("input fits");
        self.nvdla.dbb_mut().set_enabled(log_transactions);

        let mut t: u64 = 0;
        let mut csb_log: Vec<(u32, u32, bool)> = Vec::new();
        for cmd in &artifacts.commands {
            match *cmd {
                ConfigCmd::WriteReg { addr, value } => {
                    let r = self.nvdla.access(&Request::write32(addr, value), t)?;
                    t = r.done_at + self.csb_interval;
                    if log_transactions {
                        csb_log.push((addr, value, true));
                    }
                }
                ConfigCmd::ReadReg { addr, mask, expect } => {
                    // First read; if unsatisfied, the VP sleeps on the
                    // interrupt and reads once more at completion.
                    let r = self.nvdla.access(&Request::read32(addr), t)?;
                    let mut got = r.data32();
                    t = r.done_at + self.csb_interval;
                    if got & mask != expect {
                        let wake = self.nvdla.idle_at(t).max(t) + 1;
                        let r2 = self.nvdla.access(&Request::read32(addr), wake)?;
                        got = r2.data32();
                        t = r2.done_at + self.csb_interval;
                    }
                    if got & mask != expect {
                        return Err(VpError::Mismatch { cmd: *cmd, got });
                    }
                    if log_transactions {
                        csb_log.push((addr, got, false));
                    }
                }
            }
        }
        let cycles = self.nvdla.idle_at(t);

        // Merge CSB lines in front of the DBB beats: command order is
        // what the scraper needs, not interleaving fidelity.
        let mut log = VpLog::new();
        for (addr, data, iswrite) in csb_log {
            log.csb(addr, data, iswrite);
        }
        let dbb = self.nvdla.dbb_mut().take_log();
        for e in dbb.entries() {
            log.dbb(e.addr, e.data, e.iswrite);
        }

        let output = self
            .nvdla
            .dbb_mut()
            .inner_mut()
            .peek(artifacts.output_addr as usize, artifacts.output_len)
            .to_vec();
        Ok(VpRun {
            cycles,
            output,
            log,
            commands: artifacts.commands.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::vplog::{extract_config, extract_weights};
    use rvnv_nn::exec::Executor;
    use rvnv_nn::tensor::Tensor;
    use rvnv_nn::zoo;

    #[test]
    fn lenet_runs_on_vp_and_matches_golden_argmax() {
        let net = zoo::lenet5(7);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let input = Tensor::random(net.input_shape(), 99);
        let mut vp = VirtualPlatform::new(HwConfig::nv_small(), 16 << 20);
        let run = vp
            .run(&artifacts, &artifacts.quantize_input(&input), false)
            .unwrap();
        assert!(
            run.cycles > 10_000,
            "LeNet takes real cycles: {}",
            run.cycles
        );

        let got = artifacts.dequantize_output(&run.output);
        // Golden reference: compare pre-softmax logits by argmax.
        let exec = Executor::new(&net);
        let all = exec.run_all(&input).unwrap();
        let logits = &all[all.len() - 2]; // ip2, before softmax
        assert_eq!(got.argmax(), logits.argmax(), "classification must agree");
    }

    #[test]
    fn toolflow_round_trip_config_from_log() {
        let net = zoo::lenet5(3);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let input = Tensor::random(net.input_shape(), 5);
        let mut vp = VirtualPlatform::new(HwConfig::nv_small(), 16 << 20);
        let run = vp
            .run(&artifacts, &artifacts.quantize_input(&input), true)
            .unwrap();
        // The scraped config equals the compiled command stream.
        let scraped = extract_config(&run.log);
        assert_eq!(scraped, artifacts.commands);
        // Weight extraction covers the weight image (first reads are the
        // original weights).
        let weights = extract_weights(&run.log);
        assert!(!weights.is_empty());
        let total_weight_bytes: usize = artifacts.weights.total_bytes();
        assert!(
            weights.len() * 8 >= total_weight_bytes,
            "every weight byte appears in some read beat"
        );
    }

    #[test]
    fn vp_detects_wrong_expectation() {
        let net = zoo::lenet5(3);
        let mut artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        // Corrupt a poll to expect an impossible bit.
        for c in &mut artifacts.commands {
            if let ConfigCmd::ReadReg { mask, expect, .. } = c {
                *mask = 1 << 31;
                *expect = 1 << 31;
                break;
            }
        }
        let input = vec![0u8; artifacts.input_len];
        let mut vp = VirtualPlatform::new(HwConfig::nv_small(), 16 << 20);
        let e = vp.run(&artifacts, &input, false).unwrap_err();
        assert!(matches!(e, VpError::Mismatch { .. }));
    }

    #[test]
    fn fp16_on_nv_full_runs() {
        let net = zoo::lenet5(2);
        let artifacts = compile(&net, &CompileOptions::fp16()).unwrap();
        let input = Tensor::random(net.input_shape(), 1);
        let mut vp = VirtualPlatform::new(HwConfig::nv_full(), 64 << 20);
        let run = vp
            .run(&artifacts, &artifacts.quantize_input(&input), false)
            .unwrap();
        let got = artifacts.dequantize_output(&run.output);
        let exec = Executor::new(&net);
        let all = exec.run_all(&input).unwrap();
        let logits = &all[all.len() - 2];
        // FP16 is close to f32: compare values, not just argmax.
        for (a, b) in got.data().iter().zip(logits.data()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn timing_only_run_is_cycle_identical() {
        let net = zoo::lenet5(2);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let input = Tensor::random(net.input_shape(), 1);
        let bytes = artifacts.quantize_input(&input);
        let mut vp1 = VirtualPlatform::new(HwConfig::nv_small(), 16 << 20);
        let r1 = vp1.run(&artifacts, &bytes, false).unwrap();
        let mut vp2 = VirtualPlatform::new(HwConfig::nv_small(), 16 << 20);
        vp2.set_functional(false);
        let r2 = vp2.run(&artifacts, &bytes, false).unwrap();
        assert_eq!(r1.cycles, r2.cycles);
    }
}
