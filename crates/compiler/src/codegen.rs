//! Configuration file → bare-metal RISC-V assembly (paper Fig. 1, last
//! stage).
//!
//! Every `write_reg` becomes `li`+`li`+`sw`; every `read_reg` becomes a
//! poll loop (`lw`/`and`/`bne`) — the exact programming model the paper
//! uses instead of a Linux driver stack. The program ends with `ebreak`,
//! the firmware's completion marker.

use crate::trace::ConfigCmd;
use rvnv_riscv::asm::{assemble, AsmError, Image};

/// How the firmware waits for engine completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaitMode {
    /// Busy-poll the interrupt-status register (the paper's flow).
    #[default]
    Poll,
    /// Sleep with `wfi` and re-check on wake (interrupt-driven).
    Wfi,
}

/// Options for assembly generation.
#[derive(Debug, Clone, Copy)]
pub struct CodegenOptions {
    /// Base address of the NVDLA CSB window in the CPU's address map.
    pub csb_base: u32,
    /// Read the cycle CSR before/after and leave the delta in `a0`/`a1`.
    pub time_with_mcycle: bool,
    /// Completion-wait strategy for `read_reg` polls.
    pub wait_mode: WaitMode,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            csb_base: 0x0,
            time_with_mcycle: true,
            wait_mode: WaitMode::Poll,
        }
    }
}

/// Generate assembly with default options.
#[must_use]
pub fn generate_assembly(cmds: &[ConfigCmd]) -> String {
    generate_assembly_with(cmds, CodegenOptions::default())
}

/// Generate the bare-metal assembly for a command stream.
#[must_use]
pub fn generate_assembly_with(cmds: &[ConfigCmd], opt: CodegenOptions) -> String {
    let mut out = String::with_capacity(cmds.len() * 64 + 256);
    out.push_str("# Auto-generated bare-metal NVDLA driver program.\n");
    out.push_str("# write_reg -> li/li/sw ; read_reg -> poll loop ; end -> ebreak\n");
    out.push_str(&format!(".equ CSB_BASE, {:#x}\n", opt.csb_base));
    out.push_str("start:\n");
    if opt.time_with_mcycle {
        out.push_str("    csrr s10, mcycle          # start timestamp\n");
    }
    let mut poll = 0usize;
    for cmd in cmds {
        match *cmd {
            ConfigCmd::WriteReg { addr, value } => {
                out.push_str(&format!(
                    "    li   t0, {:#x}\n    li   t1, {value:#x}\n    sw   t1, 0(t0)\n",
                    opt.csb_base + addr,
                ));
            }
            ConfigCmd::ReadReg { addr, mask, expect } => {
                poll += 1;
                out.push_str(&format!(
                    "    li   t0, {:#x}\n    li   t2, {mask:#x}\n    li   t3, {expect:#x}\n",
                    opt.csb_base + addr,
                ));
                match opt.wait_mode {
                    WaitMode::Poll => out.push_str(&format!(
                        "poll_{poll}:\n    lw   t1, 0(t0)\n    and  t4, t1, t2\n    bne  t4, t3, poll_{poll}\n",
                    )),
                    WaitMode::Wfi => out.push_str(&format!(
                        "poll_{poll}:\n    wfi\n    lw   t1, 0(t0)\n    and  t4, t1, t2\n    bne  t4, t3, poll_{poll}\n",
                    )),
                }
            }
        }
    }
    if opt.time_with_mcycle {
        out.push_str(
            "    csrr s11, mcycle          # end timestamp\n    mv   a0, s10\n    mv   a1, s11\n",
        );
    }
    out.push_str("    ebreak\n");
    out
}

/// Generate and assemble in one step ("compiled into machine code using
/// the RISC-V core SDK").
///
/// # Errors
///
/// Returns [`AsmError`] if the generated assembly fails to assemble
/// (indicates a codegen bug).
pub fn generate_machine_code(cmds: &[ConfigCmd], opt: CodegenOptions) -> Result<Image, AsmError> {
    assemble(&generate_assembly_with(cmds, opt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvnv_nvdla::regs;

    fn sample() -> Vec<ConfigCmd> {
        vec![
            ConfigCmd::WriteReg {
                addr: 0x5008,
                value: 1,
            },
            ConfigCmd::ReadReg {
                addr: regs::GLB_INTR_STATUS,
                mask: 0b11,
                expect: 0b11,
            },
            ConfigCmd::WriteReg {
                addr: regs::GLB_INTR_STATUS,
                value: 0b11,
            },
        ]
    }

    #[test]
    fn assembly_assembles() {
        let img = generate_machine_code(&sample(), CodegenOptions::default()).unwrap();
        assert!(img.len() > 40);
        assert!(img.symbol("poll_1").is_some());
    }

    #[test]
    fn csb_base_offsets_addresses() {
        let asm = generate_assembly_with(
            &sample(),
            CodegenOptions {
                csb_base: 0x4000_0000,
                time_with_mcycle: false,
                wait_mode: WaitMode::Poll,
            },
        );
        assert!(asm.contains("0x40005008"));
        assert!(!asm.contains("csrr"));
    }

    #[test]
    fn poll_loops_are_labelled_uniquely() {
        let cmds = vec![
            ConfigCmd::ReadReg {
                addr: 0xC,
                mask: 1,
                expect: 1,
            },
            ConfigCmd::ReadReg {
                addr: 0xC,
                mask: 2,
                expect: 2,
            },
        ];
        let asm = generate_assembly(&cmds);
        assert!(asm.contains("poll_1:"));
        assert!(asm.contains("poll_2:"));
    }

    #[test]
    fn program_executes_against_nvdla_model() {
        use rvnv_bus::sram::Sram;
        use rvnv_nvdla::{HwConfig, Nvdla};
        use rvnv_riscv::cpu::{Core, StopReason};

        // Firmware: raise intr bit 1 via INTR_SET, poll it, clear it.
        let cmds = vec![
            ConfigCmd::WriteReg {
                addr: regs::GLB_INTR_SET,
                value: 0b10,
            },
            ConfigCmd::ReadReg {
                addr: regs::GLB_INTR_STATUS,
                mask: 0b10,
                expect: 0b10,
            },
            ConfigCmd::WriteReg {
                addr: regs::GLB_INTR_STATUS,
                value: 0b10,
            },
            ConfigCmd::ReadReg {
                addr: regs::GLB_INTR_STATUS,
                mask: 0b10,
                expect: 0,
            },
        ];
        let img = generate_machine_code(&cmds, CodegenOptions::default()).unwrap();
        let dla = Nvdla::new(HwConfig::nv_small(), Sram::new(4096));
        let mut core = Core::new(Sram::rom(img.bytes()), dla);
        let stop = core.run(10_000).unwrap();
        assert_eq!(stop, StopReason::Ebreak);
        // mcycle delta captured in a0/a1.
        let t0 = core.read_reg(rvnv_riscv::reg::A0);
        let t1 = core.read_reg(rvnv_riscv::reg::A1);
        assert!(t1 > t0);
    }
}
