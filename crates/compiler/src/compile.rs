//! The NVDLA compiler: network → register-command stream + weight file.
//!
//! Lowering rules (mirroring the official compiler's fusion behaviour):
//!
//! * `Conv2d`/`FullyConnected` (+ following single-consumer `BatchNorm`,
//!   `EltwiseAdd`, `ReLU`) → one conv-pipeline launch with a flying SDP
//!   that applies the per-channel scale/shift table, the residual add
//!   and ReLU on the way out;
//! * standalone `ReLU`/`BatchNorm`/`EltwiseAdd` → memory-source SDP;
//! * `Pool`/`GlobalAvgPool` → PDP;
//! * `Lrn` → CDP;
//! * `Concat` → no hardware op: producers write directly into the
//!   concatenated buffer at their channel offset (RUBIK copies are
//!   emitted only when a branch output has other consumers);
//! * `Softmax` → executed on the CPU side (argmax-preserving), exactly
//!   as the official flow emulates unsupported layers off-accelerator.
//!
//! INT8 mode derives per-tensor scales from a calibration run of the
//! golden executor (the "calibration tables" the paper names as the
//! missing piece for broader `nv_small` model support).

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use rvnv_nn::graph::{ConvParams, Network, Op, PoolKind};
use rvnv_nn::quant::{CalibrationTable, QuantTensor};
use rvnv_nn::tensor::{Shape, Tensor, WeightTensor};
use rvnv_nvdla::config::{HwConfig, Precision};
use rvnv_nvdla::engines;
use rvnv_nvdla::regs::{self, Block};

use crate::layout::{Allocator, OutOfMemory, WeightImage};
use crate::trace::ConfigCmd;

/// Compiler options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Target precision.
    pub precision: Precision,
    /// Target hardware (validates precision support, sizes CBUF passes).
    pub hw: HwConfig,
    /// Number of random calibration inputs (INT8 only).
    pub calib_inputs: usize,
    /// Calibration RNG seed.
    pub calib_seed: u64,
    /// First DRAM offset the model may use. Every address the compiler
    /// emits (weights, activations, input, output) lands in
    /// `[dram_base, dram_bytes)`, so models compiled at disjoint bases
    /// can be resident in one DRAM simultaneously — the multi-model
    /// batch layout (see `rvnv_soc::batch`).
    pub dram_base: u32,
    /// End of the DRAM data region in bytes (exclusive allocation limit).
    pub dram_bytes: u32,
    /// Fuse BatchNorm/EltwiseAdd/ReLU into the producing convolution's
    /// SDP pass. The paper's trace-replay flow executes each layer as
    /// its own register sequence, which corresponds to `fuse = false`;
    /// fusion is the optimization a smarter compiler performs.
    pub fuse: bool,
}

impl CompileOptions {
    /// INT8 on `nv_small` — the paper's FPGA configuration.
    #[must_use]
    pub fn int8() -> Self {
        CompileOptions {
            precision: Precision::Int8,
            hw: HwConfig::nv_small(),
            calib_inputs: 4,
            calib_seed: 0x5EED,
            dram_base: 0,
            dram_bytes: 512 << 20,
            fuse: true,
        }
    }

    /// FP16 on `nv_full` — the paper's simulation configuration.
    #[must_use]
    pub fn fp16() -> Self {
        CompileOptions {
            precision: Precision::Fp16,
            hw: HwConfig::nv_full(),
            calib_inputs: 0,
            calib_seed: 0,
            dram_base: 0,
            dram_bytes: 512 << 20,
            fuse: true,
        }
    }

    /// Place the model's whole DRAM footprint at `base` instead of 0,
    /// for laying several models out side by side (see
    /// `rvnv_soc::batch::layout_models`).
    #[must_use]
    pub fn at_dram_base(mut self, base: u32) -> Self {
        self.dram_base = base;
        self
    }

    /// Trace-replay fidelity: one register sequence per layer, as the
    /// paper's VP-log flow produces.
    #[must_use]
    pub fn unfused(mut self) -> Self {
        self.fuse = false;
        self
    }
}

/// Compilation failure.
#[derive(Debug)]
pub enum CompileError {
    /// The network uses something this backend cannot lower.
    Unsupported(String),
    /// Shape inference or calibration failed.
    Graph(rvnv_nn::graph::GraphError),
    /// The model does not fit in DRAM.
    OutOfMemory(OutOfMemory),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unsupported(s) => write!(f, "unsupported: {s}"),
            CompileError::Graph(e) => write!(f, "graph error: {e}"),
            CompileError::OutOfMemory(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Graph(e) => Some(e),
            CompileError::OutOfMemory(e) => Some(e),
            CompileError::Unsupported(_) => None,
        }
    }
}

impl From<rvnv_nn::graph::GraphError> for CompileError {
    fn from(e: rvnv_nn::graph::GraphError) -> Self {
        CompileError::Graph(e)
    }
}

impl From<OutOfMemory> for CompileError {
    fn from(e: OutOfMemory) -> Self {
        CompileError::OutOfMemory(e)
    }
}

/// Metadata about one emitted hardware operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpInfo {
    /// Name of the root graph node.
    pub name: String,
    /// Engine ("conv", "sdp", "pdp", "cdp", "rubik").
    pub engine: &'static str,
    /// MACs performed (conv only).
    pub macs: u64,
    /// Register writes emitted for this op.
    pub reg_writes: usize,
    /// Names of graph nodes fused into this op.
    pub fused: Vec<String>,
}

/// Everything the bare-metal flow needs to run one model.
#[derive(Debug, Clone)]
pub struct Artifacts {
    /// Model name.
    pub model: String,
    /// Precision the model was compiled for.
    pub precision: Precision,
    /// The configuration-file command stream.
    pub commands: Vec<ConfigCmd>,
    /// Weight file (weights + bias/scale tables) to preload into DRAM.
    pub weights: WeightImage,
    /// DRAM offset of the input tensor.
    pub input_addr: u32,
    /// Input bytes expected at `input_addr`.
    pub input_len: usize,
    /// Input quantization scale (INT8; 1.0 in FP16).
    pub input_scale: f32,
    /// DRAM offset of the network output.
    pub output_addr: u32,
    /// Output length in bytes.
    pub output_len: usize,
    /// Output quantization scale.
    pub output_scale: f32,
    /// Output tensor shape.
    pub output_shape: Shape,
    /// Per-op metadata in launch order.
    pub ops: Vec<OpInfo>,
    /// First DRAM offset of the model's footprint
    /// ([`CompileOptions::dram_base`]); the model owns
    /// `[dram_base, dram_used)`.
    pub dram_base: u32,
    /// DRAM high-water mark in bytes (end of the model's footprint).
    pub dram_used: u32,
    /// Graph nodes executed on the CPU instead of NVDLA (softmax).
    pub cpu_layers: Vec<String>,
}

impl Artifacts {
    /// Quantize an input tensor into the bytes to preload at
    /// [`Artifacts::input_addr`].
    #[must_use]
    pub fn quantize_input(&self, t: &Tensor) -> Vec<u8> {
        engines::from_real(t.data(), self.precision, self.input_scale)
    }

    /// Dequantize raw output bytes into a tensor.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` has the wrong length.
    #[must_use]
    pub fn dequantize_output(&self, bytes: &[u8]) -> Tensor {
        assert_eq!(bytes.len(), self.output_len, "output buffer length");
        let vals = engines::to_real(bytes, self.precision, self.output_scale);
        Tensor::from_vec(self.output_shape, vals)
    }

    /// Total register writes in the command stream.
    #[must_use]
    pub fn reg_writes(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, ConfigCmd::WriteReg { .. }))
            .count()
    }
}

/// Compile a network for the NVDLA.
///
/// # Errors
///
/// Returns [`CompileError`] when the precision is unsupported by the
/// target, a layer cannot be lowered, or DRAM is exhausted.
pub fn compile(net: &Network, options: &CompileOptions) -> Result<Artifacts, CompileError> {
    Lowering::new(net, options)?.run()
}

/// Result of [`Lowering::absorb_chain`]: the chain's last node, the
/// absorbed BatchNorm `(scale, shift)` parameters, the eltwise partner
/// node, and whether a ReLU was absorbed.
type AbsorbedChain = (usize, Option<(Vec<f32>, Vec<f32>)>, Option<usize>, bool);

struct Lowering<'a> {
    net: &'a Network,
    opt: &'a CompileOptions,
    shapes: Vec<Shape>,
    consumers: Vec<Vec<usize>>,
    scale: Vec<f32>,
    /// Node -> materialized DRAM buffer (keyed by value-producing node).
    buffers: BTreeMap<usize, u32>,
    /// Pre-assigned buffers (concat redirection).
    preassigned: BTreeMap<usize, u32>,
    /// Value aliases (softmax -> its input, absorbed nodes -> chain end).
    alias: BTreeMap<usize, usize>,
    absorbed: BTreeSet<usize>,
    alloc: Allocator,
    weights: WeightImage,
    commands: Vec<ConfigCmd>,
    ops: Vec<OpInfo>,
    cpu_layers: Vec<String>,
    /// Concat inputs that still need a RUBIK copy: (src node, dst addr, len).
    pending_copies: Vec<(usize, u32, u32)>,
}

impl<'a> Lowering<'a> {
    fn new(net: &'a Network, opt: &'a CompileOptions) -> Result<Self, CompileError> {
        if !opt.hw.supports(opt.precision) {
            return Err(CompileError::Unsupported(format!(
                "{} does not implement {}",
                opt.hw, opt.precision
            )));
        }
        let shapes = net.infer_shapes()?;
        let n = net.nodes().len();
        let mut consumers = vec![Vec::new(); n];
        for (i, node) in net.nodes().iter().enumerate() {
            for inp in &node.inputs {
                consumers[inp.index()].push(i);
            }
        }
        // Per-node value scales.
        let scale = match opt.precision {
            Precision::Fp16 => vec![1.0; n],
            Precision::Int8 => {
                if opt.calib_inputs == 0 {
                    return Err(CompileError::Unsupported(
                        "INT8 requires at least one calibration input".into(),
                    ));
                }
                let inputs: Vec<Tensor> = (0..opt.calib_inputs)
                    .map(|i| Tensor::random(net.input_shape(), opt.calib_seed + i as u64))
                    .collect();
                let table = CalibrationTable::calibrate(net, &inputs)?;
                (0..n).map(|i| table.scale(i).scale).collect()
            }
        };
        Ok(Lowering {
            net,
            opt,
            shapes,
            consumers,
            scale,
            buffers: BTreeMap::new(),
            preassigned: BTreeMap::new(),
            alias: BTreeMap::new(),
            absorbed: BTreeSet::new(),
            alloc: Allocator::new(opt.dram_base, opt.dram_bytes.saturating_sub(opt.dram_base)),
            weights: WeightImage::new(),
            commands: Vec::new(),
            ops: Vec::new(),
            cpu_layers: Vec::new(),
            pending_copies: Vec::new(),
        })
    }

    fn prec_bytes(&self) -> u32 {
        self.opt.precision.bytes()
    }

    fn resolve(&self, node: usize) -> usize {
        let mut cur = node;
        while let Some(&a) = self.alias.get(&cur) {
            cur = a;
        }
        cur
    }

    fn buffer_of(&self, node: usize) -> Result<u32, CompileError> {
        let r = self.resolve(node);
        self.buffers.get(&r).copied().ok_or_else(|| {
            CompileError::Unsupported(format!(
                "internal: node `{}` has no buffer",
                self.net.nodes()[r].name
            ))
        })
    }

    fn scale_of(&self, node: usize) -> f32 {
        self.scale[self.resolve(node)]
    }

    /// Allocate (or take the preassigned) output buffer for a value node.
    fn materialize(&mut self, node: usize, bytes: u32) -> Result<u32, CompileError> {
        let addr = match self.preassigned.get(&node) {
            Some(&a) => a,
            None => self.alloc.alloc(bytes)?,
        };
        self.buffers.insert(node, addr);
        Ok(addr)
    }

    fn w(&mut self, block: Block, offset: u32, value: u32) {
        self.commands.push(ConfigCmd::WriteReg {
            addr: block.base() + offset,
            value,
        });
    }

    /// Launch + interrupt poll + clear for the given engine bits.
    fn launch(&mut self, enable_blocks: &[Block], wait_bits: u32) {
        for b in enable_blocks {
            self.w(*b, regs::REG_OP_ENABLE, 1);
        }
        self.commands.push(ConfigCmd::ReadReg {
            addr: regs::GLB_INTR_STATUS,
            mask: wait_bits,
            expect: wait_bits,
        });
        self.commands.push(ConfigCmd::WriteReg {
            addr: regs::GLB_INTR_STATUS,
            value: wait_bits,
        });
    }

    fn run(mut self) -> Result<Artifacts, CompileError> {
        // Input buffer first (the Zynq preload target).
        let in_shape = self.net.input_shape();
        let input_len = in_shape.elements() * self.prec_bytes() as usize;
        let input_addr = self.alloc.alloc(input_len as u32)?;
        self.buffers.insert(0, input_addr);

        self.plan_concats()?;

        let node_count = self.net.nodes().len();
        for i in 1..node_count {
            if self.absorbed.contains(&i) {
                continue;
            }
            let op = self.net.nodes()[i].op.clone();
            match op {
                Op::Input => {}
                Op::Conv2d(ref p) => self.emit_conv(i, p, None)?,
                Op::FullyConnected {
                    ref weights,
                    out,
                    input,
                    ref bias,
                } => {
                    // FC is a 1x1 convolution over the flattened input.
                    let p = ConvParams {
                        weights: WeightTensor::from_vec(out, input, 1, 1, weights.clone()),
                        bias: bias.clone(),
                        stride: 1,
                        pad: 0,
                        groups: 1,
                    };
                    let in_shape = Shape::new(input, 1, 1);
                    self.emit_conv(i, &p, Some(in_shape))?;
                }
                Op::Pool {
                    kind,
                    k,
                    stride,
                    pad,
                } => self.emit_pdp(i, kind, k, stride, pad)?,
                Op::GlobalAvgPool => {
                    let s = self.shapes[self.net.nodes()[i].inputs[0].index()];
                    if s.h != s.w {
                        return Err(CompileError::Unsupported(
                            "global average pooling requires a square feature map".into(),
                        ));
                    }
                    self.emit_pdp(i, PoolKind::Avg, s.h, s.h, 0)?;
                }
                Op::Relu => self.emit_sdp_standalone(i, regs::SDP_FLAG_RELU, None)?,
                Op::BatchNorm {
                    ref scale,
                    ref shift,
                } => {
                    let table: Vec<(f32, f32)> =
                        scale.iter().copied().zip(shift.iter().copied()).collect();
                    self.emit_sdp_standalone(i, regs::SDP_FLAG_BIAS, Some(table))?;
                }
                Op::EltwiseAdd => self.emit_sdp_standalone(i, regs::SDP_FLAG_ELTWISE, None)?,
                Op::Concat => self.emit_concat_copies(i)?,
                Op::Lrn {
                    local_size,
                    alpha,
                    beta,
                    k,
                } => self.emit_cdp(i, local_size, alpha, beta, k)?,
                Op::Softmax => {
                    // Monotonic; executed on the CPU in deployment.
                    let input = self.net.nodes()[i].inputs[0].index();
                    self.alias.insert(i, input);
                    self.cpu_layers.push(self.net.nodes()[i].name.clone());
                }
            }
        }

        let out_node = self.resolve(self.net.output().index());
        let out_shape = self.shapes[out_node];
        let output_addr = self.buffer_of(out_node)?;
        Ok(Artifacts {
            model: self.net.name().to_string(),
            precision: self.opt.precision,
            input_addr,
            input_len,
            input_scale: self.scale[0],
            output_addr,
            output_len: out_shape.elements() * self.prec_bytes() as usize,
            output_scale: self.scale_of(out_node),
            output_shape: out_shape,
            commands: self.commands,
            weights: self.weights,
            ops: self.ops,
            dram_base: self.opt.dram_base,
            dram_used: self.alloc.used(),
            cpu_layers: self.cpu_layers,
        })
    }

    /// Pre-allocate concat buffers and redirect single-consumer branch
    /// producers to write straight into them.
    fn plan_concats(&mut self) -> Result<(), CompileError> {
        let prec = self.prec_bytes();
        for (i, node) in self.net.nodes().iter().enumerate() {
            if !matches!(node.op, Op::Concat) {
                continue;
            }
            let out = self.shapes[i];
            let buf = self.alloc.alloc((out.elements() as u32) * prec)?;
            self.buffers.insert(i, buf);
            // Concat output scale stays the calibrated one; branches
            // requantize into it on their SDP write.
            let mut chan_off = 0u32;
            for inp in &node.inputs {
                let s = self.shapes[inp.index()];
                let bytes = (s.elements() as u32) * prec;
                let addr = buf + chan_off;
                let redirectable = self.consumers[inp.index()].len() == 1
                    && matches!(
                        self.net.nodes()[inp.index()].op,
                        Op::Conv2d(_)
                            | Op::FullyConnected { .. }
                            | Op::Relu
                            | Op::BatchNorm { .. }
                            | Op::EltwiseAdd
                    );
                if redirectable {
                    self.preassigned.insert(inp.index(), addr);
                    self.scale[inp.index()] = self.scale[i];
                } else {
                    self.pending_copies.push((inp.index(), addr, bytes));
                }
                chan_off += bytes;
            }
        }
        Ok(())
    }

    /// Chain absorption: starting from a conv at `root`, follow
    /// single-consumer edges through BatchNorm → EltwiseAdd → ReLU.
    fn absorb_chain(&mut self, root: usize) -> AbsorbedChain {
        let mut end = root;
        let mut bn = None;
        let mut elt = None;
        let mut relu = false;
        if !self.opt.fuse {
            return (end, bn, elt, relu);
        }
        loop {
            let cons = &self.consumers[end];
            if cons.len() != 1 {
                break;
            }
            let next = cons[0];
            // A redirected producer must remain the writer; absorbing it
            // further is fine (the chain writes to the redirect target
            // of its end node), but keep it simple: stop absorption at a
            // node that was preassigned a concat slot.
            if self.preassigned.contains_key(&end) {
                break;
            }
            match &self.net.nodes()[next].op {
                Op::BatchNorm { scale, shift } if bn.is_none() && elt.is_none() && !relu => {
                    bn = Some((scale.clone(), shift.clone()));
                }
                Op::EltwiseAdd if elt.is_none() && !relu => {
                    let other = self.net.nodes()[next]
                        .inputs
                        .iter()
                        .map(|n| n.index())
                        .find(|&x| x != end);
                    match other {
                        Some(o) if self.buffers.contains_key(&self.resolve(o)) => {
                            elt = Some(o);
                        }
                        _ => break,
                    }
                }
                Op::Relu if !relu => {
                    relu = true;
                }
                _ => break,
            }
            self.absorbed.insert(next);
            self.alias.insert(end, next);
            end = next;
        }
        (end, bn, elt, relu)
    }

    #[allow(clippy::too_many_lines)]
    fn emit_conv(
        &mut self,
        root: usize,
        p: &ConvParams,
        fc_in_shape: Option<Shape>,
    ) -> Result<(), CompileError> {
        let node_name = self.net.nodes()[root].name.clone();
        let input_node = self.net.nodes()[root].inputs[0].index();
        let in_shape = fc_in_shape.unwrap_or(self.shapes[input_node]);
        let (end, bn, elt, relu) = self.absorb_chain(root);
        let out_shape = self.shapes[end];
        let prec = self.opt.precision;

        // Quantize / pack weights.
        let (wt_bytes, wt_scale) = match prec {
            Precision::Int8 => {
                let q = QuantTensor::from_weights(&p.weights);
                (
                    q.data.iter().map(|&v| v as u8).collect::<Vec<u8>>(),
                    q.scale.scale,
                )
            }
            Precision::Fp16 => (
                engines::from_real(p.weights.data(), Precision::Fp16, 1.0),
                1.0,
            ),
        };
        let wt_addr = self.alloc.alloc(wt_bytes.len() as u32)?;
        let wt_len = wt_bytes.len() as u32;
        self.weights.push(wt_addr, wt_bytes);

        // Bias/scale table: y = x*scale + shift, folding conv bias and BN.
        let table: Vec<(f32, f32)> = (0..p.weights.out_c)
            .map(|c| match &bn {
                Some((s, sh)) => (s[c], p.bias[c] * s[c] + sh[c]),
                None => (1.0, p.bias[c]),
            })
            .collect();
        let mut bs_bytes = Vec::with_capacity(table.len() * 8);
        for (s, sh) in &table {
            bs_bytes.extend_from_slice(&s.to_le_bytes());
            bs_bytes.extend_from_slice(&sh.to_le_bytes());
        }
        let bs_addr = self.alloc.alloc(bs_bytes.len() as u32)?;
        self.weights.push(bs_addr, bs_bytes);

        let in_buf = self.buffer_of(input_node)?;
        let in_scale = self.scale_of(input_node);
        let out_bytes = (out_shape.elements() as u32) * prec.bytes();
        let out_buf = self.materialize(end, out_bytes)?;
        let out_scale = self.scale_of(end);

        let mut flags = regs::SDP_FLAG_BIAS;
        if relu {
            flags |= regs::SDP_FLAG_RELU;
        }
        let (src2, in2_scale) = if let Some(o) = elt {
            flags |= regs::SDP_FLAG_ELTWISE;
            (self.buffer_of(o)?, self.scale_of(o))
        } else {
            (0, 1.0)
        };

        let writes_before = self.commands.len();
        let prec_bit = u32::from(prec == Precision::Fp16);
        // CDMA.
        self.w(Block::Cdma, regs::CDMA_DATAIN_ADDR, in_buf);
        self.w(
            Block::Cdma,
            regs::CDMA_DATAIN_SIZE0,
            in_shape.w as u32 | ((in_shape.h as u32) << 16),
        );
        self.w(Block::Cdma, regs::CDMA_DATAIN_SIZE1, in_shape.c as u32);
        self.w(Block::Cdma, regs::CDMA_WEIGHT_ADDR, wt_addr);
        self.w(Block::Cdma, regs::CDMA_WEIGHT_BYTES, wt_len);
        self.w(Block::Cdma, regs::CDMA_CONV_STRIDE, p.stride as u32);
        self.w(Block::Cdma, regs::CDMA_ZERO_PADDING, p.pad as u32);
        self.w(Block::Cdma, regs::CDMA_IN_SCALE, in_scale.to_bits());
        self.w(Block::Cdma, regs::CDMA_WT_SCALE, wt_scale.to_bits());
        // CSC.
        self.w(
            Block::Csc,
            regs::CSC_DATAOUT_SIZE0,
            out_shape.w as u32 | ((out_shape.h as u32) << 16),
        );
        self.w(Block::Csc, regs::CSC_DATAOUT_SIZE1, p.weights.out_c as u32);
        self.w(
            Block::Csc,
            regs::CSC_WEIGHT_SIZE0,
            p.weights.kw as u32 | ((p.weights.kh as u32) << 16),
        );
        self.w(Block::Csc, regs::CSC_GROUPS, p.groups as u32);
        // CMAC.
        self.w(Block::Cmac, regs::CMAC_MISC, prec_bit);
        // SDP (flying).
        self.w(Block::Sdp, regs::SDP_SRC, 0);
        self.w(Block::Sdp, regs::SDP_SRC2_ADDR, src2);
        self.w(Block::Sdp, regs::SDP_DST_ADDR, out_buf);
        self.w(
            Block::Sdp,
            regs::SDP_SIZE0,
            out_shape.w as u32 | ((out_shape.h as u32) << 16),
        );
        self.w(Block::Sdp, regs::SDP_SIZE1, out_shape.c as u32);
        self.w(Block::Sdp, regs::SDP_BS_ADDR, bs_addr);
        self.w(Block::Sdp, regs::SDP_FLAGS, flags);
        self.w(Block::Sdp, regs::SDP_OUT_SCALE, out_scale.to_bits());
        self.w(Block::Sdp, regs::SDP_IN2_SCALE, in2_scale.to_bits());
        self.w(Block::Sdp, regs::SDP_PRECISION, prec_bit);
        let bits = (1 << Block::Cacc.intr_bit().expect("cacc bit"))
            | (1 << Block::Sdp.intr_bit().expect("sdp bit"));
        self.launch(&[Block::Sdp, Block::Cacc], bits);

        let macs =
            (p.weights.in_c * p.weights.kh * p.weights.kw) as u64 * out_shape.elements() as u64;
        let fused = self.fused_names(root, end);
        self.ops.push(OpInfo {
            name: node_name,
            engine: "conv",
            macs,
            reg_writes: self.commands.len() - writes_before,
            fused,
        });
        Ok(())
    }

    fn fused_names(&self, root: usize, end: usize) -> Vec<String> {
        let mut names = Vec::new();
        let mut cur = root;
        while cur != end {
            let next = self.alias.get(&cur).copied().expect("chain alias");
            names.push(self.net.nodes()[next].name.clone());
            cur = next;
        }
        names
    }

    fn emit_sdp_standalone(
        &mut self,
        node: usize,
        base_flag: u32,
        bn_table: Option<Vec<(f32, f32)>>,
    ) -> Result<(), CompileError> {
        let name = self.net.nodes()[node].name.clone();
        let inputs: Vec<usize> = self.net.nodes()[node]
            .inputs
            .iter()
            .map(|n| n.index())
            .collect();
        let shape = self.shapes[node];
        let prec = self.opt.precision;

        // Absorb a following ReLU if we are an eltwise/bn.
        let mut flags = base_flag;
        let mut end = node;
        if base_flag != regs::SDP_FLAG_RELU && self.opt.fuse {
            let cons = &self.consumers[node];
            if cons.len() == 1
                && matches!(self.net.nodes()[cons[0]].op, Op::Relu)
                && !self.preassigned.contains_key(&node)
            {
                flags |= regs::SDP_FLAG_RELU;
                self.absorbed.insert(cons[0]);
                self.alias.insert(node, cons[0]);
                end = cons[0];
            }
        }

        let bs_addr = if let Some(table) = &bn_table {
            let mut bytes = Vec::with_capacity(table.len() * 8);
            for (s, sh) in table {
                bytes.extend_from_slice(&s.to_le_bytes());
                bytes.extend_from_slice(&sh.to_le_bytes());
            }
            let addr = self.alloc.alloc(bytes.len() as u32)?;
            self.weights.push(addr, bytes);
            addr
        } else {
            0
        };

        let src = self.buffer_of(inputs[0])?;
        let in_scale = self.scale_of(inputs[0]);
        let (src2, in2_scale) = if flags & regs::SDP_FLAG_ELTWISE != 0 {
            (self.buffer_of(inputs[1])?, self.scale_of(inputs[1]))
        } else {
            (0, 1.0)
        };
        let out_bytes = (shape.elements() as u32) * prec.bytes();
        let out_buf = self.materialize(end, out_bytes)?;
        let out_scale = self.scale_of(end);

        let writes_before = self.commands.len();
        let prec_bit = u32::from(prec == Precision::Fp16);
        self.w(Block::Sdp, regs::SDP_SRC, 1);
        self.w(Block::Sdp, regs::SDP_SRC_ADDR, src);
        self.w(Block::Sdp, regs::SDP_SRC2_ADDR, src2);
        self.w(Block::Sdp, regs::SDP_DST_ADDR, out_buf);
        self.w(
            Block::Sdp,
            regs::SDP_SIZE0,
            shape.w as u32 | ((shape.h as u32) << 16),
        );
        self.w(Block::Sdp, regs::SDP_SIZE1, shape.c as u32);
        self.w(Block::Sdp, regs::SDP_BS_ADDR, bs_addr);
        self.w(Block::Sdp, regs::SDP_FLAGS, flags);
        self.w(Block::Sdp, regs::SDP_OUT_SCALE, out_scale.to_bits());
        self.w(Block::Sdp, regs::SDP_IN_SCALE, in_scale.to_bits());
        self.w(Block::Sdp, regs::SDP_IN2_SCALE, in2_scale.to_bits());
        self.w(Block::Sdp, regs::SDP_PRECISION, prec_bit);
        let bits = 1 << Block::Sdp.intr_bit().expect("sdp bit");
        self.launch(&[Block::Sdp], bits);
        let fused = self.fused_names(node, end);
        self.ops.push(OpInfo {
            name,
            engine: "sdp",
            macs: 0,
            reg_writes: self.commands.len() - writes_before,
            fused,
        });
        Ok(())
    }

    fn emit_pdp(
        &mut self,
        node: usize,
        kind: PoolKind,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Result<(), CompileError> {
        let name = self.net.nodes()[node].name.clone();
        let input = self.net.nodes()[node].inputs[0].index();
        let in_shape = self.shapes[input];
        let out_shape = self.shapes[node];
        let prec = self.opt.precision;
        if k > 255 || stride > 255 || pad > 255 {
            return Err(CompileError::Unsupported(format!(
                "pooling parameters k={k}/stride={stride}/pad={pad} exceed the register fields"
            )));
        }
        // Pooling preserves representation: output scale == input scale.
        self.scale[node] = self.scale_of(input);
        let src = self.buffer_of(input)?;
        let out_bytes = (out_shape.elements() as u32) * prec.bytes();
        let dst = self.materialize(node, out_bytes)?;
        let writes_before = self.commands.len();
        let kind_bit = u32::from(kind == PoolKind::Avg);
        self.w(Block::Pdp, regs::PDP_SRC_ADDR, src);
        self.w(Block::Pdp, regs::PDP_DST_ADDR, dst);
        self.w(
            Block::Pdp,
            regs::PDP_SIZE_IN,
            in_shape.w as u32 | ((in_shape.h as u32) << 16),
        );
        self.w(Block::Pdp, regs::PDP_CHANNELS, in_shape.c as u32);
        self.w(
            Block::Pdp,
            regs::PDP_POOLING,
            kind_bit | ((k as u32) << 8) | ((stride as u32) << 16) | ((pad as u32) << 24),
        );
        self.w(
            Block::Pdp,
            regs::PDP_SIZE_OUT,
            out_shape.w as u32 | ((out_shape.h as u32) << 16),
        );
        self.w(
            Block::Pdp,
            regs::PDP_PRECISION,
            u32::from(prec == Precision::Fp16),
        );
        let bits = 1 << Block::Pdp.intr_bit().expect("pdp bit");
        self.launch(&[Block::Pdp], bits);
        self.ops.push(OpInfo {
            name,
            engine: "pdp",
            macs: 0,
            reg_writes: self.commands.len() - writes_before,
            fused: Vec::new(),
        });
        Ok(())
    }

    fn emit_cdp(
        &mut self,
        node: usize,
        local_size: usize,
        alpha: f32,
        beta: f32,
        k: f32,
    ) -> Result<(), CompileError> {
        let name = self.net.nodes()[node].name.clone();
        let input = self.net.nodes()[node].inputs[0].index();
        let shape = self.shapes[node];
        let prec = self.opt.precision;
        let src = self.buffer_of(input)?;
        let in_scale = self.scale_of(input);
        let out_bytes = (shape.elements() as u32) * prec.bytes();
        let dst = self.materialize(node, out_bytes)?;
        let out_scale = self.scale_of(node);
        let writes_before = self.commands.len();
        self.w(Block::Cdp, regs::CDP_SRC_ADDR, src);
        self.w(Block::Cdp, regs::CDP_DST_ADDR, dst);
        self.w(
            Block::Cdp,
            regs::CDP_SIZE,
            shape.w as u32 | ((shape.h as u32) << 16),
        );
        self.w(Block::Cdp, regs::CDP_CHANNELS, shape.c as u32);
        self.w(Block::Cdp, regs::CDP_LRN_SIZE, local_size as u32);
        self.w(Block::Cdp, regs::CDP_ALPHA, alpha.to_bits());
        self.w(Block::Cdp, regs::CDP_BETA, beta.to_bits());
        self.w(Block::Cdp, regs::CDP_K, k.to_bits());
        self.w(
            Block::Cdp,
            regs::CDP_PRECISION,
            u32::from(prec == Precision::Fp16),
        );
        self.w(Block::Cdp, regs::CDP_IN_SCALE, in_scale.to_bits());
        self.w(Block::Cdp, regs::CDP_OUT_SCALE, out_scale.to_bits());
        let bits = 1 << Block::Cdp.intr_bit().expect("cdp bit");
        self.launch(&[Block::Cdp], bits);
        self.ops.push(OpInfo {
            name,
            engine: "cdp",
            macs: 0,
            reg_writes: self.commands.len() - writes_before,
            fused: Vec::new(),
        });
        Ok(())
    }

    /// Emit RUBIK copies for concat inputs that could not be redirected.
    fn emit_concat_copies(&mut self, node: usize) -> Result<(), CompileError> {
        let pending: Vec<(usize, u32, u32)> = self
            .pending_copies
            .iter()
            .copied()
            .filter(|(src, ..)| self.consumers[*src].contains(&node))
            .collect();
        for (src_node, dst, len) in pending {
            let name = format!("{}_copy_{}", self.net.nodes()[node].name, src_node);
            let src = self.buffer_of(src_node)?;
            let writes_before = self.commands.len();
            self.w(Block::Rubik, regs::COPY_SRC_ADDR, src);
            self.w(Block::Rubik, regs::COPY_DST_ADDR, dst);
            self.w(Block::Rubik, regs::COPY_LEN, len);
            let bits = 1 << Block::Rubik.intr_bit().expect("rubik bit");
            self.launch(&[Block::Rubik], bits);
            self.ops.push(OpInfo {
                name,
                engine: "rubik",
                macs: 0,
                reg_writes: self.commands.len() - writes_before,
                fused: Vec::new(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvnv_nn::zoo;

    #[test]
    fn lenet_compiles_to_expected_op_mix() {
        let net = zoo::lenet5(1);
        let a = compile(&net, &CompileOptions::int8()).unwrap();
        // conv1, pool1, conv2, pool2, ip1(+relu1), ip2 -> 4 conv + 2 pdp.
        let convs = a.ops.iter().filter(|o| o.engine == "conv").count();
        let pdps = a.ops.iter().filter(|o| o.engine == "pdp").count();
        assert_eq!(convs, 4);
        assert_eq!(pdps, 2);
        assert_eq!(a.cpu_layers, vec!["prob".to_string()]);
        // ip1's ReLU is fused.
        let ip1 = a.ops.iter().find(|o| o.name == "ip1").unwrap();
        assert_eq!(ip1.fused, vec!["relu1".to_string()]);
        assert!(a.reg_writes() > 100);
        assert!(a.weights.total_bytes() > 400_000, "int8 weights + tables");
    }

    #[test]
    fn resnet_fuses_conv_bn_add_relu() {
        let net = zoo::resnet18_cifar(1);
        let a = compile(&net, &CompileOptions::int8()).unwrap();
        // Find a block-ending conv: its fused list ends with add + relu.
        let op = a
            .ops
            .iter()
            .find(|o| o.name == "res2_0_conv2")
            .expect("res2_0_conv2 lowered");
        assert!(op.fused.contains(&"res2_0_bn2".to_string()));
        assert!(op.fused.contains(&"res2_0_add".to_string()));
        assert!(op.fused.contains(&"res2_0_relu2".to_string()));
        // No standalone SDP eltwise ops should remain.
        assert_eq!(a.ops.iter().filter(|o| o.engine == "sdp").count(), 0);
    }

    #[test]
    fn googlenet_concat_uses_redirection_not_copies() {
        let net = zoo::googlenet(1);
        let a = compile(&net, &CompileOptions::fp16()).unwrap();
        let rubiks = a.ops.iter().filter(|o| o.engine == "rubik").count();
        assert_eq!(rubiks, 0, "all inception branches redirect into concat");
        assert!(
            a.ops.iter().any(|o| o.engine == "cdp"),
            "LRN lowered to CDP"
        );
    }

    #[test]
    fn fp16_on_nv_small_rejected() {
        let net = zoo::lenet5(1);
        let mut opt = CompileOptions::fp16();
        opt.hw = HwConfig::nv_small();
        let e = compile(&net, &opt).unwrap_err();
        assert!(e.to_string().contains("does not implement"));
    }

    #[test]
    fn int8_without_calibration_rejected() {
        let net = zoo::lenet5(1);
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 0;
        assert!(compile(&net, &opt).is_err());
    }

    #[test]
    fn dram_exhaustion_detected() {
        let net = zoo::lenet5(1);
        let mut opt = CompileOptions::int8();
        opt.dram_bytes = 1 << 16; // 64 KB cannot hold LeNet
        let e = compile(&net, &opt).unwrap_err();
        assert!(matches!(e, CompileError::OutOfMemory(_)));
    }

    #[test]
    fn dram_base_shifts_the_whole_footprint() {
        let net = zoo::lenet5(1);
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let at0 = compile(&net, &opt).unwrap();
        let base = 4 << 20;
        let hi = compile(&net, &opt.clone().at_dram_base(base)).unwrap();
        assert_eq!(hi.dram_base, base);
        assert!(hi.input_addr >= base && hi.output_addr >= base);
        for seg in hi.weights.segments() {
            assert!(seg.addr >= base, "weight segment below the base");
        }
        // Same model, same footprint size, just relocated.
        assert_eq!(hi.dram_used - hi.dram_base, at0.dram_used - at0.dram_base);
        assert_eq!(hi.input_addr - base, at0.input_addr);
        assert_eq!(hi.commands.len(), at0.commands.len());
        assert!(hi.dram_used <= opt.dram_bytes);
    }

    #[test]
    fn dram_base_at_or_past_the_limit_is_out_of_memory() {
        let net = zoo::lenet5(1);
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        opt.dram_base = opt.dram_bytes;
        assert!(matches!(
            compile(&net, &opt).unwrap_err(),
            CompileError::OutOfMemory(_)
        ));
    }

    #[test]
    fn buffers_do_not_overlap_weights() {
        let net = zoo::lenet5(1);
        let a = compile(&net, &CompileOptions::int8()).unwrap();
        // Every weight segment must be disjoint from the input buffer.
        let in_end = a.input_addr + a.input_len as u32;
        for seg in a.weights.segments() {
            let seg_end = seg.addr + seg.bytes.len() as u32;
            assert!(
                seg_end <= a.input_addr || seg.addr >= in_end,
                "weight segment overlaps input"
            );
        }
        assert!(a.dram_used > a.weights.total_bytes() as u32);
    }

    #[test]
    fn command_stream_is_paired_launch_poll_clear() {
        let net = zoo::lenet5(1);
        let a = compile(&net, &CompileOptions::int8()).unwrap();
        // Every ReadReg poll is immediately followed by the w1c clear.
        for (i, c) in a.commands.iter().enumerate() {
            if let ConfigCmd::ReadReg { addr, mask, expect } = c {
                assert_eq!(*addr, regs::GLB_INTR_STATUS);
                assert_eq!(mask, expect);
                match a.commands[i + 1] {
                    ConfigCmd::WriteReg { addr, value } => {
                        assert_eq!(addr, regs::GLB_INTR_STATUS);
                        assert_eq!(value, *mask);
                    }
                    ConfigCmd::ReadReg { .. } => panic!("poll not followed by clear"),
                }
            }
        }
        // One poll per op.
        let polls = a
            .commands
            .iter()
            .filter(|c| matches!(c, ConfigCmd::ReadReg { .. }))
            .count();
        assert_eq!(polls, a.ops.len());
    }
}
