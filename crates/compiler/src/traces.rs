//! Standard NVDLA test traces (paper §V).
//!
//! "Initial functional validation was performed via behavioral
//! simulation using standard NVDLA test traces such as sanity,
//! convolution and memory tests … translated into RISC-V assembly and
//! used to verify the correctness of the integrated SoC design."
//!
//! Each [`TestTrace`] bundles a register-command stream, the DRAM
//! preload it needs, and the DRAM contents it must produce — so it can
//! be replayed on the VP or compiled to bare-metal firmware for the SoC.

use rvnv_nvdla::regs::{self, Block};

use crate::layout::WeightImage;
use crate::trace::ConfigCmd;

/// A self-checking register trace.
#[derive(Debug, Clone)]
pub struct TestTrace {
    /// Trace name (matches the official trace-set naming).
    pub name: &'static str,
    /// The register commands.
    pub commands: Vec<ConfigCmd>,
    /// DRAM contents to preload before replay.
    pub preload: WeightImage,
    /// Expected DRAM contents after replay: `(addr, bytes)`.
    pub expect: Vec<(u32, Vec<u8>)>,
}

fn w(cmds: &mut Vec<ConfigCmd>, block: Block, offset: u32, value: u32) {
    cmds.push(ConfigCmd::WriteReg {
        addr: block.base() + offset,
        value,
    });
}

fn wait_and_clear(cmds: &mut Vec<ConfigCmd>, bits: u32) {
    cmds.push(ConfigCmd::ReadReg {
        addr: regs::GLB_INTR_STATUS,
        mask: bits,
        expect: bits,
    });
    cmds.push(ConfigCmd::WriteReg {
        addr: regs::GLB_INTR_STATUS,
        value: bits,
    });
}

/// The sanity trace: version register, scratch write/read-back on every
/// engine block, interrupt set/clear round trip.
#[must_use]
pub fn sanity() -> TestTrace {
    let mut cmds = Vec::new();
    // HW version must read back the expected ID.
    cmds.push(ConfigCmd::ReadReg {
        addr: regs::GLB_HW_VERSION,
        mask: u32::MAX,
        expect: regs::HW_VERSION_VALUE,
    });
    // Scratch write/read-verify across engine config registers.
    for (i, block) in [
        Block::Cdma,
        Block::Csc,
        Block::Cmac,
        Block::Sdp,
        Block::Pdp,
        Block::Cdp,
        Block::Rubik,
        Block::Bdma,
    ]
    .into_iter()
    .enumerate()
    {
        let pattern = 0xA5A5_0000 | (i as u32);
        w(&mut cmds, block, regs::COPY_SRC_ADDR, pattern);
        cmds.push(ConfigCmd::ReadReg {
            addr: block.base() + regs::COPY_SRC_ADDR,
            mask: u32::MAX,
            expect: pattern,
        });
    }
    // Interrupt set (test hook) then write-1-to-clear.
    cmds.push(ConfigCmd::WriteReg {
        addr: regs::GLB_INTR_SET,
        value: 0b10_0000,
    });
    wait_and_clear(&mut cmds, 0b10_0000);
    cmds.push(ConfigCmd::ReadReg {
        addr: regs::GLB_INTR_STATUS,
        mask: u32::MAX,
        expect: 0,
    });
    TestTrace {
        name: "sanity",
        commands: cmds,
        preload: WeightImage::new(),
        expect: Vec::new(),
    }
}

/// The memory test: BDMA copies a pattern between DRAM regions; the
/// destination must equal the source.
#[must_use]
pub fn memory() -> TestTrace {
    let src = 0x1000u32;
    let dst = 0x2000u32;
    let pattern: Vec<u8> = (0..256u32)
        .map(|i| (i.wrapping_mul(37) & 0xFF) as u8)
        .collect();
    let mut preload = WeightImage::new();
    preload.push(src, pattern.clone());
    let mut cmds = Vec::new();
    w(&mut cmds, Block::Bdma, regs::COPY_SRC_ADDR, src);
    w(&mut cmds, Block::Bdma, regs::COPY_DST_ADDR, dst);
    w(&mut cmds, Block::Bdma, regs::COPY_LEN, pattern.len() as u32);
    w(&mut cmds, Block::Bdma, regs::REG_OP_ENABLE, 1);
    wait_and_clear(
        &mut cmds,
        1 << Block::Bdma.intr_bit().expect("bdma interrupt bit"),
    );
    TestTrace {
        name: "memory",
        commands: cmds,
        preload,
        expect: vec![(dst, pattern)],
    }
}

/// The convolution test: a 3×3 ones-kernel over a 4×4 ramp, INT8,
/// bias 0, no activation — expected output computed by definition.
#[must_use]
pub fn convolution() -> TestTrace {
    let feat_addr = 0x1000u32;
    let wt_addr = 0x1100u32;
    let bs_addr = 0x1200u32;
    let out_addr = 0x2000u32;
    // 1x4x4 input ramp 0..16, 1 kernel 3x3 of ones, pad 1, stride 1.
    let feature: Vec<i8> = (0..16).collect();
    let weights = [1i8; 9];
    // Expected: sum of the 3x3 neighbourhood with zero padding.
    let mut expect = [0i8; 16];
    for y in 0..4i32 {
        for x in 0..4i32 {
            let mut acc = 0i32;
            for ky in -1..=1 {
                for kx in -1..=1 {
                    let (iy, ix) = (y + ky, x + kx);
                    if (0..4).contains(&iy) && (0..4).contains(&ix) {
                        acc += i32::from(feature[(iy * 4 + ix) as usize]);
                    }
                }
            }
            expect[(y * 4 + x) as usize] = acc as i8;
        }
    }
    let mut preload = WeightImage::new();
    preload.push(feat_addr, feature.iter().map(|&v| v as u8).collect());
    preload.push(wt_addr, weights.iter().map(|&v| v as u8).collect());
    // Identity bias table (scale 1.0, shift 0.0).
    let mut bs = Vec::new();
    bs.extend_from_slice(&1.0f32.to_le_bytes());
    bs.extend_from_slice(&0.0f32.to_le_bytes());
    preload.push(bs_addr, bs);

    let one = 1.0f32.to_bits();
    let mut cmds = Vec::new();
    w(&mut cmds, Block::Cdma, regs::CDMA_DATAIN_ADDR, feat_addr);
    w(
        &mut cmds,
        Block::Cdma,
        regs::CDMA_DATAIN_SIZE0,
        4 | (4 << 16),
    );
    w(&mut cmds, Block::Cdma, regs::CDMA_DATAIN_SIZE1, 1);
    w(&mut cmds, Block::Cdma, regs::CDMA_WEIGHT_ADDR, wt_addr);
    w(&mut cmds, Block::Cdma, regs::CDMA_WEIGHT_BYTES, 9);
    w(&mut cmds, Block::Cdma, regs::CDMA_CONV_STRIDE, 1);
    w(&mut cmds, Block::Cdma, regs::CDMA_ZERO_PADDING, 1);
    w(&mut cmds, Block::Cdma, regs::CDMA_IN_SCALE, one);
    w(&mut cmds, Block::Cdma, regs::CDMA_WT_SCALE, one);
    w(
        &mut cmds,
        Block::Csc,
        regs::CSC_DATAOUT_SIZE0,
        4 | (4 << 16),
    );
    w(&mut cmds, Block::Csc, regs::CSC_DATAOUT_SIZE1, 1);
    w(&mut cmds, Block::Csc, regs::CSC_WEIGHT_SIZE0, 3 | (3 << 16));
    w(&mut cmds, Block::Csc, regs::CSC_GROUPS, 1);
    w(&mut cmds, Block::Cmac, regs::CMAC_MISC, 0);
    w(&mut cmds, Block::Sdp, regs::SDP_SRC, 0);
    w(&mut cmds, Block::Sdp, regs::SDP_DST_ADDR, out_addr);
    w(&mut cmds, Block::Sdp, regs::SDP_SIZE0, 4 | (4 << 16));
    w(&mut cmds, Block::Sdp, regs::SDP_SIZE1, 1);
    w(&mut cmds, Block::Sdp, regs::SDP_BS_ADDR, bs_addr);
    w(&mut cmds, Block::Sdp, regs::SDP_FLAGS, regs::SDP_FLAG_BIAS);
    w(&mut cmds, Block::Sdp, regs::SDP_OUT_SCALE, one);
    w(&mut cmds, Block::Sdp, regs::SDP_PRECISION, 0);
    w(&mut cmds, Block::Sdp, regs::REG_OP_ENABLE, 1);
    w(&mut cmds, Block::Cacc, regs::REG_OP_ENABLE, 1);
    let bits = (1 << Block::Cacc.intr_bit().expect("cacc bit"))
        | (1 << Block::Sdp.intr_bit().expect("sdp bit"));
    wait_and_clear(&mut cmds, bits);
    TestTrace {
        name: "convolution",
        commands: cmds,
        preload,
        expect: vec![(out_addr, expect.iter().map(|&v| v as u8).collect())],
    }
}

/// All standard traces in the order the paper lists them.
#[must_use]
pub fn all() -> Vec<TestTrace> {
    vec![sanity(), convolution(), memory()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvnv_bus::dram::Dram;
    use rvnv_bus::{Request, Target};
    use rvnv_nvdla::{HwConfig, Nvdla};

    /// Replay a trace directly against the NVDLA model (VP-style).
    fn replay(trace: &TestTrace) {
        let mut dla = Nvdla::new(HwConfig::nv_small(), Dram::new(1 << 20, Default::default()));
        for seg in trace.preload.segments() {
            dla.dbb_mut().load(seg.addr as usize, &seg.bytes).unwrap();
        }
        let mut t = 0u64;
        for cmd in &trace.commands {
            match *cmd {
                ConfigCmd::WriteReg { addr, value } => {
                    t = dla
                        .access(&Request::write32(addr, value), t)
                        .unwrap_or_else(|e| panic!("{}: {e}", trace.name))
                        .done_at;
                }
                ConfigCmd::ReadReg { addr, mask, expect } => {
                    let mut got = dla.access(&Request::read32(addr), t).unwrap().data32();
                    t = dla.idle_at(t) + 1;
                    if got & mask != expect {
                        got = dla.access(&Request::read32(addr), t).unwrap().data32();
                    }
                    assert_eq!(got & mask, expect, "{}: read {addr:#x}", trace.name);
                    t += 1;
                }
            }
        }
        for (addr, bytes) in &trace.expect {
            let got = dla.dbb_mut().peek(*addr as usize, bytes.len());
            assert_eq!(got, &bytes[..], "{}: dram at {addr:#x}", trace.name);
        }
    }

    #[test]
    fn sanity_trace_passes() {
        replay(&sanity());
    }

    #[test]
    fn memory_trace_passes() {
        replay(&memory());
    }

    #[test]
    fn convolution_trace_passes() {
        replay(&convolution());
    }

    #[test]
    fn convolution_expected_values_are_neighbourhood_sums() {
        let t = convolution();
        let (_, out) = &t.expect[0];
        // Corner (0,0): 0+1+4+5 = 10; center (1,1): sum of 0..=2,4..=6,8..=10.
        assert_eq!(out[0] as i8, 10);
        assert_eq!(out[5] as i8, 45);
    }

    #[test]
    fn all_traces_have_unique_names() {
        let names: Vec<_> = all().iter().map(|t| t.name).collect();
        assert_eq!(names, vec!["sanity", "convolution", "memory"]);
    }
}
