//! Virtual-platform log scraping (paper §IV-B).
//!
//! The VP writes one line per interface transaction:
//!
//! ```text
//! nvdla.csb_adaptor: addr=0x00005008 data=0x00000001 iswrite=1
//! nvdla.dbb_adaptor: addr=0x00000040 data=0x1122334455667788 iswrite=0
//! ```
//!
//! * CSB lines become the configuration file: writes → `write_reg`,
//!   reads → `read_reg` with the observed (expected) value; reads of the
//!   interrupt-status register become polls.
//! * DBB **read** lines are memory fetches — the weights; duplicates are
//!   removed keeping the **first** occurrence (later reads of the same
//!   address may observe activations that overwrote the region).

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use rvnv_nvdla::regs;

use crate::trace::ConfigCmd;

/// One parsed VP log transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VpEntry {
    /// CSB (register) or DBB (memory) interface.
    pub interface: Interface,
    /// Byte address.
    pub addr: u32,
    /// Data (32-bit for CSB, up to 64-bit for DBB beats).
    pub data: u64,
    /// The `iswrite` flag.
    pub iswrite: bool,
}

/// Which adaptor produced a log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interface {
    /// Configuration space bus.
    Csb,
    /// Data backbone.
    Dbb,
}

/// A complete VP log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VpLog {
    entries: Vec<VpEntry>,
}

impl VpLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a CSB transaction.
    pub fn csb(&mut self, addr: u32, data: u32, iswrite: bool) {
        self.entries.push(VpEntry {
            interface: Interface::Csb,
            addr,
            data: u64::from(data),
            iswrite,
        });
    }

    /// Record a DBB beat.
    pub fn dbb(&mut self, addr: u32, data: u64, iswrite: bool) {
        self.entries.push(VpEntry {
            interface: Interface::Dbb,
            addr,
            data,
            iswrite,
        });
    }

    /// All entries in order.
    #[must_use]
    pub fn entries(&self) -> &[VpEntry] {
        &self.entries
    }

    /// Render the textual log.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let tag = match e.interface {
                Interface::Csb => "nvdla.csb_adaptor",
                Interface::Dbb => "nvdla.dbb_adaptor",
            };
            let width = match e.interface {
                Interface::Csb => 8,
                Interface::Dbb => 16,
            };
            out.push_str(&format!(
                "{tag}: addr={:#010x} data={:#0w$x} iswrite={}\n",
                e.addr,
                e.data,
                u8::from(e.iswrite),
                w = width + 2,
            ));
        }
        out
    }

    /// Parse a textual log, ignoring unrelated lines (the real VP log
    /// interleaves QEMU/SystemC noise).
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut log = VpLog::new();
        for line in text.lines() {
            let (interface, rest) = if let Some(r) = line.trim().strip_prefix("nvdla.csb_adaptor:")
            {
                (Interface::Csb, r)
            } else if let Some(r) = line.trim().strip_prefix("nvdla.dbb_adaptor:") {
                (Interface::Dbb, r)
            } else {
                continue;
            };
            let mut addr = None;
            let mut data = None;
            let mut iswrite = None;
            for tok in rest.split_whitespace() {
                if let Some(v) = tok.strip_prefix("addr=") {
                    addr = parse_hex(v);
                } else if let Some(v) = tok.strip_prefix("data=") {
                    data = parse_hex(v);
                } else if let Some(v) = tok.strip_prefix("iswrite=") {
                    iswrite = v.parse::<u8>().ok().map(|b| b != 0);
                }
            }
            if let (Some(addr), Some(data), Some(iswrite)) = (addr, data, iswrite) {
                log.entries.push(VpEntry {
                    interface,
                    addr: addr as u32,
                    data,
                    iswrite,
                });
            }
        }
        log
    }
}

fn parse_hex(s: &str) -> Option<u64> {
    let h = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    u64::from_str_radix(h, 16).ok()
}

/// Error extracting artifacts from a log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractError(String);

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log extraction: {}", self.0)
    }
}

impl Error for ExtractError {}

/// Generate the configuration file from the CSB lines of a log
/// (the paper's "Configuration File Generation" step).
#[must_use]
pub fn extract_config(log: &VpLog) -> Vec<ConfigCmd> {
    log.entries()
        .iter()
        .filter(|e| e.interface == Interface::Csb)
        .map(|e| {
            let data = e.data as u32;
            if e.iswrite {
                ConfigCmd::WriteReg {
                    addr: e.addr,
                    value: data,
                }
            } else if e.addr == regs::GLB_INTR_STATUS {
                // Interrupt-status reads are polls for the bits observed.
                ConfigCmd::ReadReg {
                    addr: e.addr,
                    mask: data,
                    expect: data,
                }
            } else {
                ConfigCmd::ReadReg {
                    addr: e.addr,
                    mask: u32::MAX,
                    expect: data,
                }
            }
        })
        .collect()
}

/// Extract the weight file from the DBB lines of a log: every **read**
/// is a memory fetch; duplicate addresses keep the first occurrence
/// (the paper's dedup rule). Returns `(addr, data)` beats sorted by
/// address.
#[must_use]
pub fn extract_weights(log: &VpLog) -> Vec<(u32, u64)> {
    let mut seen = BTreeSet::new();
    let mut beats: Vec<(u32, u64)> = Vec::new();
    for e in log.entries() {
        if e.interface == Interface::Dbb && !e.iswrite && seen.insert(e.addr) {
            beats.push((e.addr, e.data));
        }
    }
    beats.sort_by_key(|&(a, _)| a);
    beats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_text_round_trips() {
        let mut log = VpLog::new();
        log.csb(0x5008, 1, true);
        log.csb(regs::GLB_INTR_STATUS, 0b11, false);
        log.dbb(0x40, 0x1122_3344_5566_7788, false);
        log.dbb(0x48, 0xAA, true);
        let text = log.to_text();
        assert!(text.contains("nvdla.csb_adaptor"));
        assert!(text.contains("iswrite=0"));
        let back = VpLog::parse(&text);
        assert_eq!(back, log);
    }

    #[test]
    fn parser_ignores_noise_lines() {
        let text =
            "qemu: booting\nnvdla.csb_adaptor: addr=0x10 data=0x20 iswrite=1\nsystemc gibberish\n";
        let log = VpLog::parse(text);
        assert_eq!(log.entries().len(), 1);
    }

    #[test]
    fn config_extraction_classifies_reads_and_writes() {
        let mut log = VpLog::new();
        log.csb(0x5008, 1, true);
        log.csb(regs::GLB_INTR_STATUS, 0b10, false);
        log.csb(0x0000, 0x151A0, false);
        let cmds = extract_config(&log);
        assert_eq!(
            cmds[0],
            ConfigCmd::WriteReg {
                addr: 0x5008,
                value: 1
            }
        );
        assert_eq!(
            cmds[1],
            ConfigCmd::ReadReg {
                addr: regs::GLB_INTR_STATUS,
                mask: 0b10,
                expect: 0b10
            }
        );
        assert_eq!(
            cmds[2],
            ConfigCmd::ReadReg {
                addr: 0,
                mask: u32::MAX,
                expect: 0x151A0
            }
        );
    }

    #[test]
    fn weight_extraction_dedups_first_occurrence() {
        let mut log = VpLog::new();
        log.dbb(0x100, 0xAAAA, false); // weight fetch (original)
        log.dbb(0x200, 0xBBBB, false);
        log.dbb(0x100, 0xCCCC, false); // re-read after overwrite: dropped
        log.dbb(0x300, 0xDDDD, true); // write: not a weight
        let w = extract_weights(&log);
        assert_eq!(w, vec![(0x100, 0xAAAA), (0x200, 0xBBBB)]);
    }

    #[test]
    fn weights_sorted_by_address() {
        let mut log = VpLog::new();
        log.dbb(0x300, 3, false);
        log.dbb(0x100, 1, false);
        let w = extract_weights(&log);
        assert_eq!(w[0].0, 0x100);
        assert_eq!(w[1].0, 0x300);
    }
}
