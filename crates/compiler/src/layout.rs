//! DRAM memory layout: bump allocator and the weight-file image.
//!
//! Addresses are NVDLA-local DRAM offsets (the CPU reaches the same
//! bytes at `0x10_0000 + offset` through the system-bus DRAM window).

use std::fmt;

/// Alignment of every allocation (one DBB burst).
pub const ALLOC_ALIGN: u32 = 64;

/// A bump allocator over the DRAM data region.
#[derive(Debug, Clone)]
pub struct Allocator {
    next: u32,
    limit: u32,
}

/// Error: the model does not fit in DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u32,
    /// Bytes remaining.
    pub remaining: u32,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DRAM exhausted: requested {} bytes, {} remaining",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for OutOfMemory {}

impl Allocator {
    /// An allocator over `[base, base + size)`.
    #[must_use]
    pub fn new(base: u32, size: u32) -> Self {
        Allocator {
            next: base,
            limit: base.saturating_add(size),
        }
    }

    /// Allocate `bytes`, aligned to [`ALLOC_ALIGN`].
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the region is exhausted.
    pub fn alloc(&mut self, bytes: u32) -> Result<u32, OutOfMemory> {
        let base = self.next.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        let end = base.checked_add(bytes).ok_or(OutOfMemory {
            requested: bytes,
            remaining: self.limit - self.next,
        })?;
        if end > self.limit {
            return Err(OutOfMemory {
                requested: bytes,
                remaining: self.limit - self.next,
            });
        }
        self.next = end;
        Ok(base)
    }

    /// High-water mark (total bytes used from the region base).
    #[must_use]
    pub fn used(&self) -> u32 {
        self.next
    }
}

/// One contiguous segment of the weight file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// DRAM offset.
    pub addr: u32,
    /// Contents.
    pub bytes: Vec<u8>,
}

/// The deduplicated weight file: everything that must be preloaded into
/// DRAM before inference (quantized weights and bias/scale tables).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WeightImage {
    segments: Vec<Segment>,
}

impl WeightImage {
    /// An empty image.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a segment.
    pub fn push(&mut self, addr: u32, bytes: Vec<u8>) {
        self.segments.push(Segment { addr, bytes });
    }

    /// All segments in emission order.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total payload bytes.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.bytes.len()).sum()
    }

    /// Content fingerprint over every segment's address, length **and
    /// payload bytes** ([`rvnv_nn::hash::Fnv`], folded 8 bytes per
    /// step). Two images with the same layout but different weight
    /// values — e.g. the same model compiled from different seeds — get
    /// different fingerprints; the SoC's resident-weights check keys on
    /// this.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = rvnv_nn::hash::Fnv::new();
        for s in &self.segments {
            h.mix(u64::from(s.addr));
            h.bytes(&s.bytes);
        }
        h.finish()
    }

    /// Serialize as the on-disk `.bin` format: for each segment an
    /// 8-byte header (u32 addr, u32 len, little-endian) then payload.
    #[must_use]
    pub fn to_bin(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_bytes() + 8 * self.segments.len());
        for s in &self.segments {
            out.extend_from_slice(&s.addr.to_le_bytes());
            out.extend_from_slice(&(s.bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&s.bytes);
        }
        out
    }

    /// Parse the `.bin` format produced by [`WeightImage::to_bin`].
    ///
    /// # Errors
    ///
    /// Returns a description of the corruption on malformed input.
    pub fn from_bin(data: &[u8]) -> Result<Self, String> {
        let mut segments = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            if pos + 8 > data.len() {
                return Err(format!("truncated segment header at {pos}"));
            }
            let addr = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
            let len =
                u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
            pos += 8;
            if pos + len > data.len() {
                return Err(format!("truncated segment payload at {pos}"));
            }
            segments.push(Segment {
                addr,
                bytes: data[pos..pos + len].to_vec(),
            });
            pos += len;
        }
        Ok(WeightImage { segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut a = Allocator::new(0x100, 0x1000);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(100).unwrap();
        let z = a.alloc(1).unwrap();
        assert_eq!(x % ALLOC_ALIGN, 0);
        assert_eq!(y % ALLOC_ALIGN, 0);
        assert!(x + 10 <= y && y + 100 <= z);
    }

    #[test]
    fn out_of_memory_detected() {
        let mut a = Allocator::new(0, 128);
        a.alloc(64).unwrap();
        let e = a.alloc(128).unwrap_err();
        assert!(e.to_string().contains("exhausted"));
    }

    #[test]
    fn zero_sized_alloc_ok() {
        let mut a = Allocator::new(0, 64);
        let x = a.alloc(0).unwrap();
        let y = a.alloc(0).unwrap();
        assert_eq!(x, y, "zero-size allocations may share an address");
    }

    #[test]
    fn weight_image_bin_round_trip() {
        let mut img = WeightImage::new();
        img.push(0x40, vec![1, 2, 3]);
        img.push(0x1000, vec![9; 100]);
        let bin = img.to_bin();
        let back = WeightImage::from_bin(&bin).unwrap();
        assert_eq!(back, img);
        assert_eq!(back.total_bytes(), 103);
    }

    #[test]
    fn corrupt_bin_rejected() {
        assert!(WeightImage::from_bin(&[1, 2, 3]).is_err());
        let mut img = WeightImage::new();
        img.push(0, vec![5; 16]);
        let mut bin = img.to_bin();
        bin.truncate(bin.len() - 1);
        assert!(WeightImage::from_bin(&bin).is_err());
    }
}
