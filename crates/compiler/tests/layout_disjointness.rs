//! Property tests for multi-model DRAM layout, driven by the shared
//! `rvnv_fuzz` generator library: stacking randomized models with
//! `at_dram_base` must give every model a private, in-bounds footprint
//! `[dram_base, dram_used)` — footprints never overlap, and relocating
//! a model never changes its footprint size.

use rvnv_compiler::{compile, CompileOptions};
use rvnv_fuzz::gen;

/// The batch layout alignment (`rvnv_soc::batch` aligns stacked model
/// bases to 4 KiB); mirrored here so the compiler-level property is
/// checked under the same packing the schedulers use.
const MODEL_BASE_ALIGN: u32 = 4096;

fn options() -> CompileOptions {
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    opt
}

/// Compile three random models stacked end to end; every pair of
/// footprints must be disjoint and the last must stay in bounds.
#[test]
fn stacked_random_models_get_disjoint_footprints() {
    for seed in 0..24u64 {
        let nets: Vec<_> = (0..3)
            .map(|k| {
                gen::net_plan(seed * 3 + k)
                    .build()
                    .unwrap_or_else(|e| panic!("seed {seed}.{k}: {e}"))
            })
            .collect();
        let mut base = 0u32;
        let mut footprints: Vec<(u32, u32)> = Vec::new();
        for (k, net) in nets.iter().enumerate() {
            let Ok(artifacts) = compile(net, &options().at_dram_base(base)) else {
                // A random model can legitimately exhaust DRAM at a high
                // base; out-of-memory is a clean refusal, not overlap.
                continue;
            };
            assert_eq!(artifacts.dram_base, base, "seed {seed}.{k}: base ignored");
            assert!(
                artifacts.dram_used >= artifacts.dram_base,
                "seed {seed}.{k}: negative footprint"
            );
            assert!(
                artifacts.dram_used <= options().dram_bytes,
                "seed {seed}.{k}: footprint {:#x} beyond DRAM",
                artifacts.dram_used
            );
            footprints.push((artifacts.dram_base, artifacts.dram_used));
            base = artifacts
                .dram_used
                .div_ceil(MODEL_BASE_ALIGN)
                .saturating_mul(MODEL_BASE_ALIGN);
        }
        for (i, &(b1, u1)) in footprints.iter().enumerate() {
            for &(b2, u2) in &footprints[i + 1..] {
                assert!(
                    u1 <= b2 || u2 <= b1,
                    "seed {seed}: footprints [{b1:#x},{u1:#x}) and [{b2:#x},{u2:#x}) overlap"
                );
            }
        }
    }
}

/// Relocating a model must shift its footprint rigidly: identical
/// size at base 0 and at a high base.
#[test]
fn relocation_preserves_footprint_size() {
    for seed in 0..24u64 {
        let net = gen::net_plan(seed)
            .build()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let at0 = compile(&net, &options()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let base = 1 << 22;
        let hi = compile(&net, &options().at_dram_base(base))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            hi.dram_used - hi.dram_base,
            at0.dram_used - at0.dram_base,
            "seed {seed}: relocation changed the footprint size"
        );
    }
}
