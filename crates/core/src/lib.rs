//! The bare-metal RISC-V + NVDLA SoC (the paper's primary contribution).
//!
//! This crate assembles every substrate into the system of Fig. 2/Fig. 4:
//! the µRISC-V core fetches generated bare-metal machine code from block
//! RAM and programs the NVDLA through the system-bus decoder
//! (NVDLA window `0x0..0xFFFFF`, DRAM window `0x100000..0x200FFFFF`),
//! an AHB→APB bridge and the APB-to-CSB adapter; NVDLA's 64-bit DBB
//! reaches the 32-bit DRAM through a data-width converter and the
//! arbiter; an AXI SmartConnect multiplexes the DRAM between the Zynq PS
//! (preload) and the SoC (inference).
//!
//! * [`soc`] — the co-simulated SoC and [`soc::InferenceResult`],
//! * [`firmware`] — configuration file → assembly → program-memory image,
//! * [`zynq`] — the Fig. 4 test harness (PS preload, SmartConnect switch),
//! * [`baseline`] — the Linux-driver runtime model used as the Table II
//!   comparison column (ref.\[8\], Ariane+NVDLA on ESP at 50 MHz),
//! * [`resources`] — the analytical FPGA resource model behind Table I,
//! * [`sweep`] — host-side worker fan-out for configuration sweeps,
//! * [`batch`] — the multi-model resident batch scheduler (several
//!   weight images pinned in one DRAM, frames interleaved across them),
//! * [`serve`] — open-loop inference serving on top of [`batch`]:
//!   seeded arrival traces, a bounded admission queue, a warm-SoC
//!   worker pool and SLO-percentile reporting,
//! * [`fleet`] — fleet-scale serving on top of [`serve`]: heterogeneous
//!   pools (`nv_small`/`nv_full`) behind a load balancer with pluggable
//!   routing, per-pool bounded admission, a reactive autoscaler, and
//!   spot-replay windows that pin the plan to real SoCs.
//!
//! # Example
//!
//! ```
//! use rvnv_soc::soc::{Soc, SocConfig};
//! use rvnv_compiler::{compile, CompileOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = rvnv_nn::zoo::lenet5(1);
//! let artifacts = compile(&net, &CompileOptions::int8())?;
//! let mut soc = Soc::new(SocConfig::zcu102_nv_small());
//! let input = rvnv_nn::Tensor::random(net.input_shape(), 42);
//! let result = soc.run_inference(&artifacts, &input)?;
//! assert!(result.cycles > 0);
//! assert_eq!(result.output.shape().c, 10);
//! # Ok(())
//! # }
//! ```

pub mod baseline;
pub mod batch;
pub mod firmware;
pub mod fleet;
pub mod profile;
pub mod resources;
pub mod serve;
pub mod soc;
pub mod sweep;
pub mod zynq;

pub use soc::{InferenceResult, Soc, SocConfig, SocError};
