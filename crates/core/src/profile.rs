//! Per-layer profiling report.
//!
//! Joins the compiler's per-op metadata ([`OpInfo`]) with the
//! accelerator's execution timeline ([`rvnv_nvdla::OpTrace`]) into the
//! kind of per-layer latency breakdown an FPGA team reads off an ILA —
//! which layers dominate, how busy the accelerator was, and how much of
//! the wall clock went to CPU-side programming gaps.

use rvnv_compiler::{Artifacts, OpInfo};
use rvnv_nvdla::OpTrace;

use crate::soc::InferenceResult;

/// One joined profiling row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerProfile {
    /// Root graph-node name.
    pub name: String,
    /// Engine that executed it.
    pub engine: &'static str,
    /// Launch cycle.
    pub start: u64,
    /// Completion cycle.
    pub done: u64,
    /// MACs performed.
    pub macs: u64,
    /// Fused graph nodes.
    pub fused: Vec<String>,
}

impl LayerProfile {
    /// Operation latency in cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.done - self.start
    }
}

/// A whole-inference profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferenceProfile {
    /// Per-layer rows in launch order.
    pub layers: Vec<LayerProfile>,
    /// Total inference cycles (reset to `ebreak`).
    pub total_cycles: u64,
    /// Cycles with at least one engine active.
    pub accelerator_busy_cycles: u64,
}

impl InferenceProfile {
    /// Join artifacts and a result into a profile.
    ///
    /// # Panics
    ///
    /// Panics if the result does not belong to the artifacts (different
    /// op counts).
    #[must_use]
    pub fn new(artifacts: &Artifacts, result: &InferenceResult) -> Self {
        assert_eq!(
            artifacts.ops.len(),
            result.timeline.len(),
            "artifacts/result mismatch"
        );
        let layers = artifacts
            .ops
            .iter()
            .zip(&result.timeline)
            .map(|(op, trace): (&OpInfo, &OpTrace)| LayerProfile {
                name: op.name.clone(),
                engine: op.engine,
                start: trace.start,
                done: trace.done,
                macs: op.macs,
                fused: op.fused.clone(),
            })
            .collect::<Vec<_>>();
        let accelerator_busy_cycles = layers.iter().map(LayerProfile::cycles).sum();
        InferenceProfile {
            layers,
            total_cycles: result.cycles,
            accelerator_busy_cycles,
        }
    }

    /// Accelerator occupancy in percent (0–100).
    #[must_use]
    pub fn occupancy_percent(&self) -> u64 {
        (self.accelerator_busy_cycles * 100)
            .checked_div(self.total_cycles)
            .unwrap_or(0)
    }

    /// The `n` slowest layers, most expensive first.
    #[must_use]
    pub fn hotspots(&self, n: usize) -> Vec<&LayerProfile> {
        let mut rows: Vec<&LayerProfile> = self.layers.iter().collect();
        rows.sort_by_key(|l| std::cmp::Reverse(l.cycles()));
        rows.truncate(n);
        rows
    }

    /// Render a fixed-width report.
    #[must_use]
    pub fn to_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:<6} {:>10} {:>10} {:>12} {:>6}\n",
            "layer", "engine", "start", "done", "cycles", "MACs%"
        ));
        let total_macs: u64 = self.layers.iter().map(|l| l.macs).sum::<u64>().max(1);
        for l in &self.layers {
            out.push_str(&format!(
                "{:<22} {:<6} {:>10} {:>10} {:>12} {:>5}%\n",
                l.name,
                l.engine,
                l.start,
                l.done,
                l.cycles(),
                l.macs * 100 / total_macs
            ));
        }
        out.push_str(&format!(
            "total {} cycles, accelerator busy {} ({}% occupancy)\n",
            self.total_cycles,
            self.accelerator_busy_cycles,
            self.occupancy_percent()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soc::{Soc, SocConfig};
    use rvnv_compiler::{compile, CompileOptions};
    use rvnv_nn::{zoo, Tensor};

    fn lenet_profile() -> InferenceProfile {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        let input = Tensor::random(net.input_shape(), 2);
        let result = soc.run_inference(&artifacts, &input).unwrap();
        InferenceProfile::new(&artifacts, &result)
    }

    #[test]
    fn profile_joins_ops_and_timeline() {
        let p = lenet_profile();
        assert_eq!(p.layers.len(), 6);
        assert!(p.layers.iter().all(|l| l.done > l.start));
        assert!(p.accelerator_busy_cycles <= p.total_cycles);
        assert!(p.occupancy_percent() > 50, "LeNet keeps the DLA busy");
    }

    #[test]
    fn hotspot_is_the_big_fc_layer() {
        let p = lenet_profile();
        let hot = p.hotspots(1);
        assert_eq!(hot[0].name, "ip1", "the 400k-weight FC dominates");
        // Hotspots are sorted descending.
        let two = p.hotspots(2);
        assert!(two[0].cycles() >= two[1].cycles());
    }

    #[test]
    fn report_renders_every_layer() {
        let p = lenet_profile();
        let report = p.to_report();
        for l in &p.layers {
            assert!(report.contains(&l.name), "{} in report", l.name);
        }
        assert!(report.contains("occupancy"));
    }
}
