//! Host-side fan-out for configuration sweeps.
//!
//! Sweep points are independent — each worker owns its SoC or virtual
//! platform — so the only shared state a sweep needs is a work index.
//! [`fan_out`] is that one pattern, used by `rv-nvdla sweep`, the
//! `config_explorer` example and the `sweep_8pt` bench, so fixes to the
//! fan-out (ordering, panic behavior) live in exactly one place.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `task(i)` for every `i in 0..tasks` across up to `threads`
/// scoped workers, returning the results in task order.
///
/// Workers pull indices from a shared atomic counter (work stealing, so
/// uneven task costs balance out). With `threads == 1` this degrades to
/// a serial loop plus one spawn.
///
/// # Panics
///
/// Propagates a panic from any task (the scope re-raises it on join).
pub fn fan_out<T, F>(tasks: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, tasks.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                let result = task(i);
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot").expect("task ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1, 2, 7, 64] {
            let out = fan_out(13, threads, |i| i * i);
            assert_eq!(out, (0..13).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        let out: Vec<u32> = fan_out(0, 4, |_| unreachable!("no tasks"));
        assert!(out.is_empty());
    }

    #[test]
    fn workers_actually_share_the_queue() {
        let hits = AtomicUsize::new(0);
        let out = fan_out(100, 4, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }
}
