//! Analytical FPGA resource model (paper Table I).
//!
//! Vivado synthesis is obviously unavailable here, so Table I is
//! reproduced with per-component cost functions. Fixed-function blocks
//! (µRISC-V, MIG, SmartConnect) use constant costs taken from the kind
//! of synthesis reports these IPs produce; the NVDLA cost scales with
//! its configuration (MAC array and convolution buffer), which is what
//! lets the model also reproduce the paper's observation that `nv_full`
//! over-utilizes the ZCU102's LUTs.

use rvnv_nvdla::HwConfig;

/// One row of the utilization table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Utilization {
    /// CLB look-up tables.
    pub lut: u64,
    /// CLB registers (flip-flops).
    pub regs: u64,
    /// CARRY8 carry chains.
    pub carry8: u64,
    /// F7 multiplexers.
    pub f7_mux: u64,
    /// F8 multiplexers.
    pub f8_mux: u64,
    /// Configurable logic blocks.
    pub clb: u64,
    /// Block-RAM tiles (36 Kb).
    pub bram: u64,
    /// DSP48 slices.
    pub dsp: u64,
}

impl Utilization {
    /// The all-zero row.
    pub const ZERO: Utilization = Utilization {
        lut: 0,
        regs: 0,
        carry8: 0,
        f7_mux: 0,
        f8_mux: 0,
        clb: 0,
        bram: 0,
        dsp: 0,
    };

    /// Component-wise sum.
    #[must_use]
    pub fn plus(self, other: Utilization) -> Utilization {
        Utilization {
            lut: self.lut + other.lut,
            regs: self.regs + other.regs,
            carry8: self.carry8 + other.carry8,
            f7_mux: self.f7_mux + other.f7_mux,
            f8_mux: self.f8_mux + other.f8_mux,
            clb: self.clb + other.clb,
            bram: self.bram + other.bram,
            dsp: self.dsp + other.dsp,
        }
    }
}

/// ZCU102 (XCZU9EG) device capacity — the header row of Table I.
pub const ZCU102: Utilization = Utilization {
    lut: 274_080,
    regs: 548_160,
    carry8: 34_260,
    f7_mux: 137_040,
    f8_mux: 68_520,
    clb: 34_260,
    bram: 912,
    dsp: 2_520,
};

/// Estimate the NVDLA's resources from its hardware configuration.
///
/// Calibrated so `nv_small` reproduces the paper's synthesis row
/// (74 575 LUTs, 66 BRAM, 32 DSPs); the MAC-array and CBUF terms then
/// extrapolate to other configurations.
#[must_use]
pub fn nvdla(cfg: &HwConfig) -> Utilization {
    let macs = u64::from(cfg.atomic_c * cfg.atomic_k);
    let cbuf = u64::from(cfg.cbuf_kib);
    // LUTs: fixed control + per-MAC datapath + CBUF interconnect.
    let lut = 26_175 + macs * 350 + cbuf * 203;
    let regs = 27_567 + macs * 400 + cbuf * 206;
    Utilization {
        lut,
        regs,
        carry8: lut / 48,
        f7_mux: lut / 24,
        f8_mux: lut / 72,
        clb: lut / 5 + regs / 40,
        // CBUF is built from BRAM tiles (two per 4 KiB bank) plus a
        // couple of FIFO tiles.
        bram: cbuf / 2 + 2,
        dsp: macs / 2,
    }
}

/// The µRISC-V core (fixed synthesis cost of the Codasip core).
#[must_use]
pub fn urisc_v() -> Utilization {
    Utilization {
        lut: 6_346,
        regs: 2_767,
        carry8: 173,
        f7_mux: 419,
        f8_mux: 67,
        clb: 1_297,
        bram: 0,
        dsp: 4,
    }
}

/// Program memory built from block RAM.
#[must_use]
pub fn program_memory(bytes: usize) -> Utilization {
    Utilization {
        lut: 241,
        regs: 6,
        carry8: 0,
        f7_mux: 45,
        f8_mux: 18,
        clb: 148,
        // One 36 Kb tile per 4 KiB.
        bram: (bytes as u64).div_ceil(4096),
        dsp: 0,
    }
}

/// Glue logic of the SoC (system bus, arbiter, bridges, converter).
#[must_use]
pub fn soc_glue() -> Utilization {
    Utilization {
        lut: 824,
        regs: 1_319,
        carry8: 20,
        f7_mux: 0,
        f8_mux: 0,
        clb: 310,
        bram: 0,
        dsp: 0,
    }
}

/// The MIG DDR4 memory controller (fixed Vivado IP cost).
#[must_use]
pub fn mig_ddr4() -> Utilization {
    Utilization {
        lut: 8_651,
        regs: 10_260,
        carry8: 56,
        f7_mux: 164,
        f8_mux: 0,
        clb: 1_754,
        bram: 25, // reported as 25.5 tiles; we round down the half tile
        dsp: 3,
    }
}

/// The AXI SmartConnect (fixed Vivado IP cost).
#[must_use]
pub fn smartconnect() -> Utilization {
    Utilization {
        lut: 5_546,
        regs: 7_860,
        carry8: 0,
        f7_mux: 0,
        f8_mux: 0,
        clb: 1_137,
        bram: 0,
        dsp: 0,
    }
}

/// Glue between the SoC and the board infrastructure in Fig. 4 (AXI
/// interconnect, reset/clock wizards).
#[must_use]
pub fn board_glue() -> Utilization {
    Utilization {
        lut: 550,
        regs: 1_044,
        carry8: 3,
        f7_mux: 0,
        f8_mux: 0,
        clb: 245,
        bram: 0,
        dsp: 0,
    }
}

/// A named report row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportRow {
    /// Component name as printed in Table I.
    pub name: &'static str,
    /// Estimated utilization.
    pub util: Utilization,
}

/// The full Table I report for a given NVDLA configuration and program
/// memory size.
#[must_use]
pub fn table1(cfg: &HwConfig, progmem_bytes: usize) -> Vec<ReportRow> {
    let dla = nvdla(cfg);
    let core = urisc_v();
    let pmem = program_memory(progmem_bytes);
    let soc = dla.plus(core).plus(pmem).plus(soc_glue());
    let mig = mig_ddr4();
    let sc = smartconnect();
    let overall = soc.plus(mig).plus(sc).plus(board_glue());
    vec![
        ReportRow {
            name: "Overall System Set-up (Fig. 4)",
            util: overall,
        },
        ReportRow {
            name: "MIG DDR4",
            util: mig,
        },
        ReportRow {
            name: "AXI SmartConnect",
            util: sc,
        },
        ReportRow {
            name: "Our SoC (Fig. 2)",
            util: soc,
        },
        ReportRow {
            name: "nv_small NVDLA",
            util: dla,
        },
        ReportRow {
            name: "uRISC_V core",
            util: core,
        },
        ReportRow {
            name: "Program Memory",
            util: pmem,
        },
    ]
}

/// Whether a design fits the ZCU102 (the paper's `nv_full` finding:
/// "the LUTs overutilization was quite substantial").
#[must_use]
pub fn fits_zcu102(u: &Utilization) -> bool {
    u.lut <= ZCU102.lut && u.regs <= ZCU102.regs && u.bram <= ZCU102.bram && u.dsp <= ZCU102.dsp
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table I values for the components we model analytically.
    #[test]
    fn nv_small_row_matches_paper_within_tolerance() {
        let u = nvdla(&HwConfig::nv_small());
        let expect = Utilization {
            lut: 74_575,
            regs: 79_567,
            carry8: 1_569,
            f7_mux: 3_091,
            f8_mux: 1_048,
            clb: 15_734,
            bram: 66,
            dsp: 32,
        };
        let close = |got: u64, want: u64, pct: u64| {
            let tol = want * pct / 100 + 1;
            got.abs_diff(want) <= tol
        };
        assert!(
            close(u.lut, expect.lut, 2),
            "lut {} vs {}",
            u.lut,
            expect.lut
        );
        assert!(
            close(u.regs, expect.regs, 2),
            "regs {} vs {}",
            u.regs,
            expect.regs
        );
        assert_eq!(u.bram, expect.bram);
        assert_eq!(u.dsp, expect.dsp);
        assert!(close(u.carry8, expect.carry8, 10));
        assert!(close(u.f7_mux, expect.f7_mux, 10));
        assert!(close(u.f8_mux, expect.f8_mux, 10));
        assert!(close(u.clb, expect.clb, 15));
    }

    #[test]
    fn soc_row_sums_to_paper_magnitude() {
        let rows = table1(&HwConfig::nv_small(), 928 << 10);
        let soc = &rows[3];
        assert_eq!(soc.name, "Our SoC (Fig. 2)");
        // Paper: 81 986 LUTs, 83 659 regs, 298 BRAM, 36 DSP.
        assert!(
            soc.util.lut.abs_diff(81_986) < 2_000,
            "lut {}",
            soc.util.lut
        );
        assert!(soc.util.dsp == 36);
        assert!(soc.util.bram.abs_diff(298) <= 4, "bram {}", soc.util.bram);
    }

    #[test]
    fn overall_setup_fits_zcu102() {
        let rows = table1(&HwConfig::nv_small(), 928 << 10);
        assert!(fits_zcu102(&rows[0].util));
        // Paper: 96 733 LUTs overall.
        assert!(rows[0].util.lut.abs_diff(96_733) < 2_500);
    }

    #[test]
    fn nv_full_does_not_fit() {
        let u = nvdla(&HwConfig::nv_full());
        assert!(!fits_zcu102(&u));
        assert!(
            u.lut > ZCU102.lut * 2,
            "nv_full LUT overutilization is substantial: {}",
            u.lut
        );
    }

    #[test]
    fn program_memory_brams_scale() {
        assert_eq!(program_memory(928 << 10).bram, 232);
        assert_eq!(program_memory(4096).bram, 1);
        assert_eq!(program_memory(1).bram, 1);
    }

    #[test]
    fn utilization_sum_is_componentwise() {
        let a = urisc_v();
        let b = smartconnect();
        let s = a.plus(b);
        assert_eq!(s.lut, a.lut + b.lut);
        assert_eq!(s.clb, a.clb + b.clb);
    }
}
