//! Multi-model resident batch scheduling (the edge-server workload).
//!
//! The paper's toolflow serves one compiled network per SoC; an edge
//! server juggles several. This module keeps **N models resident in one
//! DRAM simultaneously** — each compiled at its own base so the
//! footprints are disjoint ([`layout_models`]) — and drains a frame
//! queue tagged by model across them on a single SoC, every frame warm:
//! an in-place fabric reset plus an input reload, never a recompile or
//! a weight restream. Switching models between frames costs nothing
//! beyond the reset, which is what makes interleaved (round-robin)
//! service practical.
//!
//! Three drain policies:
//!
//! * [`Policy::RoundRobin`] — rotate across models with pending frames;
//!   the fair interleaving an online server uses, and the worst case
//!   for any cross-model cache the simulator might (incorrectly) keep.
//! * [`Policy::ShortestQueueFirst`] — always serve the model with the
//!   fewest pending frames, draining stragglers early; batches same-
//!   model frames back to back once queues diverge.
//! * [`Policy::EarliestFinish`] — serve the frame with the earliest
//!   estimated completion given the pipeline state; meaningful only
//!   under overlapped preload (see below), where it trades fairness for
//!   throughput.
//!
//! Two execution models share those policies:
//!
//! * [`BatchScheduler`] — **serial** frames: every frame replays from a
//!   full in-place reset, so modeled *compute* cycles are
//!   policy-independent and bit-identical to cold runs (a property
//!   `tests/batch.rs` pins); only the service order changes. Each
//!   frame's reported latency adds the quiet input-preload cost
//!   ([`crate::soc::Soc::input_preload_cycles`]) it pays on its
//!   critical path.
//! * [`PipelinedScheduler`] — **pipelined** frames: while frame N
//!   computes, the Zynq PS streams frame N+1's input into the other
//!   half of a double-buffered slot pair through the SmartConnect, and
//!   the preload chunks contend with frame N's DMA traffic at the DRAM
//!   arbiter. Output bytes stay bit-identical to serial; modeled cycles
//!   become genuinely **policy-dependent**, because the contention each
//!   frame suffers depends on which frame is preloaded behind it. See
//!   `docs/SCHEDULING.md` for the cycle timeline.
//!
//! Both report per-model cycles, per-frame service latency, arbiter
//! contention and end-to-end throughput in a [`BatchReport`].
//!
//! For host-side scale-out, [`run_parallel`] (and its pipelined twin
//! [`run_parallel_pipelined`]) shards a frame stream across worker
//! threads via [`crate::sweep::fan_out`], one SoC replica (with all
//! models resident) per worker.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use rvnv_compiler::codegen::CodegenOptions;
use rvnv_compiler::{ArtifactCache, Artifacts, CompileError, CompileOptions};
use rvnv_nn::graph::Network;
use rvnv_nn::Tensor;
use rvnv_obs::{MetricsRegistry, SpanKind, SpanRef, Tracer, TrackId, TrackKind};

use crate::firmware::Firmware;
use crate::soc::{InferenceResult, Soc, SocConfig, SocError};
use crate::sweep::fan_out;

/// Base alignment of each model's DRAM footprint when laying models
/// out side by side: every footprint starts on a boundary two DRAM
/// rows wide, so one model's trailing bytes can never share an open
/// row with the next model's leading weights. Footprints may touch
/// exactly (a model ending on a boundary leaves no hole) — disjoint,
/// not gapped.
pub const MODEL_BASE_ALIGN: u32 = 4096;

/// Compile every network so the models' DRAM footprints are pairwise
/// disjoint: each model's allocator starts at the next
/// [`MODEL_BASE_ALIGN`] boundary at or past the previous model's
/// high-water mark. The resulting artifacts can all be
/// [`Soc::load_artifacts`]-pinned on one SoC.
///
/// Goes through `cache`, so a sweep or server that lays the same model
/// set out repeatedly compiles each `(model, base)` pair once.
///
/// # Errors
///
/// Returns [`CompileError`] when a model fails to compile or the set
/// does not fit in `base_options.dram_bytes`.
pub fn layout_models(
    cache: &ArtifactCache,
    nets: &[Network],
    base_options: &CompileOptions,
) -> Result<Vec<Arc<Artifacts>>, CompileError> {
    let mut base = base_options.dram_base;
    let mut out = Vec::with_capacity(nets.len());
    for net in nets {
        let opt = base_options.clone().at_dram_base(base);
        let artifacts = cache.get_or_compile(net, &opt)?;
        base = artifacts
            .dram_used
            .div_ceil(MODEL_BASE_ALIGN)
            .saturating_mul(MODEL_BASE_ALIGN);
        out.push(artifacts);
    }
    Ok(out)
}

/// Frame drain order across the resident models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Rotate across models with pending frames (fair interleaving).
    RoundRobin,
    /// Serve the model with the fewest pending frames first.
    ShortestQueueFirst,
    /// Serve the frame with the earliest estimated completion given the
    /// pipeline state: estimated preload (as far as it cannot hide
    /// under the current frame's estimated compute) plus the model's
    /// last observed compute cycles. Under a serial drain nothing can
    /// hide, so this degenerates to shortest-estimated-job-first; it
    /// earns its keep only under [`PipelinedScheduler`] contention.
    EarliestFinish,
}

impl Policy {
    /// CLI spelling of the policy.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Policy::RoundRobin => "rr",
            Policy::ShortestQueueFirst => "sqf",
            Policy::EarliestFinish => "eff",
        }
    }
}

impl FromStr for Policy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rr" | "round-robin" => Ok(Policy::RoundRobin),
            "sqf" | "shortest-queue-first" => Ok(Policy::ShortestQueueFirst),
            "eff" | "earliest-finish" => Ok(Policy::EarliestFinish),
            other => Err(format!("unknown policy `{other}` (expected rr|sqf|eff)")),
        }
    }
}

/// Batch-scheduling failure.
#[derive(Debug)]
pub enum BatchError {
    /// Pinning a model's weight image failed (footprint overlap, DRAM
    /// exhaustion).
    Load(rvnv_bus::BusError),
    /// Firmware generation failed.
    Firmware(rvnv_riscv::AsmError),
    /// A frame's inference failed.
    Run {
        /// Model the frame was tagged with.
        model: String,
        /// The underlying SoC failure.
        source: SocError,
    },
    /// A frame or queue query referenced a model index never added.
    UnknownModel {
        /// The offending index.
        index: usize,
        /// Number of models registered.
        count: usize,
    },
    /// A [`BatchScheduler::run_sequence`] plan asked for more frames of
    /// a model than its queue holds.
    SequenceOverrun {
        /// The model index whose queue ran dry.
        index: usize,
        /// Frames the sequence demands of that model.
        demanded: usize,
        /// Frames actually queued for it.
        queued: usize,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Load(e) => write!(f, "model load failed: {e}"),
            BatchError::Firmware(e) => write!(f, "firmware generation failed: {e}"),
            BatchError::Run { model, source } => write!(f, "frame on {model} failed: {source}"),
            BatchError::UnknownModel { index, count } => {
                write!(f, "model index {index} out of range ({count} models)")
            }
            BatchError::SequenceOverrun {
                index,
                demanded,
                queued,
            } => {
                write!(
                    f,
                    "sequence demands {demanded} frame(s) of model index {index} \
                     but only {queued} are queued"
                )
            }
        }
    }
}

impl Error for BatchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BatchError::Load(e) => Some(e),
            BatchError::Firmware(e) => Some(e),
            BatchError::Run { source, .. } => Some(source),
            BatchError::UnknownModel { .. } | BatchError::SequenceOverrun { .. } => None,
        }
    }
}

impl From<rvnv_bus::BusError> for BatchError {
    fn from(e: rvnv_bus::BusError) -> Self {
        BatchError::Load(e)
    }
}

impl From<rvnv_riscv::AsmError> for BatchError {
    fn from(e: rvnv_riscv::AsmError) -> Self {
        BatchError::Firmware(e)
    }
}

/// Accumulated per-model statistics of a drained batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Frames served.
    pub frames: u64,
    /// Modeled SoC cycles summed over the model's frames.
    pub cycles: u64,
    /// Instructions retired summed over the model's frames.
    pub instructions: u64,
    /// Cycles the core spent waiting at the DRAM arbiter (contention
    /// with the NVDLA DBB), summed over the model's frames.
    pub arbiter_wait: u64,
    /// NVDLA DMA traffic in bytes, summed over the model's frames.
    pub dma_bytes: u64,
    /// Modeled cycles spent streaming the model's inputs from the Zynq
    /// PS, summed over the model's frames: the quiet preload cost in a
    /// serial drain, the (possibly contended) measured stream time in a
    /// pipelined one — where all but the pipeline fill overlap compute.
    pub preload_cycles: u64,
    /// Modeled end-to-end service latency, summed over the model's
    /// frames (see [`FrameLatency::cycles`] for the definition).
    pub latency_cycles: u64,
}

impl ModelStats {
    /// Modeled cycles per frame (0 when no frame was served).
    #[must_use]
    pub fn cycles_per_frame(&self) -> u64 {
        self.cycles.checked_div(self.frames).unwrap_or(0)
    }

    /// Modeled service latency per frame (0 when no frame was served).
    #[must_use]
    pub fn latency_per_frame(&self) -> u64 {
        self.latency_cycles.checked_div(self.frames).unwrap_or(0)
    }
}

/// One served frame's modeled service latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLatency {
    /// Index of the model the frame hit, as returned by `add_model`.
    pub model: usize,
    /// Completion-to-completion service cycles. In a serial drain this
    /// is the frame's quiet input preload plus its compute; in a
    /// pipelined drain it is the time the frame added to the stream's
    /// makespan — its (contention-stretched) compute, plus whatever
    /// part of its preload the previous frame's compute failed to hide
    /// (the pipeline fill, for the first frame).
    pub cycles: u64,
    /// Whether this frame carried a pipeline fill (the first frame of a
    /// pipelined drain, whose preload nothing could hide). Always
    /// `false` in a serial drain. Merged parallel reports keep one fill
    /// per worker shard, which is why warm-latency statistics filter on
    /// this flag rather than on position.
    pub fill: bool,
}

/// Result of draining a frame queue.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Drain policy used.
    pub policy: Policy,
    /// Whether the drain overlapped preloads ([`PipelinedScheduler`]).
    pub pipelined: bool,
    /// Per-model statistics, indexed like the scheduler's models.
    pub per_model: Vec<(String, ModelStats)>,
    /// Per-frame service latencies in service order (concatenated per
    /// worker shard after a parallel drain).
    pub frame_latencies: Vec<FrameLatency>,
    /// Modeled cycles from the first preload starting to the last
    /// frame's completion — the stream's end-to-end span on one SoC
    /// (summed across worker shards after a parallel drain, keeping the
    /// single-SoC serving semantics of the other totals).
    pub makespan_cycles: u64,
    /// Host wall-clock seconds spent draining.
    pub host_seconds: f64,
}

impl BatchReport {
    /// Total frames served.
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.per_model.iter().map(|(_, s)| s.frames).sum()
    }

    /// Total modeled cycles across all frames.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.per_model.iter().map(|(_, s)| s.cycles).sum()
    }

    /// Total cycles spent waiting at the DRAM arbiter.
    #[must_use]
    pub fn total_arbiter_wait(&self) -> u64 {
        self.per_model.iter().map(|(_, s)| s.arbiter_wait).sum()
    }

    /// Modeled end-to-end throughput in frames per second at `hz`
    /// (frames are served back to back on one SoC).
    #[must_use]
    pub fn modeled_fps(&self, hz: u64) -> f64 {
        if self.total_cycles() == 0 {
            return 0.0;
        }
        self.total_frames() as f64 * hz as f64 / self.total_cycles() as f64
    }

    /// Host-side simulation throughput in frames per second.
    #[must_use]
    pub fn host_fps(&self) -> f64 {
        if self.host_seconds <= 0.0 {
            return 0.0;
        }
        self.total_frames() as f64 / self.host_seconds
    }

    /// Modeled end-to-end throughput in frames per second at `hz` over
    /// the full stream span ([`BatchReport::makespan_cycles`] — preload
    /// included, unlike [`BatchReport::modeled_fps`] which counts
    /// compute cycles only).
    #[must_use]
    pub fn e2e_fps(&self, hz: u64) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.total_frames() as f64 * hz as f64 / self.makespan_cycles as f64
    }

    /// Mean modeled service latency per frame, in cycles (0 when no
    /// frame was served).
    #[must_use]
    pub fn mean_frame_latency(&self) -> u64 {
        let n = self.frame_latencies.len() as u64;
        if n == 0 {
            return 0;
        }
        self.frame_latencies.iter().map(|f| f.cycles).sum::<u64>() / n
    }

    /// Mean modeled service latency of the **warm** frames — every
    /// frame that did not carry a pipeline fill
    /// ([`FrameLatency::fill`]; one per worker shard in a merged
    /// parallel report). Falls back to
    /// [`BatchReport::mean_frame_latency`] when every frame was a fill.
    #[must_use]
    pub fn warm_frame_latency(&self) -> u64 {
        let warm: Vec<u64> = self
            .frame_latencies
            .iter()
            .filter(|f| !f.fill)
            .map(|f| f.cycles)
            .collect();
        if warm.is_empty() {
            return self.mean_frame_latency();
        }
        warm.iter().sum::<u64>() / warm.len() as u64
    }

    /// Publish this report into a [`MetricsRegistry`] under the
    /// `batch.*` namespace: stream totals plus one observation per
    /// frame in the `batch.frame_cycles` histogram.
    pub fn publish(&self, metrics: &MetricsRegistry) {
        metrics.counter("batch.frames", self.total_frames());
        metrics.counter("batch.cycles", self.total_cycles());
        metrics.counter("batch.arbiter_wait_cycles", self.total_arbiter_wait());
        metrics.counter("batch.makespan_cycles", self.makespan_cycles);
        for frame in &self.frame_latencies {
            metrics.histogram("batch.frame_cycles", frame.cycles);
        }
    }

    /// Merge `other` into `self` (used to combine per-worker shards of
    /// a [`run_parallel`] drain). Panics if the model lists differ.
    fn merge(&mut self, other: &BatchReport) {
        assert_eq!(self.per_model.len(), other.per_model.len(), "model sets");
        assert_eq!(self.pipelined, other.pipelined, "execution model");
        for ((name_a, a), (name_b, b)) in self.per_model.iter_mut().zip(&other.per_model) {
            assert_eq!(name_a, name_b, "model order");
            a.frames += b.frames;
            a.cycles += b.cycles;
            a.instructions += b.instructions;
            a.arbiter_wait += b.arbiter_wait;
            a.dma_bytes += b.dma_bytes;
            a.preload_cycles += b.preload_cycles;
            a.latency_cycles += b.latency_cycles;
        }
        self.frame_latencies
            .extend_from_slice(&other.frame_latencies);
        self.makespan_cycles += other.makespan_cycles;
        self.host_seconds = self.host_seconds.max(other.host_seconds);
    }
}

/// One resident model: its artifacts, prebuilt firmware, and queue of
/// quantized input frames.
struct ModelSlot {
    artifacts: Arc<Artifacts>,
    fw: Firmware,
    queue: VecDeque<Vec<u8>>,
    stats: ModelStats,
    /// Quiet-fabric cycles to stream one input image (the serial
    /// preload cost, and the [`Policy::EarliestFinish`] estimate).
    preload_cycles: u64,
    /// Last observed compute cycles per frame (0 until served once);
    /// the [`Policy::EarliestFinish`] compute estimate.
    est_cycles: u64,
}

/// Drains a tagged frame queue across several models resident on one
/// SoC. See the [module docs](self) for the serving model.
pub struct BatchScheduler {
    soc: Soc,
    policy: Policy,
    models: Vec<ModelSlot>,
    /// Next model index the round-robin rotation considers.
    cursor: usize,
    /// Span sink (disarmed by default: one branch per emission site).
    tracer: Tracer,
    /// The sync track this scheduler's drain spans land on.
    track: TrackId,
}

impl BatchScheduler {
    /// A scheduler over a freshly built SoC.
    #[must_use]
    pub fn new(config: SocConfig, policy: Policy) -> Self {
        BatchScheduler {
            soc: Soc::new(config),
            policy,
            models: Vec::new(),
            cursor: 0,
            tracer: Tracer::disarmed(),
            track: TrackId::NONE,
        }
    }

    /// Emit this scheduler's drain spans into `tracer` on `track`:
    /// per-frame `preload`/`compute` spans on the drain's modeled clock
    /// (each drain restarts at cycle 0). Arming never changes a modeled
    /// cycle or output byte — spans only record values the drain
    /// computed anyway.
    pub fn set_tracer(&mut self, tracer: Tracer, track: TrackId) {
        self.tracer = tracer;
        self.track = track;
    }

    /// Register a model: build its firmware and pin its weight image
    /// alongside the models already resident. Returns the model's index
    /// for tagging frames.
    ///
    /// # Errors
    ///
    /// [`BatchError::Load`] when the model's DRAM footprint overlaps an
    /// already-registered model's (lay the set out with
    /// [`layout_models`]), [`BatchError::Firmware`] when codegen fails.
    pub fn add_model(
        &mut self,
        artifacts: Arc<Artifacts>,
        codegen: CodegenOptions,
    ) -> Result<usize, BatchError> {
        let fw = Firmware::build_with(&artifacts, codegen)?;
        self.soc.load_artifacts(&artifacts)?;
        let preload_cycles = self
            .soc
            .input_preload_cycles(artifacts.input_addr, artifacts.input_len);
        self.models.push(ModelSlot {
            artifacts,
            fw,
            queue: VecDeque::new(),
            stats: ModelStats::default(),
            preload_cycles,
            est_cycles: 0,
        });
        Ok(self.models.len() - 1)
    }

    /// Queue one frame for `model`, quantizing the input.
    ///
    /// # Errors
    ///
    /// [`BatchError::UnknownModel`] for an index [`add_model`](Self::add_model)
    /// never returned.
    pub fn enqueue(&mut self, model: usize, input: &Tensor) -> Result<(), BatchError> {
        let slot = self.models.get(model).ok_or(BatchError::UnknownModel {
            index: model,
            count: self.models.len(),
        })?;
        let bytes = slot.artifacts.quantize_input(input);
        self.enqueue_bytes(model, bytes)
    }

    /// Queue one pre-quantized frame for `model`.
    ///
    /// # Errors
    ///
    /// [`BatchError::UnknownModel`] for an out-of-range index.
    pub fn enqueue_bytes(&mut self, model: usize, bytes: Vec<u8>) -> Result<(), BatchError> {
        let count = self.models.len();
        let slot = self.models.get_mut(model).ok_or(BatchError::UnknownModel {
            index: model,
            count,
        })?;
        slot.queue.push_back(bytes);
        Ok(())
    }

    /// Frames still queued across all models.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.models.iter().map(|m| m.queue.len()).sum()
    }

    /// Number of registered models.
    #[must_use]
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// The underlying SoC (e.g. to inspect residency).
    #[must_use]
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// Pick the model to serve next, per policy. `None` when idle.
    /// `current` is the frame about to compute while the picked frame
    /// preloads (pipelined drains); a serial drain passes `None`, so
    /// nothing can hide and [`Policy::EarliestFinish`] degenerates to
    /// shortest-estimated-job-first.
    fn next_model_with(&mut self, current: Option<usize>) -> Option<usize> {
        match self.policy {
            Policy::RoundRobin => {
                let n = self.models.len();
                let pick = (0..n)
                    .map(|off| (self.cursor + off) % n)
                    .find(|&i| !self.models[i].queue.is_empty())?;
                self.cursor = (pick + 1) % n;
                Some(pick)
            }
            Policy::ShortestQueueFirst => self
                .models
                .iter()
                .enumerate()
                .filter(|(_, m)| !m.queue.is_empty())
                .min_by_key(|(i, m)| (m.queue.len(), *i))
                .map(|(i, _)| i),
            Policy::EarliestFinish => {
                // Estimated completion: the picked frame's preload runs
                // under the current frame's compute (what overlap can
                // hide, hides), then its own compute follows.
                let hide = current.map_or(0, |i| self.models[i].est_cycles);
                self.models
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| !m.queue.is_empty())
                    .min_by_key(|(i, m)| (m.preload_cycles.max(hide) + m.est_cycles, *i))
                    .map(|(i, _)| i)
            }
        }
    }

    /// [`BatchScheduler::next_model_with`] for the serial drain.
    fn next_model(&mut self) -> Option<usize> {
        self.next_model_with(None)
    }

    /// Zero the per-drain statistics (every drain reports only the
    /// frames it serves).
    fn reset_run_state(&mut self) {
        for m in &mut self.models {
            m.stats = ModelStats::default();
            m.est_cycles = 0;
        }
    }

    /// Collect the drained statistics into a [`BatchReport`].
    fn report(
        &mut self,
        pipelined: bool,
        frame_latencies: Vec<FrameLatency>,
        makespan_cycles: u64,
        start: Instant,
    ) -> BatchReport {
        let per_model = self
            .models
            .iter_mut()
            .map(|m| (m.artifacts.model.clone(), std::mem::take(&mut m.stats)))
            .collect();
        BatchReport {
            policy: self.policy,
            pipelined,
            per_model,
            frame_latencies,
            makespan_cycles,
            host_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Check that `seq` fits the registered models and their queues
    /// (every model index in range, no queue asked for more frames than
    /// it holds), so a sequence drain can never panic mid-stream.
    fn validate_sequence(&self, seq: &[usize]) -> Result<(), BatchError> {
        let mut demanded = vec![0usize; self.models.len()];
        for &i in seq {
            let slot = demanded.get_mut(i).ok_or(BatchError::UnknownModel {
                index: i,
                count: self.models.len(),
            })?;
            *slot += 1;
        }
        for (i, &d) in demanded.iter().enumerate() {
            let queued = self.models[i].queue.len();
            if d > queued {
                return Err(BatchError::SequenceOverrun {
                    index: i,
                    demanded: d,
                    queued,
                });
            }
        }
        Ok(())
    }

    /// Serve the head frame of model `i` serially (full in-place reset,
    /// quiet input preload, compute), updating the model's statistics —
    /// the shared step of [`run_with`](Self::run_with) and
    /// [`run_sequence`](Self::run_sequence).
    fn serve_one(
        &mut self,
        i: usize,
        makespan: &mut u64,
        frame_latencies: &mut Vec<FrameLatency>,
        on_frame: &mut impl FnMut(usize, &InferenceResult),
    ) -> Result<(), BatchError> {
        let slot = &mut self.models[i];
        let bytes = slot.queue.pop_front().expect("picked model has a frame");
        let result = self
            .soc
            .run_firmware(&slot.artifacts, &bytes, &slot.fw)
            .map_err(|source| BatchError::Run {
                model: slot.artifacts.model.clone(),
                source,
            })?;
        // A serial frame's service latency: stream the input (quiet
        // fabric — nothing else runs), then compute.
        let latency = slot.preload_cycles + result.cycles;
        slot.stats.frames += 1;
        slot.stats.cycles += result.cycles;
        slot.stats.instructions += result.instructions;
        slot.stats.arbiter_wait += result.cpu_arbiter_wait;
        slot.stats.dma_bytes += result.nvdla.total_dma_bytes();
        slot.stats.preload_cycles += slot.preload_cycles;
        slot.stats.latency_cycles += latency;
        slot.est_cycles = result.cycles;
        frame_latencies.push(FrameLatency {
            model: i,
            cycles: latency,
            fill: false,
        });
        if self.tracer.is_armed() {
            // The serial drain clock is the running makespan: this
            // frame occupied [makespan, makespan + latency].
            let name = &self.models[i].artifacts.model;
            let pre = self.models[i].preload_cycles;
            let t0 = *makespan;
            self.tracer
                .span(self.track, SpanKind::Preload, t0, t0 + pre, name);
            self.tracer
                .span(self.track, SpanKind::Compute, t0 + pre, t0 + latency, name);
        }
        *makespan += latency;
        on_frame(i, &result);
        Ok(())
    }

    /// Drain every queued frame, invoking `on_frame(model, result)`
    /// after each inference (tests and benches use the hook to check
    /// bit-identity against cold single-model runs).
    ///
    /// # Errors
    ///
    /// [`BatchError::Run`] on the first failing frame; the failed
    /// drain's earlier frames are not reported (each drain's statistics
    /// start from zero, so a retry counts only the frames it serves).
    pub fn run_with(
        &mut self,
        mut on_frame: impl FnMut(usize, &InferenceResult),
    ) -> Result<BatchReport, BatchError> {
        let start = Instant::now();
        self.reset_run_state();
        let mut frame_latencies = Vec::new();
        let mut makespan = 0u64;
        while let Some(i) = self.next_model() {
            self.serve_one(i, &mut makespan, &mut frame_latencies, &mut on_frame)?;
        }
        Ok(self.report(false, frame_latencies, makespan, start))
    }

    /// Serve frames in an externally chosen model order, bypassing the
    /// policy: entry `k` of `seq` pops the head of model `seq[k]`'s
    /// queue. Frames not named by `seq` stay queued. This is the
    /// dispatch primitive of the serving layer ([`crate::serve`]),
    /// whose admission simulation decides the order and then replays it
    /// on a real worker SoC.
    ///
    /// ```
    /// use rvnv_compiler::codegen::CodegenOptions;
    /// use rvnv_compiler::{compile, CompileOptions};
    /// use rvnv_nn::{zoo, Tensor};
    /// use rvnv_soc::batch::{BatchScheduler, Policy};
    /// use rvnv_soc::soc::SocConfig;
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let net = zoo::lenet5(1);
    /// let mut opt = CompileOptions::int8();
    /// opt.calib_inputs = 1;
    /// let artifacts = Arc::new(compile(&net, &opt)?);
    /// let mut sched =
    ///     BatchScheduler::new(SocConfig::zcu102_timing_only(), Policy::RoundRobin);
    /// let model = sched.add_model(artifacts, CodegenOptions::default())?;
    /// for seed in 0..3 {
    ///     sched.enqueue(model, &Tensor::random(net.input_shape(), seed))?;
    /// }
    /// // Serve only the first two queued frames, in plan order.
    /// let report = sched.run_sequence(&[model, model])?;
    /// assert_eq!(report.total_frames(), 2);
    /// assert_eq!(sched.pending(), 1);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`BatchError::UnknownModel`] / [`BatchError::SequenceOverrun`]
    /// when `seq` does not fit the queues (checked up front, before any
    /// frame runs), [`BatchError::Run`] on the first failing frame.
    pub fn run_sequence(&mut self, seq: &[usize]) -> Result<BatchReport, BatchError> {
        self.validate_sequence(seq)?;
        let start = Instant::now();
        self.reset_run_state();
        let mut frame_latencies = Vec::new();
        let mut makespan = 0u64;
        for &i in seq {
            self.serve_one(i, &mut makespan, &mut frame_latencies, &mut |_, _| {})?;
        }
        Ok(self.report(false, frame_latencies, makespan, start))
    }

    /// Drain every queued frame. See [`run_with`](Self::run_with).
    ///
    /// ```
    /// use rvnv_compiler::codegen::CodegenOptions;
    /// use rvnv_compiler::{compile, CompileOptions};
    /// use rvnv_nn::{zoo, Tensor};
    /// use rvnv_soc::batch::{BatchScheduler, Policy};
    /// use rvnv_soc::soc::SocConfig;
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let net = zoo::lenet5(1);
    /// let mut opt = CompileOptions::int8();
    /// opt.calib_inputs = 1;
    /// let artifacts = Arc::new(compile(&net, &opt)?);
    ///
    /// let mut sched =
    ///     BatchScheduler::new(SocConfig::zcu102_timing_only(), Policy::RoundRobin);
    /// let model = sched.add_model(artifacts, CodegenOptions::default())?;
    /// sched.enqueue(model, &Tensor::random(net.input_shape(), 7))?;
    /// sched.enqueue(model, &Tensor::random(net.input_shape(), 8))?;
    ///
    /// let report = sched.run()?;
    /// assert_eq!(report.total_frames(), 2);
    /// // Serial frames replay from a full reset: compute cycles are
    /// // policy-independent, and each frame's latency adds its quiet
    /// // input-preload cost on top.
    /// assert!(report.mean_frame_latency() > report.total_cycles() / 2);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`BatchError::Run`] on the first failing frame.
    pub fn run(&mut self) -> Result<BatchReport, BatchError> {
        self.run_with(|_, _| {})
    }
}

/// A frame awaiting service: which model, and the quantized input.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Index into the model list.
    pub model: usize,
    /// Pre-quantized input bytes.
    pub bytes: Vec<u8>,
}

/// Drain `frames` across `threads` SoC replicas, each with every model
/// in `models` resident, sharding the stream round-robin (frame `i` to
/// worker `i % threads`) and merging the per-worker reports. Modeled
/// cycles are shard-independent — each frame is a full in-place reset —
/// so the merged totals equal a single-SoC drain of the same frames;
/// only host wall-clock changes with the fan-out.
///
/// ```
/// use rvnv_compiler::codegen::CodegenOptions;
/// use rvnv_compiler::{ArtifactCache, CompileOptions};
/// use rvnv_nn::{zoo, Tensor};
/// use rvnv_soc::batch::{layout_models, run_parallel, Frame, Policy};
/// use rvnv_soc::soc::SocConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = zoo::lenet5(1);
/// let mut opt = CompileOptions::int8();
/// opt.calib_inputs = 1;
/// let cache = ArtifactCache::new();
/// let models = layout_models(&cache, &[net.clone()], &opt)?;
/// let frames: Vec<Frame> = (0..2)
///     .map(|i| Frame {
///         model: 0,
///         bytes: models[0].quantize_input(&Tensor::random(net.input_shape(), i)),
///     })
///     .collect();
///
/// let report = run_parallel(
///     &SocConfig::zcu102_timing_only(),
///     Policy::RoundRobin,
///     &models,
///     CodegenOptions::default(),
///     &frames,
///     2,
/// )?;
/// assert_eq!(report.total_frames(), 2);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// The first worker error, in worker order.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated by [`fan_out`]).
pub fn run_parallel(
    config: &SocConfig,
    policy: Policy,
    models: &[Arc<Artifacts>],
    codegen: CodegenOptions,
    frames: &[Frame],
    threads: usize,
) -> Result<BatchReport, BatchError> {
    run_parallel_traced(
        config,
        policy,
        models,
        codegen,
        frames,
        threads,
        &Tracer::disarmed(),
    )
}

/// [`run_parallel`], emitting spans into `tracer`: each worker shard
/// drains on its own "batch worker N" sync track (per-frame
/// `preload`/`compute` spans on the shard's modeled clock). Arming the
/// tracer never changes a modeled cycle or output byte.
///
/// # Errors
///
/// The first worker error, in worker order.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated by [`fan_out`]).
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_traced(
    config: &SocConfig,
    policy: Policy,
    models: &[Arc<Artifacts>],
    codegen: CodegenOptions,
    frames: &[Frame],
    threads: usize,
    tracer: &Tracer,
) -> Result<BatchReport, BatchError> {
    let threads = threads.clamp(1, frames.len().max(1));
    let mut shards = fan_out(threads, threads, |w| -> Result<BatchReport, BatchError> {
        let mut sched = BatchScheduler::new(config.clone(), policy);
        if tracer.is_armed() {
            let track = tracer.track(&format!("batch worker {w}"), TrackKind::Sync);
            sched.set_tracer(tracer.clone(), track);
        }
        for artifacts in models {
            sched.add_model(artifacts.clone(), codegen)?;
        }
        for frame in frames.iter().skip(w).step_by(threads) {
            sched.enqueue_bytes(frame.model, frame.bytes.clone())?;
        }
        sched.run()
    })
    .into_iter();
    let mut merged = shards.next().expect("at least one worker")?;
    for shard in shards {
        merged.merge(&shard?);
    }
    Ok(merged)
}

/// The double-buffered input layout for a pipelined drain over
/// `models` (laid out by [`layout_models`]): two [`MODEL_BASE_ALIGN`]ed
/// staging slots past every model's footprint, each large enough for
/// the largest input image. Returns the two slot base addresses and the
/// slot capacity in bytes.
///
/// While frame N computes reading its input from slot `N % 2` (flipped
/// to the model's input buffer at frame start), the Zynq PS streams
/// frame N+1's input into slot `(N+1) % 2` — never into DRAM the
/// models own, so an in-flight preload can't clobber weights or the
/// computing frame's data.
///
/// ```
/// use rvnv_compiler::{ArtifactCache, CompileOptions};
/// use rvnv_nn::zoo;
/// use rvnv_soc::batch::{input_slots, layout_models};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut opt = CompileOptions::int8();
/// opt.calib_inputs = 1;
/// let cache = ArtifactCache::new();
/// let models = layout_models(&cache, &[zoo::lenet5(1), zoo::lenet5(2)], &opt)?;
///
/// let (slots, len) = input_slots(&models);
/// // Slot 0 past every model footprint, slot 1 past slot 0 — both
/// // disjoint from the resident weight images.
/// let high = models.iter().map(|a| a.dram_used).max().unwrap();
/// assert!(slots[0] >= high);
/// assert!(u64::from(slots[1]) >= u64::from(slots[0]) + len as u64);
/// // Either slot fits the largest model's input image.
/// assert_eq!(len, models.iter().map(|a| a.input_len).max().unwrap());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn input_slots(models: &[Arc<Artifacts>]) -> ([u32; 2], usize) {
    // u64 arithmetic throughout: a footprint near the top of the 4 GB
    // address space must saturate (and then fail the scheduler's
    // bounds check) rather than wrap a slot down into the models' DRAM.
    let align = u64::from(MODEL_BASE_ALIGN);
    let high = models
        .iter()
        .map(|a| u64::from(a.dram_used))
        .max()
        .unwrap_or(0);
    let base = high.div_ceil(align) * align;
    let len = models.iter().map(|a| a.input_len).max().unwrap_or(0);
    let stride = (len as u64).div_ceil(align).max(1) * align;
    let cap = u64::from(u32::MAX);
    ([base.min(cap) as u32, (base + stride).min(cap) as u32], len)
}

/// Drains a tagged frame queue with **overlapped preload**: while frame
/// N computes on the NVDLA, the Zynq PS streams frame N+1's input into
/// the other half of a double-buffered slot pair ([`input_slots`])
/// through the SmartConnect, chunk by chunk, contending with frame N's
/// DMA traffic at the DRAM arbiter. Between frames the fabric takes a
/// **scoped** reset that clears the previous frame's input/activation
/// extents while keeping both the resident weight images and the
/// in-flight preload intact.
///
/// Output bytes are bit-identical to a serial [`BatchScheduler`] drain
/// of the same frames (the overlap moves cycles, never data), but
/// modeled cycles become policy-dependent: each frame's contention
/// depends on which frame preloads behind it, so [`Policy`] choices
/// genuinely trade per-frame latency against stream makespan. See the
/// [module docs](self) and `docs/SCHEDULING.md`.
pub struct PipelinedScheduler {
    inner: BatchScheduler,
}

impl PipelinedScheduler {
    /// A pipelined scheduler over a freshly built SoC.
    #[must_use]
    pub fn new(config: SocConfig, policy: Policy) -> Self {
        PipelinedScheduler {
            inner: BatchScheduler::new(config, policy),
        }
    }

    /// Register a model. See [`BatchScheduler::add_model`].
    ///
    /// # Errors
    ///
    /// [`BatchError::Load`] on footprint overlap,
    /// [`BatchError::Firmware`] when codegen fails.
    pub fn add_model(
        &mut self,
        artifacts: Arc<Artifacts>,
        codegen: CodegenOptions,
    ) -> Result<usize, BatchError> {
        self.inner.add_model(artifacts, codegen)
    }

    /// Emit drain spans into `tracer` on `track`: one `drain` parent
    /// per burst with `ps_burst`/`compute` child spans. See
    /// [`BatchScheduler::set_tracer`].
    pub fn set_tracer(&mut self, tracer: Tracer, track: TrackId) {
        self.inner.set_tracer(tracer, track);
    }

    /// Queue one frame for `model`, quantizing the input.
    ///
    /// # Errors
    ///
    /// [`BatchError::UnknownModel`] for an out-of-range index.
    pub fn enqueue(&mut self, model: usize, input: &Tensor) -> Result<(), BatchError> {
        self.inner.enqueue(model, input)
    }

    /// Queue one pre-quantized frame for `model`.
    ///
    /// # Errors
    ///
    /// [`BatchError::UnknownModel`] for an out-of-range index.
    pub fn enqueue_bytes(&mut self, model: usize, bytes: Vec<u8>) -> Result<(), BatchError> {
        self.inner.enqueue_bytes(model, bytes)
    }

    /// Frames still queued across all models.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.inner.pending()
    }

    /// Number of registered models.
    #[must_use]
    pub fn model_count(&self) -> usize {
        self.inner.model_count()
    }

    /// The underlying SoC (e.g. to inspect residency).
    #[must_use]
    pub fn soc(&self) -> &Soc {
        self.inner.soc()
    }

    /// The double-buffer staging layout the drain will use.
    ///
    /// # Errors
    ///
    /// [`BatchError::Load`] when the slots do not fit in DRAM.
    fn staging(&self) -> Result<([u32; 2], usize), BatchError> {
        let models: Vec<Arc<Artifacts>> = self
            .inner
            .models
            .iter()
            .map(|m| m.artifacts.clone())
            .collect();
        let (slots, len) = input_slots(&models);
        let high = models
            .iter()
            .map(|a| u64::from(a.dram_used))
            .max()
            .unwrap_or(0);
        let dram = self.inner.soc.config().dram_bytes as u64;
        // Strict layout invariants, robust against the saturated-slot
        // case: slot 0 past every footprint, slot 1 past slot 0, both
        // inside the device.
        let ok = u64::from(slots[0]) >= high
            && u64::from(slots[1]) >= u64::from(slots[0]) + len as u64
            && u64::from(slots[1]) + len as u64 <= dram;
        if !ok {
            return Err(BatchError::Load(rvnv_bus::BusError::OutOfRange {
                addr: slots[1],
                len,
                size: self.inner.soc.config().dram_bytes,
            }));
        }
        Ok((slots, len))
    }

    /// Drain every queued frame with overlapped preload, invoking
    /// `on_frame(model, result)` after each inference (tests and
    /// benches use the hook to check bit-identity against serial
    /// drains).
    ///
    /// The first frame's input streams on a quiet fabric (the pipeline
    /// fill); every later frame's input streams under the previous
    /// frame's compute. A frame's recorded latency is the time it added
    /// to the stream's makespan (completion-to-completion).
    ///
    /// # Errors
    ///
    /// [`BatchError::Run`] on the first failing frame,
    /// [`BatchError::Load`] when the staging slots do not fit in DRAM.
    ///
    /// # Panics
    ///
    /// Panics if a registered model's firmware no longer fits program
    /// memory (impossible through [`add_model`](Self::add_model)).
    pub fn run_with(
        &mut self,
        on_frame: impl FnMut(usize, &InferenceResult),
    ) -> Result<BatchReport, BatchError> {
        self.drain_with(BatchScheduler::next_model_with, on_frame)
    }

    /// The pipelined drain loop, generalized over how the next frame is
    /// chosen: `pick(sched, current)` returns the model whose head
    /// frame preloads behind `current`'s compute (`None` ends the
    /// stream). [`run_with`](Self::run_with) picks by policy;
    /// [`run_sequence`](Self::run_sequence) replays an external plan.
    fn drain_with(
        &mut self,
        mut pick: impl FnMut(&mut BatchScheduler, Option<usize>) -> Option<usize>,
        mut on_frame: impl FnMut(usize, &InferenceResult),
    ) -> Result<BatchReport, BatchError> {
        let start = Instant::now();
        self.inner.reset_run_state();
        let (slots, _) = self.staging()?;
        let sched = &mut self.inner;
        let mut frame_latencies = Vec::new();
        let report = |sched: &mut BatchScheduler, latencies: Vec<FrameLatency>, span: u64| {
            let per_model = sched
                .models
                .iter_mut()
                .map(|m| (m.artifacts.model.clone(), std::mem::take(&mut m.stats)))
                .collect();
            BatchReport {
                policy: sched.policy,
                pipelined: true,
                per_model,
                frame_latencies: latencies,
                makespan_cycles: span,
                host_seconds: start.elapsed().as_secs_f64(),
            }
        };
        let Some(mut cur) = pick(sched, None) else {
            return Ok(report(sched, frame_latencies, 0));
        };
        let first_bytes = sched.models[cur]
            .queue
            .pop_front()
            .expect("picked model has a frame");
        let mut cur_slot = 0usize;
        // Pipeline fill: the first input streams on a quiet, PS-owned
        // fabric — the one preload nothing can hide.
        sched.soc.set_pipelined(true);
        sched.soc.quiesce();
        let fill = sched
            .soc
            .ps_stream(slots[cur_slot], &first_bytes, 0)
            .map_err(BatchError::Load)?;
        drop(first_bytes);
        // The whole burst nests under one `drain` span (closed at the
        // last completion); frame spans are its children.
        let drain_ref = if sched.tracer.is_armed() {
            let d = sched.tracer.begin(sched.track, SpanKind::Drain, 0, "drain");
            sched.tracer.child(
                d,
                sched.track,
                SpanKind::PsBurst,
                0,
                fill,
                &sched.models[cur].artifacts.model,
            );
            d
        } else {
            SpanRef::NONE
        };
        // Global pipeline clock: `t_global` is where the current frame's
        // compute window starts, `pending_preload` the cycles spent
        // streaming the current frame's input (attributed to it).
        let mut pending_preload = fill;
        let mut t_global = fill;
        let mut prev_completion = 0u64;
        let mut carries_fill = true;
        loop {
            let next = pick(sched, Some(cur));
            let next_bytes = next.map(|i| {
                sched.models[i]
                    .queue
                    .pop_front()
                    .expect("picked model has a frame")
            });
            let next_slot = cur_slot ^ 1;
            let out = match sched.soc.run_firmware_staged(
                &sched.models[cur].artifacts,
                slots[cur_slot],
                &sched.models[cur].fw,
                next_bytes.as_deref().map(|b| (slots[next_slot], b)),
            ) {
                Ok(out) => out,
                Err(source) => {
                    // Hand the staged-but-unserved frame back before
                    // reporting, so a retry still sees it queued.
                    if let (Some(i), Some(b)) = (next, next_bytes) {
                        sched.models[i].queue.push_front(b);
                    }
                    return Err(BatchError::Run {
                        model: sched.models[cur].artifacts.model.clone(),
                        source,
                    });
                }
            };
            let result = out.result;
            // The next window opens once this compute *and* the
            // overlapped preload (flushed past `ebreak` if compute was
            // too short to cover it) are both done.
            let window = result.cycles.max(out.preload_done);
            let completion = t_global + result.cycles;
            let latency = completion - prev_completion;
            let stats = &mut sched.models[cur].stats;
            stats.frames += 1;
            stats.cycles += result.cycles;
            stats.instructions += result.instructions;
            stats.arbiter_wait += result.cpu_arbiter_wait;
            stats.dma_bytes += result.nvdla.total_dma_bytes();
            stats.preload_cycles += pending_preload;
            stats.latency_cycles += latency;
            sched.models[cur].est_cycles = result.cycles;
            frame_latencies.push(FrameLatency {
                model: cur,
                cycles: latency,
                fill: carries_fill,
            });
            carries_fill = false;
            prev_completion = completion;
            if sched.tracer.is_armed() {
                sched.tracer.child(
                    drain_ref,
                    sched.track,
                    SpanKind::Compute,
                    t_global,
                    completion,
                    &sched.models[cur].artifacts.model,
                );
                if let Some(i) = next {
                    if window > result.cycles {
                        // The staged successor's input still streaming
                        // after this frame's compute retired.
                        sched.tracer.child(
                            drain_ref,
                            sched.track,
                            SpanKind::PsBurst,
                            completion,
                            t_global + window,
                            &sched.models[i].artifacts.model,
                        );
                    }
                }
            }
            t_global += window;
            on_frame(cur, &result);
            match next {
                Some(i) => {
                    pending_preload = out.preload_done;
                    cur = i;
                    cur_slot = next_slot;
                }
                None => break,
            }
        }
        sched.tracer.end(drain_ref, prev_completion);
        // The stream's span ends at the last frame's completion.
        Ok(report(sched, frame_latencies, prev_completion))
    }

    /// Drain every queued frame with overlapped preload. See
    /// [`run_with`](Self::run_with).
    ///
    /// ```
    /// use rvnv_compiler::codegen::CodegenOptions;
    /// use rvnv_compiler::{compile, CompileOptions};
    /// use rvnv_nn::{zoo, Tensor};
    /// use rvnv_soc::batch::{PipelinedScheduler, Policy};
    /// use rvnv_soc::soc::SocConfig;
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let net = zoo::lenet5(1);
    /// let mut opt = CompileOptions::int8();
    /// opt.calib_inputs = 1;
    /// let artifacts = Arc::new(compile(&net, &opt)?);
    ///
    /// let mut sched =
    ///     PipelinedScheduler::new(SocConfig::zcu102_timing_only(), Policy::RoundRobin);
    /// let model = sched.add_model(artifacts, CodegenOptions::default())?;
    /// sched.enqueue(model, &Tensor::random(net.input_shape(), 7))?;
    /// sched.enqueue(model, &Tensor::random(net.input_shape(), 8))?;
    ///
    /// let report = sched.run()?;
    /// assert_eq!(report.total_frames(), 2);
    /// assert!(report.pipelined);
    /// // Exactly one frame carried the pipeline fill (the first
    /// // preload, which nothing could hide); the other ran warm with
    /// // its input streamed during the fill frame's compute.
    /// let fills = report.frame_latencies.iter().filter(|f| f.fill).count();
    /// assert_eq!(fills, 1);
    /// assert!(report.warm_frame_latency() <= report.mean_frame_latency());
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`BatchError::Run`] on the first failing frame,
    /// [`BatchError::Load`] when the staging slots do not fit in DRAM.
    pub fn run(&mut self) -> Result<BatchReport, BatchError> {
        self.run_with(|_, _| {})
    }

    /// Drain one pipelined **burst** in an externally chosen model
    /// order, bypassing the policy: entry `k` of `seq` pops the head of
    /// model `seq[k]`'s queue, and entry `k+1`'s input streams behind
    /// entry `k`'s compute. Frames not named by `seq` stay queued, so a
    /// serving worker can replay its dispatch plan burst by burst (each
    /// burst paying one pipeline fill — see [`crate::serve`]).
    ///
    /// # Errors
    ///
    /// [`BatchError::UnknownModel`] / [`BatchError::SequenceOverrun`]
    /// when `seq` does not fit the queues (checked up front, before any
    /// frame runs), [`BatchError::Run`] on the first failing frame,
    /// [`BatchError::Load`] when the staging slots do not fit in DRAM.
    pub fn run_sequence(&mut self, seq: &[usize]) -> Result<BatchReport, BatchError> {
        self.inner.validate_sequence(seq)?;
        let mut order = seq.iter().copied();
        self.drain_with(move |_, _| order.next(), |_, _| {})
    }
}

/// [`run_parallel`] with **pipelined** workers: each worker SoC replica
/// drains its shard through a [`PipelinedScheduler`], overlapping every
/// shard-internal preload. Output bytes stay bit-identical to the
/// serial drain; each worker's modeled cycles reflect its own shard's
/// contention, and the merged makespan keeps the single-SoC serving
/// semantics (shards summed).
///
/// # Errors
///
/// The first worker error, in worker order.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated by [`fan_out`]).
pub fn run_parallel_pipelined(
    config: &SocConfig,
    policy: Policy,
    models: &[Arc<Artifacts>],
    codegen: CodegenOptions,
    frames: &[Frame],
    threads: usize,
) -> Result<BatchReport, BatchError> {
    run_parallel_pipelined_traced(
        config,
        policy,
        models,
        codegen,
        frames,
        threads,
        &Tracer::disarmed(),
    )
}

/// [`run_parallel_pipelined`], emitting spans into `tracer`: each
/// worker shard drains on its own "batch worker N" sync track, with one
/// `drain` parent span per drain wrapping the `ps_burst` fill and the
/// per-frame `compute`/`ps_burst` pipeline children. Arming the tracer
/// never changes a modeled cycle or output byte.
///
/// # Errors
///
/// The first worker error, in worker order.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated by [`fan_out`]).
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_pipelined_traced(
    config: &SocConfig,
    policy: Policy,
    models: &[Arc<Artifacts>],
    codegen: CodegenOptions,
    frames: &[Frame],
    threads: usize,
    tracer: &Tracer,
) -> Result<BatchReport, BatchError> {
    let threads = threads.clamp(1, frames.len().max(1));
    let mut shards = fan_out(threads, threads, |w| -> Result<BatchReport, BatchError> {
        let mut sched = PipelinedScheduler::new(config.clone(), policy);
        if tracer.is_armed() {
            let track = tracer.track(&format!("batch worker {w}"), TrackKind::Sync);
            sched.set_tracer(tracer.clone(), track);
        }
        for artifacts in models {
            sched.add_model(artifacts.clone(), codegen)?;
        }
        for frame in frames.iter().skip(w).step_by(threads) {
            sched.enqueue_bytes(frame.model, frame.bytes.clone())?;
        }
        sched.run()
    })
    .into_iter();
    let mut merged = shards.next().expect("at least one worker")?;
    for shard in shards {
        merged.merge(&shard?);
    }
    Ok(merged)
}
