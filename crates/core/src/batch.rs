//! Multi-model resident batch scheduling (the edge-server workload).
//!
//! The paper's toolflow serves one compiled network per SoC; an edge
//! server juggles several. This module keeps **N models resident in one
//! DRAM simultaneously** — each compiled at its own base so the
//! footprints are disjoint ([`layout_models`]) — and drains a frame
//! queue tagged by model across them on a single SoC, every frame warm:
//! an in-place fabric reset plus an input reload, never a recompile or
//! a weight restream. Switching models between frames costs nothing
//! beyond the reset, which is what makes interleaved (round-robin)
//! service practical.
//!
//! Two drain policies:
//!
//! * [`Policy::RoundRobin`] — rotate across models with pending frames;
//!   the fair interleaving an online server uses, and the worst case
//!   for any cross-model cache the simulator might (incorrectly) keep.
//! * [`Policy::ShortestQueueFirst`] — always serve the model with the
//!   fewest pending frames, draining stragglers early; batches same-
//!   model frames back to back once queues diverge.
//!
//! Modeled cycles are policy-independent (every frame is a full reset),
//! so both policies must report identical totals — a property
//! `tests/batch.rs` pins. The scheduler reports per-model cycles,
//! arbiter-contention statistics and end-to-end throughput.
//!
//! For host-side scale-out, [`run_parallel`] shards a frame stream
//! across worker threads via [`crate::sweep::fan_out`], one SoC replica
//! (with all models resident) per worker.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use rvnv_compiler::codegen::CodegenOptions;
use rvnv_compiler::{ArtifactCache, Artifacts, CompileError, CompileOptions};
use rvnv_nn::graph::Network;
use rvnv_nn::Tensor;

use crate::firmware::Firmware;
use crate::soc::{InferenceResult, Soc, SocConfig, SocError};
use crate::sweep::fan_out;

/// Base alignment of each model's DRAM footprint when laying models
/// out side by side: every footprint starts on a boundary two DRAM
/// rows wide, so one model's trailing bytes can never share an open
/// row with the next model's leading weights. Footprints may touch
/// exactly (a model ending on a boundary leaves no hole) — disjoint,
/// not gapped.
pub const MODEL_BASE_ALIGN: u32 = 4096;

/// Compile every network so the models' DRAM footprints are pairwise
/// disjoint: each model's allocator starts at the next
/// [`MODEL_BASE_ALIGN`] boundary at or past the previous model's
/// high-water mark. The resulting artifacts can all be
/// [`Soc::load_artifacts`]-pinned on one SoC.
///
/// Goes through `cache`, so a sweep or server that lays the same model
/// set out repeatedly compiles each `(model, base)` pair once.
///
/// # Errors
///
/// Returns [`CompileError`] when a model fails to compile or the set
/// does not fit in `base_options.dram_bytes`.
pub fn layout_models(
    cache: &ArtifactCache,
    nets: &[Network],
    base_options: &CompileOptions,
) -> Result<Vec<Arc<Artifacts>>, CompileError> {
    let mut base = base_options.dram_base;
    let mut out = Vec::with_capacity(nets.len());
    for net in nets {
        let opt = base_options.clone().at_dram_base(base);
        let artifacts = cache.get_or_compile(net, &opt)?;
        base = artifacts
            .dram_used
            .div_ceil(MODEL_BASE_ALIGN)
            .saturating_mul(MODEL_BASE_ALIGN);
        out.push(artifacts);
    }
    Ok(out)
}

/// Frame drain order across the resident models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Rotate across models with pending frames (fair interleaving).
    RoundRobin,
    /// Serve the model with the fewest pending frames first.
    ShortestQueueFirst,
}

impl Policy {
    /// CLI spelling of the policy.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Policy::RoundRobin => "rr",
            Policy::ShortestQueueFirst => "sqf",
        }
    }
}

impl FromStr for Policy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rr" | "round-robin" => Ok(Policy::RoundRobin),
            "sqf" | "shortest-queue-first" => Ok(Policy::ShortestQueueFirst),
            other => Err(format!("unknown policy `{other}` (expected rr|sqf)")),
        }
    }
}

/// Batch-scheduling failure.
#[derive(Debug)]
pub enum BatchError {
    /// Pinning a model's weight image failed (footprint overlap, DRAM
    /// exhaustion).
    Load(rvnv_bus::BusError),
    /// Firmware generation failed.
    Firmware(rvnv_riscv::AsmError),
    /// A frame's inference failed.
    Run {
        /// Model the frame was tagged with.
        model: String,
        /// The underlying SoC failure.
        source: SocError,
    },
    /// A frame or queue query referenced a model index never added.
    UnknownModel {
        /// The offending index.
        index: usize,
        /// Number of models registered.
        count: usize,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Load(e) => write!(f, "model load failed: {e}"),
            BatchError::Firmware(e) => write!(f, "firmware generation failed: {e}"),
            BatchError::Run { model, source } => write!(f, "frame on {model} failed: {source}"),
            BatchError::UnknownModel { index, count } => {
                write!(f, "model index {index} out of range ({count} models)")
            }
        }
    }
}

impl Error for BatchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BatchError::Load(e) => Some(e),
            BatchError::Firmware(e) => Some(e),
            BatchError::Run { source, .. } => Some(source),
            BatchError::UnknownModel { .. } => None,
        }
    }
}

impl From<rvnv_bus::BusError> for BatchError {
    fn from(e: rvnv_bus::BusError) -> Self {
        BatchError::Load(e)
    }
}

impl From<rvnv_riscv::AsmError> for BatchError {
    fn from(e: rvnv_riscv::AsmError) -> Self {
        BatchError::Firmware(e)
    }
}

/// Accumulated per-model statistics of a drained batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Frames served.
    pub frames: u64,
    /// Modeled SoC cycles summed over the model's frames.
    pub cycles: u64,
    /// Instructions retired summed over the model's frames.
    pub instructions: u64,
    /// Cycles the core spent waiting at the DRAM arbiter (contention
    /// with the NVDLA DBB), summed over the model's frames.
    pub arbiter_wait: u64,
    /// NVDLA DMA traffic in bytes, summed over the model's frames.
    pub dma_bytes: u64,
}

impl ModelStats {
    /// Modeled cycles per frame (0 when no frame was served).
    #[must_use]
    pub fn cycles_per_frame(&self) -> u64 {
        self.cycles.checked_div(self.frames).unwrap_or(0)
    }
}

/// Result of draining a frame queue.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Drain policy used.
    pub policy: Policy,
    /// Per-model statistics, indexed like the scheduler's models.
    pub per_model: Vec<(String, ModelStats)>,
    /// Host wall-clock seconds spent draining.
    pub host_seconds: f64,
}

impl BatchReport {
    /// Total frames served.
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.per_model.iter().map(|(_, s)| s.frames).sum()
    }

    /// Total modeled cycles across all frames.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.per_model.iter().map(|(_, s)| s.cycles).sum()
    }

    /// Total cycles spent waiting at the DRAM arbiter.
    #[must_use]
    pub fn total_arbiter_wait(&self) -> u64 {
        self.per_model.iter().map(|(_, s)| s.arbiter_wait).sum()
    }

    /// Modeled end-to-end throughput in frames per second at `hz`
    /// (frames are served back to back on one SoC).
    #[must_use]
    pub fn modeled_fps(&self, hz: u64) -> f64 {
        if self.total_cycles() == 0 {
            return 0.0;
        }
        self.total_frames() as f64 * hz as f64 / self.total_cycles() as f64
    }

    /// Host-side simulation throughput in frames per second.
    #[must_use]
    pub fn host_fps(&self) -> f64 {
        if self.host_seconds <= 0.0 {
            return 0.0;
        }
        self.total_frames() as f64 / self.host_seconds
    }

    /// Merge `other` into `self` (used to combine per-worker shards of
    /// a [`run_parallel`] drain). Panics if the model lists differ.
    fn merge(&mut self, other: &BatchReport) {
        assert_eq!(self.per_model.len(), other.per_model.len(), "model sets");
        for ((name_a, a), (name_b, b)) in self.per_model.iter_mut().zip(&other.per_model) {
            assert_eq!(name_a, name_b, "model order");
            a.frames += b.frames;
            a.cycles += b.cycles;
            a.instructions += b.instructions;
            a.arbiter_wait += b.arbiter_wait;
            a.dma_bytes += b.dma_bytes;
        }
        self.host_seconds = self.host_seconds.max(other.host_seconds);
    }
}

/// One resident model: its artifacts, prebuilt firmware, and queue of
/// quantized input frames.
struct ModelSlot {
    artifacts: Arc<Artifacts>,
    fw: Firmware,
    queue: VecDeque<Vec<u8>>,
    stats: ModelStats,
}

/// Drains a tagged frame queue across several models resident on one
/// SoC. See the [module docs](self) for the serving model.
pub struct BatchScheduler {
    soc: Soc,
    policy: Policy,
    models: Vec<ModelSlot>,
    /// Next model index the round-robin rotation considers.
    cursor: usize,
}

impl BatchScheduler {
    /// A scheduler over a freshly built SoC.
    #[must_use]
    pub fn new(config: SocConfig, policy: Policy) -> Self {
        BatchScheduler {
            soc: Soc::new(config),
            policy,
            models: Vec::new(),
            cursor: 0,
        }
    }

    /// Register a model: build its firmware and pin its weight image
    /// alongside the models already resident. Returns the model's index
    /// for tagging frames.
    ///
    /// # Errors
    ///
    /// [`BatchError::Load`] when the model's DRAM footprint overlaps an
    /// already-registered model's (lay the set out with
    /// [`layout_models`]), [`BatchError::Firmware`] when codegen fails.
    pub fn add_model(
        &mut self,
        artifacts: Arc<Artifacts>,
        codegen: CodegenOptions,
    ) -> Result<usize, BatchError> {
        let fw = Firmware::build_with(&artifacts, codegen)?;
        self.soc.load_artifacts(&artifacts)?;
        self.models.push(ModelSlot {
            artifacts,
            fw,
            queue: VecDeque::new(),
            stats: ModelStats::default(),
        });
        Ok(self.models.len() - 1)
    }

    /// Queue one frame for `model`, quantizing the input.
    ///
    /// # Errors
    ///
    /// [`BatchError::UnknownModel`] for an index [`add_model`](Self::add_model)
    /// never returned.
    pub fn enqueue(&mut self, model: usize, input: &Tensor) -> Result<(), BatchError> {
        let slot = self.models.get(model).ok_or(BatchError::UnknownModel {
            index: model,
            count: self.models.len(),
        })?;
        let bytes = slot.artifacts.quantize_input(input);
        self.enqueue_bytes(model, bytes)
    }

    /// Queue one pre-quantized frame for `model`.
    ///
    /// # Errors
    ///
    /// [`BatchError::UnknownModel`] for an out-of-range index.
    pub fn enqueue_bytes(&mut self, model: usize, bytes: Vec<u8>) -> Result<(), BatchError> {
        let count = self.models.len();
        let slot = self.models.get_mut(model).ok_or(BatchError::UnknownModel {
            index: model,
            count,
        })?;
        slot.queue.push_back(bytes);
        Ok(())
    }

    /// Frames still queued across all models.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.models.iter().map(|m| m.queue.len()).sum()
    }

    /// Number of registered models.
    #[must_use]
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// The underlying SoC (e.g. to inspect residency).
    #[must_use]
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// Pick the model to serve next, per policy. `None` when idle.
    fn next_model(&mut self) -> Option<usize> {
        match self.policy {
            Policy::RoundRobin => {
                let n = self.models.len();
                let pick = (0..n)
                    .map(|off| (self.cursor + off) % n)
                    .find(|&i| !self.models[i].queue.is_empty())?;
                self.cursor = (pick + 1) % n;
                Some(pick)
            }
            Policy::ShortestQueueFirst => self
                .models
                .iter()
                .enumerate()
                .filter(|(_, m)| !m.queue.is_empty())
                .min_by_key(|(i, m)| (m.queue.len(), *i))
                .map(|(i, _)| i),
        }
    }

    /// Drain every queued frame, invoking `on_frame(model, result)`
    /// after each inference (tests and benches use the hook to check
    /// bit-identity against cold single-model runs).
    ///
    /// # Errors
    ///
    /// [`BatchError::Run`] on the first failing frame; the failed
    /// drain's earlier frames are not reported (each drain's statistics
    /// start from zero, so a retry counts only the frames it serves).
    pub fn run_with(
        &mut self,
        mut on_frame: impl FnMut(usize, &InferenceResult),
    ) -> Result<BatchReport, BatchError> {
        let start = Instant::now();
        for m in &mut self.models {
            m.stats = ModelStats::default();
        }
        while let Some(i) = self.next_model() {
            let slot = &mut self.models[i];
            let bytes = slot.queue.pop_front().expect("picked model has a frame");
            let result = self
                .soc
                .run_firmware(&slot.artifacts, &bytes, &slot.fw)
                .map_err(|source| BatchError::Run {
                    model: slot.artifacts.model.clone(),
                    source,
                })?;
            slot.stats.frames += 1;
            slot.stats.cycles += result.cycles;
            slot.stats.instructions += result.instructions;
            slot.stats.arbiter_wait += result.cpu_arbiter_wait;
            slot.stats.dma_bytes += result.nvdla.total_dma_bytes();
            on_frame(i, &result);
        }
        let per_model = self
            .models
            .iter_mut()
            .map(|m| (m.artifacts.model.clone(), std::mem::take(&mut m.stats)))
            .collect();
        Ok(BatchReport {
            policy: self.policy,
            per_model,
            host_seconds: start.elapsed().as_secs_f64(),
        })
    }

    /// Drain every queued frame. See [`run_with`](Self::run_with).
    ///
    /// # Errors
    ///
    /// [`BatchError::Run`] on the first failing frame.
    pub fn run(&mut self) -> Result<BatchReport, BatchError> {
        self.run_with(|_, _| {})
    }
}

/// A frame awaiting service: which model, and the quantized input.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Index into the model list.
    pub model: usize,
    /// Pre-quantized input bytes.
    pub bytes: Vec<u8>,
}

/// Drain `frames` across `threads` SoC replicas, each with every model
/// in `models` resident, sharding the stream round-robin (frame `i` to
/// worker `i % threads`) and merging the per-worker reports. Modeled
/// cycles are shard-independent — each frame is a full in-place reset —
/// so the merged totals equal a single-SoC drain of the same frames;
/// only host wall-clock changes with the fan-out.
///
/// # Errors
///
/// The first worker error, in worker order.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated by [`fan_out`]).
pub fn run_parallel(
    config: &SocConfig,
    policy: Policy,
    models: &[Arc<Artifacts>],
    codegen: CodegenOptions,
    frames: &[Frame],
    threads: usize,
) -> Result<BatchReport, BatchError> {
    let threads = threads.clamp(1, frames.len().max(1));
    let mut shards = fan_out(threads, threads, |w| -> Result<BatchReport, BatchError> {
        let mut sched = BatchScheduler::new(config.clone(), policy);
        for artifacts in models {
            sched.add_model(artifacts.clone(), codegen)?;
        }
        for frame in frames.iter().skip(w).step_by(threads) {
            sched.enqueue_bytes(frame.model, frame.bytes.clone())?;
        }
        sched.run()
    })
    .into_iter();
    let mut merged = shards.next().expect("at least one worker")?;
    for shard in shards {
        merged.merge(&shard?);
    }
    Ok(merged)
}
