//! Open-loop inference serving on the co-simulated SoC.
//!
//! [`batch`](crate::batch) drains a pre-built frame queue; a *server*
//! faces load it does not control: requests arrive on their own clock,
//! queue up when every accelerator is busy, and get dropped when the
//! admission queue overflows. This module turns the batch machinery
//! into that closed loop, entirely in **modeled time**:
//!
//! 1. **Arrival process** — a seeded, deterministic open-loop workload
//!    generator ([`RequestTrace::generate`]): Poisson or fixed-rate
//!    arrivals at a configured request rate, each request tagged with
//!    one of the resident models. The trace replays bit-identically
//!    from its seed, so every experiment is reproducible.
//! 2. **Admission queue** — a bounded queue ([`ServeSpec::queue_depth`])
//!    in front of the worker pool. A request arriving when every worker
//!    is busy and the queue is full is **dropped** (counted, and held
//!    against SLO attainment).
//! 3. **Worker pool** — [`ServeSpec::workers`] workers, each owning a
//!    warm [`Soc`] with the full model set resident (the multi-image
//!    residency of [`crate::batch::layout_models`]). Dispatch reuses
//!    [`Policy`] (rr/sqf/eff) over the queued models, in either the
//!    **serial** worker mode (each frame pays its quiet input preload,
//!    then computes) or the **pipelined** one (the next request's input
//!    streams behind the current frame's compute and contends at the
//!    DRAM arbiter, exactly as in [`PipelinedScheduler`]).
//!
//! # Calibrate → simulate → replay
//!
//! The SoC simulator is *deterministic*: a model's warm frame always
//! costs the same modeled cycles, and a pipelined frame's (contended
//! compute, overlapped-preload completion) depends only on the
//! `(current, next)` model pair — not on chain position, double-buffer
//! parity or input bytes. [`ServiceModel::calibrate`] measures those
//! per-model and per-pair costs once on a real SoC (`N` warm frames
//! plus `N²` staged pairs); [`simulate`] then runs the queueing system
//! event by event against a request trace, which scales to arbitrarily
//! long traces without stepping the ISS per request; finally
//! [`Server::serve`] **replays** the simulated dispatch plan on real
//! per-worker SoCs (fanned out via [`crate::sweep::fan_out`], using
//! [`BatchScheduler::run_sequence`](crate::batch::BatchScheduler::run_sequence)
//! / [`PipelinedScheduler::run_sequence`](crate::batch::PipelinedScheduler::run_sequence))
//! and cross-checks every frame's modeled latency against the plan —
//! [`ServeReport::replay_divergence`] is the number of frames where
//! the simulator disagreed with the real machine, and `tests/serve.rs`
//! pins it at zero.
//!
//! # Latency accounting
//!
//! Every served request's modeled latency is split as
//! `total = queue_wait + service`:
//!
//! * **serial worker** — `queue_wait` = arrival → dequeue; `service` =
//!   quiet input preload + compute (the
//!   [`FrameLatency`](crate::batch::FrameLatency) definition).
//! * **pipelined worker** — `queue_wait` = arrival → compute start
//!   (this includes the request's own input streaming, hidden under
//!   the previous frame's compute or paid as a burst fill);
//!   `service` = the contended compute itself.
//!
//! [`ServeReport`] reports p50/p95/p99 percentiles of all three
//! distributions, per-model and per-worker breakdowns, offered vs.
//! achieved throughput, and SLO attainment at a configurable target
//! (dropped requests count as SLO misses). See `docs/SERVING.md` for
//! the queueing model and how to read the rate-vs-p99 hockey stick.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rvnv_compiler::codegen::CodegenOptions;
use rvnv_compiler::Artifacts;

use crate::batch::{input_slots, BatchError, BatchScheduler, PipelinedScheduler, Policy};
use crate::firmware::Firmware;
use crate::soc::{Soc, SocConfig};
use crate::sweep::fan_out;

/// How request arrivals are spaced in modeled time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponentially distributed inter-arrival gaps (a memoryless
    /// open-loop client population) at the configured mean rate.
    Poisson,
    /// Evenly spaced arrivals at exactly the configured rate.
    Fixed,
}

impl ArrivalProcess {
    /// CLI spelling of the process.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Fixed => "fixed",
        }
    }
}

impl FromStr for ArrivalProcess {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "poisson" => Ok(ArrivalProcess::Poisson),
            "fixed" => Ok(ArrivalProcess::Fixed),
            other => Err(format!(
                "unknown arrival process `{other}` (expected poisson|fixed)"
            )),
        }
    }
}

/// One request of an open-loop trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival time in modeled cycles at the SoC clock.
    pub arrival: u64,
    /// Index of the resident model the request targets.
    pub model: usize,
}

/// A replayable open-loop request trace: arrivals in nondecreasing
/// modeled-cycle order, each tagged with a model index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// The requests, sorted by arrival cycle.
    pub requests: Vec<Request>,
    /// The window (in cycles) over which arrivals were generated; the
    /// offered rate is `requests.len()` per `duration` cycles.
    pub duration: u64,
}

impl RequestTrace {
    /// Generate a seeded trace: arrivals per `process` at a mean of
    /// `rate_rps` requests per second (of modeled time at `soc_hz`)
    /// over `duration` cycles, each request tagged with a model drawn
    /// uniformly from `0..models`. Deterministic: the same arguments
    /// always produce the bit-identical trace (`tests/properties.rs`
    /// pins the replay property).
    #[must_use]
    pub fn generate(
        process: ArrivalProcess,
        rate_rps: u64,
        duration: u64,
        models: usize,
        seed: u64,
        soc_hz: u64,
    ) -> Self {
        let mut requests = Vec::new();
        if rate_rps == 0 || models == 0 || soc_hz == 0 {
            return RequestTrace { requests, duration };
        }
        let mut rng = StdRng::seed_from_u64(seed);
        match process {
            ArrivalProcess::Poisson => {
                let mean_gap = soc_hz as f64 / rate_rps as f64;
                let mut t = 0.0f64;
                loop {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    t += -(1.0 - u).ln() * mean_gap;
                    if t >= duration as f64 {
                        break;
                    }
                    requests.push(Request {
                        arrival: t as u64,
                        model: rng.gen_range(0..models),
                    });
                }
            }
            ArrivalProcess::Fixed => {
                for i in 0u64.. {
                    let arrival =
                        u64::try_from(u128::from(i) * u128::from(soc_hz) / u128::from(rate_rps))
                            .unwrap_or(u64::MAX);
                    if arrival >= duration {
                        break;
                    }
                    requests.push(Request {
                        arrival,
                        model: rng.gen_range(0..models),
                    });
                }
            }
        }
        RequestTrace { requests, duration }
    }

    /// Offered request rate in requests per second of modeled time.
    #[must_use]
    pub fn offered_rate(&self, soc_hz: u64) -> f64 {
        if self.duration == 0 {
            return 0.0;
        }
        self.requests.len() as f64 * soc_hz as f64 / self.duration as f64
    }
}

/// The serving experiment: load, pool shape, dispatch and SLO target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSpec {
    /// Arrival spacing.
    pub process: ArrivalProcess,
    /// Offered request rate in requests per second of modeled time.
    pub rate_rps: u64,
    /// Length of the arrival window in modeled milliseconds.
    pub duration_ms: u64,
    /// Workload seed (arrival times, model mix, input bytes).
    pub seed: u64,
    /// Workers in the pool, each a warm SoC with every model resident.
    pub workers: usize,
    /// Dispatch policy over the queued models.
    pub policy: Policy,
    /// Pipelined worker mode: overlap the next request's input preload
    /// with the current frame's compute (per worker).
    pub pipelined: bool,
    /// Admission-queue bound; an arrival past it is dropped.
    pub queue_depth: usize,
    /// SLO target on total (queue wait + service) latency, in modeled
    /// microseconds.
    pub slo_us: u64,
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec {
            process: ArrivalProcess::Poisson,
            rate_rps: 150,
            duration_ms: 400,
            seed: 42,
            workers: 1,
            policy: Policy::RoundRobin,
            pipelined: false,
            queue_depth: 8,
            slo_us: 20_000,
        }
    }
}

impl ServeSpec {
    /// Reject degenerate parameters with a clear message: a rate,
    /// duration, worker count or queue depth of zero describes no
    /// serving system at all.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.rate_rps == 0 {
            return Err(ServeError::Config("--rate must be >= 1 request/s".into()));
        }
        if self.duration_ms == 0 {
            return Err(ServeError::Config("--duration must be >= 1 ms".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::Config("--workers must be >= 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::Config(
                "--queue-depth must be >= 1 (an unqueued server drops every burst)".into(),
            ));
        }
        Ok(())
    }

    /// The arrival window in cycles at `soc_hz`.
    #[must_use]
    pub fn duration_cycles(&self, soc_hz: u64) -> u64 {
        self.duration_ms.saturating_mul(soc_hz / 1000)
    }

    /// The SLO target in cycles at `soc_hz`.
    #[must_use]
    pub fn slo_cycles(&self, soc_hz: u64) -> u64 {
        self.slo_us.saturating_mul(soc_hz / 1_000_000)
    }
}

/// Serving failure.
#[derive(Debug)]
pub enum ServeError {
    /// A degenerate or inconsistent specification.
    Config(String),
    /// The underlying batch machinery failed (model load, firmware,
    /// a frame run).
    Batch(BatchError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "{msg}"),
            ServeError::Batch(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Config(_) => None,
            ServeError::Batch(e) => Some(e),
        }
    }
}

impl From<BatchError> for ServeError {
    fn from(e: BatchError) -> Self {
        ServeError::Batch(e)
    }
}

/// Calibrated modeled service costs of the resident model set — the
/// deterministic per-model and per-pair cycle counts the queueing
/// simulation runs on. Measured once per server on a real SoC
/// ([`ServiceModel::calibrate`]); the replay check
/// ([`ServeReport::replay_divergence`]) proves they stay exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceModel {
    /// Quiet input-preload cycles into the model's own input buffer
    /// (the serial worker's per-frame preload cost).
    pub preload: Vec<u64>,
    /// Quiet input-preload cycles into the double-buffer staging slot
    /// (the pipelined worker's burst-fill cost).
    pub fill: Vec<u64>,
    /// Warm compute cycles with nothing streaming behind the frame.
    pub compute: Vec<u64>,
    /// `compute_with[cur][next]`: `cur`'s compute cycles while `next`'s
    /// input streams behind it and contends at the DRAM arbiter.
    pub compute_with: Vec<Vec<u64>>,
    /// `preload_done[cur][next]`: the cycle, on `cur`'s frame timeline,
    /// at which `next`'s overlapped preload completes (may exceed
    /// `compute_with[cur][next]` when compute is too short to hide it).
    pub preload_done: Vec<Vec<u64>>,
}

impl ServiceModel {
    /// Number of models the profile covers.
    #[must_use]
    pub fn models(&self) -> usize {
        self.compute.len()
    }

    /// Measure the profile on a real SoC: every model pinned resident
    /// at its compiled base, one warm frame per model (serial compute),
    /// and one staged pair per ordered `(cur, next)` combination (the
    /// pipelined contention matrix). `N + N²` frames total, after which
    /// the scratch SoC is dropped.
    ///
    /// # Errors
    ///
    /// [`ServeError::Batch`] when a model fails to pin, its firmware
    /// fails to build, or a calibration frame fails.
    pub fn calibrate(
        config: &SocConfig,
        artifacts: &[Arc<Artifacts>],
        codegen: CodegenOptions,
    ) -> Result<Self, ServeError> {
        let n = artifacts.len();
        if n == 0 {
            return Err(ServeError::Config(
                "serving needs at least one model".into(),
            ));
        }
        let mut soc = Soc::new(config.clone());
        let mut fws = Vec::with_capacity(n);
        for a in artifacts {
            let fw = Firmware::build_with(a, codegen).map_err(BatchError::Firmware)?;
            soc.load_artifacts(a).map_err(BatchError::Load)?;
            fws.push(fw);
        }
        let zeros: Vec<Vec<u8>> = artifacts.iter().map(|a| vec![0u8; a.input_len]).collect();
        let run_err = |a: &Arc<Artifacts>| {
            let model = a.model.clone();
            move |source| BatchError::Run { model, source }
        };

        let mut compute = Vec::with_capacity(n);
        for (m, a) in artifacts.iter().enumerate() {
            let r = soc
                .run_firmware(a, &zeros[m], &fws[m])
                .map_err(run_err(a))?;
            compute.push(r.cycles);
        }
        let preload: Vec<u64> = artifacts
            .iter()
            .map(|a| soc.input_preload_cycles(a.input_addr, a.input_len))
            .collect();

        let (slots, _) = input_slots(artifacts);
        soc.set_pipelined(true);
        // Burst fill: measured through the real PS path (not the
        // analytic model) from the post-run fabric state a burst start
        // actually sees.
        let mut fill = Vec::with_capacity(n);
        for (m, a) in artifacts.iter().enumerate() {
            soc.quiesce();
            let done = soc
                .ps_stream(slots[0], &zeros[m], 0)
                .map_err(BatchError::Load)?;
            fill.push(done);
            // Consume the staged bytes so the next measurement starts
            // from the same just-ran state.
            soc.run_firmware_staged(a, slots[0], &fws[m], None)
                .map_err(run_err(a))?;
        }
        let mut compute_with = vec![vec![0u64; n]; n];
        let mut preload_done = vec![vec![0u64; n]; n];
        for (cur, a) in artifacts.iter().enumerate() {
            for next in 0..n {
                soc.quiesce();
                soc.ps_stream(slots[0], &zeros[cur], 0)
                    .map_err(BatchError::Load)?;
                let out = soc
                    .run_firmware_staged(a, slots[0], &fws[cur], Some((slots[1], &zeros[next])))
                    .map_err(run_err(a))?;
                compute_with[cur][next] = out.result.cycles;
                preload_done[cur][next] = out.preload_done;
            }
        }
        Ok(ServiceModel {
            preload,
            fill,
            compute,
            compute_with,
            preload_done,
        })
    }
}

/// Latency percentiles over one distribution of modeled cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Arithmetic mean.
    pub mean: u64,
    /// Maximum.
    pub max: u64,
}

impl LatencyStats {
    /// Compute the statistics of `samples` (sorted in place). All
    /// zeros when empty.
    #[must_use]
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let sum: u128 = samples.iter().map(|&v| u128::from(v)).sum();
        LatencyStats {
            p50: percentile(samples, 50.0),
            p95: percentile(samples, 95.0),
            p99: percentile(samples, 99.0),
            mean: u64::try_from(sum / samples.len() as u128).unwrap_or(u64::MAX),
            max: *samples.last().expect("nonempty"),
        }
    }
}

/// Nearest-rank percentile of an already **sorted** sample set:
/// the smallest value such that at least `pct`% of the samples are at
/// or below it. 0 when empty. Monotone in `pct` by construction
/// (`tests/properties.rs` pins p50 ≤ p95 ≤ p99).
#[must_use]
pub fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = ((pct / 100.0) * n as f64).ceil().max(0.0) as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Per-model serving outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeModelStats {
    /// Model name.
    pub name: String,
    /// Requests the trace offered for this model.
    pub offered: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests dropped at the admission queue.
    pub dropped: u64,
    /// Service-latency statistics of the served requests.
    pub service: LatencyStats,
    /// Total-latency (queue wait + service) statistics.
    pub total: LatencyStats,
    /// Served requests whose total latency met the SLO target.
    pub slo_attained: u64,
}

/// Per-worker serving outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Frames the worker served.
    pub frames: u64,
    /// Modeled cycles the worker spent busy (preload fills, compute
    /// windows).
    pub busy_cycles: u64,
}

/// What one request experienced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Served to completion.
    Served {
        /// Worker that ran the frame.
        worker: usize,
        /// Arrival → dispatch (see the [module docs](self) for the
        /// split's exact meaning per worker mode).
        queue_wait: u64,
        /// Dispatch → completion.
        service: u64,
        /// Absolute completion cycle.
        completion: u64,
    },
    /// Dropped at the admission queue (queue full, no idle worker).
    Dropped,
}

/// One request's record in a [`ServeReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Model the request targeted.
    pub model: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// What happened to it.
    pub outcome: RequestOutcome,
}

/// Result of serving one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Dispatch policy used.
    pub policy: Policy,
    /// Whether workers ran in the pipelined mode.
    pub pipelined: bool,
    /// Worker-pool size.
    pub workers: usize,
    /// Admission-queue bound.
    pub queue_depth: usize,
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Configured offered rate in requests per second.
    pub rate_rps: u64,
    /// Workload seed.
    pub seed: u64,
    /// SoC clock the cycle figures are denominated in.
    pub soc_hz: u64,
    /// Arrival-window length in cycles.
    pub duration_cycles: u64,
    /// SLO target in cycles.
    pub slo_cycles: u64,
    /// Requests the trace offered.
    pub offered: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests dropped at the admission queue.
    pub dropped: u64,
    /// Last completion cycle (0 when nothing was served).
    pub makespan_cycles: u64,
    /// Queue-wait statistics of the served requests.
    pub queue_wait: LatencyStats,
    /// Service-latency statistics of the served requests.
    pub service: LatencyStats,
    /// Total-latency (queue wait + service) statistics.
    pub total: LatencyStats,
    /// Per-model breakdown, in model order.
    pub per_model: Vec<ServeModelStats>,
    /// Per-worker breakdown, in worker order.
    pub per_worker: Vec<WorkerStats>,
    /// Served requests whose total latency met the SLO target.
    pub slo_attained: u64,
    /// Per-request records, in trace order.
    pub records: Vec<RequestRecord>,
    /// Frames whose replayed (real-SoC) latency disagreed with the
    /// simulated plan: 0 after [`Server::serve`] on a healthy build,
    /// and always 0 after a plan-only [`Server::plan`].
    pub replay_divergence: u64,
    /// Host wall-clock seconds spent (calibration excluded).
    pub host_seconds: f64,
}

impl ServeReport {
    /// Offered request rate in requests per second of modeled time.
    #[must_use]
    pub fn offered_rate(&self) -> f64 {
        if self.duration_cycles == 0 {
            return 0.0;
        }
        self.offered as f64 * self.soc_hz as f64 / self.duration_cycles as f64
    }

    /// Achieved (served) request rate in requests per second of
    /// modeled time, over the longer of the arrival window and the
    /// drain. Never exceeds [`ServeReport::offered_rate`]
    /// (`tests/properties.rs` pins the invariant).
    #[must_use]
    pub fn achieved_rate(&self) -> f64 {
        let span = self.duration_cycles.max(self.makespan_cycles);
        if span == 0 {
            return 0.0;
        }
        self.served as f64 * self.soc_hz as f64 / span as f64
    }

    /// Fraction of offered requests dropped at the admission queue.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.dropped as f64 / self.offered as f64
    }

    /// Fraction of **offered** requests whose total latency met the
    /// SLO target — a dropped request is an SLO miss, not a footnote.
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.slo_attained as f64 / self.offered as f64
    }
}

/// One planned frame of a worker burst: which request, and the modeled
/// per-frame latency ([`crate::batch::FrameLatency`] semantics) the
/// replay must reproduce.
#[derive(Debug, Clone, Copy)]
struct PlannedFrame {
    request: usize,
    predicted: u64,
}

/// A worker's dispatch plan: bursts of frames. In the pipelined mode a
/// burst is a maximal chain of overlap-staged frames (one pipeline
/// fill each); a serial worker has one burst holding every frame.
#[derive(Debug, Clone, Default)]
struct WorkerPlan {
    bursts: Vec<Vec<PlannedFrame>>,
}

impl WorkerPlan {
    fn frames(&self) -> usize {
        self.bursts.iter().map(Vec::len).sum()
    }
}

/// Event-driven state of one simulated worker.
struct SimWorker {
    /// When the worker's next decision point occurs.
    free_at: u64,
    /// Pipelined mode: the request whose input is (being) staged and
    /// whose compute starts at `free_at`.
    staged: Option<usize>,
    /// Completion cycle of the previous frame in the open burst.
    burst_prev_completion: u64,
    stats: WorkerStats,
    plan: WorkerPlan,
}

/// The admission queue plus dispatch-policy state.
struct Dispatcher<'a> {
    service: &'a ServiceModel,
    policy: Policy,
    /// Per-model FIFO of queued request indices.
    queues: Vec<VecDeque<usize>>,
    queued: usize,
    /// Round-robin rotation cursor.
    cursor: usize,
}

impl Dispatcher<'_> {
    /// Pick the model to dequeue next, mirroring
    /// [`Policy`]'s semantics in [`crate::batch`]: `current` is the
    /// model about to compute while the picked request's input streams
    /// behind it (pipelined); estimates come from the calibrated
    /// profile rather than batch's last-observed cycles, since a
    /// server knows its residents. `None` when the queue is empty.
    fn pick(&mut self, current: Option<usize>) -> Option<usize> {
        let n = self.queues.len();
        match self.policy {
            Policy::RoundRobin => {
                let pick = (0..n)
                    .map(|off| (self.cursor + off) % n)
                    .find(|&m| !self.queues[m].is_empty())?;
                self.cursor = (pick + 1) % n;
                Some(pick)
            }
            Policy::ShortestQueueFirst => self
                .queues
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .min_by_key(|(m, q)| (q.len(), *m))
                .map(|(m, _)| m),
            Policy::EarliestFinish => {
                let hide = current.map_or(0, |c| self.service.compute[c]);
                self.queues
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| !q.is_empty())
                    .min_by_key(|(m, _)| {
                        (
                            self.service.preload[*m].max(hide) + self.service.compute[*m],
                            *m,
                        )
                    })
                    .map(|(m, _)| m)
            }
        }
    }

    /// Dequeue the FIFO head of the picked model.
    fn pop(&mut self, model: usize) -> usize {
        self.queued -= 1;
        self.queues[model].pop_front().expect("picked nonempty")
    }

    fn enqueue(&mut self, model: usize, request: usize) {
        self.queues[model].push_back(request);
        self.queued += 1;
    }
}

/// Run the queueing system over `trace` in modeled time and build the
/// report plus per-worker dispatch plans. Pure: no SoC is touched, so
/// this scales to arbitrarily long traces (and is what the property
/// tests drive with synthetic profiles).
fn simulate_plan(
    trace: &RequestTrace,
    service: &ServiceModel,
    spec: &ServeSpec,
    names: &[String],
    soc_hz: u64,
) -> (ServeReport, Vec<WorkerPlan>) {
    assert_eq!(
        names.len(),
        service.models(),
        "one name per calibrated model"
    );
    let n = service.models();
    let mut disp = Dispatcher {
        service,
        policy: spec.policy,
        queues: vec![VecDeque::new(); n],
        queued: 0,
        cursor: 0,
    };
    let mut workers: Vec<SimWorker> = (0..spec.workers)
        .map(|_| SimWorker {
            free_at: 0,
            staged: None,
            burst_prev_completion: 0,
            stats: WorkerStats::default(),
            plan: WorkerPlan::default(),
        })
        .collect();
    let mut records: Vec<RequestRecord> = trace
        .requests
        .iter()
        .map(|r| RequestRecord {
            model: r.model,
            arrival: r.arrival,
            outcome: RequestOutcome::Dropped,
        })
        .collect();

    /// Advance one worker's state machine at its decision point.
    fn step(
        w: usize,
        workers: &mut [SimWorker],
        disp: &mut Dispatcher<'_>,
        records: &mut [RequestRecord],
        service: &ServiceModel,
        pipelined: bool,
    ) {
        let now = workers[w].free_at;
        if pipelined {
            if let Some(req) = workers[w].staged.take() {
                // The staged request computes now; try to overlap the
                // next pick's preload behind it.
                let m = records[req].model;
                let next = disp.pick(Some(m));
                let (compute, window) = match next {
                    Some(nm) => {
                        let nr = disp.pop(nm);
                        workers[w].staged = Some(nr);
                        let c = service.compute_with[m][nm];
                        (c, c.max(service.preload_done[m][nm]))
                    }
                    None => (service.compute[m], service.compute[m]),
                };
                let completion = now + compute;
                records[req].outcome = RequestOutcome::Served {
                    worker: w,
                    queue_wait: now - records[req].arrival,
                    service: compute,
                    completion,
                };
                let burst = workers[w]
                    .plan
                    .bursts
                    .last_mut()
                    .expect("staged frame has an open burst");
                burst.push(PlannedFrame {
                    request: req,
                    predicted: completion - workers[w].burst_prev_completion,
                });
                workers[w].burst_prev_completion = completion;
                workers[w].stats.frames += 1;
                workers[w].stats.busy_cycles += window;
                workers[w].free_at = now + window;
            } else {
                // Burst start: dequeue and stream the fill.
                let m = disp.pick(None).expect("step called with work");
                let req = disp.pop(m);
                workers[w].staged = Some(req);
                workers[w].plan.bursts.push(Vec::new());
                workers[w].burst_prev_completion = now;
                workers[w].stats.busy_cycles += service.fill[m];
                workers[w].free_at = now + service.fill[m];
            }
        } else {
            let m = disp.pick(None).expect("step called with work");
            let req = disp.pop(m);
            let svc = service.preload[m] + service.compute[m];
            records[req].outcome = RequestOutcome::Served {
                worker: w,
                queue_wait: now - records[req].arrival,
                service: svc,
                completion: now + svc,
            };
            if workers[w].plan.bursts.is_empty() {
                workers[w].plan.bursts.push(Vec::new());
            }
            workers[w].plan.bursts[0].push(PlannedFrame {
                request: req,
                predicted: svc,
            });
            workers[w].stats.frames += 1;
            workers[w].stats.busy_cycles += svc;
            workers[w].free_at = now + svc;
        }
    }

    /// Let every worker process its decision points up to `until`.
    fn advance(
        until: u64,
        workers: &mut [SimWorker],
        disp: &mut Dispatcher<'_>,
        records: &mut [RequestRecord],
        service: &ServiceModel,
        pipelined: bool,
    ) {
        loop {
            let ready = (0..workers.len())
                .filter(|&w| workers[w].staged.is_some() || disp.queued > 0)
                .min_by_key(|&w| (workers[w].free_at, w));
            match ready {
                Some(w) if workers[w].free_at <= until => {
                    step(w, workers, disp, records, service, pipelined);
                }
                _ => break,
            }
        }
    }

    for (i, r) in trace.requests.iter().enumerate() {
        advance(
            r.arrival,
            &mut workers,
            &mut disp,
            &mut records,
            service,
            spec.pipelined,
        );
        let idle = (0..workers.len())
            .find(|&w| workers[w].free_at <= r.arrival && workers[w].staged.is_none());
        if let Some(w) = idle {
            // Straight to the idle worker; its clock catches up to now.
            workers[w].free_at = r.arrival;
            disp.enqueue(r.model, i);
            step(
                w,
                &mut workers,
                &mut disp,
                &mut records,
                service,
                spec.pipelined,
            );
        } else if disp.queued < spec.queue_depth {
            disp.enqueue(r.model, i);
        }
        // else: dropped — the default outcome already says so.
    }
    advance(
        u64::MAX,
        &mut workers,
        &mut disp,
        &mut records,
        service,
        spec.pipelined,
    );

    // Aggregate.
    let slo_cycles = spec.slo_cycles(soc_hz);
    let mut waits = Vec::new();
    let mut services = Vec::new();
    let mut totals = Vec::new();
    let mut makespan = 0u64;
    let mut slo_attained = 0u64;
    let mut per_model: Vec<ServeModelStats> = names
        .iter()
        .map(|name| ServeModelStats {
            name: name.clone(),
            offered: 0,
            served: 0,
            dropped: 0,
            service: LatencyStats::default(),
            total: LatencyStats::default(),
            slo_attained: 0,
        })
        .collect();
    let mut model_services: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut model_totals: Vec<Vec<u64>> = vec![Vec::new(); n];
    for rec in &records {
        per_model[rec.model].offered += 1;
        match rec.outcome {
            RequestOutcome::Served {
                queue_wait,
                service: svc,
                completion,
                ..
            } => {
                let total = queue_wait + svc;
                waits.push(queue_wait);
                services.push(svc);
                totals.push(total);
                makespan = makespan.max(completion);
                per_model[rec.model].served += 1;
                model_services[rec.model].push(svc);
                model_totals[rec.model].push(total);
                if total <= slo_cycles {
                    slo_attained += 1;
                    per_model[rec.model].slo_attained += 1;
                }
            }
            RequestOutcome::Dropped => per_model[rec.model].dropped += 1,
        }
    }
    for (m, stats) in per_model.iter_mut().enumerate() {
        stats.service = LatencyStats::from_samples(&mut model_services[m]);
        stats.total = LatencyStats::from_samples(&mut model_totals[m]);
    }
    let served = totals.len() as u64;
    let report = ServeReport {
        policy: spec.policy,
        pipelined: spec.pipelined,
        workers: spec.workers,
        queue_depth: spec.queue_depth,
        process: spec.process,
        rate_rps: spec.rate_rps,
        seed: spec.seed,
        soc_hz,
        duration_cycles: trace.duration,
        slo_cycles,
        offered: records.len() as u64,
        served,
        dropped: records.len() as u64 - served,
        makespan_cycles: makespan,
        queue_wait: LatencyStats::from_samples(&mut waits),
        service: LatencyStats::from_samples(&mut services),
        total: LatencyStats::from_samples(&mut totals),
        per_model,
        per_worker: workers.iter().map(|w| w.stats).collect(),
        slo_attained,
        records,
        replay_divergence: 0,
        host_seconds: 0.0,
    };
    (report, workers.into_iter().map(|w| w.plan).collect())
}

/// Simulate serving `trace` against a calibrated (or synthetic)
/// [`ServiceModel`] without touching a SoC — the planning half of
/// [`Server::serve`], exposed for sweeps and property tests.
///
/// # Panics
///
/// Panics when `names` does not have one entry per calibrated model.
#[must_use]
pub fn simulate(
    trace: &RequestTrace,
    service: &ServiceModel,
    spec: &ServeSpec,
    names: &[String],
    soc_hz: u64,
) -> ServeReport {
    simulate_plan(trace, service, spec, names, soc_hz).0
}

/// An inference server over a resident model set: calibrates the
/// [`ServiceModel`] once at construction, then serves (or plans) any
/// number of [`ServeSpec`] experiments against it.
pub struct Server {
    config: SocConfig,
    codegen: CodegenOptions,
    artifacts: Vec<Arc<Artifacts>>,
    service: ServiceModel,
}

impl Server {
    /// Build a server over models laid out at disjoint DRAM bases
    /// ([`crate::batch::layout_models`]) and calibrate their service
    /// profile on a scratch SoC.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an empty model set,
    /// [`ServeError::Batch`] when pinning or calibration fails.
    pub fn new(
        config: SocConfig,
        artifacts: Vec<Arc<Artifacts>>,
        codegen: CodegenOptions,
    ) -> Result<Self, ServeError> {
        let service = ServiceModel::calibrate(&config, &artifacts, codegen)?;
        Ok(Server {
            config,
            codegen,
            artifacts,
            service,
        })
    }

    /// The calibrated service profile.
    #[must_use]
    pub fn service_model(&self) -> &ServiceModel {
        &self.service
    }

    /// The SoC configuration the server simulates.
    #[must_use]
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// Generate `spec`'s request trace (deterministic per seed).
    #[must_use]
    pub fn trace(&self, spec: &ServeSpec) -> RequestTrace {
        RequestTrace::generate(
            spec.process,
            spec.rate_rps,
            spec.duration_cycles(self.config.soc_hz),
            self.artifacts.len(),
            spec.seed,
            self.config.soc_hz,
        )
    }

    fn names(&self) -> Vec<String> {
        self.artifacts.iter().map(|a| a.model.clone()).collect()
    }

    /// Plan `spec` without running frames: trace generation plus the
    /// queueing simulation on the calibrated profile. Host-cheap, which
    /// is what makes dense rate sweeps (`examples/load_test.rs`)
    /// practical; [`Server::serve`] replays the same plan on real SoCs.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for a degenerate spec.
    pub fn plan(&self, spec: &ServeSpec) -> Result<ServeReport, ServeError> {
        spec.validate()?;
        let start = Instant::now();
        let trace = self.trace(spec);
        let (mut report, _) = simulate_plan(
            &trace,
            &self.service,
            spec,
            &self.names(),
            self.config.soc_hz,
        );
        report.host_seconds = start.elapsed().as_secs_f64();
        Ok(report)
    }

    /// Serve `spec` for real: simulate the queueing system, then fan
    /// the dispatch plan out across [`ServeSpec::workers`] real SoCs
    /// (each with the full model set resident, via
    /// [`crate::sweep::fan_out`]) and replay every burst with
    /// [`BatchScheduler::run_sequence`] /
    /// [`PipelinedScheduler::run_sequence`]. Each replayed frame's
    /// modeled latency is checked against the plan;
    /// [`ServeReport::replay_divergence`] counts the disagreements
    /// (zero on a healthy build — `tests/serve.rs` pins it).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for a degenerate spec,
    /// [`ServeError::Batch`] when a worker fails to build or a frame
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (propagated by [`fan_out`]).
    pub fn serve(&self, spec: &ServeSpec) -> Result<ServeReport, ServeError> {
        spec.validate()?;
        let start = Instant::now();
        let trace = self.trace(spec);
        let (mut report, plans) = simulate_plan(
            &trace,
            &self.service,
            spec,
            &self.names(),
            self.config.soc_hz,
        );
        // Per-request input bytes, deterministic from the seed and the
        // request index alone: the replay streams real (varied) images,
        // proving the modeled cycles are input-independent. Generated
        // lazily per planned frame inside each worker — dropped
        // requests never materialize bytes, and the RNG work rides the
        // fan-out.
        let input_for = |request: usize| -> Vec<u8> {
            let mut rng = StdRng::seed_from_u64(spec.seed ^ (0x5EED << 16) ^ request as u64);
            (0..self.artifacts[trace.requests[request].model].input_len)
                .map(|_| rng.gen_range(0u8..=255))
                .collect()
        };
        let measured = fan_out(
            plans.len(),
            plans.len(),
            |w| -> Result<Vec<u64>, BatchError> {
                let plan = &plans[w];
                if plan.frames() == 0 {
                    return Ok(Vec::new());
                }
                // The per-burst model sequences the scheduler replays,
                // and every frame's bytes in enqueue order — identical
                // for both worker modes; only the scheduler type (and
                // hence the preload overlap) differs below.
                let seqs: Vec<Vec<usize>> = plan
                    .bursts
                    .iter()
                    .map(|burst| {
                        burst
                            .iter()
                            .map(|f| trace.requests[f.request].model)
                            .collect()
                    })
                    .collect();
                let frames = plan
                    .bursts
                    .iter()
                    .flatten()
                    .map(|f| (trace.requests[f.request].model, input_for(f.request)));
                let mut latencies = Vec::with_capacity(plan.frames());
                if spec.pipelined {
                    let mut sched = PipelinedScheduler::new(self.config.clone(), spec.policy);
                    for a in &self.artifacts {
                        sched.add_model(a.clone(), self.codegen)?;
                    }
                    for (model, bytes) in frames {
                        sched.enqueue_bytes(model, bytes)?;
                    }
                    for seq in &seqs {
                        let rep = sched.run_sequence(seq)?;
                        latencies.extend(rep.frame_latencies.iter().map(|f| f.cycles));
                    }
                } else {
                    let mut sched = BatchScheduler::new(self.config.clone(), spec.policy);
                    for a in &self.artifacts {
                        sched.add_model(a.clone(), self.codegen)?;
                    }
                    for (model, bytes) in frames {
                        sched.enqueue_bytes(model, bytes)?;
                    }
                    for seq in &seqs {
                        let rep = sched.run_sequence(seq)?;
                        latencies.extend(rep.frame_latencies.iter().map(|f| f.cycles));
                    }
                }
                Ok(latencies)
            },
        );
        let mut divergence = 0u64;
        for (w, run) in measured.into_iter().enumerate() {
            let latencies = run?;
            let predicted: Vec<u64> = plans[w]
                .bursts
                .iter()
                .flatten()
                .map(|f| f.predicted)
                .collect();
            divergence += predicted
                .iter()
                .zip(&latencies)
                .filter(|(p, m)| p != m)
                .count() as u64;
            divergence += predicted.len().abs_diff(latencies.len()) as u64;
        }
        report.replay_divergence = divergence;
        report.host_seconds = start.elapsed().as_secs_f64();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic two-model profile: model 0 cheap, model 1 pricey.
    fn profile() -> ServiceModel {
        ServiceModel {
            preload: vec![100, 200],
            fill: vec![100, 200],
            compute: vec![1_000, 3_000],
            compute_with: vec![vec![1_010, 1_020], vec![3_010, 3_020]],
            preload_done: vec![vec![150, 400], vec![120, 300]],
        }
    }

    fn names() -> Vec<String> {
        vec!["a".into(), "b".into()]
    }

    fn spec() -> ServeSpec {
        ServeSpec {
            process: ArrivalProcess::Fixed,
            rate_rps: 100,
            duration_ms: 1,
            seed: 7,
            workers: 1,
            policy: Policy::RoundRobin,
            pipelined: false,
            queue_depth: 4,
            slo_us: 1_000,
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
    }

    #[test]
    fn latency_stats_sorted_and_monotone() {
        let mut samples = vec![30, 10, 20];
        let s = LatencyStats::from_samples(&mut samples);
        assert_eq!(samples, vec![10, 20, 30]);
        assert_eq!(s.p50, 20);
        assert_eq!(s.max, 30);
        assert_eq!(s.mean, 20);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn fixed_trace_is_evenly_spaced_and_replayable() {
        let hz = 100_000_000;
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 1_000, hz / 10, 2, 3, hz);
        // 100 ms at 1000 req/s: exactly 100 requests, 100 µs apart.
        assert_eq!(t.requests.len(), 100);
        assert_eq!(t.requests[1].arrival - t.requests[0].arrival, hz / 1_000);
        let t2 = RequestTrace::generate(ArrivalProcess::Fixed, 1_000, hz / 10, 2, 3, hz);
        assert_eq!(t, t2);
        let t3 = RequestTrace::generate(ArrivalProcess::Fixed, 1_000, hz / 10, 2, 4, hz);
        // A different seed keeps the spacing but reshuffles the mix.
        assert_eq!(t3.requests.len(), 100);
        assert!(t
            .requests
            .iter()
            .zip(&t3.requests)
            .all(|(a, b)| a.arrival == b.arrival));
    }

    #[test]
    fn poisson_trace_is_sorted_and_roughly_at_rate() {
        let hz = 100_000_000;
        let t = RequestTrace::generate(ArrivalProcess::Poisson, 500, hz, 2, 9, hz);
        assert!(t.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(t.requests.iter().all(|r| r.arrival < hz && r.model < 2));
        // Mean 500 arrivals over one modeled second; 5σ ≈ 112.
        assert!(
            (388..=612).contains(&t.requests.len()),
            "got {}",
            t.requests.len()
        );
    }

    #[test]
    fn below_capacity_nothing_waits_or_drops() {
        // 100 req/s of ~1k-cycle service at 100 MHz: each request meets
        // an idle worker.
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 100, 100_000_000, 2, 1, 100_000_000);
        let r = simulate(&t, &profile(), &spec(), &names(), 100_000_000);
        assert_eq!(r.offered, 100);
        assert_eq!(r.served, 100);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.queue_wait.max, 0, "idle workers dispatch immediately");
        assert!(r.total.p99 <= r.service.max);
        assert_eq!(r.slo_attainment(), 1.0);
        assert_eq!(r.records.len(), 100);
    }

    #[test]
    fn overload_queues_then_drops() {
        // Service ≈ 2k cycles mean, arrivals every 1k cycles: the queue
        // fills, waits grow, and the excess is dropped.
        let hz = 100_000_000;
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 100_000, hz / 100, 2, 1, hz);
        assert_eq!(t.requests.len(), 1_000);
        let r = simulate(&t, &profile(), &spec(), &names(), hz);
        assert_eq!(r.served + r.dropped, r.offered);
        assert!(r.dropped > 0, "overload must drop");
        assert!(
            r.queue_wait.p50 > r.service.p50,
            "queue wait dominates service under overload: {} vs {}",
            r.queue_wait.p50,
            r.service.p50
        );
        assert!(r.achieved_rate() <= r.offered_rate());
        assert!(r.slo_attainment() < 1.0);
        // The queue bound caps how long anything waits (2x for the
        // round-robin rotation's worst-case interleaving).
        let worst_service = profile().compute[1] + profile().preload[1];
        assert!(r.queue_wait.max <= 2 * (spec().queue_depth as u64 + 1) * worst_service);
    }

    #[test]
    fn two_workers_halve_the_backlog() {
        let hz = 100_000_000;
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 100_000, hz / 100, 2, 1, hz);
        let one = simulate(&t, &profile(), &spec(), &names(), hz);
        let two = simulate(
            &t,
            &profile(),
            &ServeSpec {
                workers: 2,
                ..spec()
            },
            &names(),
            hz,
        );
        assert!(two.served > one.served);
        assert!(two.per_worker.len() == 2 && two.per_worker[1].frames > 0);
        assert!(two.achieved_rate() > one.achieved_rate());
    }

    #[test]
    fn pipelined_mode_respects_pair_costs() {
        let hz = 100_000_000;
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 100_000, hz / 1000, 2, 1, hz);
        let r = simulate(
            &t,
            &profile(),
            &ServeSpec {
                pipelined: true,
                queue_depth: 64,
                ..spec()
            },
            &names(),
            hz,
        );
        assert_eq!(r.served + r.dropped, r.offered);
        assert!(r.served > 0);
        // Back-to-back frames pay the contended compute, not the
        // serial preload+compute.
        let p = profile();
        let served_services: Vec<u64> = r
            .records
            .iter()
            .filter_map(|rec| match rec.outcome {
                RequestOutcome::Served { service, .. } => Some(service),
                RequestOutcome::Dropped => None,
            })
            .collect();
        let max_pair = p
            .compute_with
            .iter()
            .flatten()
            .chain(p.compute.iter())
            .copied()
            .max()
            .unwrap();
        assert!(served_services.iter().all(|&s| s <= max_pair));
    }

    #[test]
    fn spec_validation_rejects_degenerate_inputs() {
        for (broken, needle) in [
            (
                ServeSpec {
                    rate_rps: 0,
                    ..spec()
                },
                "--rate",
            ),
            (
                ServeSpec {
                    duration_ms: 0,
                    ..spec()
                },
                "--duration",
            ),
            (
                ServeSpec {
                    workers: 0,
                    ..spec()
                },
                "--workers",
            ),
            (
                ServeSpec {
                    queue_depth: 0,
                    ..spec()
                },
                "--queue-depth",
            ),
        ] {
            let err = broken.validate().expect_err("must reject");
            assert!(err.to_string().contains(needle), "got: {err}");
        }
        spec().validate().expect("healthy spec passes");
    }
}
