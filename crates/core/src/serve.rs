//! Open-loop inference serving on the co-simulated SoC.
//!
//! [`batch`](crate::batch) drains a pre-built frame queue; a *server*
//! faces load it does not control: requests arrive on their own clock,
//! queue up when every accelerator is busy, and get dropped when the
//! admission queue overflows. This module turns the batch machinery
//! into that closed loop, entirely in **modeled time**:
//!
//! 1. **Arrival process** — a seeded, deterministic open-loop workload
//!    generator ([`RequestTrace::generate`]): Poisson or fixed-rate
//!    arrivals at a configured request rate, each request tagged with
//!    one of the resident models. The trace replays bit-identically
//!    from its seed, so every experiment is reproducible.
//! 2. **Admission queue** — a bounded queue ([`ServeSpec::queue_depth`])
//!    in front of the worker pool. A request arriving when every worker
//!    is busy and the queue is full is **dropped** (counted, and held
//!    against SLO attainment).
//! 3. **Worker pool** — [`ServeSpec::workers`] workers, each owning a
//!    warm [`Soc`] with the full model set resident (the multi-image
//!    residency of [`crate::batch::layout_models`]). Dispatch reuses
//!    [`Policy`] (rr/sqf/eff) over the queued models, in either the
//!    **serial** worker mode (each frame pays its quiet input preload,
//!    then computes) or the **pipelined** one (the next request's input
//!    streams behind the current frame's compute and contends at the
//!    DRAM arbiter, exactly as in [`PipelinedScheduler`]).
//!
//! # Calibrate → simulate → replay
//!
//! The SoC simulator is *deterministic*: a model's warm frame always
//! costs the same modeled cycles, and a pipelined frame's (contended
//! compute, overlapped-preload completion) depends only on the
//! `(current, next)` model pair — not on chain position, double-buffer
//! parity or input bytes. [`ServiceModel::calibrate`] measures those
//! per-model and per-pair costs once on a real SoC (`N` warm frames
//! plus `N²` staged pairs); [`simulate`] then runs the queueing system
//! event by event against a request trace, which scales to arbitrarily
//! long traces without stepping the ISS per request; finally
//! [`Server::serve`] **replays** the simulated dispatch plan on real
//! per-worker SoCs (fanned out via [`crate::sweep::fan_out`], using
//! [`BatchScheduler::run_sequence`](crate::batch::BatchScheduler::run_sequence)
//! / [`PipelinedScheduler::run_sequence`](crate::batch::PipelinedScheduler::run_sequence))
//! and cross-checks every frame's modeled latency against the plan —
//! [`ServeReport::replay_divergence`] is the number of frames where
//! the simulator disagreed with the real machine, and `tests/serve.rs`
//! pins it at zero.
//!
//! # Latency accounting
//!
//! Every served request's modeled latency is split as
//! `total = queue_wait + service`:
//!
//! * **serial worker** — `queue_wait` = arrival → dequeue; `service` =
//!   quiet input preload + compute (the
//!   [`FrameLatency`](crate::batch::FrameLatency) definition).
//! * **pipelined worker** — `queue_wait` = arrival → compute start
//!   (this includes the request's own input streaming, hidden under
//!   the previous frame's compute or paid as a burst fill);
//!   `service` = the contended compute itself.
//!
//! [`ServeReport`] reports p50/p95/p99 percentiles of all three
//! distributions, per-model and per-worker breakdowns, offered vs.
//! achieved throughput, and SLO attainment at a configurable target
//! (dropped requests count as SLO misses). See `docs/SERVING.md` for
//! the queueing model and how to read the rate-vs-p99 hockey stick.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rvnv_compiler::codegen::CodegenOptions;
use rvnv_compiler::Artifacts;
use rvnv_obs::{Json, MetricsRegistry, SpanKind, Tracer, TrackId, TrackKind};
use rvnv_util::mix64;

use crate::batch::{input_slots, BatchError, BatchScheduler, PipelinedScheduler, Policy};
use crate::firmware::Firmware;
use crate::soc::{Soc, SocConfig};
use crate::sweep::fan_out;

/// How request arrivals are spaced in modeled time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponentially distributed inter-arrival gaps (a memoryless
    /// open-loop client population) at the configured mean rate.
    Poisson,
    /// Evenly spaced arrivals at exactly the configured rate.
    Fixed,
}

impl ArrivalProcess {
    /// CLI spelling of the process.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Fixed => "fixed",
        }
    }
}

impl FromStr for ArrivalProcess {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "poisson" => Ok(ArrivalProcess::Poisson),
            "fixed" => Ok(ArrivalProcess::Fixed),
            other => Err(format!(
                "unknown arrival process `{other}` (expected poisson|fixed)"
            )),
        }
    }
}

/// A seeded frame-level chaos plan for the serving simulation.
///
/// Rates are **events per million frame attempts** — the serving
/// analogue of [`rvnv_bus::FaultPlan`]'s per-access rates. (A frame is
/// millions of bus accesses, so a per-frame rate of `r` corresponds
/// roughly to a per-access rate of `r / accesses_per_frame`; see
/// `docs/RESILIENCE.md` for the mapping.) Every draw is a pure
/// function of `(seed, request index, attempt number)` via the same
/// SplitMix64 mixer the bus-level injector uses, so a fault trace
/// replays bit-identically and a chaos serving report is reproducible
/// from its spec alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSpec {
    /// Seed for the per-attempt fault lottery.
    pub seed: u64,
    /// Silent output corruption (detected by the fingerprint check at
    /// frame completion), events per million attempts.
    pub flip_per_million: u32,
    /// Typed mid-frame bus-error rate, events per million attempts.
    pub error_per_million: u32,
    /// Latency-spike rate, events per million attempts.
    pub spike_per_million: u32,
    /// Magnitude of a latency spike in modeled microseconds.
    pub spike_us: u64,
    /// Firmware-hang rate (only the watchdog recovers the worker),
    /// events per million attempts.
    pub hang_per_million: u32,
    /// Worker-crash rate (the frame is lost mid-flight and the worker
    /// must re-warm), events per million attempts.
    pub crash_per_million: u32,
}

impl FaultSpec {
    /// True when no fault can ever fire (all rates zero).
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.total_per_million() == 0
    }

    /// Sum of all fault rates (must stay ≤ 1 000 000 to be a lottery).
    #[must_use]
    pub fn total_per_million(&self) -> u64 {
        u64::from(self.flip_per_million)
            + u64::from(self.error_per_million)
            + u64::from(self.spike_per_million)
            + u64::from(self.hang_per_million)
            + u64::from(self.crash_per_million)
    }

    /// Spike magnitude in cycles at `soc_hz`.
    #[must_use]
    pub fn spike_cycles(&self, soc_hz: u64) -> u64 {
        self.spike_us.saturating_mul(soc_hz / 1_000_000)
    }
}

impl FromStr for FaultSpec {
    type Err = String;

    /// Parse the CLI spelling: comma-separated `key=value` terms with
    /// keys `seed`, `flips`, `errors`, `spikes`, `spike-us`, `hangs`,
    /// `crashes` (rates in events per million frame attempts), e.g.
    /// `seed=7,errors=20000,hangs=5000,spike-us=500,spikes=10000`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut spec = FaultSpec::default();
        for term in s.split(',').filter(|t| !t.is_empty()) {
            let (key, value) = term.split_once('=').ok_or_else(|| {
                format!("fault-spec term `{term}` is not key=value (example: errors=20000)")
            })?;
            let num: u64 = value
                .parse()
                .map_err(|_| format!("fault-spec `{key}` value `{value}` is not an integer"))?;
            let rate = u32::try_from(num.min(1_000_000)).expect("clamped");
            match key {
                "seed" => spec.seed = num,
                "flips" => spec.flip_per_million = rate,
                "errors" => spec.error_per_million = rate,
                "spikes" => spec.spike_per_million = rate,
                "spike-us" => spec.spike_us = num,
                "hangs" => spec.hang_per_million = rate,
                "crashes" => spec.crash_per_million = rate,
                other => {
                    return Err(format!(
                        "unknown fault-spec key `{other}` \
                         (expected seed|flips|errors|spikes|spike-us|hangs|crashes)"
                    ))
                }
            }
        }
        Ok(spec)
    }
}

/// What the chaos machinery observed and did during one serving run.
/// All zeros when no faults are configured.
///
/// Every failed attempt resolves exactly one way, so the books always
/// balance:
/// `timeouts + bus_errors + corruptions_detected + crashes ==
///  retries + failovers + sheds + exhausted`
/// (a spike or hang that trips the watchdog is counted under
/// `timeouts`), and `offered == served + dropped` holds independently
/// — `tests/serve.rs` pins both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Firmware hangs injected (each also counts as a timeout — only
    /// the watchdog gets the worker back).
    pub hangs: u64,
    /// Attempts aborted by the per-request timeout (hangs, spikes or
    /// clean frames that outran the deadline).
    pub timeouts: u64,
    /// Retries performed after a failed attempt (each pays a
    /// modeled-time backoff on its worker).
    pub retries: u64,
    /// Typed mid-frame bus errors injected.
    pub bus_errors: u64,
    /// Silent corruptions injected and caught by the output
    /// fingerprint check at frame completion.
    pub corruptions_detected: u64,
    /// Latency spikes injected.
    pub spikes: u64,
    /// Worker crashes injected (each costs the re-warm recovery).
    pub crashes: u64,
    /// Crashed requests successfully failed over (requeued at the head
    /// of their model's queue within the admission bound).
    pub failovers: u64,
    /// Requests shed rather than retried: a retry storm pushed them
    /// hopelessly past their deadline, or a crash failover found the
    /// admission queue full.
    pub sheds: u64,
    /// Requests dropped because the retry budget ran out.
    pub exhausted: u64,
}

impl FaultReport {
    /// Total faults injected, of any kind.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.hangs + self.bus_errors + self.corruptions_detected + self.spikes + self.crashes
    }
}

/// One request of an open-loop trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival time in modeled cycles at the SoC clock.
    pub arrival: u64,
    /// Index of the resident model the request targets.
    pub model: usize,
}

/// A replayable open-loop request trace: arrivals in nondecreasing
/// modeled-cycle order, each tagged with a model index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// The requests, sorted by arrival cycle.
    pub requests: Vec<Request>,
    /// The window (in cycles) over which arrivals were generated; the
    /// offered rate is `requests.len()` per `duration` cycles.
    pub duration: u64,
}

impl RequestTrace {
    /// Generate a seeded trace: arrivals per `process` at a mean of
    /// `rate_rps` requests per second (of modeled time at `soc_hz`)
    /// over `duration` cycles, each request tagged with a model drawn
    /// uniformly from `0..models`. Deterministic: the same arguments
    /// always produce the bit-identical trace (`tests/properties.rs`
    /// pins the replay property).
    #[must_use]
    pub fn generate(
        process: ArrivalProcess,
        rate_rps: u64,
        duration: u64,
        models: usize,
        seed: u64,
        soc_hz: u64,
    ) -> Self {
        let mut requests = Vec::new();
        if rate_rps == 0 || models == 0 || soc_hz == 0 {
            return RequestTrace { requests, duration };
        }
        let mut rng = StdRng::seed_from_u64(seed);
        match process {
            ArrivalProcess::Poisson => {
                let mean_gap = soc_hz as f64 / rate_rps as f64;
                let mut t = 0.0f64;
                loop {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    t += -(1.0 - u).ln() * mean_gap;
                    if t >= duration as f64 {
                        break;
                    }
                    requests.push(Request {
                        arrival: t as u64,
                        model: rng.gen_range(0..models),
                    });
                }
            }
            ArrivalProcess::Fixed => {
                for i in 0u64.. {
                    let arrival =
                        u64::try_from(u128::from(i) * u128::from(soc_hz) / u128::from(rate_rps))
                            .unwrap_or(u64::MAX);
                    if arrival >= duration {
                        break;
                    }
                    requests.push(Request {
                        arrival,
                        model: rng.gen_range(0..models),
                    });
                }
            }
        }
        RequestTrace { requests, duration }
    }

    /// Offered request rate in requests per second of modeled time.
    #[must_use]
    pub fn offered_rate(&self, soc_hz: u64) -> f64 {
        if self.duration == 0 {
            return 0.0;
        }
        self.requests.len() as f64 * soc_hz as f64 / self.duration as f64
    }
}

/// The serving experiment: load, pool shape, dispatch and SLO target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSpec {
    /// Arrival spacing.
    pub process: ArrivalProcess,
    /// Offered request rate in requests per second of modeled time.
    pub rate_rps: u64,
    /// Length of the arrival window in modeled milliseconds.
    pub duration_ms: u64,
    /// Workload seed (arrival times, model mix, input bytes).
    pub seed: u64,
    /// Workers in the pool, each a warm SoC with every model resident.
    pub workers: usize,
    /// Dispatch policy over the queued models.
    pub policy: Policy,
    /// Pipelined worker mode: overlap the next request's input preload
    /// with the current frame's compute (per worker).
    pub pipelined: bool,
    /// Admission-queue bound; an arrival past it is dropped.
    pub queue_depth: usize,
    /// SLO target on total (queue wait + service) latency, in modeled
    /// microseconds.
    pub slo_us: u64,
    /// Per-request attempt timeout in modeled microseconds; 0 disables
    /// the watchdog (an attempt always runs to completion).
    pub timeout_us: u64,
    /// Bounded retry budget after a failed attempt (timeout, bus
    /// error, detected corruption). Requires a timeout — a retry is
    /// only meaningful when the previous attempt can be aborted.
    pub retries: u32,
    /// Frame-level chaos plan; `None` (and the all-quiet spec) keeps
    /// the simulator on the untouched fault-free fast path.
    pub faults: Option<FaultSpec>,
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec {
            process: ArrivalProcess::Poisson,
            rate_rps: 150,
            duration_ms: 400,
            seed: 42,
            workers: 1,
            policy: Policy::RoundRobin,
            pipelined: false,
            queue_depth: 8,
            slo_us: 20_000,
            timeout_us: 0,
            retries: 0,
            faults: None,
        }
    }
}

impl ServeSpec {
    /// Reject degenerate parameters with a clear message: a rate,
    /// duration, worker count or queue depth of zero describes no
    /// serving system at all.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.rate_rps == 0 {
            return Err(ServeError::Config("--rate must be >= 1 request/s".into()));
        }
        if self.duration_ms == 0 {
            return Err(ServeError::Config("--duration must be >= 1 ms".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::Config("--workers must be >= 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::Config(
                "--queue-depth must be >= 1 (an unqueued server drops every burst)".into(),
            ));
        }
        if self.retries > 0 && self.timeout_us == 0 {
            return Err(ServeError::Config(
                "--retries needs --timeout-us: a retry is only possible once the \
                 previous attempt can be aborted"
                    .into(),
            ));
        }
        if let Some(f) = &self.faults {
            if self.pipelined {
                return Err(ServeError::Config(
                    "--faults is not supported with --pipelined workers yet \
                     (fault recovery would tear the preload overlap; run the \
                     chaos experiment on serial workers)"
                        .into(),
                ));
            }
            if f.hang_per_million > 0 && self.timeout_us == 0 {
                return Err(ServeError::Config(
                    "a fault spec with hangs needs --timeout-us: a hung firmware \
                     never returns without a watchdog"
                        .into(),
                ));
            }
            if f.total_per_million() > 1_000_000 {
                return Err(ServeError::Config(format!(
                    "fault rates sum to {} per million attempts (must be <= 1000000)",
                    f.total_per_million()
                )));
            }
        }
        Ok(())
    }

    /// The arrival window in cycles at `soc_hz`.
    #[must_use]
    pub fn duration_cycles(&self, soc_hz: u64) -> u64 {
        self.duration_ms.saturating_mul(soc_hz / 1000)
    }

    /// The SLO target in cycles at `soc_hz`.
    #[must_use]
    pub fn slo_cycles(&self, soc_hz: u64) -> u64 {
        self.slo_us.saturating_mul(soc_hz / 1_000_000)
    }

    /// The per-attempt timeout in cycles at `soc_hz` (0 = disabled).
    #[must_use]
    pub fn timeout_cycles(&self, soc_hz: u64) -> u64 {
        self.timeout_us.saturating_mul(soc_hz / 1_000_000)
    }
}

/// Serving failure.
#[derive(Debug)]
pub enum ServeError {
    /// A degenerate or inconsistent specification.
    Config(String),
    /// The underlying batch machinery failed (model load, firmware,
    /// a frame run).
    Batch(BatchError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "{msg}"),
            ServeError::Batch(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Config(_) => None,
            ServeError::Batch(e) => Some(e),
        }
    }
}

impl From<BatchError> for ServeError {
    fn from(e: BatchError) -> Self {
        ServeError::Batch(e)
    }
}

/// Calibrated modeled service costs of the resident model set — the
/// deterministic per-model and per-pair cycle counts the queueing
/// simulation runs on. Measured once per server on a real SoC
/// ([`ServiceModel::calibrate`]); the replay check
/// ([`ServeReport::replay_divergence`]) proves they stay exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceModel {
    /// Quiet input-preload cycles into the model's own input buffer
    /// (the serial worker's per-frame preload cost).
    pub preload: Vec<u64>,
    /// Quiet input-preload cycles into the double-buffer staging slot
    /// (the pipelined worker's burst-fill cost).
    pub fill: Vec<u64>,
    /// Warm compute cycles with nothing streaming behind the frame.
    pub compute: Vec<u64>,
    /// `compute_with[cur][next]`: `cur`'s compute cycles while `next`'s
    /// input streams behind it and contends at the DRAM arbiter.
    pub compute_with: Vec<Vec<u64>>,
    /// `preload_done[cur][next]`: the cycle, on `cur`'s frame timeline,
    /// at which `next`'s overlapped preload completes (may exceed
    /// `compute_with[cur][next]` when compute is too short to hide it).
    pub preload_done: Vec<Vec<u64>>,
    /// Modeled cycles to re-warm a crashed worker: reset the SoC and
    /// re-pin every resident weight image through the quiet PS preload
    /// path ([`Soc::rewarm`]), charged before the worker rejoins the
    /// pool.
    pub rewarm: u64,
}

impl ServiceModel {
    /// Number of models the profile covers.
    #[must_use]
    pub fn models(&self) -> usize {
        self.compute.len()
    }

    /// Measure the profile on a real SoC: every model pinned resident
    /// at its compiled base, one warm frame per model (serial compute),
    /// and one staged pair per ordered `(cur, next)` combination (the
    /// pipelined contention matrix). `N + N²` frames total, after which
    /// the scratch SoC is dropped.
    ///
    /// # Errors
    ///
    /// [`ServeError::Batch`] when a model fails to pin, its firmware
    /// fails to build, or a calibration frame fails.
    pub fn calibrate(
        config: &SocConfig,
        artifacts: &[Arc<Artifacts>],
        codegen: CodegenOptions,
    ) -> Result<Self, ServeError> {
        let n = artifacts.len();
        if n == 0 {
            return Err(ServeError::Config(
                "serving needs at least one model".into(),
            ));
        }
        let mut soc = Soc::new(config.clone());
        let mut fws = Vec::with_capacity(n);
        for a in artifacts {
            let fw = Firmware::build_with(a, codegen).map_err(BatchError::Firmware)?;
            soc.load_artifacts(a).map_err(BatchError::Load)?;
            fws.push(fw);
        }
        let zeros: Vec<Vec<u8>> = artifacts.iter().map(|a| vec![0u8; a.input_len]).collect();
        let run_err = |a: &Arc<Artifacts>| {
            let model = a.model.clone();
            move |source| BatchError::Run { model, source }
        };

        let mut compute = Vec::with_capacity(n);
        for (m, a) in artifacts.iter().enumerate() {
            let r = soc
                .run_firmware(a, &zeros[m], &fws[m])
                .map_err(run_err(a))?;
            compute.push(r.cycles);
        }
        let preload: Vec<u64> = artifacts
            .iter()
            .map(|a| soc.input_preload_cycles(a.input_addr, a.input_len))
            .collect();
        // Re-warm recovery cost: streaming every resident weight image
        // back in over the quiet fabric (a crashed worker re-pins all
        // models before taking work again).
        let rewarm: u64 = artifacts
            .iter()
            .flat_map(|a| a.weights.segments())
            .map(|seg| soc.input_preload_cycles(seg.addr, seg.bytes.len()))
            .sum();

        let (slots, _) = input_slots(artifacts);
        soc.set_pipelined(true);
        // Burst fill: measured through the real PS path (not the
        // analytic model) from the post-run fabric state a burst start
        // actually sees.
        let mut fill = Vec::with_capacity(n);
        for (m, a) in artifacts.iter().enumerate() {
            soc.quiesce();
            let done = soc
                .ps_stream(slots[0], &zeros[m], 0)
                .map_err(BatchError::Load)?;
            fill.push(done);
            // Consume the staged bytes so the next measurement starts
            // from the same just-ran state.
            soc.run_firmware_staged(a, slots[0], &fws[m], None)
                .map_err(run_err(a))?;
        }
        let mut compute_with = vec![vec![0u64; n]; n];
        let mut preload_done = vec![vec![0u64; n]; n];
        for (cur, a) in artifacts.iter().enumerate() {
            for next in 0..n {
                soc.quiesce();
                soc.ps_stream(slots[0], &zeros[cur], 0)
                    .map_err(BatchError::Load)?;
                let out = soc
                    .run_firmware_staged(a, slots[0], &fws[cur], Some((slots[1], &zeros[next])))
                    .map_err(run_err(a))?;
                compute_with[cur][next] = out.result.cycles;
                preload_done[cur][next] = out.preload_done;
            }
        }
        Ok(ServiceModel {
            preload,
            fill,
            compute,
            compute_with,
            preload_done,
            rewarm,
        })
    }
}

/// Latency percentiles over one distribution of modeled cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Arithmetic mean.
    pub mean: u64,
    /// Maximum.
    pub max: u64,
}

impl LatencyStats {
    /// Compute the statistics of `samples` (sorted in place). All
    /// zeros when empty.
    #[must_use]
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let sum: u128 = samples.iter().map(|&v| u128::from(v)).sum();
        LatencyStats {
            p50: percentile(samples, 50.0),
            p95: percentile(samples, 95.0),
            p99: percentile(samples, 99.0),
            mean: u64::try_from(sum / samples.len() as u128).unwrap_or(u64::MAX),
            max: *samples.last().expect("nonempty"),
        }
    }

    /// `{"p50", "p95", "p99", "mean", "max"}`, in cycles.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut m = std::collections::BTreeMap::new();
        m.insert("p50".to_string(), Json::Int(self.p50));
        m.insert("p95".to_string(), Json::Int(self.p95));
        m.insert("p99".to_string(), Json::Int(self.p99));
        m.insert("mean".to_string(), Json::Int(self.mean));
        m.insert("max".to_string(), Json::Int(self.max));
        Json::Obj(m)
    }
}

/// Nearest-rank percentile of an already **sorted** sample set:
/// the smallest value such that at least `pct`% of the samples are at
/// or below it. 0 when empty. Monotone in `pct` by construction
/// (`tests/properties.rs` pins p50 ≤ p95 ≤ p99).
#[must_use]
pub fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = ((pct / 100.0) * n as f64).ceil().max(0.0) as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Per-model serving outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeModelStats {
    /// Model name.
    pub name: String,
    /// Requests the trace offered for this model.
    pub offered: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests dropped at the admission queue.
    pub dropped: u64,
    /// Service-latency statistics of the served requests.
    pub service: LatencyStats,
    /// Total-latency (queue wait + service) statistics.
    pub total: LatencyStats,
    /// Served requests whose total latency met the SLO target.
    pub slo_attained: u64,
}

/// Per-worker serving outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Frames the worker served.
    pub frames: u64,
    /// Modeled cycles the worker spent busy (preload fills, compute
    /// windows).
    pub busy_cycles: u64,
}

/// What one request experienced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Served to completion.
    Served {
        /// Worker that ran the frame.
        worker: usize,
        /// Arrival → dispatch (see the [module docs](self) for the
        /// split's exact meaning per worker mode).
        queue_wait: u64,
        /// Dispatch → completion.
        service: u64,
        /// Absolute completion cycle.
        completion: u64,
    },
    /// Dropped at the admission queue (queue full, no idle worker).
    Dropped,
}

/// One request's record in a [`ServeReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Model the request targeted.
    pub model: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// What happened to it.
    pub outcome: RequestOutcome,
}

/// Result of serving one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Dispatch policy used.
    pub policy: Policy,
    /// Whether workers ran in the pipelined mode.
    pub pipelined: bool,
    /// Worker-pool size.
    pub workers: usize,
    /// Admission-queue bound.
    pub queue_depth: usize,
    /// Arrival process.
    pub process: ArrivalProcess,
    /// Configured offered rate in requests per second.
    pub rate_rps: u64,
    /// Workload seed.
    pub seed: u64,
    /// SoC clock the cycle figures are denominated in.
    pub soc_hz: u64,
    /// Arrival-window length in cycles.
    pub duration_cycles: u64,
    /// SLO target in cycles.
    pub slo_cycles: u64,
    /// Requests the trace offered.
    pub offered: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests dropped at the admission queue.
    pub dropped: u64,
    /// Last completion cycle (0 when nothing was served).
    pub makespan_cycles: u64,
    /// Queue-wait statistics of the served requests.
    pub queue_wait: LatencyStats,
    /// Service-latency statistics of the served requests.
    pub service: LatencyStats,
    /// Total-latency (queue wait + service) statistics.
    pub total: LatencyStats,
    /// Per-model breakdown, in model order.
    pub per_model: Vec<ServeModelStats>,
    /// Per-worker breakdown, in worker order.
    pub per_worker: Vec<WorkerStats>,
    /// Served requests whose total latency met the SLO target.
    pub slo_attained: u64,
    /// Per-request records, in trace order.
    pub records: Vec<RequestRecord>,
    /// What the chaos machinery observed and did (all zeros without a
    /// fault plan or timeout).
    pub faults: FaultReport,
    /// Frames whose replayed (real-SoC) latency disagreed with the
    /// simulated plan: 0 after [`Server::serve`] on a healthy build,
    /// and always 0 after a plan-only [`Server::plan`].
    pub replay_divergence: u64,
    /// Host wall-clock seconds spent (calibration excluded).
    pub host_seconds: f64,
}

impl ServeReport {
    /// Offered request rate in requests per second of modeled time.
    #[must_use]
    pub fn offered_rate(&self) -> f64 {
        if self.duration_cycles == 0 {
            return 0.0;
        }
        self.offered as f64 * self.soc_hz as f64 / self.duration_cycles as f64
    }

    /// Achieved (served) request rate in requests per second of
    /// modeled time, over the longer of the arrival window and the
    /// drain. Never exceeds [`ServeReport::offered_rate`]
    /// (`tests/properties.rs` pins the invariant).
    #[must_use]
    pub fn achieved_rate(&self) -> f64 {
        let span = self.duration_cycles.max(self.makespan_cycles);
        if span == 0 {
            return 0.0;
        }
        self.served as f64 * self.soc_hz as f64 / span as f64
    }

    /// Fraction of offered requests dropped at the admission queue.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.dropped as f64 / self.offered as f64
    }

    /// Fraction of **offered** requests whose total latency met the
    /// SLO target — a dropped request is an SLO miss, not a footnote.
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.slo_attained as f64 / self.offered as f64
    }

    /// Publish this report into a [`MetricsRegistry`] under the
    /// `serve.*` namespace: outcome and fault counters, plus one
    /// observation per served request in the
    /// `serve.queue_wait_cycles` / `serve.service_cycles` /
    /// `serve.total_cycles` histograms.
    pub fn publish(&self, metrics: &MetricsRegistry) {
        metrics.counter("serve.offered", self.offered);
        metrics.counter("serve.served", self.served);
        metrics.counter("serve.dropped", self.dropped);
        metrics.counter("serve.slo_attained", self.slo_attained);
        metrics.counter("serve.makespan_cycles", self.makespan_cycles);
        metrics.counter("serve.fault.hangs", self.faults.hangs);
        metrics.counter("serve.fault.timeouts", self.faults.timeouts);
        metrics.counter("serve.fault.retries", self.faults.retries);
        metrics.counter("serve.fault.bus_errors", self.faults.bus_errors);
        metrics.counter(
            "serve.fault.corruptions_detected",
            self.faults.corruptions_detected,
        );
        metrics.counter("serve.fault.spikes", self.faults.spikes);
        metrics.counter("serve.fault.crashes", self.faults.crashes);
        metrics.counter("serve.fault.failovers", self.faults.failovers);
        metrics.counter("serve.fault.sheds", self.faults.sheds);
        metrics.counter("serve.fault.exhausted", self.faults.exhausted);
        for rec in &self.records {
            if let RequestOutcome::Served {
                queue_wait,
                service,
                ..
            } = rec.outcome
            {
                metrics.histogram("serve.queue_wait_cycles", queue_wait);
                metrics.histogram("serve.service_cycles", service);
                metrics.histogram("serve.total_cycles", queue_wait + service);
            }
        }
    }

    /// Structured report for `rv-nvdla serve --json`. Carries every
    /// **modeled** quantity and omits host wall-clock, so two runs of
    /// the same spec print byte-identical JSON (`tests/cli.rs` pins
    /// the round trip). Cycle figures are denominated in `soc_hz`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(
            "policy".to_string(),
            Json::Str(self.policy.name().to_string()),
        );
        m.insert("pipelined".to_string(), Json::Bool(self.pipelined));
        m.insert("workers".to_string(), Json::Int(self.workers as u64));
        m.insert(
            "queue_depth".to_string(),
            Json::Int(self.queue_depth as u64),
        );
        m.insert(
            "arrivals".to_string(),
            Json::Str(self.process.name().to_string()),
        );
        m.insert("rate_rps".to_string(), Json::Int(self.rate_rps));
        m.insert("seed".to_string(), Json::Int(self.seed));
        m.insert("soc_hz".to_string(), Json::Int(self.soc_hz));
        m.insert(
            "duration_cycles".to_string(),
            Json::Int(self.duration_cycles),
        );
        m.insert("slo_cycles".to_string(), Json::Int(self.slo_cycles));
        m.insert("offered".to_string(), Json::Int(self.offered));
        m.insert("served".to_string(), Json::Int(self.served));
        m.insert("dropped".to_string(), Json::Int(self.dropped));
        m.insert(
            "makespan_cycles".to_string(),
            Json::Int(self.makespan_cycles),
        );
        m.insert("queue_wait".to_string(), self.queue_wait.to_json());
        m.insert("service".to_string(), self.service.to_json());
        m.insert("total".to_string(), self.total.to_json());
        m.insert("slo_attained".to_string(), Json::Int(self.slo_attained));
        m.insert(
            "replay_divergence".to_string(),
            Json::Int(self.replay_divergence),
        );
        m.insert(
            "per_model".to_string(),
            Json::Arr(
                self.per_model
                    .iter()
                    .map(|s| {
                        let mut mm = BTreeMap::new();
                        mm.insert("name".to_string(), Json::Str(s.name.clone()));
                        mm.insert("offered".to_string(), Json::Int(s.offered));
                        mm.insert("served".to_string(), Json::Int(s.served));
                        mm.insert("dropped".to_string(), Json::Int(s.dropped));
                        mm.insert("service".to_string(), s.service.to_json());
                        mm.insert("total".to_string(), s.total.to_json());
                        mm.insert("slo_attained".to_string(), Json::Int(s.slo_attained));
                        Json::Obj(mm)
                    })
                    .collect(),
            ),
        );
        m.insert(
            "per_worker".to_string(),
            Json::Arr(
                self.per_worker
                    .iter()
                    .map(|w| {
                        let mut wm = BTreeMap::new();
                        wm.insert("frames".to_string(), Json::Int(w.frames));
                        wm.insert("busy_cycles".to_string(), Json::Int(w.busy_cycles));
                        Json::Obj(wm)
                    })
                    .collect(),
            ),
        );
        let f = &self.faults;
        let mut fm = BTreeMap::new();
        fm.insert("hangs".to_string(), Json::Int(f.hangs));
        fm.insert("timeouts".to_string(), Json::Int(f.timeouts));
        fm.insert("retries".to_string(), Json::Int(f.retries));
        fm.insert("bus_errors".to_string(), Json::Int(f.bus_errors));
        fm.insert(
            "corruptions_detected".to_string(),
            Json::Int(f.corruptions_detected),
        );
        fm.insert("spikes".to_string(), Json::Int(f.spikes));
        fm.insert("crashes".to_string(), Json::Int(f.crashes));
        fm.insert("failovers".to_string(), Json::Int(f.failovers));
        fm.insert("sheds".to_string(), Json::Int(f.sheds));
        fm.insert("exhausted".to_string(), Json::Int(f.exhausted));
        m.insert("faults".to_string(), Json::Obj(fm));
        Json::Obj(m)
    }
}

/// One planned frame of a worker burst: which request, and the modeled
/// per-frame latency ([`crate::batch::FrameLatency`] semantics) the
/// replay must reproduce.
#[derive(Debug, Clone, Copy)]
struct PlannedFrame {
    request: usize,
    predicted: u64,
}

/// A worker's dispatch plan: bursts of frames. In the pipelined mode a
/// burst is a maximal chain of overlap-staged frames (one pipeline
/// fill each); a serial worker has one burst holding every frame.
#[derive(Debug, Clone, Default)]
struct WorkerPlan {
    bursts: Vec<Vec<PlannedFrame>>,
}

impl WorkerPlan {
    fn frames(&self) -> usize {
        self.bursts.iter().map(Vec::len).sum()
    }
}

/// What one frame attempt drew from the chaos lottery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameFault {
    /// Silent output corruption, caught by the fingerprint check.
    Flip,
    /// Typed mid-frame bus error.
    BusErr,
    /// The frame completes but takes a latency spike.
    Spike,
    /// The firmware hangs; only the watchdog recovers the worker.
    Hang,
    /// The worker crashes mid-frame and must re-warm.
    Crash,
}

/// Draw the fault (if any) for one `(request, attempt)` — a pure
/// function of the spec's seed, so fault traces replay bit-identically.
fn draw_fault(f: &FaultSpec, request: usize, attempt: u32) -> Option<FrameFault> {
    let h = mix64(
        mix64(f.seed ^ (request as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ u64::from(attempt),
    );
    let lot = h % 1_000_000;
    let mut edge = u64::from(f.flip_per_million);
    if lot < edge {
        return Some(FrameFault::Flip);
    }
    edge += u64::from(f.error_per_million);
    if lot < edge {
        return Some(FrameFault::BusErr);
    }
    edge += u64::from(f.spike_per_million);
    if lot < edge {
        return Some(FrameFault::Spike);
    }
    edge += u64::from(f.hang_per_million);
    if lot < edge {
        return Some(FrameFault::Hang);
    }
    edge += u64::from(f.crash_per_million);
    if lot < edge {
        return Some(FrameFault::Crash);
    }
    None
}

/// Mutable fault-machinery state threaded through the simulation.
struct ChaosCtx {
    /// The armed plan (`None` = never faults; a timeout may still arm
    /// the chaos path on its own).
    faults: Option<FaultSpec>,
    /// Spike magnitude in cycles.
    spike_cycles: u64,
    /// Per-attempt timeout in cycles (0 = none).
    timeout: u64,
    /// Retry budget per request.
    retries: u32,
    /// Shed a retry once a request is this many cycles past arrival.
    shed_after: u64,
    /// Attempts consumed per request (survives a crash failover, so a
    /// requeued request never re-draws the fault that killed it).
    attempts: Vec<u32>,
    report: FaultReport,
}

impl ChaosCtx {
    /// True when the simulator must leave the fault-free fast path.
    fn armed(&self) -> bool {
        self.faults.is_some() || self.timeout > 0
    }
}

/// Event-driven state of one simulated worker.
struct SimWorker {
    /// When the worker's next decision point occurs.
    free_at: u64,
    /// Pipelined mode: the request whose input is (being) staged and
    /// whose compute starts at `free_at`.
    staged: Option<usize>,
    /// Completion cycle of the previous frame in the open burst.
    burst_prev_completion: u64,
    stats: WorkerStats,
    plan: WorkerPlan,
}

/// The admission queue plus dispatch-policy state.
struct Dispatcher<'a> {
    service: &'a ServiceModel,
    policy: Policy,
    /// Per-model FIFO of queued request indices.
    queues: Vec<VecDeque<usize>>,
    queued: usize,
    /// Round-robin rotation cursor.
    cursor: usize,
}

impl Dispatcher<'_> {
    /// Pick the model to dequeue next, mirroring
    /// [`Policy`]'s semantics in [`crate::batch`]: `current` is the
    /// model about to compute while the picked request's input streams
    /// behind it (pipelined); estimates come from the calibrated
    /// profile rather than batch's last-observed cycles, since a
    /// server knows its residents. `None` when the queue is empty.
    fn pick(&mut self, current: Option<usize>) -> Option<usize> {
        let n = self.queues.len();
        match self.policy {
            Policy::RoundRobin => {
                let pick = (0..n)
                    .map(|off| (self.cursor + off) % n)
                    .find(|&m| !self.queues[m].is_empty())?;
                self.cursor = (pick + 1) % n;
                Some(pick)
            }
            Policy::ShortestQueueFirst => self
                .queues
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .min_by_key(|(m, q)| (q.len(), *m))
                .map(|(m, _)| m),
            Policy::EarliestFinish => {
                let hide = current.map_or(0, |c| self.service.compute[c]);
                self.queues
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| !q.is_empty())
                    .min_by_key(|(m, _)| {
                        (
                            self.service.preload[*m].max(hide) + self.service.compute[*m],
                            *m,
                        )
                    })
                    .map(|(m, _)| m)
            }
        }
    }

    /// Dequeue the FIFO head of the picked model.
    fn pop(&mut self, model: usize) -> usize {
        self.queued -= 1;
        self.queues[model].pop_front().expect("picked nonempty")
    }

    fn enqueue(&mut self, model: usize, request: usize) {
        self.queues[model].push_back(request);
        self.queued += 1;
    }

    /// Put a failed-over request back at the head of its model's FIFO:
    /// it was already admitted and dequeued once, so it must not lose
    /// its place behind later arrivals.
    fn requeue_front(&mut self, model: usize, request: usize) {
        self.queues[model].push_front(request);
        self.queued += 1;
    }
}

/// Span-emission context for one simulation: the tracer handle plus the
/// tracks its spans land on and the model names used as labels. With a
/// disarmed tracer the track ids are all [`TrackId::NONE`] and every
/// emission site below is one `is_armed` branch — the whole struct is
/// inert.
struct ServeTrace<'a> {
    tracer: &'a Tracer,
    names: &'a [String],
    /// One sync track per worker ("worker N"); empty when disarmed.
    workers: Vec<TrackId>,
    /// One async track for the admission queue (waits overlap).
    queue: TrackId,
}

impl<'a> ServeTrace<'a> {
    fn new(tracer: &'a Tracer, names: &'a [String], workers: usize) -> ServeTrace<'a> {
        let worker_tracks = if tracer.is_armed() {
            (0..workers)
                .map(|w| tracer.track(&format!("worker {w}"), TrackKind::Sync))
                .collect()
        } else {
            Vec::new()
        };
        ServeTrace {
            tracer,
            names,
            workers: worker_tracks,
            queue: tracer.track("queue", TrackKind::Async),
        }
    }

    /// A request's wait in the admission queue, `[arrival, dispatch]`.
    fn queue_wait(&self, arrival: u64, dispatch: u64, req: usize) {
        if self.tracer.is_armed() {
            self.tracer.span(
                self.queue,
                SpanKind::QueueWait,
                arrival,
                dispatch,
                &format!("req {req}"),
            );
        }
    }
}

/// Run the queueing system over `trace` in modeled time and build the
/// report plus per-worker dispatch plans. Pure: no SoC is touched, so
/// this scales to arbitrarily long traces (and is what the property
/// tests drive with synthetic profiles). Spans land in `tracer`
/// (disarmed in the plain [`simulate`] path); emission only records
/// values this function computed anyway, which is what keeps the traced
/// run bit- and cycle-identical to the untraced one.
fn simulate_plan(
    trace: &RequestTrace,
    service: &ServiceModel,
    spec: &ServeSpec,
    names: &[String],
    soc_hz: u64,
    tracer: &Tracer,
) -> (ServeReport, Vec<WorkerPlan>) {
    assert_eq!(
        names.len(),
        service.models(),
        "one name per calibrated model"
    );
    let n = service.models();
    let mut disp = Dispatcher {
        service,
        policy: spec.policy,
        queues: vec![VecDeque::new(); n],
        queued: 0,
        cursor: 0,
    };
    let mut workers: Vec<SimWorker> = (0..spec.workers)
        .map(|_| SimWorker {
            free_at: 0,
            staged: None,
            burst_prev_completion: 0,
            stats: WorkerStats::default(),
            plan: WorkerPlan::default(),
        })
        .collect();
    let mut records: Vec<RequestRecord> = trace
        .requests
        .iter()
        .map(|r| RequestRecord {
            model: r.model,
            arrival: r.arrival,
            outcome: RequestOutcome::Dropped,
        })
        .collect();
    let slo_cycles = spec.slo_cycles(soc_hz);
    let timeout = spec.timeout_cycles(soc_hz);
    let mut chaos = ChaosCtx {
        faults: spec.faults.filter(|f| !f.is_quiet()),
        spike_cycles: spec.faults.map_or(0, |f| f.spike_cycles(soc_hz)),
        timeout,
        retries: spec.retries,
        shed_after: 4 * slo_cycles.max(timeout),
        attempts: vec![0u32; trace.requests.len()],
        report: FaultReport::default(),
    };
    let tr = ServeTrace::new(tracer, names, spec.workers);

    /// Advance one worker's state machine at its decision point.
    #[allow(clippy::too_many_arguments)]
    fn step(
        w: usize,
        workers: &mut [SimWorker],
        disp: &mut Dispatcher<'_>,
        records: &mut [RequestRecord],
        service: &ServiceModel,
        pipelined: bool,
        queue_depth: usize,
        chaos: &mut ChaosCtx,
        tr: &ServeTrace<'_>,
    ) {
        let now = workers[w].free_at;
        if pipelined {
            if let Some(req) = workers[w].staged.take() {
                // The staged request computes now; try to overlap the
                // next pick's preload behind it.
                let m = records[req].model;
                let next = disp.pick(Some(m));
                let (compute, window) = match next {
                    Some(nm) => {
                        let nr = disp.pop(nm);
                        workers[w].staged = Some(nr);
                        let c = service.compute_with[m][nm];
                        (c, c.max(service.preload_done[m][nm]))
                    }
                    None => (service.compute[m], service.compute[m]),
                };
                let completion = now + compute;
                if tr.tracer.is_armed() {
                    tr.queue_wait(records[req].arrival, now, req);
                    tr.tracer.span(
                        tr.workers[w],
                        SpanKind::Compute,
                        now,
                        completion,
                        &tr.names[m],
                    );
                    if window > compute {
                        // The staged successor's input still streaming
                        // after this frame's compute retired.
                        let nm = workers[w]
                            .staged
                            .map(|r| records[r].model)
                            .expect("window exceeds compute only when a successor is staged");
                        tr.tracer.span(
                            tr.workers[w],
                            SpanKind::PsBurst,
                            completion,
                            now + window,
                            &tr.names[nm],
                        );
                    }
                }
                records[req].outcome = RequestOutcome::Served {
                    worker: w,
                    queue_wait: now - records[req].arrival,
                    service: compute,
                    completion,
                };
                let burst = workers[w]
                    .plan
                    .bursts
                    .last_mut()
                    .expect("staged frame has an open burst");
                burst.push(PlannedFrame {
                    request: req,
                    predicted: completion - workers[w].burst_prev_completion,
                });
                workers[w].burst_prev_completion = completion;
                workers[w].stats.frames += 1;
                workers[w].stats.busy_cycles += window;
                workers[w].free_at = now + window;
            } else {
                // Burst start: dequeue and stream the fill.
                let m = disp.pick(None).expect("step called with work");
                let req = disp.pop(m);
                if tr.tracer.is_armed() {
                    tr.tracer.span(
                        tr.workers[w],
                        SpanKind::PsBurst,
                        now,
                        now + service.fill[m],
                        &tr.names[m],
                    );
                }
                workers[w].staged = Some(req);
                workers[w].plan.bursts.push(Vec::new());
                workers[w].burst_prev_completion = now;
                workers[w].stats.busy_cycles += service.fill[m];
                workers[w].free_at = now + service.fill[m];
            }
        } else {
            let m = disp.pick(None).expect("step called with work");
            let req = disp.pop(m);
            let svc = service.preload[m] + service.compute[m];
            if !chaos.armed() {
                // Fault-free fast path: byte-identical behaviour (and
                // report) to a build without the chaos machinery.
                if tr.tracer.is_armed() {
                    tr.queue_wait(records[req].arrival, now, req);
                    let track = tr.workers[w];
                    tr.tracer.span(
                        track,
                        SpanKind::Preload,
                        now,
                        now + service.preload[m],
                        &tr.names[m],
                    );
                    tr.tracer.span(
                        track,
                        SpanKind::Compute,
                        now + service.preload[m],
                        now + svc,
                        &tr.names[m],
                    );
                }
                records[req].outcome = RequestOutcome::Served {
                    worker: w,
                    queue_wait: now - records[req].arrival,
                    service: svc,
                    completion: now + svc,
                };
                if workers[w].plan.bursts.is_empty() {
                    workers[w].plan.bursts.push(Vec::new());
                }
                workers[w].plan.bursts[0].push(PlannedFrame {
                    request: req,
                    predicted: svc,
                });
                workers[w].stats.frames += 1;
                workers[w].stats.busy_cycles += svc;
                workers[w].free_at = now + svc;
                return;
            }
            // Chaos path: the worker holds the request through a
            // bounded retry loop on its own modeled timeline (retry
            // affinity — failed attempts and backoffs burn this
            // worker's cycles, they never go back through the queue).
            let arrival = records[req].arrival;
            // A crash-requeued request can land on a worker whose clock
            // is still behind the request's arrival (it sat idle through
            // the crash and its clock never advanced); the frame
            // physically starts once both the worker and the request
            // exist.
            let dispatch = now.max(arrival);
            let mut start = dispatch;
            let mut served: Option<u64> = None;
            let mut crashed = false;
            loop {
                let attempt = chaos.attempts[req];
                chaos.attempts[req] += 1;
                let fault = chaos
                    .faults
                    .as_ref()
                    .and_then(|f| draw_fault(f, req, attempt));
                let burn = match fault {
                    None | Some(FrameFault::Spike) => {
                        let dur = if fault == Some(FrameFault::Spike) {
                            chaos.report.spikes += 1;
                            svc.saturating_add(chaos.spike_cycles)
                        } else {
                            svc
                        };
                        if chaos.timeout > 0 && dur > chaos.timeout {
                            // The watchdog aborts the attempt at the
                            // deadline.
                            chaos.report.timeouts += 1;
                            chaos.timeout
                        } else {
                            served = Some(dur);
                            dur
                        }
                    }
                    Some(FrameFault::BusErr) => {
                        // A typed bus error surfaces mid-frame.
                        chaos.report.bus_errors += 1;
                        svc / 2
                    }
                    Some(FrameFault::Flip) => {
                        // Silent corruption: the frame runs to
                        // completion; the output fingerprint check
                        // catches it there.
                        chaos.report.corruptions_detected += 1;
                        svc
                    }
                    Some(FrameFault::Hang) => {
                        // A hung poll loop: only the watchdog (the
                        // validated-nonzero timeout) gets us back.
                        chaos.report.hangs += 1;
                        chaos.report.timeouts += 1;
                        chaos.timeout
                    }
                    Some(FrameFault::Crash) => {
                        chaos.report.crashes += 1;
                        crashed = true;
                        svc / 2
                    }
                };
                if served.is_some() {
                    break;
                }
                if tr.tracer.is_armed() {
                    // The failed attempt's burn, labeled by what killed it.
                    let label = match fault {
                        None | Some(FrameFault::Spike) => "timeout",
                        Some(FrameFault::BusErr) => "bus_err",
                        Some(FrameFault::Flip) => "corrupt",
                        Some(FrameFault::Hang) => "hang",
                        Some(FrameFault::Crash) => "crash",
                    };
                    tr.tracer
                        .span(tr.workers[w], SpanKind::Retry, start, start + burn, label);
                }
                start += burn;
                if crashed {
                    break;
                }
                // The attempt failed: exhaust, shed, or back off and
                // retry on this same worker.
                if attempt >= chaos.retries {
                    chaos.report.exhausted += 1;
                    break;
                }
                let backoff = (chaos.timeout / 2).saturating_mul(1u64 << attempt.min(20));
                if start.saturating_sub(arrival).saturating_add(backoff) > chaos.shed_after {
                    chaos.report.sheds += 1;
                    break;
                }
                chaos.report.retries += 1;
                if tr.tracer.is_armed() {
                    tr.tracer.span(
                        tr.workers[w],
                        SpanKind::Retry,
                        start,
                        start + backoff,
                        "backoff",
                    );
                }
                start += backoff;
            }
            if let Some(dur) = served {
                let completion = start + dur;
                if tr.tracer.is_armed() {
                    tr.queue_wait(arrival, start, req);
                    let track = tr.workers[w];
                    tr.tracer.span(
                        track,
                        SpanKind::Preload,
                        start,
                        start + service.preload[m],
                        &tr.names[m],
                    );
                    tr.tracer.span(
                        track,
                        SpanKind::Compute,
                        start + service.preload[m],
                        completion,
                        &tr.names[m],
                    );
                }
                records[req].outcome = RequestOutcome::Served {
                    worker: w,
                    queue_wait: start - arrival,
                    service: dur,
                    completion,
                };
                if workers[w].plan.bursts.is_empty() {
                    workers[w].plan.bursts.push(Vec::new());
                }
                // The replay runs the clean frame: fault burns exist
                // only in modeled time (their bus-level realism is
                // pinned by the soc chaos tests), so the predicted
                // frame latency stays the clean cost — which is what
                // keeps replay divergence at zero under faults.
                workers[w].plan.bursts[0].push(PlannedFrame {
                    request: req,
                    predicted: svc,
                });
                workers[w].stats.frames += 1;
                workers[w].stats.busy_cycles += completion - dispatch;
                workers[w].free_at = completion;
            } else if crashed {
                // Failover: the in-flight request goes back to the
                // head of its queue (keeping its attempt history, so a
                // serially-crashing request exhausts its budget rather
                // than ping-ponging forever) if the admission bound
                // still has room; the worker pays the re-warm recovery
                // before taking more work either way.
                let attempt_used = chaos.attempts[req] - 1;
                if attempt_used >= chaos.retries {
                    chaos.report.exhausted += 1;
                } else if disp.queued < queue_depth {
                    disp.requeue_front(m, req);
                    chaos.report.failovers += 1;
                } else {
                    chaos.report.sheds += 1;
                }
                let free = start.saturating_add(service.rewarm);
                if tr.tracer.is_armed() {
                    tr.tracer
                        .span(tr.workers[w], SpanKind::Rewarm, start, free, &tr.names[m]);
                }
                workers[w].stats.busy_cycles += free - dispatch;
                workers[w].free_at = free;
            } else {
                // Shed or exhausted: the request stays dropped; the
                // worker only burned the failed attempts.
                workers[w].stats.busy_cycles += start - dispatch;
                workers[w].free_at = start;
            }
        }
    }

    /// Let every worker process its decision points up to `until`.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        until: u64,
        workers: &mut [SimWorker],
        disp: &mut Dispatcher<'_>,
        records: &mut [RequestRecord],
        service: &ServiceModel,
        pipelined: bool,
        queue_depth: usize,
        chaos: &mut ChaosCtx,
        tr: &ServeTrace<'_>,
    ) {
        loop {
            let ready = (0..workers.len())
                .filter(|&w| workers[w].staged.is_some() || disp.queued > 0)
                .min_by_key(|&w| (workers[w].free_at, w));
            match ready {
                Some(w) if workers[w].free_at <= until => {
                    step(
                        w,
                        workers,
                        disp,
                        records,
                        service,
                        pipelined,
                        queue_depth,
                        chaos,
                        tr,
                    );
                }
                _ => break,
            }
        }
    }

    for (i, r) in trace.requests.iter().enumerate() {
        advance(
            r.arrival,
            &mut workers,
            &mut disp,
            &mut records,
            service,
            spec.pipelined,
            spec.queue_depth,
            &mut chaos,
            &tr,
        );
        let idle = (0..workers.len())
            .find(|&w| workers[w].free_at <= r.arrival && workers[w].staged.is_none());
        if let Some(w) = idle {
            // Straight to the idle worker; its clock catches up to now.
            workers[w].free_at = r.arrival;
            disp.enqueue(r.model, i);
            step(
                w,
                &mut workers,
                &mut disp,
                &mut records,
                service,
                spec.pipelined,
                spec.queue_depth,
                &mut chaos,
                &tr,
            );
        } else if disp.queued < spec.queue_depth {
            disp.enqueue(r.model, i);
        }
        // else: dropped — the default outcome already says so.
    }
    advance(
        u64::MAX,
        &mut workers,
        &mut disp,
        &mut records,
        service,
        spec.pipelined,
        spec.queue_depth,
        &mut chaos,
        &tr,
    );

    // Aggregate.
    let mut waits = Vec::new();
    let mut services = Vec::new();
    let mut totals = Vec::new();
    let mut makespan = 0u64;
    let mut slo_attained = 0u64;
    let mut per_model: Vec<ServeModelStats> = names
        .iter()
        .map(|name| ServeModelStats {
            name: name.clone(),
            offered: 0,
            served: 0,
            dropped: 0,
            service: LatencyStats::default(),
            total: LatencyStats::default(),
            slo_attained: 0,
        })
        .collect();
    let mut model_services: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut model_totals: Vec<Vec<u64>> = vec![Vec::new(); n];
    for rec in &records {
        per_model[rec.model].offered += 1;
        match rec.outcome {
            RequestOutcome::Served {
                queue_wait,
                service: svc,
                completion,
                ..
            } => {
                let total = queue_wait + svc;
                waits.push(queue_wait);
                services.push(svc);
                totals.push(total);
                makespan = makespan.max(completion);
                per_model[rec.model].served += 1;
                model_services[rec.model].push(svc);
                model_totals[rec.model].push(total);
                if total <= slo_cycles {
                    slo_attained += 1;
                    per_model[rec.model].slo_attained += 1;
                }
            }
            RequestOutcome::Dropped => per_model[rec.model].dropped += 1,
        }
    }
    for (m, stats) in per_model.iter_mut().enumerate() {
        stats.service = LatencyStats::from_samples(&mut model_services[m]);
        stats.total = LatencyStats::from_samples(&mut model_totals[m]);
    }
    let served = totals.len() as u64;
    let report = ServeReport {
        policy: spec.policy,
        pipelined: spec.pipelined,
        workers: spec.workers,
        queue_depth: spec.queue_depth,
        process: spec.process,
        rate_rps: spec.rate_rps,
        seed: spec.seed,
        soc_hz,
        duration_cycles: trace.duration,
        slo_cycles,
        offered: records.len() as u64,
        served,
        dropped: records.len() as u64 - served,
        makespan_cycles: makespan,
        queue_wait: LatencyStats::from_samples(&mut waits),
        service: LatencyStats::from_samples(&mut services),
        total: LatencyStats::from_samples(&mut totals),
        per_model,
        per_worker: workers.iter().map(|w| w.stats).collect(),
        slo_attained,
        records,
        faults: chaos.report,
        replay_divergence: 0,
        host_seconds: 0.0,
    };
    (report, workers.into_iter().map(|w| w.plan).collect())
}

/// Simulate serving `trace` against a calibrated (or synthetic)
/// [`ServiceModel`] without touching a SoC — the planning half of
/// [`Server::serve`], exposed for sweeps and property tests.
///
/// # Panics
///
/// Panics when `names` does not have one entry per calibrated model.
#[must_use]
pub fn simulate(
    trace: &RequestTrace,
    service: &ServiceModel,
    spec: &ServeSpec,
    names: &[String],
    soc_hz: u64,
) -> ServeReport {
    simulate_plan(trace, service, spec, names, soc_hz, &Tracer::disarmed()).0
}

/// [`simulate`], emitting spans into `tracer`: per-worker sync tracks
/// carry `preload`/`compute`/`ps_burst`/`retry`/`rewarm` spans whose
/// top-level cycles sum to each worker's `busy_cycles`, and an async
/// `queue` track carries one `queue_wait` span per served request whose
/// cycles sum to the report's queue-wait total. Arming the tracer is
/// observationally free: the report is byte-identical to [`simulate`]'s
/// (proptested, and pinned by the `determinism_fingerprint` CI gate).
///
/// # Panics
///
/// Panics when `names` does not have one entry per calibrated model.
#[must_use]
pub fn simulate_traced(
    trace: &RequestTrace,
    service: &ServiceModel,
    spec: &ServeSpec,
    names: &[String],
    soc_hz: u64,
    tracer: &Tracer,
) -> ServeReport {
    simulate_plan(trace, service, spec, names, soc_hz, tracer).0
}

/// Replay per-burst model `seqs` on one fresh SoC of `config` with the
/// whole `artifacts` set resident, streaming `frames` — `(model, input
/// bytes)` in enqueue order — and return every frame's modeled latency
/// ([`crate::batch::FrameLatency`] semantics) in run order. This is the
/// shared replay engine behind [`Server::serve`]'s per-worker check and
/// the fleet's spot-replay windows ([`crate::fleet`]): both simulate in
/// calibrated cycles, then prove the plan against the real machine.
pub(crate) fn replay_sequences(
    config: &SocConfig,
    artifacts: &[Arc<Artifacts>],
    codegen: CodegenOptions,
    policy: Policy,
    pipelined: bool,
    seqs: &[Vec<usize>],
    frames: impl IntoIterator<Item = (usize, Vec<u8>)>,
) -> Result<Vec<u64>, BatchError> {
    let total: usize = seqs.iter().map(Vec::len).sum();
    let mut latencies = Vec::with_capacity(total);
    if pipelined {
        let mut sched = PipelinedScheduler::new(config.clone(), policy);
        for a in artifacts {
            sched.add_model(a.clone(), codegen)?;
        }
        for (model, bytes) in frames {
            sched.enqueue_bytes(model, bytes)?;
        }
        for seq in seqs {
            let rep = sched.run_sequence(seq)?;
            latencies.extend(rep.frame_latencies.iter().map(|f| f.cycles));
        }
    } else {
        let mut sched = BatchScheduler::new(config.clone(), policy);
        for a in artifacts {
            sched.add_model(a.clone(), codegen)?;
        }
        for (model, bytes) in frames {
            sched.enqueue_bytes(model, bytes)?;
        }
        for seq in seqs {
            let rep = sched.run_sequence(seq)?;
            latencies.extend(rep.frame_latencies.iter().map(|f| f.cycles));
        }
    }
    Ok(latencies)
}

/// An inference server over a resident model set: calibrates the
/// [`ServiceModel`] once at construction, then serves (or plans) any
/// number of [`ServeSpec`] experiments against it.
pub struct Server {
    config: SocConfig,
    codegen: CodegenOptions,
    artifacts: Vec<Arc<Artifacts>>,
    service: ServiceModel,
}

impl Server {
    /// Build a server over models laid out at disjoint DRAM bases
    /// ([`crate::batch::layout_models`]) and calibrate their service
    /// profile on a scratch SoC.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an empty model set,
    /// [`ServeError::Batch`] when pinning or calibration fails.
    pub fn new(
        config: SocConfig,
        artifacts: Vec<Arc<Artifacts>>,
        codegen: CodegenOptions,
    ) -> Result<Self, ServeError> {
        let service = ServiceModel::calibrate(&config, &artifacts, codegen)?;
        Ok(Server {
            config,
            codegen,
            artifacts,
            service,
        })
    }

    /// The calibrated service profile.
    #[must_use]
    pub fn service_model(&self) -> &ServiceModel {
        &self.service
    }

    /// The SoC configuration the server simulates.
    #[must_use]
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// Generate `spec`'s request trace (deterministic per seed).
    #[must_use]
    pub fn trace(&self, spec: &ServeSpec) -> RequestTrace {
        RequestTrace::generate(
            spec.process,
            spec.rate_rps,
            spec.duration_cycles(self.config.soc_hz),
            self.artifacts.len(),
            spec.seed,
            self.config.soc_hz,
        )
    }

    fn names(&self) -> Vec<String> {
        self.artifacts.iter().map(|a| a.model.clone()).collect()
    }

    /// Plan `spec` without running frames: trace generation plus the
    /// queueing simulation on the calibrated profile. Host-cheap, which
    /// is what makes dense rate sweeps (`examples/load_test.rs`)
    /// practical; [`Server::serve`] replays the same plan on real SoCs.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for a degenerate spec.
    pub fn plan(&self, spec: &ServeSpec) -> Result<ServeReport, ServeError> {
        self.plan_traced(spec, &Tracer::disarmed())
    }

    /// [`Server::plan`], emitting spans into `tracer` (see
    /// [`simulate_traced`] for the track layout and the bit-identity
    /// contract).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for a degenerate spec.
    pub fn plan_traced(
        &self,
        spec: &ServeSpec,
        tracer: &Tracer,
    ) -> Result<ServeReport, ServeError> {
        spec.validate()?;
        let start = Instant::now();
        let trace = self.trace(spec);
        let (mut report, _) = simulate_plan(
            &trace,
            &self.service,
            spec,
            &self.names(),
            self.config.soc_hz,
            tracer,
        );
        report.host_seconds = start.elapsed().as_secs_f64();
        Ok(report)
    }

    /// Serve `spec` for real: simulate the queueing system, then fan
    /// the dispatch plan out across [`ServeSpec::workers`] real SoCs
    /// (each with the full model set resident, via
    /// [`crate::sweep::fan_out`]) and replay every burst with
    /// [`BatchScheduler::run_sequence`] /
    /// [`PipelinedScheduler::run_sequence`]. Each replayed frame's
    /// modeled latency is checked against the plan;
    /// [`ServeReport::replay_divergence`] counts the disagreements
    /// (zero on a healthy build — `tests/serve.rs` pins it).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for a degenerate spec,
    /// [`ServeError::Batch`] when a worker fails to build or a frame
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (propagated by [`fan_out`]).
    pub fn serve(&self, spec: &ServeSpec) -> Result<ServeReport, ServeError> {
        self.serve_traced(spec, &Tracer::disarmed())
    }

    /// [`Server::serve`], emitting spans into `tracer` (see
    /// [`simulate_traced`] for the track layout and the bit-identity
    /// contract). Only the planning half emits — the replay is a
    /// cross-check of the very cycles the plan's spans already carry.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for a degenerate spec,
    /// [`ServeError::Batch`] when a worker fails to build or a frame
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (propagated by [`fan_out`]).
    pub fn serve_traced(
        &self,
        spec: &ServeSpec,
        tracer: &Tracer,
    ) -> Result<ServeReport, ServeError> {
        spec.validate()?;
        let start = Instant::now();
        let trace = self.trace(spec);
        let (mut report, plans) = simulate_plan(
            &trace,
            &self.service,
            spec,
            &self.names(),
            self.config.soc_hz,
            tracer,
        );
        // Per-request input bytes, deterministic from the seed and the
        // request index alone: the replay streams real (varied) images,
        // proving the modeled cycles are input-independent. Generated
        // lazily per planned frame inside each worker — dropped
        // requests never materialize bytes, and the RNG work rides the
        // fan-out.
        let input_for = |request: usize| -> Vec<u8> {
            let mut rng = StdRng::seed_from_u64(spec.seed ^ (0x5EED << 16) ^ request as u64);
            (0..self.artifacts[trace.requests[request].model].input_len)
                .map(|_| rng.gen_range(0u8..=255))
                .collect()
        };
        let measured = fan_out(
            plans.len(),
            plans.len(),
            |w| -> Result<Vec<u64>, BatchError> {
                let plan = &plans[w];
                if plan.frames() == 0 {
                    return Ok(Vec::new());
                }
                // The per-burst model sequences the scheduler replays,
                // and every frame's bytes in enqueue order — identical
                // for both worker modes; only the scheduler type (and
                // hence the preload overlap) differs below.
                let seqs: Vec<Vec<usize>> = plan
                    .bursts
                    .iter()
                    .map(|burst| {
                        burst
                            .iter()
                            .map(|f| trace.requests[f.request].model)
                            .collect()
                    })
                    .collect();
                let frames = plan
                    .bursts
                    .iter()
                    .flatten()
                    .map(|f| (trace.requests[f.request].model, input_for(f.request)));
                replay_sequences(
                    &self.config,
                    &self.artifacts,
                    self.codegen,
                    spec.policy,
                    spec.pipelined,
                    &seqs,
                    frames,
                )
            },
        );
        let mut divergence = 0u64;
        for (w, run) in measured.into_iter().enumerate() {
            let latencies = run?;
            let predicted: Vec<u64> = plans[w]
                .bursts
                .iter()
                .flatten()
                .map(|f| f.predicted)
                .collect();
            divergence += predicted
                .iter()
                .zip(&latencies)
                .filter(|(p, m)| p != m)
                .count() as u64;
            divergence += predicted.len().abs_diff(latencies.len()) as u64;
        }
        report.replay_divergence = divergence;
        report.host_seconds = start.elapsed().as_secs_f64();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic two-model profile: model 0 cheap, model 1 pricey.
    fn profile() -> ServiceModel {
        ServiceModel {
            preload: vec![100, 200],
            fill: vec![100, 200],
            compute: vec![1_000, 3_000],
            compute_with: vec![vec![1_010, 1_020], vec![3_010, 3_020]],
            preload_done: vec![vec![150, 400], vec![120, 300]],
            rewarm: 5_000,
        }
    }

    fn names() -> Vec<String> {
        vec!["a".into(), "b".into()]
    }

    fn spec() -> ServeSpec {
        ServeSpec {
            process: ArrivalProcess::Fixed,
            rate_rps: 100,
            duration_ms: 1,
            seed: 7,
            workers: 1,
            policy: Policy::RoundRobin,
            pipelined: false,
            queue_depth: 4,
            slo_us: 1_000,
            timeout_us: 0,
            retries: 0,
            faults: None,
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
    }

    #[test]
    fn latency_stats_sorted_and_monotone() {
        let mut samples = vec![30, 10, 20];
        let s = LatencyStats::from_samples(&mut samples);
        assert_eq!(samples, vec![10, 20, 30]);
        assert_eq!(s.p50, 20);
        assert_eq!(s.max, 30);
        assert_eq!(s.mean, 20);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn fixed_trace_is_evenly_spaced_and_replayable() {
        let hz = 100_000_000;
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 1_000, hz / 10, 2, 3, hz);
        // 100 ms at 1000 req/s: exactly 100 requests, 100 µs apart.
        assert_eq!(t.requests.len(), 100);
        assert_eq!(t.requests[1].arrival - t.requests[0].arrival, hz / 1_000);
        let t2 = RequestTrace::generate(ArrivalProcess::Fixed, 1_000, hz / 10, 2, 3, hz);
        assert_eq!(t, t2);
        let t3 = RequestTrace::generate(ArrivalProcess::Fixed, 1_000, hz / 10, 2, 4, hz);
        // A different seed keeps the spacing but reshuffles the mix.
        assert_eq!(t3.requests.len(), 100);
        assert!(t
            .requests
            .iter()
            .zip(&t3.requests)
            .all(|(a, b)| a.arrival == b.arrival));
    }

    #[test]
    fn poisson_trace_is_sorted_and_roughly_at_rate() {
        let hz = 100_000_000;
        let t = RequestTrace::generate(ArrivalProcess::Poisson, 500, hz, 2, 9, hz);
        assert!(t.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(t.requests.iter().all(|r| r.arrival < hz && r.model < 2));
        // Mean 500 arrivals over one modeled second; 5σ ≈ 112.
        assert!(
            (388..=612).contains(&t.requests.len()),
            "got {}",
            t.requests.len()
        );
    }

    #[test]
    fn below_capacity_nothing_waits_or_drops() {
        // 100 req/s of ~1k-cycle service at 100 MHz: each request meets
        // an idle worker.
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 100, 100_000_000, 2, 1, 100_000_000);
        let r = simulate(&t, &profile(), &spec(), &names(), 100_000_000);
        assert_eq!(r.offered, 100);
        assert_eq!(r.served, 100);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.queue_wait.max, 0, "idle workers dispatch immediately");
        assert!(r.total.p99 <= r.service.max);
        assert_eq!(r.slo_attainment(), 1.0);
        assert_eq!(r.records.len(), 100);
    }

    #[test]
    fn overload_queues_then_drops() {
        // Service ≈ 2k cycles mean, arrivals every 1k cycles: the queue
        // fills, waits grow, and the excess is dropped.
        let hz = 100_000_000;
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 100_000, hz / 100, 2, 1, hz);
        assert_eq!(t.requests.len(), 1_000);
        let r = simulate(&t, &profile(), &spec(), &names(), hz);
        assert_eq!(r.served + r.dropped, r.offered);
        assert!(r.dropped > 0, "overload must drop");
        assert!(
            r.queue_wait.p50 > r.service.p50,
            "queue wait dominates service under overload: {} vs {}",
            r.queue_wait.p50,
            r.service.p50
        );
        assert!(r.achieved_rate() <= r.offered_rate());
        assert!(r.slo_attainment() < 1.0);
        // The queue bound caps how long anything waits (2x for the
        // round-robin rotation's worst-case interleaving).
        let worst_service = profile().compute[1] + profile().preload[1];
        assert!(r.queue_wait.max <= 2 * (spec().queue_depth as u64 + 1) * worst_service);
    }

    #[test]
    fn two_workers_halve_the_backlog() {
        let hz = 100_000_000;
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 100_000, hz / 100, 2, 1, hz);
        let one = simulate(&t, &profile(), &spec(), &names(), hz);
        let two = simulate(
            &t,
            &profile(),
            &ServeSpec {
                workers: 2,
                ..spec()
            },
            &names(),
            hz,
        );
        assert!(two.served > one.served);
        assert!(two.per_worker.len() == 2 && two.per_worker[1].frames > 0);
        assert!(two.achieved_rate() > one.achieved_rate());
    }

    #[test]
    fn pipelined_mode_respects_pair_costs() {
        let hz = 100_000_000;
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 100_000, hz / 1000, 2, 1, hz);
        let r = simulate(
            &t,
            &profile(),
            &ServeSpec {
                pipelined: true,
                queue_depth: 64,
                ..spec()
            },
            &names(),
            hz,
        );
        assert_eq!(r.served + r.dropped, r.offered);
        assert!(r.served > 0);
        // Back-to-back frames pay the contended compute, not the
        // serial preload+compute.
        let p = profile();
        let served_services: Vec<u64> = r
            .records
            .iter()
            .filter_map(|rec| match rec.outcome {
                RequestOutcome::Served { service, .. } => Some(service),
                RequestOutcome::Dropped => None,
            })
            .collect();
        let max_pair = p
            .compute_with
            .iter()
            .flatten()
            .chain(p.compute.iter())
            .copied()
            .max()
            .unwrap();
        assert!(served_services.iter().all(|&s| s <= max_pair));
    }

    #[test]
    fn spec_validation_rejects_degenerate_inputs() {
        for (broken, needle) in [
            (
                ServeSpec {
                    rate_rps: 0,
                    ..spec()
                },
                "--rate",
            ),
            (
                ServeSpec {
                    duration_ms: 0,
                    ..spec()
                },
                "--duration",
            ),
            (
                ServeSpec {
                    workers: 0,
                    ..spec()
                },
                "--workers",
            ),
            (
                ServeSpec {
                    queue_depth: 0,
                    ..spec()
                },
                "--queue-depth",
            ),
        ] {
            let err = broken.validate().expect_err("must reject");
            assert!(err.to_string().contains(needle), "got: {err}");
        }
        spec().validate().expect("healthy spec passes");
    }

    #[test]
    fn fault_spec_parses_and_rejects() {
        let f: FaultSpec =
            "seed=9,flips=100,errors=200,spikes=300,spike-us=40,hangs=500,crashes=600"
                .parse()
                .expect("full spec parses");
        assert_eq!(
            f,
            FaultSpec {
                seed: 9,
                flip_per_million: 100,
                error_per_million: 200,
                spike_per_million: 300,
                spike_us: 40,
                hang_per_million: 500,
                crash_per_million: 600,
            }
        );
        assert!(!f.is_quiet());
        assert!(FaultSpec::from_str("").expect("empty is quiet").is_quiet());
        let e = FaultSpec::from_str("bogus=1").expect_err("unknown key");
        assert!(e.contains("unknown fault-spec key `bogus`"), "got: {e}");
        let e = FaultSpec::from_str("errors").expect_err("not key=value");
        assert!(e.contains("key=value"), "got: {e}");
        let e = FaultSpec::from_str("errors=lots").expect_err("not an integer");
        assert!(e.contains("not an integer"), "got: {e}");
    }

    #[test]
    fn chaos_spec_validation_rejects_inconsistent_knobs() {
        let storm = FaultSpec {
            error_per_million: 10_000,
            ..FaultSpec::default()
        };
        for (broken, needle) in [
            (
                ServeSpec {
                    retries: 1,
                    ..spec()
                },
                "--retries needs --timeout-us",
            ),
            (
                ServeSpec {
                    pipelined: true,
                    faults: Some(storm),
                    ..spec()
                },
                "--pipelined",
            ),
            (
                ServeSpec {
                    faults: Some(FaultSpec {
                        hang_per_million: 10,
                        ..FaultSpec::default()
                    }),
                    ..spec()
                },
                "needs --timeout-us",
            ),
            (
                ServeSpec {
                    faults: Some(FaultSpec {
                        flip_per_million: 900_000,
                        error_per_million: 200_000,
                        ..FaultSpec::default()
                    }),
                    ..spec()
                },
                "sum to",
            ),
        ] {
            let err = broken.validate().expect_err("must reject");
            assert!(err.to_string().contains(needle), "got: {err}");
        }
        ServeSpec {
            timeout_us: 50,
            retries: 2,
            faults: Some(storm),
            ..spec()
        }
        .validate()
        .expect("a consistent chaos spec passes");
    }

    #[test]
    fn quiet_fault_plan_is_bit_identical_to_no_plan() {
        let hz = 100_000_000;
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 100_000, hz / 100, 2, 1, hz);
        let clean = simulate(&t, &profile(), &spec(), &names(), hz);
        let quiet = simulate(
            &t,
            &profile(),
            &ServeSpec {
                faults: Some(FaultSpec::default()),
                ..spec()
            },
            &names(),
            hz,
        );
        assert_eq!(clean, quiet, "an all-quiet plan must stay on the fast path");
        assert_eq!(clean.faults, FaultReport::default());
    }

    #[test]
    fn chaos_run_is_deterministic_and_every_fault_balances() {
        let hz = 100_000_000;
        // Sparse arrivals (every 10k cycles vs ~2k service) so faults,
        // not queueing, dominate the outcome.
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 10_000, hz / 10, 2, 1, hz);
        let chaos_spec = ServeSpec {
            timeout_us: 50,
            retries: 2,
            faults: Some(FaultSpec {
                seed: 3,
                flip_per_million: 100_000,
                error_per_million: 100_000,
                spike_per_million: 50_000,
                spike_us: 100,
                hang_per_million: 50_000,
                crash_per_million: 50_000,
            }),
            ..spec()
        };
        let r = simulate(&t, &profile(), &chaos_spec, &names(), hz);
        assert_eq!(r.served + r.dropped, r.offered);
        let f = r.faults;
        assert!(f.injected() > 0, "35% composite rate must fire: {f:?}");
        assert!(f.retries > 0, "failed attempts must retry: {f:?}");
        // Every failed attempt resolves exactly once.
        assert_eq!(
            f.timeouts + f.bus_errors + f.corruptions_detected + f.crashes,
            f.retries + f.failovers + f.sheds + f.exhausted,
            "the books must balance: {f:?}"
        );
        assert!(
            f.hangs <= f.timeouts,
            "every hang is caught by the watchdog"
        );
        // Bit-identical replay of the whole report from the seeds.
        let again = simulate(&t, &profile(), &chaos_spec, &names(), hz);
        assert_eq!(r, again, "a seeded chaos run must replay bit-identically");
        // A different fault seed moves the faults.
        let moved = simulate(
            &t,
            &profile(),
            &ServeSpec {
                faults: chaos_spec.faults.map(|f| FaultSpec { seed: 4, ..f }),
                ..chaos_spec
            },
            &names(),
            hz,
        );
        assert_ne!(r.faults, moved.faults, "a new seed must move the faults");
    }

    #[test]
    fn timeout_without_faults_sheds_frames_that_cannot_fit() {
        let hz = 100_000_000;
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 10_000, hz / 10, 2, 1, hz);
        // Model 0 (1.1k cycles = 11 µs) fits a 20 µs deadline; model 1
        // (3.2k cycles = 32 µs) can never complete an attempt.
        let r = simulate(
            &t,
            &profile(),
            &ServeSpec {
                timeout_us: 20,
                ..spec()
            },
            &names(),
            hz,
        );
        assert_eq!(
            r.per_model[1].served, 0,
            "model 1 can never beat the timeout"
        );
        assert_eq!(r.per_model[0].dropped, 0, "model 0 always fits it");
        assert_eq!(r.faults.timeouts, r.per_model[1].offered);
        assert_eq!(r.faults.exhausted, r.per_model[1].offered);
        assert_eq!(r.faults.retries, 0, "no retry budget was configured");
    }

    #[test]
    fn crashes_fail_over_within_the_attempt_budget_and_pay_rewarm() {
        let hz = 100_000_000;
        let t = RequestTrace::generate(ArrivalProcess::Fixed, 100, hz / 10, 2, 1, hz);
        assert_eq!(t.requests.len(), 10);
        let r = simulate(
            &t,
            &profile(),
            &ServeSpec {
                timeout_us: 50,
                retries: 2,
                faults: Some(FaultSpec {
                    crash_per_million: 1_000_000,
                    ..FaultSpec::default()
                }),
                ..spec()
            },
            &names(),
            hz,
        );
        // Every attempt crashes: 3 attempts per request (initial + 2
        // failovers), then the budget is exhausted.
        assert_eq!(r.served, 0);
        assert_eq!(r.faults.crashes, 30);
        assert_eq!(r.faults.failovers, 20);
        assert_eq!(r.faults.exhausted, 10);
        assert_eq!(r.faults.sheds, 0);
        // Each crash charges the re-warm recovery to its worker.
        assert!(
            r.per_worker[0].busy_cycles >= 30 * profile().rewarm,
            "30 crashes must pay 30 re-warms: {}",
            r.per_worker[0].busy_cycles
        );
    }

    /// Found by the chaos proptest (`tests/properties.rs`): a request
    /// that crashed on one worker and failed over could be picked up by
    /// a pool-mate that had sat idle since before the request arrived —
    /// its clock still behind the arrival — and `queue_wait` underflowed.
    /// The frame must start at `max(worker clock, arrival)`. The seed
    /// loop hunts for a lottery where the first attempt crashes and the
    /// retry succeeds on the stale-clocked second worker.
    #[test]
    fn crash_failover_onto_a_stale_clocked_worker_starts_at_arrival() {
        let hz = 100_000_000;
        let t = RequestTrace {
            requests: vec![Request {
                arrival: hz / 100, // 10 ms in: worker 1 idles since 0
                model: 0,
            }],
            duration: hz / 10,
        };
        let mut pinned = false;
        for fault_seed in 0..200 {
            let r = simulate(
                &t,
                &profile(),
                &ServeSpec {
                    workers: 2,
                    timeout_us: 1_000,
                    retries: 2,
                    faults: Some(FaultSpec {
                        seed: fault_seed,
                        crash_per_million: 400_000,
                        ..FaultSpec::default()
                    }),
                    ..spec()
                },
                &names(),
                hz,
            );
            if r.faults.failovers > 0 && r.served == 1 {
                // Served after a failover: in the buggy version this
                // case panicked (debug) or reported an absurd wait.
                assert!(
                    r.queue_wait.max <= t.duration,
                    "failover wait must stay causal: {}",
                    r.queue_wait.max
                );
                pinned = true;
                break;
            }
        }
        assert!(pinned, "no seed in 0..200 exercised failover-then-serve");
    }
}
