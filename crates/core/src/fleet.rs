//! Fleet-scale serving: heterogeneous pools behind a load balancer.
//!
//! [`serve`](crate::serve) models one homogeneous worker pool; a
//! *fleet* is the next tier up — N pools of different [`SocConfig`]
//! classes (`nv_small` vs `nv_full`, different worker counts and queue
//! depths, possibly different resident model subsets) behind a
//! front-end load balancer. The fleet answers *capacity-planning*
//! questions ("how many `nv_small` workers hold p99 under the SLO at
//! 400 req/s of diurnal traffic?") entirely in modeled time:
//!
//! 1. **Shaped traffic** — [`shaped_trace`] generates seeded arrival
//!    traces with a time-varying rate envelope ([`TrafficShape`]:
//!    steady, diurnal, bursty, flash-crowd) over Poisson gaps, so the
//!    autoscaler has something real to react to.
//! 2. **Routing** — the balancer routes every request to a pool where
//!    its model is *resident* ([`RoutePolicy`]: weighted round-robin,
//!    least-loaded, or model-affinity). Routing never considers a pool
//!    lacking the model — that is structural, not best-effort.
//! 3. **Per-pool bounded admission** — each pool has its own FIFO
//!    admission queue; an arrival routed to a full pool is **dropped**
//!    (charged to that pool). When *every* candidate pool's estimated
//!    wait exceeds 8× the SLO the front door **sheds** the request
//!    instead of burying it in a hopeless queue.
//! 4. **Reactive autoscaling** — per pool, a rolling SLO-attainment
//!    window ([`FleetSpec::scale_window_ms`]) drives add/drain
//!    decisions between `min` and `max` workers. A new worker is not
//!    free capacity: it joins `rewarm` modeled cycles later (the
//!    calibrated cost of streaming every resident weight image back
//!    in, [`ServiceModel::rewarm`]). A drained worker finishes its
//!    in-flight frame and leaves.
//!
//! # Calibrate → simulate → spot-replay
//!
//! Each pool's per-frame costs come from [`ServiceModel::calibrate`]
//! on a real SoC of that pool's class — the `nv_full` pools are
//! genuinely faster because the compiler re-lowers every layer for the
//! wider datapath. The event-driven simulation then costs ~10–25 µs of
//! host time per modeled second, so million-request diurnal traces are
//! cheap. Honesty is kept the same way
//! [`Server::serve`](crate::serve::Server::serve) keeps it:
//! [`Fleet::run`] samples K
//! windows of W consecutively-dispatched frames per pool and replays
//! them **cycle-exactly** on a real SoC of the pool's class
//! ([`BatchScheduler::run_sequence`](crate::batch::BatchScheduler::run_sequence)
//! under the hood); [`FleetReport::replay_divergence`] counts frames
//! where the plan and the machine disagreed, and `tests/fleet.rs` pins
//! it at zero across routing policies × heterogeneous pools. Serial
//! pool workers make this exact: a serial frame's cost
//! (`preload + compute`) is position-independent, so any contiguous
//! dispatch window replays to the cycle regardless of what ran before
//! it.
//!
//! See `docs/FLEET.md` for the flag grammar, the autoscaler control
//! loop and how to read the capacity-planning output.

use std::collections::VecDeque;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rvnv_compiler::codegen::CodegenOptions;
use rvnv_compiler::{ArtifactCache, Artifacts, CompileOptions};
use rvnv_nn::graph::Network;
use rvnv_nvdla::HwConfig;
use rvnv_obs::{Json, MetricsRegistry, SpanKind, Tracer, TrackId, TrackKind};

use crate::batch::{layout_models, Policy};
use crate::serve::{
    replay_sequences, LatencyStats, Request, RequestTrace, ServeError, ServiceModel,
};
use crate::soc::SocConfig;
use crate::sweep::fan_out;

/// Number of equal-length slices the rate envelope is sampled over.
const SHAPE_SLICES: u64 = 64;

/// Shed a request when every candidate pool's estimated wait exceeds
/// this many SLO targets — queueing it would only manufacture a miss.
const SHED_SLOS: u64 = 8;

/// The hardware class of one pool's SoCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocClass {
    /// The paper's FPGA configuration: `nv_small` (8×8 MACs).
    NvSmall,
    /// The full-size NVDLA (64×32 MACs, larger buffers).
    NvFull,
}

impl SocClass {
    /// CLI spelling of the class.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SocClass::NvSmall => "nv_small",
            SocClass::NvFull => "nv_full",
        }
    }

    /// The NVDLA hardware configuration models of this class compile
    /// against.
    #[must_use]
    pub fn hw(self) -> HwConfig {
        match self {
            SocClass::NvSmall => HwConfig::nv_small(),
            SocClass::NvFull => HwConfig::nv_full(),
        }
    }

    /// The timing-only SoC configuration a pool of this class runs
    /// (fleet serving is a timing flow, like `serve`).
    #[must_use]
    pub fn config(self) -> SocConfig {
        match self {
            SocClass::NvSmall => SocConfig::zcu102_timing_only(),
            SocClass::NvFull => SocConfig::zcu102_nv_full_timing_only(),
        }
    }
}

impl FromStr for SocClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "nv_small" => Ok(SocClass::NvSmall),
            "nv_full" => Ok(SocClass::NvFull),
            other => Err(format!(
                "unknown pool class `{other}` (expected nv_small|nv_full)"
            )),
        }
    }
}

/// How the balancer picks among the pools where a request's model is
/// resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Smooth weighted round-robin, weighted by each pool's
    /// *configured* worker count — static capacity shares.
    Weighted,
    /// Send to the candidate pool with the lowest backlog per active
    /// worker (in-flight + queued, scaled by current pool size).
    LeastLoaded,
    /// Prefer the most-specialized candidate pool (fewest resident
    /// models — a pool dedicated to the request's model beats a
    /// generalist), breaking ties least-loaded.
    ModelAffinity,
}

impl RoutePolicy {
    /// CLI spelling of the policy.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RoutePolicy::Weighted => "weighted",
            RoutePolicy::LeastLoaded => "least-loaded",
            RoutePolicy::ModelAffinity => "model-affinity",
        }
    }
}

impl FromStr for RoutePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "weighted" => Ok(RoutePolicy::Weighted),
            "least-loaded" => Ok(RoutePolicy::LeastLoaded),
            "model-affinity" => Ok(RoutePolicy::ModelAffinity),
            other => Err(format!(
                "unknown route policy `{other}` (expected weighted|least-loaded|model-affinity)"
            )),
        }
    }
}

/// The rate envelope shaping a fleet trace's arrivals over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficShape {
    /// A flat envelope: plain Poisson arrivals at the configured rate.
    Steady,
    /// One sinusoidal day compressed into the trace: the rate swings
    /// between 0.25× and 1.75× the mean (peak mid-trace).
    Diurnal,
    /// Seeded on/off bursts: each time slice runs at 2.6× (probability
    /// 0.2) or 0.6× the mean — same average load, spiky arrival.
    Bursty,
    /// A 4× spike over the middle tenth of the trace, 0.7× elsewhere —
    /// the "everyone opens the app at once" case autoscalers dread.
    FlashCrowd,
}

impl TrafficShape {
    /// CLI spelling of the shape.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TrafficShape::Steady => "steady",
            TrafficShape::Diurnal => "diurnal",
            TrafficShape::Bursty => "bursty",
            TrafficShape::FlashCrowd => "flash-crowd",
        }
    }
}

impl FromStr for TrafficShape {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "steady" => Ok(TrafficShape::Steady),
            "diurnal" => Ok(TrafficShape::Diurnal),
            "bursty" => Ok(TrafficShape::Bursty),
            "flash-crowd" => Ok(TrafficShape::FlashCrowd),
            other => Err(format!(
                "unknown traffic shape `{other}` (expected steady|diurnal|bursty|flash-crowd)"
            )),
        }
    }
}

/// Generate a seeded, shape-enveloped request trace: the configured
/// mean `rate_rps` is modulated per time slice by `shape`, arrivals
/// within a slice are Poisson-spaced, and each request is tagged with
/// a model drawn uniformly from `0..models`. Deterministic in its
/// arguments, like [`RequestTrace::generate`].
#[must_use]
pub fn shaped_trace(
    shape: TrafficShape,
    rate_rps: u64,
    duration: u64,
    models: usize,
    seed: u64,
    soc_hz: u64,
) -> RequestTrace {
    let mut requests = Vec::new();
    if rate_rps == 0 || models == 0 || soc_hz == 0 || duration == 0 {
        return RequestTrace { requests, duration };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..SHAPE_SLICES {
        let lo = duration / SHAPE_SLICES * i + duration % SHAPE_SLICES * i / SHAPE_SLICES;
        let hi = if i + 1 == SHAPE_SLICES {
            duration
        } else {
            duration / SHAPE_SLICES * (i + 1) + duration % SHAPE_SLICES * (i + 1) / SHAPE_SLICES
        };
        let mult = match shape {
            TrafficShape::Steady => 1.0,
            TrafficShape::Diurnal => {
                let phase = (i as f64 + 0.5) / SHAPE_SLICES as f64;
                1.0 + 0.75 * (std::f64::consts::TAU * (phase - 0.25)).sin()
            }
            TrafficShape::Bursty => {
                if rng.gen_range(0.0..1.0) < 0.2 {
                    2.6
                } else {
                    0.6
                }
            }
            TrafficShape::FlashCrowd => {
                if (SHAPE_SLICES * 45 / 100..SHAPE_SLICES * 55 / 100).contains(&i) {
                    4.0
                } else {
                    0.7
                }
            }
        };
        let eff = rate_rps as f64 * mult;
        if eff <= f64::EPSILON {
            continue;
        }
        let mean_gap = soc_hz as f64 / eff;
        let mut t = lo as f64;
        loop {
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -(1.0 - u).ln() * mean_gap;
            if t >= hi as f64 {
                break;
            }
            requests.push(Request {
                arrival: t as u64,
                model: rng.gen_range(0..models),
            });
        }
    }
    RequestTrace { requests, duration }
}

/// One pool of the fleet: class, size, autoscaler bounds, admission
/// bound and (optionally) a resident model subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolSpec {
    /// Hardware class of every SoC in the pool.
    pub class: SocClass,
    /// Workers the pool starts with.
    pub workers: usize,
    /// Autoscaler floor (the pool never drains below this).
    pub min_workers: usize,
    /// Autoscaler ceiling (the pool never grows past this).
    pub max_workers: usize,
    /// Admission-queue bound; an arrival routed here past it is
    /// dropped.
    pub queue_depth: usize,
    /// Resident model subset as global model indices (`None` = every
    /// fleet model is resident).
    pub models: Option<Vec<usize>>,
}

impl Default for PoolSpec {
    fn default() -> Self {
        PoolSpec {
            class: SocClass::NvSmall,
            workers: 1,
            min_workers: 1,
            max_workers: 1,
            queue_depth: 8,
            models: None,
        }
    }
}

/// Normalize a model name the way the CLI does: drop `-`/`_`,
/// lowercase — so `LeNet-5`, `lenet5` and `lenet_5` all match.
fn norm_name(s: &str) -> String {
    s.chars()
        .filter(|c| !matches!(c, '-' | '_'))
        .collect::<String>()
        .to_ascii_lowercase()
}

/// Parse the `--pools` grammar: `;`-separated pool specs, each
/// `class[:key=value[,key=value..]]` with class `nv_small|nv_full` and
/// keys `workers`, `min`, `max`, `queue`, `models` (a `+`-separated
/// subset of the fleet model names). Unspecified `min`/`max` pin the
/// autoscaler at `workers`. Example:
/// `nv_small:workers=2,min=1,max=6,queue=8;nv_full:workers=1,models=resnet18`.
///
/// # Errors
///
/// A message naming the offending pool spec, key or model.
pub fn parse_pools(s: &str, model_names: &[String]) -> Result<Vec<PoolSpec>, String> {
    let mut pools = Vec::new();
    for part in s.split(';').map(str::trim) {
        if part.is_empty() {
            continue;
        }
        let (class_str, rest) = match part.split_once(':') {
            Some((c, r)) => (c.trim(), Some(r)),
            None => (part, None),
        };
        let class: SocClass = class_str
            .parse()
            .map_err(|e| format!("pool spec `{part}`: {e}"))?;
        let mut spec = PoolSpec {
            class,
            ..PoolSpec::default()
        };
        let mut min = None;
        let mut max = None;
        if let Some(rest) = rest {
            for term in rest.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                let (key, value) = term
                    .split_once('=')
                    .ok_or_else(|| format!("pool spec `{part}`: term `{term}` is not key=value"))?;
                let number = |v: &str| -> Result<u64, String> {
                    v.parse().map_err(|_| {
                        format!("pool spec `{part}`: `{key}` value `{v}` is not an integer")
                    })
                };
                match key {
                    "workers" => {
                        spec.workers = usize::try_from(number(value)?).unwrap_or(usize::MAX)
                    }
                    "min" => min = Some(usize::try_from(number(value)?).unwrap_or(usize::MAX)),
                    "max" => max = Some(usize::try_from(number(value)?).unwrap_or(usize::MAX)),
                    "queue" => {
                        spec.queue_depth = usize::try_from(number(value)?).unwrap_or(usize::MAX)
                    }
                    "models" => {
                        let mut subset = Vec::new();
                        for name in value.split('+').map(str::trim).filter(|n| !n.is_empty()) {
                            let idx = model_names
                                .iter()
                                .position(|m| norm_name(m) == norm_name(name))
                                .ok_or_else(|| {
                                    format!("pool spec `{part}`: model `{name}` is not in --models")
                                })?;
                            if subset.contains(&idx) {
                                return Err(format!(
                                    "pool spec `{part}`: duplicate model `{name}`"
                                ));
                            }
                            subset.push(idx);
                        }
                        if subset.is_empty() {
                            return Err(format!(
                                "pool spec `{part}`: models= subset must not be empty"
                            ));
                        }
                        spec.models = Some(subset);
                    }
                    other => {
                        return Err(format!(
                            "pool spec `{part}`: unknown key `{other}` \
                             (expected workers|min|max|queue|models)"
                        ))
                    }
                }
            }
        }
        spec.min_workers = min.unwrap_or(spec.workers);
        spec.max_workers = max.unwrap_or(spec.workers);
        pools.push(spec);
    }
    if pools.is_empty() {
        return Err("--pools must name at least one pool".into());
    }
    Ok(pools)
}

/// The fleet experiment: pools, routing, traffic, SLO, autoscaler and
/// spot-replay sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// The pools, in balancer order.
    pub pools: Vec<PoolSpec>,
    /// Routing policy over candidate pools.
    pub route: RoutePolicy,
    /// Rate envelope of the arrival trace.
    pub shape: TrafficShape,
    /// Mean offered rate in requests per second of modeled time.
    pub rate_rps: u64,
    /// Length of the arrival window in modeled milliseconds.
    pub duration_ms: u64,
    /// Workload seed (arrival times, envelope draws, model mix, input
    /// bytes).
    pub seed: u64,
    /// SLO target on total (queue wait + service) latency, modeled µs.
    pub slo_us: u64,
    /// Autoscaler evaluation period and rolling-window length, modeled
    /// milliseconds.
    pub scale_window_ms: u64,
    /// Scale a pool up when its windowed SLO attainment falls below
    /// this percent (and it is under `max_workers`).
    pub scale_up_below: u32,
    /// Drain a worker when windowed attainment exceeds this percent
    /// (and the pool is over `min_workers`).
    pub scale_down_above: u32,
    /// Spot-replay windows sampled per pool by [`Fleet::run`].
    pub spot_windows: usize,
    /// Consecutively-dispatched frames per spot-replay window.
    pub window_frames: usize,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            pools: vec![PoolSpec::default()],
            route: RoutePolicy::Weighted,
            shape: TrafficShape::Steady,
            rate_rps: 200,
            duration_ms: 400,
            seed: 42,
            slo_us: 20_000,
            scale_window_ms: 50,
            scale_up_below: 90,
            scale_down_above: 99,
            spot_windows: 4,
            window_frames: 32,
        }
    }
}

impl FleetSpec {
    /// Reject degenerate parameters with a message naming the
    /// offending CLI flag, in the [`crate::serve::ServeSpec::validate`]
    /// tradition. `models` is the fleet model count (for residency
    /// coverage: a model resident in no pool could never be served).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] naming the offending parameter.
    pub fn validate(&self, models: usize) -> Result<(), ServeError> {
        let cfg = |m: String| Err(ServeError::Config(m));
        if models == 0 {
            return cfg("fleet serving needs at least one model (--models)".into());
        }
        if self.pools.is_empty() {
            return cfg("--pools must name at least one pool".into());
        }
        if self.rate_rps == 0 {
            return cfg("--rate must be >= 1 request/s".into());
        }
        if self.duration_ms == 0 {
            return cfg("--duration must be >= 1 ms".into());
        }
        if self.slo_us == 0 {
            return cfg("--slo-us must be >= 1 microsecond".into());
        }
        if self.scale_window_ms == 0 {
            return cfg("--scale-window must be >= 1 ms".into());
        }
        if self.scale_up_below > 100 || self.scale_down_above > 100 {
            return cfg("--scale-up-below and --scale-down-above are percents (0..=100)".into());
        }
        if self.scale_up_below > self.scale_down_above {
            return cfg("--scale-up-below must not exceed --scale-down-above \
                 (the autoscaler would add and drain in the same window)"
                .into());
        }
        if self.spot_windows == 0 {
            return cfg("--spot-windows must be >= 1".into());
        }
        if self.window_frames == 0 {
            return cfg("--window-frames must be >= 1".into());
        }
        for (i, p) in self.pools.iter().enumerate() {
            let at = format!("pool {i} ({})", p.class.name());
            if p.workers == 0 {
                return cfg(format!("{at}: workers must be >= 1 (--pools workers=N)"));
            }
            if p.queue_depth == 0 {
                return cfg(format!("{at}: queue must be >= 1 (--pools queue=N)"));
            }
            if p.min_workers == 0 {
                return cfg(format!(
                    "{at}: min must be >= 1 (a pool cannot scale to zero workers)"
                ));
            }
            if !(p.min_workers <= p.workers && p.workers <= p.max_workers) {
                return cfg(format!(
                    "{at}: autoscaler bounds need min <= workers <= max \
                     (got min={}, workers={}, max={})",
                    p.min_workers, p.workers, p.max_workers
                ));
            }
            if let Some(subset) = &p.models {
                if let Some(&bad) = subset.iter().find(|&&m| m >= models) {
                    return cfg(format!(
                        "{at}: model index {bad} out of range (fleet has {models} models)"
                    ));
                }
            }
        }
        for m in 0..models {
            let resident = self
                .pools
                .iter()
                .any(|p| p.models.as_ref().is_none_or(|s| s.contains(&m)));
            if !resident {
                return cfg(format!(
                    "model {m} is resident in no pool \
                     (every --models entry needs a home in some --pools models= list)"
                ));
            }
        }
        Ok(())
    }

    /// The arrival window in cycles at `soc_hz`.
    #[must_use]
    pub fn duration_cycles(&self, soc_hz: u64) -> u64 {
        self.duration_ms.saturating_mul(soc_hz / 1000)
    }

    /// The SLO target in cycles at `soc_hz`.
    #[must_use]
    pub fn slo_cycles(&self, soc_hz: u64) -> u64 {
        self.slo_us.saturating_mul(soc_hz / 1_000_000)
    }
}

/// One pool's calibrated costs plus its resident model mapping — the
/// pure-simulation view of a pool ([`simulate`] runs on these, the
/// property tests build synthetic ones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolProfile {
    /// Calibrated service costs, indexed by **pool-local** model slot.
    pub service: ServiceModel,
    /// Global model index of each local slot.
    pub models: Vec<usize>,
}

impl PoolProfile {
    /// Local slot of a global model index, `None` when not resident.
    #[must_use]
    pub fn local(&self, global: usize) -> Option<usize> {
        self.models.iter().position(|&g| g == global)
    }

    /// Mean serial frame cost over the resident set (the balancer's
    /// shed estimate).
    fn mean_svc(&self) -> u64 {
        let n = self.models.len().max(1) as u64;
        let sum: u64 = (0..self.service.models())
            .map(|m| self.service.preload[m] + self.service.compute[m])
            .sum();
        sum / n
    }
}

/// What happened to one fleet request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetOutcome {
    /// Served to completion by a pool.
    Served {
        /// Pool that ran the frame.
        pool: usize,
        /// Arrival → dispatch.
        queue_wait: u64,
        /// Dispatch → completion (serial `preload + compute`).
        service: u64,
        /// Absolute completion cycle.
        completion: u64,
    },
    /// Routed to a pool whose admission queue was full.
    Dropped {
        /// Pool that turned it away.
        pool: usize,
    },
    /// Shed at the front door: every candidate pool's estimated wait
    /// exceeded `SHED_SLOS` (8)× the SLO.
    Shed,
}

/// One request's record in a [`FleetReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRecord {
    /// Global model the request targeted.
    pub model: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// What happened to it.
    pub outcome: FleetOutcome,
}

/// Per-pool outcome of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolReport {
    /// Hardware class of the pool.
    pub class: SocClass,
    /// Global model indices resident in the pool.
    pub models: Vec<usize>,
    /// Workers the pool started with.
    pub workers_start: usize,
    /// Smallest worker count observed (≥ `min_workers`).
    pub workers_low: usize,
    /// Largest worker count observed (≤ `max_workers`).
    pub workers_high: usize,
    /// Workers active when the run ended.
    pub workers_final: usize,
    /// Autoscaler add events.
    pub scale_ups: u64,
    /// Autoscaler drain events.
    pub scale_downs: u64,
    /// Requests the balancer sent here (served + dropped).
    pub routed: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests dropped at this pool's admission queue.
    pub dropped: u64,
    /// Modeled cycles spent busy (frames + re-warm charges).
    pub busy_cycles: u64,
    /// Queue-wait statistics of the served requests.
    pub queue_wait: LatencyStats,
    /// Service-latency statistics of the served requests.
    pub service: LatencyStats,
    /// Total-latency statistics of the served requests.
    pub total: LatencyStats,
    /// Served requests whose total latency met the SLO.
    pub slo_attained: u64,
}

/// Result of one fleet experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Routing policy used.
    pub route: RoutePolicy,
    /// Traffic shape used.
    pub shape: TrafficShape,
    /// Configured mean offered rate in requests per second.
    pub rate_rps: u64,
    /// Workload seed.
    pub seed: u64,
    /// SoC clock the cycle figures are denominated in (every pool
    /// class shares it).
    pub soc_hz: u64,
    /// Arrival-window length in cycles.
    pub duration_cycles: u64,
    /// SLO target in cycles.
    pub slo_cycles: u64,
    /// Requests the trace offered.
    pub offered: u64,
    /// Requests served to completion, all pools.
    pub served: u64,
    /// Requests dropped at pool admission queues.
    pub dropped: u64,
    /// Requests shed at the front door.
    pub shed: u64,
    /// Last completion cycle (0 when nothing was served).
    pub makespan_cycles: u64,
    /// Queue-wait statistics of the served requests.
    pub queue_wait: LatencyStats,
    /// Service-latency statistics of the served requests.
    pub service: LatencyStats,
    /// Total-latency statistics of the served requests.
    pub total: LatencyStats,
    /// Per-pool breakdown, in pool order.
    pub per_pool: Vec<PoolReport>,
    /// Served requests whose total latency met the SLO.
    pub slo_attained: u64,
    /// Per-request records, in trace order.
    pub records: Vec<FleetRecord>,
    /// Spot-replayed frames whose real-SoC latency disagreed with the
    /// plan: 0 after [`Fleet::run`] on a healthy build, and always 0
    /// after a plan-only [`Fleet::plan`].
    pub replay_divergence: u64,
    /// Frames spot-replayed on real SoCs (0 after [`Fleet::plan`]).
    pub replayed_frames: u64,
    /// Host wall-clock seconds spent (calibration excluded).
    pub host_seconds: f64,
}

impl FleetReport {
    /// Offered request rate in requests per second of modeled time.
    #[must_use]
    pub fn offered_rate(&self) -> f64 {
        if self.duration_cycles == 0 {
            return 0.0;
        }
        self.offered as f64 * self.soc_hz as f64 / self.duration_cycles as f64
    }

    /// Achieved (served) request rate over the longer of the arrival
    /// window and the drain.
    #[must_use]
    pub fn achieved_rate(&self) -> f64 {
        let span = self.duration_cycles.max(self.makespan_cycles);
        if span == 0 {
            return 0.0;
        }
        self.served as f64 * self.soc_hz as f64 / span as f64
    }

    /// Fraction of offered requests dropped at pool admission queues.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.dropped as f64 / self.offered as f64
    }

    /// Fraction of **offered** requests whose total latency met the
    /// SLO — a dropped or shed request is an SLO miss, not a footnote.
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.slo_attained as f64 / self.offered as f64
    }

    /// Publish this report into a [`MetricsRegistry`] under the
    /// `fleet.*` namespace: outcome and autoscaler counters (summed
    /// across pools — the per-pool breakdown stays on
    /// [`FleetReport::per_pool`]), plus one observation per served
    /// request in the `fleet.queue_wait_cycles` /
    /// `fleet.service_cycles` / `fleet.total_cycles` histograms.
    pub fn publish(&self, metrics: &MetricsRegistry) {
        metrics.counter("fleet.offered", self.offered);
        metrics.counter("fleet.served", self.served);
        metrics.counter("fleet.dropped", self.dropped);
        metrics.counter("fleet.shed", self.shed);
        metrics.counter("fleet.slo_attained", self.slo_attained);
        metrics.counter("fleet.makespan_cycles", self.makespan_cycles);
        for pool in &self.per_pool {
            metrics.counter("fleet.scale_ups", pool.scale_ups);
            metrics.counter("fleet.scale_downs", pool.scale_downs);
            metrics.counter("fleet.busy_cycles", pool.busy_cycles);
        }
        for rec in &self.records {
            if let FleetOutcome::Served {
                queue_wait,
                service,
                ..
            } = rec.outcome
            {
                metrics.histogram("fleet.queue_wait_cycles", queue_wait);
                metrics.histogram("fleet.service_cycles", service);
                metrics.histogram("fleet.total_cycles", queue_wait + service);
            }
        }
    }

    /// Structured report for `rv-nvdla fleet --json`. Carries every
    /// **modeled** quantity and omits host wall-clock, so two runs of
    /// the same spec print byte-identical JSON (`tests/cli.rs` pins
    /// the round trip). Cycle figures are denominated in `soc_hz`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(
            "route".to_string(),
            Json::Str(self.route.name().to_string()),
        );
        m.insert(
            "shape".to_string(),
            Json::Str(self.shape.name().to_string()),
        );
        m.insert("rate_rps".to_string(), Json::Int(self.rate_rps));
        m.insert("seed".to_string(), Json::Int(self.seed));
        m.insert("soc_hz".to_string(), Json::Int(self.soc_hz));
        m.insert(
            "duration_cycles".to_string(),
            Json::Int(self.duration_cycles),
        );
        m.insert("slo_cycles".to_string(), Json::Int(self.slo_cycles));
        m.insert("offered".to_string(), Json::Int(self.offered));
        m.insert("served".to_string(), Json::Int(self.served));
        m.insert("dropped".to_string(), Json::Int(self.dropped));
        m.insert("shed".to_string(), Json::Int(self.shed));
        m.insert(
            "makespan_cycles".to_string(),
            Json::Int(self.makespan_cycles),
        );
        m.insert("queue_wait".to_string(), self.queue_wait.to_json());
        m.insert("service".to_string(), self.service.to_json());
        m.insert("total".to_string(), self.total.to_json());
        m.insert("slo_attained".to_string(), Json::Int(self.slo_attained));
        m.insert(
            "replayed_frames".to_string(),
            Json::Int(self.replayed_frames),
        );
        m.insert(
            "replay_divergence".to_string(),
            Json::Int(self.replay_divergence),
        );
        m.insert(
            "per_pool".to_string(),
            Json::Arr(
                self.per_pool
                    .iter()
                    .map(|p| {
                        let mut pm = BTreeMap::new();
                        pm.insert("class".to_string(), Json::Str(p.class.name().to_string()));
                        pm.insert(
                            "models".to_string(),
                            Json::Arr(p.models.iter().map(|&i| Json::Int(i as u64)).collect()),
                        );
                        pm.insert(
                            "workers_start".to_string(),
                            Json::Int(p.workers_start as u64),
                        );
                        pm.insert("workers_low".to_string(), Json::Int(p.workers_low as u64));
                        pm.insert("workers_high".to_string(), Json::Int(p.workers_high as u64));
                        pm.insert(
                            "workers_final".to_string(),
                            Json::Int(p.workers_final as u64),
                        );
                        pm.insert("scale_ups".to_string(), Json::Int(p.scale_ups));
                        pm.insert("scale_downs".to_string(), Json::Int(p.scale_downs));
                        pm.insert("routed".to_string(), Json::Int(p.routed));
                        pm.insert("served".to_string(), Json::Int(p.served));
                        pm.insert("dropped".to_string(), Json::Int(p.dropped));
                        pm.insert("busy_cycles".to_string(), Json::Int(p.busy_cycles));
                        pm.insert("queue_wait".to_string(), p.queue_wait.to_json());
                        pm.insert("service".to_string(), p.service.to_json());
                        pm.insert("total".to_string(), p.total.to_json());
                        pm.insert("slo_attained".to_string(), Json::Int(p.slo_attained));
                        Json::Obj(pm)
                    })
                    .collect(),
            ),
        );
        Json::Obj(m)
    }
}

/// Event-driven state of one simulated pool.
struct SimPool<'a> {
    profile: &'a PoolProfile,
    spec: &'a PoolSpec,
    /// Completion cycle of each active worker's in-flight frame
    /// (`<= now` means idle).
    active: Vec<u64>,
    /// FIFO of admitted, undispatched request indices.
    queue: VecDeque<usize>,
    /// Rolling SLO events `(cycle, met)` for the autoscaler window.
    window: Vec<(u64, bool)>,
    /// Request indices in dispatch order (the spot-replay source).
    dispatched: Vec<usize>,
    /// Smooth weighted-round-robin credit.
    credit: i64,
    mean_svc: u64,
    routed: u64,
    busy: u64,
    low: usize,
    high: usize,
    ups: u64,
    downs: u64,
    /// Span-emission state; inert (empty / [`TrackId::NONE`]) when the
    /// tracer is disarmed. `tracks` stays parallel to `active` — worker
    /// identities survive autoscaler churn via `serial`, so a departed
    /// worker's track is never reused.
    prefix: String,
    tracks: Vec<TrackId>,
    serial: usize,
    queue_track: TrackId,
    auto_track: TrackId,
}

/// Span-emission context shared by every pool: the tracer handle plus
/// the global model names used as span labels.
struct FleetTrace<'a> {
    tracer: &'a Tracer,
    names: &'a [String],
}

impl SimPool<'_> {
    /// Register a sync track for one new worker, named by the pool
    /// prefix and a never-reused serial number.
    fn push_track(&mut self, tracer: &Tracer) {
        let id = tracer.track(
            &format!("{} w{}", self.prefix, self.serial),
            TrackKind::Sync,
        );
        self.serial += 1;
        self.tracks.push(id);
    }

    /// Dispatch queued requests into workers becoming free up to
    /// `until`.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &mut self,
        pool_idx: usize,
        records: &mut [FleetRecord],
        until: u64,
        slo_cycles: u64,
        track_window: bool,
        tr: &FleetTrace<'_>,
    ) {
        while !self.queue.is_empty() {
            let mut wi = 0;
            for (i, &f) in self.active.iter().enumerate() {
                if f < self.active[wi] {
                    wi = i;
                }
            }
            let free_at = self.active[wi];
            if free_at > until {
                break;
            }
            let req = self.queue.pop_front().expect("nonempty queue");
            let rec = &mut records[req];
            let lm = self
                .profile
                .local(rec.model)
                .expect("balancer routed to a resident pool");
            let svc = self.profile.service.preload[lm] + self.profile.service.compute[lm];
            let start = free_at.max(rec.arrival);
            let completion = start + svc;
            let wait = start - rec.arrival;
            if tr.tracer.is_armed() {
                let name = &tr.names[rec.model];
                if wait > 0 {
                    tr.tracer.span(
                        self.queue_track,
                        SpanKind::QueueWait,
                        rec.arrival,
                        start,
                        &format!("req {req}"),
                    );
                }
                let preload = self.profile.service.preload[lm];
                tr.tracer.span(
                    self.tracks[wi],
                    SpanKind::Preload,
                    start,
                    start + preload,
                    name,
                );
                tr.tracer.span(
                    self.tracks[wi],
                    SpanKind::Compute,
                    start + preload,
                    completion,
                    name,
                );
            }
            rec.outcome = FleetOutcome::Served {
                pool: pool_idx,
                queue_wait: wait,
                service: svc,
                completion,
            };
            self.active[wi] = completion;
            self.busy += svc;
            if track_window {
                self.window.push((completion, wait + svc <= slo_cycles));
            }
            self.dispatched.push(req);
        }
    }

    /// One autoscaler evaluation at boundary cycle `b`.
    fn autoscale(
        &mut self,
        b: u64,
        window_cycles: u64,
        scale_up_below: u32,
        scale_down_above: u32,
        tr: &FleetTrace<'_>,
    ) {
        self.window.retain(|&(c, _)| c + window_cycles > b);
        let mut met = 0u64;
        let mut total = 0u64;
        for &(c, ok) in &self.window {
            if c <= b {
                total += 1;
                met += u64::from(ok);
            }
        }
        if total == 0 {
            return;
        }
        if met * 100 < u64::from(scale_up_below) * total {
            if self.active.len() < self.spec.max_workers {
                // A new worker is warm capacity only after the re-warm
                // charge: every resident weight image streams back in.
                self.active.push(b + self.profile.service.rewarm);
                self.busy += self.profile.service.rewarm;
                self.ups += 1;
                self.high = self.high.max(self.active.len());
                if tr.tracer.is_armed() {
                    self.push_track(tr.tracer);
                    let track = *self.tracks.last().expect("just pushed");
                    tr.tracer.span(
                        track,
                        SpanKind::Rewarm,
                        b,
                        b + self.profile.service.rewarm,
                        "scale-up",
                    );
                    tr.tracer
                        .instant(self.auto_track, SpanKind::Autoscale, b, "up");
                }
            }
        } else if met * 100 > u64::from(scale_down_above) * total
            && self.active.len() > self.spec.min_workers
        {
            // Drain the most-loaded worker: it finishes its in-flight
            // frame (already accounted at dispatch) and leaves.
            let mut victim = 0;
            for (i, &f) in self.active.iter().enumerate() {
                if f > self.active[victim] {
                    victim = i;
                }
            }
            self.active.remove(victim);
            self.downs += 1;
            self.low = self.low.min(self.active.len());
            if tr.tracer.is_armed() {
                self.tracks.remove(victim);
                tr.tracer
                    .instant(self.auto_track, SpanKind::Autoscale, b, "down");
            }
        }
    }

    /// Workers currently busy at `now` plus the queued backlog.
    fn load(&self, now: u64) -> u64 {
        let busy = self.active.iter().filter(|&&f| f > now).count();
        busy as u64 + self.queue.len() as u64
    }

    /// The balancer's estimate of a new arrival's queue wait.
    fn est_wait(&self, now: u64) -> u64 {
        self.load(now) * self.mean_svc / self.active.len().max(1) as u64
    }
}

/// Pick a pool among `cands` (indices into `pools`, all with the
/// request's model resident) under `route`.
fn route_pick(route: RoutePolicy, cands: &[usize], pools: &mut [SimPool<'_>], now: u64) -> usize {
    debug_assert!(!cands.is_empty());
    match route {
        RoutePolicy::Weighted => {
            let total: i64 = cands.iter().map(|&c| pools[c].spec.workers as i64).sum();
            let mut pick = cands[0];
            for &c in cands {
                pools[c].credit += pools[c].spec.workers as i64;
                if pools[c].credit > pools[pick].credit {
                    pick = c;
                }
            }
            pools[pick].credit -= total;
            pick
        }
        RoutePolicy::LeastLoaded => least_loaded(cands, pools, now),
        RoutePolicy::ModelAffinity => {
            let fewest = cands
                .iter()
                .map(|&c| pools[c].profile.models.len())
                .min()
                .expect("nonempty candidates");
            let special: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| pools[c].profile.models.len() == fewest)
                .collect();
            least_loaded(&special, pools, now)
        }
    }
}

/// The candidate with the lowest backlog per active worker
/// (cross-multiplied to stay in integers), ties to the lowest index.
fn least_loaded(cands: &[usize], pools: &[SimPool<'_>], now: u64) -> usize {
    let mut pick = cands[0];
    for &c in &cands[1..] {
        let (lc, ac) = (pools[c].load(now), pools[c].active.len() as u64);
        let (lp, ap) = (pools[pick].load(now), pools[pick].active.len() as u64);
        if lc * ap < lp * ac {
            pick = c;
        }
    }
    pick
}

/// Run the fleet queueing system over `trace` in modeled time and
/// build the report plus per-pool dispatch orders. Pure: no SoC is
/// touched (the property tests drive this with synthetic profiles).
/// Spans land in `tracer` (disarmed in the plain [`simulate`] path);
/// emission only records values this function computed anyway, keeping
/// the traced run bit- and cycle-identical to the untraced one.
fn simulate_plan(
    trace: &RequestTrace,
    profiles: &[PoolProfile],
    spec: &FleetSpec,
    names: &[String],
    soc_hz: u64,
    tracer: &Tracer,
) -> (FleetReport, Vec<Vec<usize>>) {
    assert_eq!(
        profiles.len(),
        spec.pools.len(),
        "one profile per pool spec"
    );
    assert!(!names.is_empty(), "fleet needs at least one model");
    let slo_cycles = spec.slo_cycles(soc_hz);
    let window_cycles = spec
        .scale_window_ms
        .saturating_mul((soc_hz / 1000).max(1))
        .max(1);
    let autoscaling = spec.pools.iter().any(|p| p.max_workers > p.min_workers);
    let mut pools: Vec<SimPool<'_>> = profiles
        .iter()
        .zip(&spec.pools)
        .map(|(profile, pspec)| SimPool {
            profile,
            spec: pspec,
            active: vec![0u64; pspec.workers],
            queue: VecDeque::new(),
            window: Vec::new(),
            dispatched: Vec::new(),
            credit: 0,
            mean_svc: profile.mean_svc(),
            routed: 0,
            busy: 0,
            low: pspec.workers,
            high: pspec.workers,
            ups: 0,
            downs: 0,
            prefix: String::new(),
            tracks: Vec::new(),
            serial: 0,
            queue_track: TrackId::NONE,
            auto_track: TrackId::NONE,
        })
        .collect();
    let tr = FleetTrace { tracer, names };
    if tracer.is_armed() {
        for (p, pool) in pools.iter_mut().enumerate() {
            pool.prefix = format!("pool{p} {}", pool.spec.class.name());
            pool.queue_track = tracer.track(&format!("{} queue", pool.prefix), TrackKind::Async);
            pool.auto_track = tracer.track(&format!("{} autoscaler", pool.prefix), TrackKind::Sync);
            for _ in 0..pool.spec.workers {
                pool.push_track(tracer);
            }
        }
    }
    // Candidate pools per global model — routing is *structurally*
    // restricted to pools with the model resident.
    let candidates: Vec<Vec<usize>> = (0..names.len())
        .map(|m| {
            (0..pools.len())
                .filter(|&p| profiles[p].local(m).is_some())
                .collect()
        })
        .collect();
    let mut records: Vec<FleetRecord> = trace
        .requests
        .iter()
        .map(|r| FleetRecord {
            model: r.model,
            arrival: r.arrival,
            outcome: FleetOutcome::Shed,
        })
        .collect();
    let mut shed = 0u64;
    let mut next_eval = window_cycles;

    for (i, r) in trace.requests.iter().enumerate() {
        // Autoscaler boundaries strictly before this arrival.
        while autoscaling && next_eval <= r.arrival {
            for (p, pool) in pools.iter_mut().enumerate() {
                pool.advance(p, &mut records, next_eval, slo_cycles, true, &tr);
                pool.autoscale(
                    next_eval,
                    window_cycles,
                    spec.scale_up_below,
                    spec.scale_down_above,
                    &tr,
                );
            }
            next_eval += window_cycles;
        }
        for (p, pool) in pools.iter_mut().enumerate() {
            pool.advance(p, &mut records, r.arrival, slo_cycles, autoscaling, &tr);
        }
        let cands = &candidates[r.model];
        assert!(
            !cands.is_empty(),
            "model {} resident in no pool (FleetSpec::validate must run first)",
            r.model
        );
        if cands
            .iter()
            .all(|&p| pools[p].est_wait(r.arrival) > SHED_SLOS * slo_cycles)
        {
            shed += 1;
            continue; // records[i] already says Shed
        }
        let p = route_pick(spec.route, cands, &mut pools, r.arrival);
        pools[p].routed += 1;
        if pools[p].queue.len() < pools[p].spec.queue_depth {
            pools[p].queue.push_back(i);
            pools[p].advance(p, &mut records, r.arrival, slo_cycles, autoscaling, &tr);
        } else {
            records[i].outcome = FleetOutcome::Dropped { pool: p };
            if autoscaling {
                pools[p].window.push((r.arrival, false));
            }
        }
    }
    // Drain: no arrivals remain, so the autoscaler holds its size.
    for (p, pool) in pools.iter_mut().enumerate() {
        pool.advance(p, &mut records, u64::MAX, slo_cycles, false, &tr);
    }

    // Aggregate.
    let mut waits = Vec::new();
    let mut services = Vec::new();
    let mut totals = Vec::new();
    let mut makespan = 0u64;
    let mut slo_attained = 0u64;
    let mut pool_waits: Vec<Vec<u64>> = vec![Vec::new(); pools.len()];
    let mut pool_services: Vec<Vec<u64>> = vec![Vec::new(); pools.len()];
    let mut pool_totals: Vec<Vec<u64>> = vec![Vec::new(); pools.len()];
    let mut pool_served = vec![0u64; pools.len()];
    let mut pool_dropped = vec![0u64; pools.len()];
    let mut pool_slo = vec![0u64; pools.len()];
    for rec in &records {
        match rec.outcome {
            FleetOutcome::Served {
                pool,
                queue_wait,
                service,
                completion,
            } => {
                let total = queue_wait + service;
                waits.push(queue_wait);
                services.push(service);
                totals.push(total);
                makespan = makespan.max(completion);
                pool_served[pool] += 1;
                pool_waits[pool].push(queue_wait);
                pool_services[pool].push(service);
                pool_totals[pool].push(total);
                if total <= slo_cycles {
                    slo_attained += 1;
                    pool_slo[pool] += 1;
                }
            }
            FleetOutcome::Dropped { pool } => pool_dropped[pool] += 1,
            FleetOutcome::Shed => {}
        }
    }
    let per_pool: Vec<PoolReport> = pools
        .iter()
        .enumerate()
        .map(|(p, pool)| PoolReport {
            class: pool.spec.class,
            models: pool.profile.models.clone(),
            workers_start: pool.spec.workers,
            workers_low: pool.low,
            workers_high: pool.high,
            workers_final: pool.active.len(),
            scale_ups: pool.ups,
            scale_downs: pool.downs,
            routed: pool.routed,
            served: pool_served[p],
            dropped: pool_dropped[p],
            busy_cycles: pool.busy,
            queue_wait: LatencyStats::from_samples(&mut pool_waits[p]),
            service: LatencyStats::from_samples(&mut pool_services[p]),
            total: LatencyStats::from_samples(&mut pool_totals[p]),
            slo_attained: pool_slo[p],
        })
        .collect();
    let served = totals.len() as u64;
    let report = FleetReport {
        route: spec.route,
        shape: spec.shape,
        rate_rps: spec.rate_rps,
        seed: spec.seed,
        soc_hz,
        duration_cycles: trace.duration,
        slo_cycles,
        offered: records.len() as u64,
        served,
        dropped: pool_dropped.iter().sum(),
        shed,
        makespan_cycles: makespan,
        queue_wait: LatencyStats::from_samples(&mut waits),
        service: LatencyStats::from_samples(&mut services),
        total: LatencyStats::from_samples(&mut totals),
        per_pool,
        slo_attained,
        records,
        replay_divergence: 0,
        replayed_frames: 0,
        host_seconds: 0.0,
    };
    let dispatched = pools.into_iter().map(|p| p.dispatched).collect();
    (report, dispatched)
}

/// Simulate a fleet trace against pool profiles without touching a SoC
/// — the planning half of [`Fleet::run`], exposed for sweeps and
/// property tests (synthetic [`PoolProfile`]s welcome).
///
/// # Panics
///
/// Panics when `profiles` and `spec.pools` disagree in length, `names`
/// is empty, or a trace request targets a model resident in no pool
/// (run [`FleetSpec::validate`] first).
#[must_use]
pub fn simulate(
    trace: &RequestTrace,
    profiles: &[PoolProfile],
    spec: &FleetSpec,
    names: &[String],
    soc_hz: u64,
) -> FleetReport {
    simulate_plan(trace, profiles, spec, names, soc_hz, &Tracer::disarmed()).0
}

/// [`simulate`], emitting spans into `tracer`: per pool, one sync track
/// per worker ("poolN CLASS wK" — serial numbers survive autoscaler
/// churn) carrying `preload`/`compute`/`rewarm` spans whose top-level
/// cycles sum to the pool's `busy_cycles`, an async "poolN CLASS queue"
/// track whose `queue_wait` spans sum to the pool's queue-wait total,
/// and a "poolN CLASS autoscaler" track of instant `autoscale` markers.
/// Arming the tracer is observationally free: the report is
/// byte-identical to [`simulate`]'s (proptested).
///
/// # Panics
///
/// Panics under the same conditions as [`simulate`].
#[must_use]
pub fn simulate_traced(
    trace: &RequestTrace,
    profiles: &[PoolProfile],
    spec: &FleetSpec,
    names: &[String],
    soc_hz: u64,
    tracer: &Tracer,
) -> FleetReport {
    simulate_plan(trace, profiles, spec, names, soc_hz, tracer).0
}

/// One pool's compiled-and-calibrated runtime state.
struct PoolRuntime {
    class: SocClass,
    config: SocConfig,
    /// Pool-local artifacts (subset of the class layout, in local slot
    /// order).
    artifacts: Vec<Arc<Artifacts>>,
    profile: PoolProfile,
}

/// A fleet of heterogeneous pools over one model zoo: compiles every
/// model per hardware class, calibrates each distinct `(class, resident
/// subset)` once, then plans (or plans-and-spot-replays) any number of
/// [`FleetSpec`] experiments that keep the same pool shapes.
pub struct Fleet {
    codegen: CodegenOptions,
    names: Vec<String>,
    pools: Vec<PoolRuntime>,
    soc_hz: u64,
}

impl Fleet {
    /// Build the fleet: per-class compilation (`opt.hw` is re-targeted
    /// per [`SocClass`], the class layouts sharing one
    /// [`ArtifactCache`]), then one [`ServiceModel::calibrate`] per
    /// distinct `(class, subset)` pool shape.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for a degenerate spec,
    /// [`ServeError::Batch`] when compilation, pinning or calibration
    /// fails.
    pub fn new(
        nets: &[Network],
        base_options: &CompileOptions,
        codegen: CodegenOptions,
        spec: &FleetSpec,
    ) -> Result<Self, ServeError> {
        spec.validate(nets.len())?;
        let names: Vec<String> = nets.iter().map(|n| n.name().to_string()).collect();
        let cache = ArtifactCache::new();
        let mut class_layouts: Vec<(SocClass, Vec<Arc<Artifacts>>)> = Vec::new();
        for p in &spec.pools {
            if class_layouts.iter().any(|(c, _)| *c == p.class) {
                continue;
            }
            let mut opt = base_options.clone();
            opt.hw = p.class.hw();
            let layout = layout_models(&cache, nets, &opt)
                .map_err(|e| ServeError::Config(format!("compile for {}: {e}", p.class.name())))?;
            class_layouts.push((p.class, layout));
        }
        let mut pools: Vec<PoolRuntime> = Vec::with_capacity(spec.pools.len());
        let mut calibrated: Vec<(SocClass, Vec<usize>, ServiceModel)> = Vec::new();
        for p in &spec.pools {
            let globals: Vec<usize> = p
                .models
                .clone()
                .unwrap_or_else(|| (0..nets.len()).collect());
            let layout = &class_layouts
                .iter()
                .find(|(c, _)| *c == p.class)
                .expect("class compiled above")
                .1;
            let artifacts: Vec<Arc<Artifacts>> =
                globals.iter().map(|&g| layout[g].clone()).collect();
            let config = p.class.config();
            let service = match calibrated
                .iter()
                .find(|(c, g, _)| *c == p.class && *g == globals)
            {
                Some((_, _, s)) => s.clone(),
                None => {
                    let s = ServiceModel::calibrate(&config, &artifacts, codegen)?;
                    calibrated.push((p.class, globals.clone(), s.clone()));
                    s
                }
            };
            pools.push(PoolRuntime {
                class: p.class,
                config,
                artifacts,
                profile: PoolProfile {
                    service,
                    models: globals,
                },
            });
        }
        let soc_hz = pools[0].config.soc_hz;
        assert!(
            pools.iter().all(|p| p.config.soc_hz == soc_hz),
            "every pool class shares the SoC clock"
        );
        Ok(Fleet {
            codegen,
            names,
            pools,
            soc_hz,
        })
    }

    /// The fleet's model names, in global index order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The calibrated profile of pool `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is out of range.
    #[must_use]
    pub fn pool_profile(&self, p: usize) -> &PoolProfile {
        &self.pools[p].profile
    }

    /// Reject a spec whose pool shapes (count, class, residency)
    /// disagree with what this fleet compiled and calibrated; worker
    /// counts, queue depths, autoscaler bounds and traffic knobs may
    /// vary freely between [`Fleet::plan`] calls.
    fn check_spec(&self, spec: &FleetSpec) -> Result<(), ServeError> {
        spec.validate(self.names.len())?;
        if spec.pools.len() != self.pools.len() {
            return Err(ServeError::Config(format!(
                "fleet was built for {} pool(s), spec has {} \
                 (build a new Fleet to change pool count)",
                self.pools.len(),
                spec.pools.len()
            )));
        }
        for (i, (p, rt)) in spec.pools.iter().zip(&self.pools).enumerate() {
            let globals: Vec<usize> = p
                .models
                .clone()
                .unwrap_or_else(|| (0..self.names.len()).collect());
            if p.class != rt.class || globals != rt.profile.models {
                return Err(ServeError::Config(format!(
                    "pool {i} changed class or residency since the fleet was built \
                     (build a new Fleet to change pool shapes)"
                )));
            }
        }
        Ok(())
    }

    /// Generate `spec`'s shaped request trace (deterministic per seed).
    #[must_use]
    pub fn trace(&self, spec: &FleetSpec) -> RequestTrace {
        shaped_trace(
            spec.shape,
            spec.rate_rps,
            spec.duration_cycles(self.soc_hz),
            self.names.len(),
            spec.seed,
            self.soc_hz,
        )
    }

    /// Plan `spec` without running frames: shaped trace generation plus
    /// the multi-pool queueing simulation on the calibrated profiles.
    /// Host-cheap — what makes capacity sweeps
    /// (`examples/capacity_planner.rs`) practical.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for a degenerate or shape-changing spec.
    pub fn plan(&self, spec: &FleetSpec) -> Result<FleetReport, ServeError> {
        self.plan_traced(spec, &Tracer::disarmed())
    }

    /// [`Fleet::plan`], emitting spans into `tracer` (see
    /// [`simulate_traced`] for the track layout and the bit-identity
    /// contract).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for a degenerate or shape-changing spec.
    pub fn plan_traced(
        &self,
        spec: &FleetSpec,
        tracer: &Tracer,
    ) -> Result<FleetReport, ServeError> {
        self.check_spec(spec)?;
        let start = Instant::now();
        let trace = self.trace(spec);
        let profiles: Vec<PoolProfile> = self.pools.iter().map(|p| p.profile.clone()).collect();
        let (mut report, _) =
            simulate_plan(&trace, &profiles, spec, &self.names, self.soc_hz, tracer);
        report.host_seconds = start.elapsed().as_secs_f64();
        Ok(report)
    }

    /// Plan `spec`, then keep the numbers honest: sample
    /// [`FleetSpec::spot_windows`] windows of
    /// [`FleetSpec::window_frames`] consecutively-dispatched frames per
    /// pool and replay each window cycle-exactly on a real SoC of the
    /// pool's class, streaming seeded per-request input bytes.
    /// [`FleetReport::replay_divergence`] counts frames where the real
    /// machine disagreed with the plan (zero on a healthy build —
    /// `tests/fleet.rs` pins it).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for a degenerate or shape-changing spec,
    /// [`ServeError::Batch`] when a replay SoC fails to build or a
    /// frame fails.
    ///
    /// # Panics
    ///
    /// Panics if a replay thread panics (propagated by [`fan_out`]).
    pub fn run(&self, spec: &FleetSpec) -> Result<FleetReport, ServeError> {
        self.run_traced(spec, &Tracer::disarmed())
    }

    /// [`Fleet::run`], emitting spans into `tracer` (see
    /// [`simulate_traced`] for the track layout and the bit-identity
    /// contract). Only the planning half emits — the spot-replay is a
    /// cross-check of the very cycles the plan's spans already carry.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for a degenerate or shape-changing spec,
    /// [`ServeError::Batch`] when a replay SoC fails to build or a
    /// frame fails.
    ///
    /// # Panics
    ///
    /// Panics if a replay thread panics (propagated by [`fan_out`]).
    pub fn run_traced(&self, spec: &FleetSpec, tracer: &Tracer) -> Result<FleetReport, ServeError> {
        self.check_spec(spec)?;
        let start = Instant::now();
        let trace = self.trace(spec);
        let profiles: Vec<PoolProfile> = self.pools.iter().map(|p| p.profile.clone()).collect();
        let (mut report, dispatched) =
            simulate_plan(&trace, &profiles, spec, &self.names, self.soc_hz, tracer);
        // Sample K evenly-spaced windows of W consecutive dispatches
        // per pool (fewer when a pool dispatched less than that).
        let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
        for (p, disp) in dispatched.iter().enumerate() {
            if disp.is_empty() {
                continue;
            }
            let w = spec.window_frames.min(disp.len());
            let span = disp.len() - w;
            let mut prev = None;
            for j in 0..spec.spot_windows {
                let s = if spec.spot_windows == 1 {
                    0
                } else {
                    span * j / (spec.spot_windows - 1)
                };
                if prev == Some(s) {
                    continue;
                }
                prev = Some(s);
                jobs.push((p, s, w));
            }
        }
        let input_for = |pool: usize, lm: usize, request: usize| -> Vec<u8> {
            let mut rng = StdRng::seed_from_u64(spec.seed ^ (0x5EED << 16) ^ request as u64);
            (0..self.pools[pool].artifacts[lm].input_len)
                .map(|_| rng.gen_range(0u8..=255))
                .collect()
        };
        let measured = fan_out(jobs.len(), jobs.len(), |j| {
            let (p, s, w) = jobs[j];
            let rt = &self.pools[p];
            let window = &dispatched[p][s..s + w];
            let seq: Vec<usize> = window
                .iter()
                .map(|&req| {
                    rt.profile
                        .local(trace.requests[req].model)
                        .expect("dispatched means resident")
                })
                .collect();
            let frames: Vec<(usize, Vec<u8>)> = seq
                .iter()
                .zip(window)
                .map(|(&lm, &req)| (lm, input_for(p, lm, req)))
                .collect();
            replay_sequences(
                &rt.config,
                &rt.artifacts,
                self.codegen,
                Policy::RoundRobin,
                false,
                std::slice::from_ref(&seq),
                frames,
            )
        });
        let mut divergence = 0u64;
        let mut replayed = 0u64;
        for (j, run) in measured.into_iter().enumerate() {
            let latencies = run?;
            let (p, s, w) = jobs[j];
            let rt = &self.pools[p];
            replayed += w as u64;
            let predicted: Vec<u64> = dispatched[p][s..s + w]
                .iter()
                .map(|&req| {
                    let lm = rt
                        .profile
                        .local(trace.requests[req].model)
                        .expect("dispatched means resident");
                    rt.profile.service.preload[lm] + rt.profile.service.compute[lm]
                })
                .collect();
            divergence += predicted
                .iter()
                .zip(&latencies)
                .filter(|(a, b)| a != b)
                .count() as u64;
            divergence += predicted.len().abs_diff(latencies.len()) as u64;
        }
        report.replay_divergence = divergence;
        report.replayed_frames = replayed;
        report.host_seconds = start.elapsed().as_secs_f64();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic single-model profile with serial frame cost `svc`.
    fn flat_profile(svc: u64, models: Vec<usize>) -> PoolProfile {
        let n = models.len();
        PoolProfile {
            service: ServiceModel {
                preload: vec![0; n],
                fill: vec![0; n],
                compute: vec![svc; n],
                compute_with: vec![vec![svc; n]; n],
                preload_done: vec![vec![0; n]; n],
                rewarm: 10 * svc,
            },
            models,
        }
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("m{i}")).collect()
    }

    fn base_spec(pools: Vec<PoolSpec>) -> FleetSpec {
        FleetSpec {
            pools,
            slo_us: 100,
            ..FleetSpec::default()
        }
    }

    const HZ: u64 = 100_000_000;

    #[test]
    fn pool_grammar_parses_and_rejects() {
        let ns = vec!["LeNet-5".to_string(), "ResNet-18".to_string()];
        let pools = parse_pools(
            "nv_small:workers=2,min=1,max=6,queue=4;nv_full:workers=1,models=resnet18",
            &ns,
        )
        .expect("grammar parses");
        assert_eq!(pools.len(), 2);
        assert_eq!(pools[0].class, SocClass::NvSmall);
        assert_eq!(
            (pools[0].workers, pools[0].min_workers, pools[0].max_workers),
            (2, 1, 6)
        );
        assert_eq!(pools[0].queue_depth, 4);
        assert_eq!(pools[0].models, None);
        assert_eq!(pools[1].class, SocClass::NvFull);
        // min/max default to workers: the autoscaler is pinned.
        assert_eq!((pools[1].min_workers, pools[1].max_workers), (1, 1));
        assert_eq!(pools[1].models, Some(vec![1]));

        for (bad, needle) in [
            ("0", "unknown pool class `0`"),
            ("nv_tiny:workers=1", "unknown pool class `nv_tiny`"),
            ("nv_small:workers=zzz", "not an integer"),
            ("nv_small:bogus=1", "unknown key `bogus`"),
            ("nv_small:workers", "not key=value"),
            ("nv_small:models=vgg99", "not in --models"),
            ("nv_small:models=lenet5+lenet5", "duplicate model"),
            ("", "at least one pool"),
        ] {
            let e = parse_pools(bad, &ns).expect_err("must reject");
            assert!(e.contains(needle), "`{bad}` -> {e}");
        }
    }

    #[test]
    fn spec_validation_names_the_offending_flag() {
        let ok = base_spec(vec![PoolSpec::default()]);
        ok.validate(1).expect("healthy spec passes");
        for (broken, needle) in [
            (
                FleetSpec {
                    rate_rps: 0,
                    ..ok.clone()
                },
                "--rate",
            ),
            (
                FleetSpec {
                    duration_ms: 0,
                    ..ok.clone()
                },
                "--duration",
            ),
            (
                FleetSpec {
                    slo_us: 0,
                    ..ok.clone()
                },
                "--slo-us",
            ),
            (
                FleetSpec {
                    scale_window_ms: 0,
                    ..ok.clone()
                },
                "--scale-window",
            ),
            (
                FleetSpec {
                    scale_up_below: 101,
                    ..ok.clone()
                },
                "--scale-up-below",
            ),
            (
                FleetSpec {
                    scale_up_below: 95,
                    scale_down_above: 90,
                    ..ok.clone()
                },
                "--scale-up-below must not exceed",
            ),
            (
                FleetSpec {
                    spot_windows: 0,
                    ..ok.clone()
                },
                "--spot-windows",
            ),
            (
                FleetSpec {
                    window_frames: 0,
                    ..ok.clone()
                },
                "--window-frames",
            ),
            (
                base_spec(vec![PoolSpec {
                    workers: 2,
                    min_workers: 3,
                    max_workers: 1,
                    ..PoolSpec::default()
                }]),
                "min <= workers <= max",
            ),
            (
                base_spec(vec![PoolSpec {
                    queue_depth: 0,
                    ..PoolSpec::default()
                }]),
                "queue must be >= 1",
            ),
            (base_spec(Vec::new()), "--pools"),
        ] {
            let e = broken.validate(1).expect_err("must reject").to_string();
            assert!(e.contains(needle), "got: {e}");
        }
        // A model with no pool home is unservable.
        let orphan = base_spec(vec![PoolSpec {
            models: Some(vec![0]),
            ..PoolSpec::default()
        }]);
        let e = orphan
            .validate(2)
            .expect_err("model 1 homeless")
            .to_string();
        assert!(e.contains("resident in no pool"), "got: {e}");
    }

    #[test]
    fn shaped_traces_are_sorted_seeded_and_shaped() {
        for shape in [
            TrafficShape::Steady,
            TrafficShape::Diurnal,
            TrafficShape::Bursty,
            TrafficShape::FlashCrowd,
        ] {
            let t = shaped_trace(shape, 500, HZ, 2, 9, HZ);
            assert!(
                t.requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
                "{} arrivals sorted",
                shape.name()
            );
            assert!(t.requests.iter().all(|r| r.arrival < HZ && r.model < 2));
            let again = shaped_trace(shape, 500, HZ, 2, 9, HZ);
            assert_eq!(t, again, "{} replays bit-identically", shape.name());
            let moved = shaped_trace(shape, 500, HZ, 2, 10, HZ);
            assert_ne!(t, moved, "{} moves with its seed", shape.name());
        }
        // The flash crowd concentrates arrivals mid-trace: the middle
        // tenth must be far denser than a steady tenth.
        let flash = shaped_trace(TrafficShape::FlashCrowd, 1000, HZ, 1, 7, HZ);
        let mid = flash
            .requests
            .iter()
            .filter(|r| (HZ * 45 / 100..HZ * 55 / 100).contains(&r.arrival))
            .count();
        assert!(
            mid > flash.requests.len() / 4,
            "flash crowd mid-tenth holds {mid} of {}",
            flash.requests.len()
        );
    }

    #[test]
    fn conservation_served_dropped_shed_covers_offered() {
        // Two pools, one slow: heavy overload forces drops.
        let profiles = vec![
            flat_profile(2_000, vec![0, 1]),
            flat_profile(8_000, vec![0, 1]),
        ];
        let spec = base_spec(vec![
            PoolSpec {
                queue_depth: 2,
                ..PoolSpec::default()
            },
            PoolSpec {
                queue_depth: 2,
                ..PoolSpec::default()
            },
        ]);
        let t = shaped_trace(TrafficShape::Bursty, 100_000, HZ / 100, 2, 1, HZ);
        let r = simulate(&t, &profiles, &spec, &names(2), HZ);
        assert_eq!(r.offered, t.requests.len() as u64);
        assert_eq!(r.served + r.dropped + r.shed, r.offered, "conservation");
        assert!(r.dropped > 0, "overload must drop");
        for p in &r.per_pool {
            assert_eq!(p.routed, p.served + p.dropped, "per-pool books balance");
        }
        assert_eq!(
            r.per_pool.iter().map(|p| p.routed).sum::<u64>() + r.shed,
            r.offered
        );
    }

    #[test]
    fn weighted_routing_splits_by_configured_workers() {
        let profiles = vec![flat_profile(100, vec![0]), flat_profile(100, vec![0])];
        let spec = FleetSpec {
            slo_us: 1_000,
            ..base_spec(vec![
                PoolSpec {
                    workers: 3,
                    min_workers: 3,
                    max_workers: 3,
                    queue_depth: 64,
                    ..PoolSpec::default()
                },
                PoolSpec {
                    workers: 1,
                    queue_depth: 64,
                    ..PoolSpec::default()
                },
            ])
        };
        let t = shaped_trace(TrafficShape::Steady, 1_000, HZ / 10, 1, 5, HZ);
        let r = simulate(&t, &profiles, &spec, &names(1), HZ);
        let (a, b) = (r.per_pool[0].routed, r.per_pool[1].routed);
        assert!(a + b > 50, "trace must offer real load");
        // 3:1 weights -> pool 0 takes ~75%.
        assert!(a > 2 * b, "weighted 3:1 must skew the split: {a} vs {b}");
    }

    #[test]
    fn affinity_routes_only_to_resident_pools_and_prefers_specialists() {
        // Pool 0 is a generalist (both models), pool 1 serves model 1
        // only; affinity must send every model-1 request to pool 1
        // until its load argues otherwise, and model-0 requests can
        // never land there.
        let profiles = vec![
            flat_profile(1_000, vec![0, 1]),
            flat_profile(1_000, vec![1]),
        ];
        let spec = FleetSpec {
            route: RoutePolicy::ModelAffinity,
            ..base_spec(vec![
                PoolSpec {
                    queue_depth: 64,
                    ..PoolSpec::default()
                },
                PoolSpec {
                    queue_depth: 64,
                    ..PoolSpec::default()
                },
            ])
        };
        let t = shaped_trace(TrafficShape::Steady, 2_000, HZ / 10, 2, 11, HZ);
        let r = simulate(&t, &profiles, &spec, &names(2), HZ);
        for rec in &r.records {
            let pool = match rec.outcome {
                FleetOutcome::Served { pool, .. } | FleetOutcome::Dropped { pool } => pool,
                FleetOutcome::Shed => continue,
            };
            assert!(
                profiles[pool].local(rec.model).is_some(),
                "routed to a pool lacking model {}",
                rec.model
            );
        }
        assert!(
            r.per_pool[1].routed > 0,
            "the specialist pool must see its model"
        );
    }

    #[test]
    fn autoscaler_grows_under_load_shrinks_after_and_stays_in_bounds() {
        let profiles = vec![flat_profile(50_000, vec![0])];
        let spec = FleetSpec {
            slo_us: 600,
            scale_window_ms: 2,
            shape: TrafficShape::FlashCrowd,
            rate_rps: 4_000,
            duration_ms: 100,
            ..base_spec(vec![PoolSpec {
                workers: 1,
                min_workers: 1,
                max_workers: 6,
                queue_depth: 32,
                ..PoolSpec::default()
            }])
        };
        let t = shaped_trace(
            spec.shape,
            spec.rate_rps,
            spec.duration_cycles(HZ),
            1,
            3,
            HZ,
        );
        let r = simulate(&t, &profiles, &spec, &names(1), HZ);
        let p = &r.per_pool[0];
        assert!(p.scale_ups > 0, "the flash crowd must trigger scale-up");
        assert!(p.workers_high > 1, "the pool must actually grow");
        assert!(p.workers_high <= 6 && p.workers_low >= 1, "bounds hold");
        assert!(
            p.scale_downs > 0,
            "the calm after the spike must drain workers"
        );
        // Bit-identical replay of the whole report.
        let again = simulate(&t, &profiles, &spec, &names(1), HZ);
        assert_eq!(r, again, "seeded fleet runs replay bit-identically");
    }

    #[test]
    fn hopeless_backlog_sheds_at_the_front_door() {
        // One worker, 1 ms frames, 1 µs SLO and a deep queue: the
        // estimated wait blows past 8 SLOs almost immediately.
        let profiles = vec![flat_profile(100_000, vec![0])];
        let spec = FleetSpec {
            slo_us: 1,
            ..base_spec(vec![PoolSpec {
                queue_depth: 1_000,
                ..PoolSpec::default()
            }])
        };
        let t = shaped_trace(TrafficShape::Steady, 10_000, HZ / 100, 1, 2, HZ);
        let r = simulate(&t, &profiles, &spec, &names(1), HZ);
        assert!(r.shed > 0, "hopeless queues must shed");
        assert_eq!(r.served + r.dropped + r.shed, r.offered);
    }
}
