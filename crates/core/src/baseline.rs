//! Linux-driver runtime baseline (Table II comparison column).
//!
//! Prior FPGA integrations (ref.\[8\], Ariane + NVDLA on ESP, and the
//! PetaLinux deployments refs.\[10\]–\[12\]) run the NVDLA software stack — user
//! -mode runtime, kernel-mode driver, interrupt handling — under Linux,
//! at 50 MHz. The accelerator cycles are the same hardware cycles; the
//! difference is (a) the runtime overhead and (b) the clock.
//!
//! The overhead decomposition is calibrated against the two published
//! points of Table II (LeNet-5: 263 ms, ResNet-50: 2.5 s at 50 MHz):
//! a large fixed runtime/driver initialization (loadable parsing, buffer
//! registration), a per-submission ioctl+IRQ+scheduling cost, and a
//! small per-byte copy cost — which makes small models overhead-bound
//! (LeNet 55× slower than bare metal) while large models stay
//! compute-bound (ResNet-50 ≈ 2.3×), exactly the paper's shape.

/// The Linux runtime cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinuxRuntimeModel {
    /// Clock of the baseline platform in Hz (ref.\[8\] runs at 50 MHz).
    pub clock_hz: u64,
    /// Fixed runtime + driver initialization cycles (loadable parse,
    /// context creation, buffer registration).
    pub init_cycles: u64,
    /// Cycles per hardware-operation submission (ioctl, KMD scheduling,
    /// interrupt + wakeup).
    pub per_op_cycles: u64,
    /// Milli-cycles per byte of weights/activations copied/mapped
    /// between user and kernel space.
    pub per_byte_millicycles: u64,
}

impl LinuxRuntimeModel {
    /// The ESP/Ariane-like baseline of the paper's Table II.
    #[must_use]
    pub fn esp_ariane_50mhz() -> Self {
        LinuxRuntimeModel {
            clock_hz: 50_000_000,
            init_cycles: 12_000_000,
            per_op_cycles: 50_000,
            per_byte_millicycles: 30,
        }
    }

    /// Total cycles for an inference whose pure hardware execution takes
    /// `hw_cycles` (frequency-independent), submitted as `ops` hardware
    /// operations over `data_bytes` of weights + activations.
    #[must_use]
    pub fn total_cycles(&self, hw_cycles: u64, ops: u64, data_bytes: u64) -> u64 {
        self.init_cycles
            + ops * self.per_op_cycles
            + data_bytes * self.per_byte_millicycles / 1000
            + hw_cycles
    }

    /// Latency in milliseconds.
    #[must_use]
    pub fn latency_ms(&self, hw_cycles: u64, ops: u64, data_bytes: u64) -> f64 {
        self.total_cycles(hw_cycles, ops, data_bytes) as f64 * 1000.0 / self.clock_hz as f64
    }
}

impl Default for LinuxRuntimeModel {
    fn default() -> Self {
        Self::esp_ariane_50mhz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_models_are_overhead_dominated() {
        let m = LinuxRuntimeModel::esp_ariane_50mhz();
        // LeNet-ish: 0.5M hw cycles, 6 ops, ~0.5 MB data.
        let total = m.total_cycles(500_000, 6, 500_000);
        assert!(total > 10 * 500_000, "overhead dwarfs hardware time");
        let ms = m.latency_ms(500_000, 6, 500_000);
        assert!(
            (200.0..320.0).contains(&ms),
            "LeNet-like {ms:.0} ms vs paper 263 ms"
        );
    }

    #[test]
    fn large_models_are_compute_dominated() {
        let m = LinuxRuntimeModel::esp_ariane_50mhz();
        // ResNet-50-ish: 110M hw cycles, 120 ops, ~60 MB data.
        let total = m.total_cycles(110_000_000, 120, 60_000_000);
        let overhead = total - 110_000_000;
        assert!(overhead * 5 < total, "overhead below 20% on big models");
        let s = m.latency_ms(110_000_000, 120, 60_000_000) / 1000.0;
        assert!(
            (2.0..3.2).contains(&s),
            "ResNet-50-like {s:.2} s vs paper 2.5 s"
        );
    }

    #[test]
    fn baseline_to_bare_metal_ratio_shrinks_with_model_size() {
        let m = LinuxRuntimeModel::esp_ariane_50mhz();
        // Bare metal at 100 MHz executes hw_cycles directly.
        let bm_ms = |hw: u64| hw as f64 * 1000.0 / 100_000_000.0;
        let small_ratio = m.latency_ms(500_000, 6, 500_000) / bm_ms(500_000);
        let large_ratio = m.latency_ms(110_000_000, 120, 60_000_000) / bm_ms(110_000_000);
        assert!(small_ratio > 30.0, "small model speedup {small_ratio:.0}x");
        assert!(large_ratio < 4.0, "large model speedup {large_ratio:.1}x");
    }
}
