//! Firmware builder: compiled artifacts → program-memory image.
//!
//! The paper's flow loads "machine code generated from the configuration
//! file" into block-RAM program memory (`.mem` format). This module
//! performs the configuration-file → assembly → machine-code steps and
//! reports the storage footprint that the bare-metal approach saves
//! relative to a Linux image.

use rvnv_compiler::codegen::{generate_assembly_with, CodegenOptions};
use rvnv_compiler::Artifacts;
use rvnv_riscv::asm::{assemble, AsmError, Image};

/// A built firmware image plus its source assembly.
#[derive(Debug, Clone)]
pub struct Firmware {
    /// The generated assembly text.
    pub assembly: String,
    /// The assembled flat binary.
    pub image: Image,
}

impl Firmware {
    /// Build firmware for compiled artifacts with default options
    /// (poll-mode waits, `mcycle` self-timing).
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if the generated assembly fails to assemble
    /// (a codegen bug, not a user error).
    pub fn build(artifacts: &Artifacts) -> Result<Self, AsmError> {
        Self::build_with(artifacts, CodegenOptions::default())
    }

    /// Build firmware with explicit codegen options (e.g. `wfi` waits).
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if the generated assembly fails to assemble.
    pub fn build_with(artifacts: &Artifacts, options: CodegenOptions) -> Result<Self, AsmError> {
        let assembly = generate_assembly_with(&artifacts.commands, options);
        let image = assemble(&assembly)?;
        Ok(Firmware { assembly, image })
    }

    /// Machine-code size in bytes (the program-memory footprint).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.image.len()
    }

    /// Render the image in Vivado `.mem` format (one 32-bit hex word per
    /// line), as loaded into the FPGA block RAMs.
    #[must_use]
    pub fn to_mem_format(&self) -> String {
        let mut out = String::new();
        for w in self.image.words() {
            out.push_str(&format!("{w:08x}\n"));
        }
        out
    }
}

/// Storage footprint of the deployed software stack, in bytes.
///
/// The paper's motivation: a Linux-based flow must store a kernel, a
/// root filesystem with the NVDLA runtime/driver and the model loadable,
/// while the bare-metal flow stores only the machine code and the weight
/// file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageFootprint {
    /// Firmware machine code (bare-metal) or kernel+rootfs (Linux).
    pub software_bytes: u64,
    /// Weight file.
    pub weight_bytes: u64,
}

impl StorageFootprint {
    /// Typical embedded Linux stack for NVDLA (ref.\[10\]-style PetaLinux
    /// deployments): ~4.5 MB kernel + ~28 MB rootfs with the UMD/KMD
    /// runtime.
    pub const LINUX_STACK_BYTES: u64 = 4_500_000 + 28_000_000;

    /// Bare-metal footprint of a firmware + weight image.
    #[must_use]
    pub fn bare_metal(fw: &Firmware, artifacts: &Artifacts) -> Self {
        StorageFootprint {
            software_bytes: fw.size_bytes() as u64,
            weight_bytes: artifacts.weights.total_bytes() as u64,
        }
    }

    /// Linux-stack footprint for the same artifacts.
    #[must_use]
    pub fn linux(artifacts: &Artifacts) -> Self {
        StorageFootprint {
            software_bytes: Self::LINUX_STACK_BYTES,
            weight_bytes: artifacts.weights.total_bytes() as u64,
        }
    }

    /// Total bytes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.software_bytes + self.weight_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvnv_compiler::{compile, CompileOptions};

    #[test]
    fn lenet_firmware_builds_and_is_small() {
        let net = rvnv_nn::zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let fw = Firmware::build(&artifacts).unwrap();
        assert!(fw.size_bytes() > 1000, "real program");
        assert!(fw.size_bytes() < 64 << 10, "fits small program memory");
        assert!(fw.assembly.contains("poll_1:"));
    }

    #[test]
    fn mem_format_is_one_word_per_line() {
        let net = rvnv_nn::zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let fw = Firmware::build(&artifacts).unwrap();
        let mem = fw.to_mem_format();
        let lines: Vec<&str> = mem.lines().collect();
        assert_eq!(lines.len(), fw.image.words().len());
        assert!(lines.iter().all(|l| l.len() == 8));
    }

    #[test]
    fn bare_metal_footprint_is_orders_smaller_than_linux() {
        let net = rvnv_nn::zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let fw = Firmware::build(&artifacts).unwrap();
        let bm = StorageFootprint::bare_metal(&fw, &artifacts);
        let lx = StorageFootprint::linux(&artifacts);
        assert!(
            lx.software_bytes > 500 * bm.software_bytes,
            "bare metal saves >500x software storage"
        );
        assert_eq!(bm.weight_bytes, lx.weight_bytes);
    }
}
