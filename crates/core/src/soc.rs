//! The co-simulated SoC (paper Fig. 2).

use std::error::Error;
use std::fmt;

use rvnv_bus::arbiter::Arbiter;
use rvnv_bus::bridge::{AhbToApb, AhbToAxi};
use rvnv_bus::cdc::ClockCrossing;
use rvnv_bus::decoder::{SystemBus, DRAM_BASE, DRAM_SIZE, NVDLA_BASE, NVDLA_SIZE};
use rvnv_bus::dram::{Dram, DramTiming};
use rvnv_bus::smartconnect::{Side, SmartConnect};
use rvnv_bus::sram::Sram;
use rvnv_bus::width::WidthConverter;
use rvnv_bus::{axi::AxiConfig, BusError, MasterId, Shared};
use rvnv_compiler::Artifacts;
use rvnv_nn::Tensor;
use rvnv_nvdla::{HwConfig, Nvdla, NvdlaStats};
use rvnv_riscv::cpu::{Core, CpuError, StopReason};
use rvnv_riscv::pipeline::PipelineStats;

use crate::firmware::Firmware;

/// The shared DRAM path: arbiter → clock crossing → SmartConnect → DDR4.
pub type DramPath = Shared<Arbiter<ClockCrossing<SmartConnect<Dram>>>>;
/// The NVDLA instance with its width-converted DBB.
pub type SocNvdla = Shared<Nvdla<WidthConverter<DramPath>>>;

/// SoC configuration.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// NVDLA hardware configuration.
    pub hw: HwConfig,
    /// System (core + NVDLA) clock in Hz.
    pub soc_hz: u64,
    /// Memory controller clock in Hz.
    pub mem_hz: u64,
    /// DRAM timing parameters.
    pub dram_timing: DramTiming,
    /// DRAM size in bytes.
    pub dram_bytes: usize,
    /// Program memory size in bytes.
    pub progmem_bytes: usize,
    /// Compute functionally (`false` = timing-only, for large sweeps).
    pub functional: bool,
    /// Instruction budget for one inference.
    pub max_instructions: u64,
}

impl SocConfig {
    /// The paper's FPGA configuration: `nv_small`, 100 MHz system clock,
    /// 100 MHz MIG DDR4, 512 MB DRAM (Table II).
    #[must_use]
    pub fn zcu102_nv_small() -> Self {
        SocConfig {
            hw: HwConfig::nv_small(),
            soc_hz: 100_000_000,
            mem_hz: 100_000_000,
            dram_timing: DramTiming::mig_ddr4(),
            dram_bytes: 512 << 20,
            progmem_bytes: 1 << 20,
            functional: true,
            max_instructions: 2_000_000_000,
        }
    }

    /// Timing-only variant for large-model sweeps.
    #[must_use]
    pub fn zcu102_timing_only() -> Self {
        SocConfig {
            functional: false,
            ..Self::zcu102_nv_small()
        }
    }

    /// Convert a cycle count at the SoC clock into milliseconds.
    #[must_use]
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 * 1000.0 / self.soc_hz as f64
    }
}

impl Default for SocConfig {
    fn default() -> Self {
        Self::zcu102_nv_small()
    }
}

/// SoC execution failure.
#[derive(Debug)]
pub enum SocError {
    /// The core trapped.
    Cpu(CpuError),
    /// A bus/DRAM preload problem.
    Bus(BusError),
    /// Firmware generation failed.
    Firmware(rvnv_riscv::AsmError),
    /// The instruction budget ran out before `ebreak`.
    Timeout {
        /// Instructions executed.
        instructions: u64,
    },
    /// The firmware stopped for an unexpected reason.
    UnexpectedStop(StopReason),
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::Cpu(e) => write!(f, "cpu fault: {e}"),
            SocError::Bus(e) => write!(f, "bus fault: {e}"),
            SocError::Firmware(e) => write!(f, "firmware generation failed: {e}"),
            SocError::Timeout { instructions } => {
                write!(
                    f,
                    "inference did not finish within {instructions} instructions"
                )
            }
            SocError::UnexpectedStop(r) => write!(f, "firmware stopped unexpectedly: {r}"),
        }
    }
}

impl Error for SocError {}

impl From<CpuError> for SocError {
    fn from(e: CpuError) -> Self {
        SocError::Cpu(e)
    }
}
impl From<BusError> for SocError {
    fn from(e: BusError) -> Self {
        SocError::Bus(e)
    }
}
impl From<rvnv_riscv::AsmError> for SocError {
    fn from(e: rvnv_riscv::AsmError) -> Self {
        SocError::Firmware(e)
    }
}

/// Result of one bare-metal inference.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// Total SoC cycles from reset to `ebreak`.
    pub cycles: u64,
    /// Cycles measured by the firmware itself (`mcycle` delta).
    pub firmware_cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Dequantized output tensor.
    pub output: Tensor,
    /// Raw output bytes as left in DRAM.
    pub raw_output: Vec<u8>,
    /// Core pipeline statistics.
    pub pipeline: PipelineStats,
    /// NVDLA statistics.
    pub nvdla: NvdlaStats,
    /// Cycles the core spent waiting at the DRAM arbiter.
    pub cpu_arbiter_wait: u64,
    /// Firmware size in bytes.
    pub firmware_bytes: usize,
    /// Per-operation execution timeline (engine, launch, completion).
    pub timeline: Vec<rvnv_nvdla::OpTrace>,
}

impl InferenceResult {
    /// Inference latency in milliseconds at `hz`.
    #[must_use]
    pub fn latency_ms(&self, hz: u64) -> f64 {
        self.cycles as f64 * 1000.0 / hz as f64
    }
}

/// The SoC: shared DRAM path + NVDLA, rebuilt core per inference.
#[derive(Debug)]
pub struct Soc {
    config: SocConfig,
    dram: DramPath,
    nvdla: SocNvdla,
}

impl Soc {
    /// Build the SoC of Fig. 2/Fig. 4.
    #[must_use]
    pub fn new(config: SocConfig) -> Self {
        let (dram, nvdla) = Self::build_fabric(&config);
        Soc {
            config,
            dram,
            nvdla,
        }
    }

    fn build_fabric(config: &SocConfig) -> (DramPath, SocNvdla) {
        let ddr = Dram::new(config.dram_bytes, config.dram_timing);
        let mux = SmartConnect::new(ddr);
        let cdc = ClockCrossing::new(mux, config.soc_hz, config.mem_hz, 2);
        let dram: DramPath = Shared::new(Arbiter::new(cdc));
        let dbb = WidthConverter::new(dram.clone(), config.hw.dbb_bytes.max(4), 4);
        let nvdla: SocNvdla = Shared::new(Nvdla::new(config.hw.clone(), dbb));
        (dram, nvdla)
    }

    /// Power-on reset: fresh DRAM contents, bus timelines and NVDLA
    /// state. Called automatically at the start of every inference so a
    /// `Soc` can be reused across runs with reproducible timing.
    pub fn reset(&mut self) {
        let (dram, nvdla) = Self::build_fabric(&self.config);
        self.dram = dram;
        self.nvdla = nvdla;
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// Handle to the shared DRAM path (for the Zynq harness).
    #[must_use]
    pub fn dram_path(&self) -> DramPath {
        self.dram.clone()
    }

    /// Backdoor write into DRAM (local address space).
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if the data does not fit.
    pub fn dram_load(&self, addr: u32, data: &[u8]) -> Result<(), BusError> {
        self.dram
            .lock()
            .downstream_mut()
            .downstream_mut()
            .dram_mut()
            .load(addr as usize, data)
    }

    /// Backdoor read from DRAM (local address space).
    #[must_use]
    pub fn dram_peek(&self, addr: u32, len: usize) -> Vec<u8> {
        self.dram
            .lock()
            .downstream_mut()
            .downstream_mut()
            .dram_mut()
            .peek(addr as usize, len)
            .to_vec()
    }

    /// Point the SmartConnect at a side (Fig. 4 control-plane action).
    pub fn switch_dram_to(&self, side: Side) {
        self.dram
            .lock()
            .downstream_mut()
            .downstream_mut()
            .switch_to(side);
    }

    /// Build the system bus seen by the core's data port.
    fn build_bus(&self) -> SystemBus {
        let mut bus = SystemBus::new();
        bus.add_region(
            "nvdla",
            NVDLA_BASE,
            NVDLA_SIZE,
            Box::new(AhbToApb::new(self.nvdla.clone())),
        )
        .expect("static map");
        bus.add_region(
            "dram",
            DRAM_BASE,
            DRAM_SIZE.min((self.config.dram_bytes as u64).min(u64::from(u32::MAX)) as u32),
            Box::new(AhbToAxi::new(self.dram.clone(), AxiConfig::axi32())),
        )
        .expect("static map");
        bus
    }

    /// Run one bare-metal inference: preload DRAM, load firmware, reset
    /// the core, execute to `ebreak`, read the output back.
    ///
    /// # Errors
    ///
    /// Returns [`SocError`] on CPU faults, firmware bugs or timeout.
    pub fn run_inference(
        &mut self,
        artifacts: &Artifacts,
        input: &Tensor,
    ) -> Result<InferenceResult, SocError> {
        let fw = Firmware::build(artifacts)?;
        self.run_firmware(artifacts, &artifacts.quantize_input(input), &fw)
    }

    /// Run a pre-built firmware image on pre-quantized input bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SocError`] on CPU faults or timeout.
    ///
    /// # Panics
    ///
    /// Panics if the firmware does not fit the program memory.
    pub fn run_firmware(
        &mut self,
        artifacts: &Artifacts,
        input_bytes: &[u8],
        fw: &Firmware,
    ) -> Result<InferenceResult, SocError> {
        self.reset();
        // Zynq PS preload (Fig. 4): weights + input, then hand the DRAM
        // to the SoC.
        self.switch_dram_to(Side::ZynqPs);
        for seg in artifacts.weights.segments() {
            self.dram_load(seg.addr, &seg.bytes)?;
        }
        self.dram_load(artifacts.input_addr, input_bytes)?;
        self.switch_dram_to(Side::Soc);
        self.nvdla.lock().set_functional(self.config.functional);

        // Program memory.
        assert!(
            fw.size_bytes() <= self.config.progmem_bytes,
            "firmware ({} B) exceeds program memory ({} B)",
            fw.size_bytes(),
            self.config.progmem_bytes
        );
        let mut progmem = Sram::new(self.config.progmem_bytes);
        progmem
            .load(fw.image.base() as usize, &fw.image.bytes())
            .expect("checked above");

        let mut core = Core::new(progmem, self.build_bus());
        core.set_pc(fw.image.base());

        let mut instructions = 0u64;
        let stop = loop {
            if instructions >= self.config.max_instructions {
                return Err(SocError::Timeout { instructions });
            }
            instructions += 1;
            match core.step()? {
                None => {}
                Some(StopReason::Wfi) => {
                    // Interrupt-driven wait: sleep until the NVDLA
                    // completes (its interrupt is the only wake source
                    // in this SoC). A wfi with nothing outstanding and
                    // no pending interrupt would never wake.
                    let now = core.cycle();
                    let dla = self.nvdla.lock();
                    if dla.busy(now) {
                        let wake = dla.idle_at(now) + 1;
                        drop(dla);
                        core.advance_cycle(wake);
                    } else if dla.intr_pending(now) {
                        // Already complete: resume immediately.
                    } else {
                        return Err(SocError::UnexpectedStop(StopReason::Wfi));
                    }
                }
                Some(stop) => break stop,
            }
        };
        if stop != StopReason::Ebreak {
            return Err(SocError::UnexpectedStop(stop));
        }

        let raw_output = self.dram_peek(artifacts.output_addr, artifacts.output_len);
        let output = artifacts.dequantize_output(&raw_output);
        let t0 = core.read_reg(rvnv_riscv::reg::A0);
        let t1 = core.read_reg(rvnv_riscv::reg::A1);
        let cpu_wait = self.dram.lock().port_stats(MasterId::Cpu).wait_cycles;
        // Take both NVDLA snapshots with a single lock: a second `lock()`
        // in the same struct expression would deadlock on the guard
        // temporary.
        let (nvdla_stats, timeline) = {
            let dla = self.nvdla.lock();
            (dla.stats().clone(), dla.timeline().to_vec())
        };
        Ok(InferenceResult {
            cycles: core.cycle(),
            firmware_cycles: u64::from(t1.wrapping_sub(t0)),
            instructions,
            output,
            raw_output,
            pipeline: core.pipeline_stats(),
            nvdla: nvdla_stats,
            cpu_arbiter_wait: cpu_wait,
            firmware_bytes: fw.size_bytes(),
            timeline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvnv_compiler::{compile, CompileOptions};
    use rvnv_nn::exec::Executor;
    use rvnv_nn::zoo;

    #[test]
    fn lenet_bare_metal_inference_matches_golden() {
        let net = zoo::lenet5(11);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        let input = Tensor::random(net.input_shape(), 21);
        let result = soc.run_inference(&artifacts, &input).unwrap();

        let exec = Executor::new(&net);
        let all = exec.run_all(&input).unwrap();
        let logits = &all[all.len() - 2];
        assert_eq!(result.output.argmax(), logits.argmax());
        assert!(result.cycles > 50_000, "cycles {}", result.cycles);
        assert!(result.instructions > 1_000);
        // Firmware's own mcycle measurement is close to total.
        assert!(result.firmware_cycles <= result.cycles);
        assert!(result.firmware_cycles * 10 > result.cycles * 9);
    }

    #[test]
    fn lenet_latency_at_100mhz_has_paper_magnitude() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        let input = Tensor::random(net.input_shape(), 2);
        let result = soc.run_inference(&artifacts, &input).unwrap();
        let ms = result.latency_ms(soc.config().soc_hz);
        // Paper: 4.8 ms. Same order of magnitude is the claim we check
        // in tests; EXPERIMENTS.md records the exact measured value.
        assert!(
            (0.5..50.0).contains(&ms),
            "LeNet-5 {ms:.2} ms vs paper 4.8 ms"
        );
    }

    #[test]
    fn nvdla_stats_show_conv_activity() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        let input = Tensor::random(net.input_shape(), 2);
        let result = soc.run_inference(&artifacts, &input).unwrap();
        assert_eq!(
            result.nvdla.engine(rvnv_nvdla::regs::Block::Cacc).ops,
            4,
            "2 convs + 2 FCs"
        );
        assert!(result.nvdla.total_macs() > 1_000_000);
        assert!(result.nvdla.total_dma_bytes() > 400_000);
    }

    #[test]
    fn timing_only_mode_matches_functional_cycles() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let input = Tensor::random(net.input_shape(), 2);
        let mut f = Soc::new(SocConfig::zcu102_nv_small());
        let rf = f.run_inference(&artifacts, &input).unwrap();
        let mut t = Soc::new(SocConfig::zcu102_timing_only());
        let rt = t.run_inference(&artifacts, &input).unwrap();
        assert_eq!(rf.cycles, rt.cycles, "timing-only must not change timing");
    }

    #[test]
    fn timeout_detected() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let mut config = SocConfig::zcu102_nv_small();
        config.max_instructions = 100;
        let mut soc = Soc::new(config);
        let input = Tensor::random(net.input_shape(), 2);
        let e = soc.run_inference(&artifacts, &input).unwrap_err();
        assert!(matches!(e, SocError::Timeout { .. }));
    }
}
