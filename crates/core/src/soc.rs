//! The co-simulated SoC (paper Fig. 2).

use std::error::Error;
use std::fmt;

use rvnv_bus::arbiter::Arbiter;
use rvnv_bus::bridge::{AhbToApb, AhbToAxi};
use rvnv_bus::cdc::ClockCrossing;
use rvnv_bus::decoder::{SystemBus, DRAM_BASE, DRAM_SIZE, NVDLA_BASE, NVDLA_SIZE};
use rvnv_bus::dram::{Dram, DramTiming, RangeSet};
use rvnv_bus::fault::{FaultInjector, FaultPlan, FaultStats};
use rvnv_bus::smartconnect::{Side, SmartConnect};
use rvnv_bus::sram::Sram;
use rvnv_bus::width::WidthConverter;
use rvnv_bus::{axi::AxiConfig, BusError, MasterId, Reset, Shared};
use rvnv_compiler::Artifacts;
use rvnv_nn::hash::Fnv;
use rvnv_nn::Tensor;
use rvnv_nvdla::{HwConfig, Nvdla, NvdlaStats, Precision};
use rvnv_obs::{MetricsRegistry, SpanKind, Tracer, TrackId};
use rvnv_riscv::block_cache::{BlockCache, BlockCacheStats};
use rvnv_riscv::cpu::{Core, CpuError, StopReason};
use rvnv_riscv::pipeline::PipelineStats;

use crate::firmware::Firmware;

/// The shared DRAM path: arbiter → clock crossing → SmartConnect →
/// fault-injection shim → DDR4. The shim is a disarmed passthrough
/// unless a chaos plan is [armed](Soc::arm_faults); backdoor loads and
/// peeks reach the DRAM underneath it and are never faulted.
pub type DramPath = Shared<Arbiter<ClockCrossing<SmartConnect<FaultInjector<Dram>>>>>;
/// The NVDLA instance with its width-converted DBB.
pub type SocNvdla = Shared<Nvdla<WidthConverter<DramPath>>>;

/// Largest single burst the Zynq PS preload DMA issues (AXI bursts are
/// bounded — 4 KB address boundary, 256 beats — and the PS DMA moves
/// data in bounded descriptors). A [`Soc::ps_stream`] larger than this
/// becomes a chunk sequence, which is what lets an overlapped preload
/// *interleave* with the NVDLA's DMA bursts at the arbiter instead of
/// holding the DRAM for the whole image.
pub const PS_CHUNK_BYTES: usize = 512;

/// An in-flight PS preload: the chunked stream of one input image into
/// its double-buffer slot, pumped forward as modeled time advances.
struct PreloadPump<'a> {
    addr: u32,
    bytes: &'a [u8],
    offset: usize,
    /// When the next chunk issues (the PS streams back to back).
    next_due: u64,
    /// Completion cycle of the last chunk issued so far.
    done: u64,
}

impl<'a> PreloadPump<'a> {
    fn new(addr: u32, bytes: &'a [u8], now: u64) -> Self {
        PreloadPump {
            addr,
            bytes,
            offset: 0,
            next_due: now,
            done: now,
        }
    }
}

/// SoC configuration.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// NVDLA hardware configuration.
    pub hw: HwConfig,
    /// System (core + NVDLA) clock in Hz.
    pub soc_hz: u64,
    /// Memory controller clock in Hz.
    pub mem_hz: u64,
    /// DRAM timing parameters.
    pub dram_timing: DramTiming,
    /// DRAM size in bytes.
    pub dram_bytes: usize,
    /// Program memory size in bytes.
    pub progmem_bytes: usize,
    /// Compute functionally (`false` = timing-only, for large sweeps).
    pub functional: bool,
    /// Capture the per-operation execution timeline into
    /// [`InferenceResult::timeline`]. Costs one `Vec` copy per run;
    /// timing-only sweeps turn it off and read cycle counts alone.
    pub capture_timeline: bool,
    /// Instruction budget for one inference.
    pub max_instructions: u64,
    /// Run the core through its decoded-basic-block cache (host-side
    /// speedup only; modeled cycles, instruction counts and outputs are
    /// bit-identical either way — the determinism-fingerprint harness
    /// pins this). The decoded firmware is kept warm across runs,
    /// keyed by a hash of the firmware image.
    pub block_cache: bool,
}

impl SocConfig {
    /// The paper's FPGA configuration: `nv_small`, 100 MHz system clock,
    /// 100 MHz MIG DDR4, 512 MB DRAM (Table II).
    #[must_use]
    pub fn zcu102_nv_small() -> Self {
        SocConfig {
            hw: HwConfig::nv_small(),
            soc_hz: 100_000_000,
            mem_hz: 100_000_000,
            dram_timing: DramTiming::mig_ddr4(),
            dram_bytes: 512 << 20,
            progmem_bytes: 1 << 20,
            functional: true,
            capture_timeline: true,
            max_instructions: 2_000_000_000,
            block_cache: true,
        }
    }

    /// Timing-only variant for large-model sweeps: functional compute
    /// and timeline capture are both off, leaving pure cycle accounting.
    #[must_use]
    pub fn zcu102_timing_only() -> Self {
        SocConfig {
            functional: false,
            capture_timeline: false,
            ..Self::zcu102_nv_small()
        }
    }

    /// The `nv_full`-class configuration: the same ZCU102 platform and
    /// clocks, but the full-size NVDLA (64×32 MACs, larger buffers).
    /// This is the "big pool" class of a heterogeneous fleet
    /// ([`crate::fleet`]); its per-frame compute is genuinely cheaper
    /// because the compiler re-lowers every layer for the wider datapath.
    #[must_use]
    pub fn zcu102_nv_full() -> Self {
        SocConfig {
            hw: HwConfig::nv_full(),
            ..Self::zcu102_nv_small()
        }
    }

    /// Timing-only `nv_full` variant (the fleet serving flow).
    #[must_use]
    pub fn zcu102_nv_full_timing_only() -> Self {
        SocConfig {
            functional: false,
            capture_timeline: false,
            ..Self::zcu102_nv_full()
        }
    }

    /// Convert a cycle count at the SoC clock into milliseconds.
    #[must_use]
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 * 1000.0 / self.soc_hz as f64
    }
}

impl Default for SocConfig {
    fn default() -> Self {
        Self::zcu102_nv_small()
    }
}

/// SoC execution failure.
#[derive(Debug)]
pub enum SocError {
    /// The core trapped.
    Cpu(CpuError),
    /// A bus/DRAM preload problem.
    Bus(BusError),
    /// Firmware generation failed.
    Firmware(rvnv_riscv::AsmError),
    /// The instruction budget ran out before `ebreak`.
    Timeout {
        /// Instructions executed.
        instructions: u64,
    },
    /// The cycle-budget watchdog fired: modeled time passed the armed
    /// deadline before the firmware reached `ebreak`. Unlike
    /// [`SocError::Timeout`] (a host-side instruction budget), this is
    /// the *modeled* hang detector — a poll loop stuck on a wedged
    /// accelerator trips it after `deadline` SoC cycles instead of
    /// spinning to the instruction cap.
    WatchdogExpired {
        /// The armed deadline, in SoC cycles.
        deadline: u64,
        /// Modeled cycle at which the watchdog fired.
        cycles: u64,
    },
    /// Output integrity check failed: the output region's fingerprint
    /// differs from the known-good run (silent corruption — e.g. an
    /// injected bit flip on the DMA path — that produced a "successful"
    /// inference with wrong bytes).
    OutputCorrupted {
        /// Fingerprint of the known-good output region.
        expected: u64,
        /// Fingerprint actually observed.
        got: u64,
    },
    /// The firmware stopped for an unexpected reason.
    UnexpectedStop(StopReason),
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::Cpu(e) => write!(f, "cpu fault: {e}"),
            SocError::Bus(e) => write!(f, "bus fault: {e}"),
            SocError::Firmware(e) => write!(f, "firmware generation failed: {e}"),
            SocError::Timeout { instructions } => {
                write!(
                    f,
                    "inference did not finish within {instructions} instructions"
                )
            }
            SocError::WatchdogExpired { deadline, cycles } => write!(
                f,
                "watchdog expired: firmware still running at cycle {cycles} (deadline {deadline})"
            ),
            SocError::OutputCorrupted { expected, got } => write!(
                f,
                "output corrupted: fingerprint {got:#018x} != known-good {expected:#018x}"
            ),
            SocError::UnexpectedStop(r) => write!(f, "firmware stopped unexpectedly: {r}"),
        }
    }
}

impl Error for SocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SocError::Cpu(e) => Some(e),
            SocError::Bus(e) => Some(e),
            SocError::Firmware(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CpuError> for SocError {
    fn from(e: CpuError) -> Self {
        SocError::Cpu(e)
    }
}
impl From<BusError> for SocError {
    fn from(e: BusError) -> Self {
        SocError::Bus(e)
    }
}
impl From<rvnv_riscv::AsmError> for SocError {
    fn from(e: rvnv_riscv::AsmError) -> Self {
        SocError::Firmware(e)
    }
}

/// Result of one bare-metal inference.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// Total SoC cycles from reset to `ebreak`.
    pub cycles: u64,
    /// Cycles measured by the firmware itself (`mcycle` delta).
    pub firmware_cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Dequantized output tensor.
    pub output: Tensor,
    /// Raw output bytes as left in DRAM.
    pub raw_output: Vec<u8>,
    /// Core pipeline statistics.
    pub pipeline: PipelineStats,
    /// NVDLA statistics.
    pub nvdla: NvdlaStats,
    /// Cycles the core spent waiting at the DRAM arbiter.
    pub cpu_arbiter_wait: u64,
    /// Firmware size in bytes.
    pub firmware_bytes: usize,
    /// Per-operation execution timeline (engine, launch, completion);
    /// empty when [`SocConfig::capture_timeline`] is off.
    pub timeline: Vec<rvnv_nvdla::OpTrace>,
    /// Decoded-block-cache counters for this run (all zero when
    /// [`SocConfig::block_cache`] is off). A fully warm run shows no
    /// misses: every firmware block replays from the retained cache.
    pub block_cache: BlockCacheStats,
    /// Status-poll reads the core answered from its MMIO read lease
    /// instead of replaying the bus walk (host-side shortcut only;
    /// they are credited back into [`NvdlaStats::csb_reads`] so the
    /// architectural counts stay lease-free-identical).
    pub elided_polls: u64,
}

impl InferenceResult {
    /// Inference latency in milliseconds at `hz`.
    #[must_use]
    pub fn latency_ms(&self, hz: u64) -> f64 {
        self.cycles as f64 * 1000.0 / hz as f64
    }

    /// Publish this run into a [`MetricsRegistry`]: `soc.*` totals and
    /// the `soc.run_cycles` histogram, plus the nested
    /// [`PipelineStats`], [`NvdlaStats`] and [`BlockCacheStats`]
    /// counters via their own `publish` methods.
    pub fn publish(&self, metrics: &MetricsRegistry) {
        metrics.counter("soc.runs", 1);
        metrics.counter("soc.cycles", self.cycles);
        metrics.counter("soc.firmware_cycles", self.firmware_cycles);
        metrics.counter("soc.instructions", self.instructions);
        metrics.counter("soc.cpu_arbiter_wait", self.cpu_arbiter_wait);
        metrics.counter("soc.elided_polls", self.elided_polls);
        metrics.histogram("soc.run_cycles", self.cycles);
        self.pipeline.publish(metrics);
        self.nvdla.publish(metrics);
        self.block_cache.publish(metrics);
    }
}

/// Outcome of one pipelined frame ([`Soc::run_firmware_staged`]).
#[derive(Debug, Clone)]
pub struct StagedRun {
    /// The frame's inference result. `result.cycles` includes any
    /// contention the overlapped preload caused on the shared DRAM.
    pub result: InferenceResult,
    /// Cycle, on this frame's timeline, at which the overlapped preload
    /// of the *next* frame's input completed; 0 when none was issued.
    /// The next frame cannot start before both this frame's compute and
    /// this preload are done.
    pub preload_done: u64,
}

/// Identity of a weight image made resident in DRAM by
/// [`Soc::load_artifacts`]: the artifacts' layout plus a content
/// fingerprint of every weight byte
/// ([`rvnv_compiler::layout::WeightImage::fingerprint`]), so two
/// compilations of the same model name with different weights — e.g.
/// zoo builds from different seeds — are never confused.
///
/// The fingerprint makes a warm match cost O(weight bytes) per run
/// (folded 8 bytes per step — tens of microseconds on small models).
/// That stays a small constant factor at every model size, because a
/// warm run already streams the same bytes through the simulated DMA;
/// it is the price of guaranteeing content identity without trusting
/// the caller to never swap weight buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ResidentKey {
    model: String,
    precision: Precision,
    input_addr: u32,
    input_len: usize,
    output_addr: u32,
    output_len: usize,
    /// Content fingerprint of the weight image (addresses, lengths and
    /// payload bytes).
    weights: u64,
}

impl ResidentKey {
    fn of(artifacts: &Artifacts) -> Self {
        ResidentKey {
            model: artifacts.model.clone(),
            precision: artifacts.precision,
            input_addr: artifacts.input_addr,
            input_len: artifacts.input_len,
            output_addr: artifacts.output_addr,
            output_len: artifacts.output_len,
            weights: artifacts.weights.fingerprint(),
        }
    }

    /// Whether this key identifies `artifacts`. Cheap layout fields are
    /// compared first; the weight image is hashed only when they all
    /// match (a model switch costs nothing, a warm hit pays the hash).
    fn matches(&self, artifacts: &Artifacts) -> bool {
        self.model == artifacts.model
            && self.precision == artifacts.precision
            && self.input_addr == artifacts.input_addr
            && self.input_len == artifacts.input_len
            && self.output_addr == artifacts.output_addr
            && self.output_len == artifacts.output_len
            && self.weights == artifacts.weights.fingerprint()
    }
}

/// One weight image currently pinned in DRAM: its identity key, the id
/// it is registered under in the [`Dram`] residency tracker, and the
/// model's whole DRAM footprint `[dram_base, dram_used)` — used to
/// decide whether two models can be resident side by side.
#[derive(Debug, Clone)]
struct ResidentImage {
    key: ResidentKey,
    id: u64,
    span: (u32, u32),
}

impl ResidentImage {
    fn span_overlaps(&self, other: (u32, u32)) -> bool {
        self.span.0 < other.1 && other.0 < self.span.1
    }
}

/// The SoC: shared DRAM path + NVDLA, rebuilt core per inference.
///
/// A `Soc` is built **once** and reused: every run starts from an
/// in-place power-on [`reset`](Soc::reset) of the whole fabric (no
/// reallocation), and weight images stay *resident* in DRAM across
/// runs, so the compile-once/run-many hot path skips the per-inference
/// weight streaming entirely. **Several** models can be resident at
/// once when their DRAM footprints are disjoint (compile them at
/// distinct bases — see `rvnv_soc::batch::layout_models`); the
/// multi-model batch scheduler interleaves frames across them with
/// every frame warm. Warm runs are bit-identical — same cycle counts,
/// same output bytes — to runs on a freshly constructed SoC.
#[derive(Debug)]
pub struct Soc {
    config: SocConfig,
    dram: DramPath,
    nvdla: SocNvdla,
    /// Which artifacts' weight images are currently resident in DRAM.
    resident: Vec<ResidentImage>,
    /// Id for the next image registered with the DRAM tracker.
    next_image_id: u64,
    /// Decoded-basic-block cache retained across runs, keyed by a hash
    /// of the firmware image it was decoded from — a run with different
    /// firmware starts cold instead of replaying stale blocks.
    decoded: Option<(u64, BlockCache)>,
    /// Cycle-budget watchdog armed for every run ([`Soc::set_watchdog`]):
    /// a run whose modeled clock passes this many cycles returns
    /// [`SocError::WatchdogExpired`] instead of spinning.
    watchdog: Option<u64>,
    /// Observability sink ([`Soc::set_tracer`]); disarmed by default, in
    /// which case every emission site is a single branch.
    tracer: Tracer,
    /// Track the SoC's spans land on (meaningful only when armed).
    track: TrackId,
    /// Trace-time offset of the next run. Each run's modeled clock
    /// starts at 0; runs are laid end to end on the track so a
    /// `--repeat` sequence reads as consecutive frames.
    trace_base: u64,
}

impl Soc {
    /// Build the SoC of Fig. 2/Fig. 4.
    #[must_use]
    pub fn new(config: SocConfig) -> Self {
        let (dram, nvdla) = Self::build_fabric(&config);
        Soc {
            config,
            dram,
            nvdla,
            resident: Vec::new(),
            next_image_id: 1,
            decoded: None,
            watchdog: None,
            tracer: Tracer::disarmed(),
            track: TrackId::NONE,
            trace_base: 0,
        }
    }

    /// Emit this SoC's spans into `tracer` on `track`: one `compute`
    /// span per run, with a child per accelerator operation when
    /// [`SocConfig::capture_timeline`] is on, plus a `preload` span per
    /// [`Soc::ps_stream`]. Successive runs are laid end to end on the
    /// track. Arming a tracer never changes a modeled cycle or output
    /// byte — it only records values the simulation already computed.
    pub fn set_tracer(&mut self, tracer: Tracer, track: TrackId) {
        self.tracer = tracer;
        self.track = track;
        self.trace_base = 0;
    }

    fn build_fabric(config: &SocConfig) -> (DramPath, SocNvdla) {
        let ddr = FaultInjector::new(Dram::new(config.dram_bytes, config.dram_timing));
        let mux = SmartConnect::new(ddr);
        let cdc = ClockCrossing::new(mux, config.soc_hz, config.mem_hz, 2);
        let dram: DramPath = Shared::new(Arbiter::new(cdc));
        let dbb = WidthConverter::new(dram.clone(), config.hw.dbb_bytes.max(4), 4);
        let nvdla: SocNvdla = Shared::new(Nvdla::new(config.hw.clone(), dbb));
        (dram, nvdla)
    }

    /// Power-on reset **in place**: fresh DRAM contents, bus timelines
    /// and NVDLA state, discarding **all** resident weight images.
    /// Nothing is reallocated — the DRAM zeroes only the extents
    /// previous runs wrote — so a reset SoC replays exactly the timing
    /// of a freshly built one at a fraction of the host cost.
    ///
    /// Runs reset themselves automatically (warm, keeping resident
    /// weights); call this only to force the next run cold.
    pub fn reset(&mut self) {
        self.resident.clear();
        self.decoded = None;
        self.with_dram(Dram::clear_resident);
        // Resetting the accelerator chains down its DBB path — width
        // converter, arbiter, clock crossing, SmartConnect — into the
        // same shared DRAM the CPU port reaches, so one call restores
        // the whole fabric.
        self.nvdla.lock().reset();
    }

    /// Run `f` on the DRAM device behind the fabric (backdoor).
    fn with_dram<R>(&self, f: impl FnOnce(&mut Dram) -> R) -> R {
        let mut path = self.dram.lock();
        f(path
            .downstream_mut()
            .downstream_mut()
            .dram_mut()
            .inner_mut())
    }

    /// The entry for `artifacts`, if its image is pinned and the DRAM
    /// still holds it (a clobbering run may have dropped it there).
    fn find_resident(&self, artifacts: &Artifacts) -> Option<&ResidentImage> {
        self.resident
            .iter()
            .find(|img| img.key.matches(artifacts))
            .filter(|img| self.with_dram(|d| d.is_image_resident(img.id)))
    }

    /// Drop pinned entries whose DRAM image no longer exists (dropped by
    /// a clobber-detecting reset).
    fn sync_residency(&mut self) {
        let dram = &self.dram;
        self.resident.retain(|img| {
            let mut path = dram.lock();
            path.downstream_mut()
                .downstream_mut()
                .dram_mut()
                .inner_mut()
                .is_image_resident(img.id)
        });
    }

    /// Make `artifacts`' weight image resident in DRAM **alongside** any
    /// images already pinned: stream every weight segment once and
    /// protect those extents across subsequent resets. After this, every
    /// [`run_firmware`](Soc::run_firmware)/[`run_inference`](Soc::run_inference)
    /// call with the same artifacts is a *warm* run that resets the
    /// fabric in place and reloads only the input — the
    /// compile-once/run-many hot path. Pinning an image that is already
    /// resident is a no-op.
    ///
    /// Calling this is optional for a single model (runs make their
    /// artifacts resident on first use automatically); a multi-model
    /// server pins each model before its first frame arrives.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::ResidentOverlap`] when the model's DRAM
    /// footprint `[dram_base, dram_used)` overlaps an already-resident
    /// model's — compile the models at disjoint bases
    /// (`rvnv_soc::batch::layout_models`) or [`unload`](Soc::unload_artifacts)
    /// the other model first — and other [`BusError`]s if a weight
    /// segment does not fit in DRAM.
    pub fn load_artifacts(&mut self, artifacts: &Artifacts) -> Result<(), BusError> {
        self.sync_residency();
        if self.find_resident(artifacts).is_some() {
            return Ok(());
        }
        let span = (artifacts.dram_base, artifacts.dram_used);
        if let Some(img) = self.resident.iter().find(|img| img.span_overlaps(span)) {
            return Err(BusError::ResidentOverlap { image: img.id });
        }
        self.pin(artifacts)
    }

    /// Stream `artifacts`' weight segments and register them as a new
    /// resident image. The caller has already ruled out span overlaps.
    fn pin(&mut self, artifacts: &Artifacts) -> Result<(), BusError> {
        self.switch_dram_to(Side::ZynqPs);
        let mut extents = RangeSet::new();
        for seg in artifacts.weights.segments() {
            self.dram_load(seg.addr, &seg.bytes)?;
            extents.insert(seg.addr as usize, seg.addr as usize + seg.bytes.len());
        }
        let id = self.next_image_id;
        self.next_image_id += 1;
        self.with_dram(|d| d.add_resident(id, extents))?;
        self.resident.push(ResidentImage {
            key: ResidentKey::of(artifacts),
            id,
            span: (artifacts.dram_base, artifacts.dram_used),
        });
        Ok(())
    }

    /// Evict `artifacts`' weight image, leaving other resident models
    /// warm. The next run with these artifacts is cold. Unknown
    /// artifacts are a no-op.
    pub fn unload_artifacts(&mut self, artifacts: &Artifacts) {
        if let Some(i) = self
            .resident
            .iter()
            .position(|img| img.key.matches(artifacts))
        {
            let img = self.resident.remove(i);
            self.with_dram(|d| d.remove_resident(img.id));
        }
    }

    /// Whether `artifacts`' weight image is resident (the next run with
    /// them will be warm).
    #[must_use]
    pub fn is_resident(&self, artifacts: &Artifacts) -> bool {
        self.find_resident(artifacts).is_some()
    }

    /// Number of weight images currently resident.
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Bring the SoC to the run-ready state for `artifacts`: a warm
    /// in-place reset when their weights are already resident, a cold
    /// preload otherwise. A cold preload evicts only the resident
    /// images whose DRAM footprint overlaps this model's — disjoint
    /// models stay warm. Leaves the SmartConnect on the PS side, ready
    /// for the input load.
    fn prepare(&mut self, artifacts: &Artifacts) -> Result<(), BusError> {
        // Chain reset first, warm or cold: it zeroes the previous run's
        // writes, detects clobbered images (dropping exactly those), and
        // restores the fabric timing state.
        self.nvdla.lock().reset();
        self.sync_residency();
        if self.find_resident(artifacts).is_some() {
            self.switch_dram_to(Side::ZynqPs);
            return Ok(());
        }
        // Cold: make room (evict footprint-overlapping models only),
        // then stream this model's weights.
        let span = (artifacts.dram_base, artifacts.dram_used);
        let evicted: Vec<u64> = self
            .resident
            .iter()
            .filter(|img| img.span_overlaps(span))
            .map(|img| img.id)
            .collect();
        self.resident.retain(|img| !img.span_overlaps(span));
        for id in evicted {
            self.with_dram(|d| d.remove_resident(id));
        }
        self.pin(artifacts)
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// Handle to the shared DRAM path (for the Zynq harness).
    #[must_use]
    pub fn dram_path(&self) -> DramPath {
        self.dram.clone()
    }

    /// Backdoor write into DRAM (local address space).
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] if the data does not fit.
    pub fn dram_load(&self, addr: u32, data: &[u8]) -> Result<(), BusError> {
        self.dram
            .lock()
            .downstream_mut()
            .downstream_mut()
            .dram_mut()
            .inner_mut()
            .load(addr as usize, data)
    }

    /// Backdoor read from DRAM (local address space), allocating a copy.
    /// Prefer [`Soc::with_dram_peek`] when the caller only inspects.
    #[must_use]
    pub fn dram_peek(&self, addr: u32, len: usize) -> Vec<u8> {
        self.with_dram_peek(addr, len, <[u8]>::to_vec)
    }

    /// Backdoor read from DRAM without copying: `f` borrows the bytes in
    /// place. Use this to compare or decode output regions without the
    /// per-call allocation of [`Soc::dram_peek`].
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn with_dram_peek<R>(&self, addr: u32, len: usize, f: impl FnOnce(&[u8]) -> R) -> R {
        self.with_dram(|d| f(d.peek(addr as usize, len)))
    }

    /// Point the SmartConnect at a side (Fig. 4 control-plane action).
    pub fn switch_dram_to(&self, side: Side) {
        self.dram
            .lock()
            .downstream_mut()
            .downstream_mut()
            .switch_to(side);
    }

    /// Configure the SmartConnect's dual-port (pipelined) topology:
    /// with `on`, [`Soc::ps_stream`] may inject Zynq-PS preload bursts
    /// while the SoC side owns the DRAM — the overlapped next-frame
    /// input load of the pipelined batch scheduler. Survives resets
    /// (topology, not state).
    pub fn set_pipelined(&self, on: bool) {
        self.dram
            .lock()
            .downstream_mut()
            .downstream_mut()
            .set_pipelined(on);
    }

    /// Stream `bytes` from the Zynq PS into DRAM at `addr` as a
    /// continuous sequence of [`PS_CHUNK_BYTES`]-bounded timed bursts
    /// through the real fabric path — arbiter grant per chunk (master
    /// [`MasterId::ZynqPs`]), clock crossing, SmartConnect routing, DRAM
    /// burst timing — each chunk issued when the previous one completes,
    /// the first not before `now`. Returns the completion cycle of the
    /// last chunk (`now` for empty `bytes`).
    ///
    /// While the PS owns the mux this is the ordinary timed preload;
    /// while the SoC owns it the chunks are admitted only in the
    /// [pipelined topology](Soc::set_pipelined), where they contend with
    /// the core's and NVDLA's traffic on the shared device timeline —
    /// the accounted cost of overlapping frame N+1's input load with
    /// frame N's compute.
    ///
    /// # Errors
    ///
    /// [`BusError::SlaveError`] when the SoC owns the mux and the
    /// pipelined topology is off; [`BusError::OutOfRange`] when the
    /// bytes do not fit.
    pub fn ps_stream(&self, addr: u32, bytes: &[u8], now: u64) -> Result<u64, BusError> {
        let mut pump = PreloadPump::new(addr, bytes, now);
        self.pump_preload(&mut pump, u64::MAX)?;
        let done = pump.done.max(now);
        if self.tracer.is_armed() {
            self.tracer.span(
                self.track,
                SpanKind::Preload,
                self.trace_base + now,
                self.trace_base + done,
                "ps_stream",
            );
        }
        Ok(done)
    }

    /// Issue every preload chunk due at or before `until` (the PS
    /// streams continuously: each chunk is due when the previous one
    /// completed). `u64::MAX` flushes the stream.
    fn pump_preload(&self, p: &mut PreloadPump<'_>, until: u64) -> Result<(), BusError> {
        while p.offset < p.bytes.len() && p.next_due <= until {
            let n = (p.bytes.len() - p.offset).min(PS_CHUNK_BYTES);
            let addr = p.addr + p.offset as u32;
            let mut path = self.dram.lock();
            path.downstream_mut()
                .downstream_mut()
                .admit_ps_burst(addr)?;
            let done = path.write_block_as(
                MasterId::ZynqPs,
                addr,
                &p.bytes[p.offset..p.offset + n],
                p.next_due,
            )?;
            p.offset += n;
            p.next_due = done;
            p.done = done;
        }
        Ok(())
    }

    /// Modeled cycles a [`Soc::ps_stream`] of `len` bytes at `addr`
    /// takes on a **quiet** fabric (no contention, no open DRAM row),
    /// computed without touching device state: per chunk, an arbiter
    /// grant at issue, the clock-domain crossing out, SmartConnect
    /// routing, the DRAM burst (row state carried across chunks), and
    /// the crossing back. This is the input-preload cost a *serial*
    /// frame pays on its critical path — and what a pipelined frame
    /// hides under the previous frame's compute.
    #[must_use]
    pub fn input_preload_cycles(&self, addr: u32, len: usize) -> u64 {
        let mut path = self.dram.lock();
        let cdc = path.downstream_mut();
        let sync = cdc.sync_cycles();
        let timing = cdc.downstream_mut().dram_mut().inner().timing();
        let mut open_row = None;
        let mut busy_slave = 0u64;
        let mut t = 0u64;
        let mut offset = 0usize;
        while offset < len {
            let n = (len - offset).min(PS_CHUNK_BYTES);
            let a = addr + offset as u32;
            let start = (cdc.to_slave(t) + sync + SmartConnect::<FaultInjector<Dram>>::ROUTE)
                .max(busy_slave);
            busy_slave = start + timing.burst_cycles_tracked(&mut open_row, a, n);
            t = cdc.to_master(busy_slave + sync);
            offset += n;
        }
        t
    }

    /// Chain-reset the fabric in place while keeping every resident
    /// weight image warm (what each run's prepare does, without a
    /// model): use it to bring the SoC to a quiet, PS-owned state before
    /// streaming the first pipelined input.
    pub fn quiesce(&mut self) {
        self.nvdla.lock().reset();
        self.sync_residency();
    }

    /// Arm the cycle-budget watchdog for every subsequent run: a run
    /// whose modeled clock passes `deadline_cycles` without reaching
    /// `ebreak` returns [`SocError::WatchdogExpired`]. `None` disarms.
    ///
    /// This is the modeled-time hang detector: a firmware poll loop
    /// stuck on a wedged accelerator (e.g. an injected latency spike of
    /// billions of cycles on its DMA path) trips the watchdog after
    /// `deadline_cycles` SoC cycles — at host speed, because the stuck
    /// wait advances modeled time in jumps — where the instruction
    /// budget ([`SocConfig::max_instructions`]) would grind through
    /// every polled instruction first.
    pub fn set_watchdog(&mut self, deadline_cycles: Option<u64>) {
        self.watchdog = deadline_cycles;
    }

    /// The armed watchdog deadline, if any.
    #[must_use]
    pub fn watchdog(&self) -> Option<u64> {
        self.watchdog
    }

    /// [`Soc::run_firmware`] with a one-shot watchdog deadline (in SoC
    /// cycles). The previously armed deadline, if any, is restored
    /// afterwards.
    ///
    /// # Errors
    ///
    /// [`SocError::WatchdogExpired`] when the deadline passes before
    /// `ebreak`; otherwise as [`Soc::run_firmware`].
    pub fn run_firmware_deadline(
        &mut self,
        artifacts: &Artifacts,
        input_bytes: &[u8],
        fw: &Firmware,
        deadline_cycles: u64,
    ) -> Result<InferenceResult, SocError> {
        let prev = self.watchdog.replace(deadline_cycles);
        let result = self.run_firmware(artifacts, input_bytes, fw);
        self.watchdog = prev;
        result
    }

    /// Fingerprint the DRAM output region of `artifacts` (FNV over the
    /// raw bytes). Capture it after a known-good run, then feed it to
    /// [`Soc::verify_output`] after later runs to detect silent
    /// corruption. Only meaningful in functional mode — timing-only
    /// runs never write real output bytes.
    #[must_use]
    pub fn output_fingerprint(&self, artifacts: &Artifacts) -> u64 {
        self.with_dram_peek(artifacts.output_addr, artifacts.output_len, |raw| {
            let mut h = Fnv::new();
            h.bytes(raw);
            h.finish()
        })
    }

    /// Integrity-check the output region against a known-good
    /// fingerprint from [`Soc::output_fingerprint`].
    ///
    /// # Errors
    ///
    /// [`SocError::OutputCorrupted`] when the fingerprints differ.
    pub fn verify_output(&self, artifacts: &Artifacts, expected: u64) -> Result<(), SocError> {
        let got = self.output_fingerprint(artifacts);
        if got != expected {
            return Err(SocError::OutputCorrupted { expected, got });
        }
        Ok(())
    }

    /// Re-warm recovery: full power-on [`reset`](Soc::reset) (wiping
    /// whatever state a fault left behind), then re-pin every given
    /// weight image from its artifacts — no recompile, no firmware
    /// rebuild. After this the SoC is bit-identical to a freshly built
    /// one with the same images [loaded](Soc::load_artifacts), so a
    /// recovered worker's next frame replays the warm-path timing
    /// exactly.
    ///
    /// # Errors
    ///
    /// As [`Soc::load_artifacts`] (overlapping footprints, image does
    /// not fit).
    pub fn rewarm<'a>(
        &mut self,
        images: impl IntoIterator<Item = &'a Artifacts>,
    ) -> Result<(), BusError> {
        self.reset();
        for artifacts in images {
            self.load_artifacts(artifacts)?;
        }
        Ok(())
    }

    /// Arm a seeded chaos plan on the DRAM fault shim: subsequent
    /// fabric traffic (CPU loads/stores, NVDLA DMA, PS preload bursts)
    /// is faulted per the plan. Backdoor loads/peeks — weight pinning,
    /// input staging, output readback — bypass the shim. The armed
    /// plan, its access counter and statistics survive per-frame resets
    /// by contract (a chaos plan describes a fleet lifetime); disarm or
    /// re-arm to clear.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.dram
            .lock()
            .downstream_mut()
            .downstream_mut()
            .dram_mut()
            .arm(plan);
    }

    /// Disarm the chaos plan: back to the untouched fast path.
    pub fn disarm_faults(&mut self) {
        self.dram
            .lock()
            .downstream_mut()
            .downstream_mut()
            .dram_mut()
            .disarm();
    }

    /// What the chaos plan has injected since it was armed.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.dram
            .lock()
            .downstream_mut()
            .downstream_mut()
            .dram_mut()
            .stats()
    }

    /// Run one **pipelined** frame: the frame's input was already
    /// streamed into the double-buffer slot at `staged_at` (by the
    /// previous frame's overlapped [`Soc::ps_stream`], or a pipeline
    /// fill), and while this frame computes, the *next* frame's input
    /// optionally streams into the other slot.
    ///
    /// The inter-frame reset is **scoped**: it zeroes the previous
    /// frame's input/activation/output extents but preserves the staged
    /// slot (and, as always, the resident weight images). The staged
    /// bytes are then flipped to [`Artifacts::input_addr`] — the
    /// zero-cycle control-plane buffer remap of a double-buffered
    /// design; our compiled command streams address one fixed input
    /// buffer, so the flip is modeled as a remap rather than re-pointing
    /// the descriptors. Compute is bit-identical to a serial run of the
    /// same bytes; only timing feels the overlapped preload.
    ///
    /// # Errors
    ///
    /// [`SocError`] on CPU faults, preload bus errors or timeout.
    ///
    /// # Panics
    ///
    /// Panics if the firmware does not fit the program memory.
    pub fn run_firmware_staged(
        &mut self,
        artifacts: &Artifacts,
        staged_at: u32,
        fw: &Firmware,
        next_preload: Option<(u32, &[u8])>,
    ) -> Result<StagedRun, SocError> {
        let len = artifacts.input_len;
        let mut keep = RangeSet::new();
        keep.insert(staged_at as usize, staged_at as usize + len);
        self.with_dram(|d| d.preserve_across_reset(keep));
        self.prepare(artifacts)?;
        // The flip: staged slot -> the command stream's input buffer.
        let staged = self.dram_peek(staged_at, len);
        self.dram_load(artifacts.input_addr, &staged)?;
        self.switch_dram_to(Side::Soc);
        let (result, preload_done) = self.execute_prepared(artifacts, fw, next_preload)?;
        Ok(StagedRun {
            result,
            preload_done,
        })
    }

    /// Build the system bus seen by the core's data port.
    fn build_bus(&self) -> SystemBus {
        let mut bus = SystemBus::new();
        bus.add_region(
            "nvdla",
            NVDLA_BASE,
            NVDLA_SIZE,
            Box::new(AhbToApb::new(self.nvdla.clone())),
        )
        .expect("static map");
        bus.add_region(
            "dram",
            DRAM_BASE,
            DRAM_SIZE.min((self.config.dram_bytes as u64).min(u64::from(u32::MAX)) as u32),
            Box::new(AhbToAxi::new(self.dram.clone(), AxiConfig::axi32())),
        )
        .expect("static map");
        bus
    }

    /// Run one bare-metal inference: preload DRAM, load firmware, reset
    /// the core, execute to `ebreak`, read the output back.
    ///
    /// # Errors
    ///
    /// Returns [`SocError`] on CPU faults, firmware bugs or timeout.
    pub fn run_inference(
        &mut self,
        artifacts: &Artifacts,
        input: &Tensor,
    ) -> Result<InferenceResult, SocError> {
        let fw = Firmware::build(artifacts)?;
        self.run_firmware(artifacts, &artifacts.quantize_input(input), &fw)
    }

    /// Run a pre-built firmware image on pre-quantized input bytes.
    ///
    /// Warm when `artifacts`' weights are resident (from a previous run
    /// or [`Soc::load_artifacts`]): the fabric resets in place and only
    /// the input is reloaded. Cold otherwise: full reset plus weight
    /// preload, after which the weights stay resident for the next run.
    /// Both paths produce bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`SocError`] on CPU faults or timeout.
    ///
    /// # Panics
    ///
    /// Panics if the firmware does not fit the program memory.
    pub fn run_firmware(
        &mut self,
        artifacts: &Artifacts,
        input_bytes: &[u8],
        fw: &Firmware,
    ) -> Result<InferenceResult, SocError> {
        // Zynq PS preload (Fig. 4): weights (unless resident) + input,
        // then hand the DRAM to the SoC.
        self.prepare(artifacts)?;
        self.dram_load(artifacts.input_addr, input_bytes)?;
        self.switch_dram_to(Side::Soc);
        let (result, _) = self.execute_prepared(artifacts, fw, None)?;
        Ok(result)
    }

    /// Execute `fw` on a SoC whose DRAM is already preloaded and handed
    /// over: build the core, run to `ebreak`, collect the result. The
    /// shared tail of [`run_firmware`](Soc::run_firmware) and
    /// [`run_firmware_staged`](Soc::run_firmware_staged).
    ///
    /// With `preload`, the next frame's input streams chunk by chunk
    /// into its slot *as modeled time advances* — each chunk is issued
    /// when the core's clock reaches its due time, so the preload
    /// interleaves with (and contends against) this frame's CPU and
    /// NVDLA traffic on the shared DRAM timeline. Returns the inference
    /// result and the preload's completion cycle (0 without one); a
    /// preload still unfinished at `ebreak` is flushed, so its
    /// completion may exceed the compute cycles.
    fn execute_prepared(
        &mut self,
        artifacts: &Artifacts,
        fw: &Firmware,
        preload: Option<(u32, &[u8])>,
    ) -> Result<(InferenceResult, u64), SocError> {
        let mut pump = preload.map(|(addr, bytes)| PreloadPump::new(addr, bytes, 0));
        self.nvdla.lock().set_functional(self.config.functional);

        // Program memory.
        assert!(
            fw.size_bytes() <= self.config.progmem_bytes,
            "firmware ({} B) exceeds program memory ({} B)",
            fw.size_bytes(),
            self.config.progmem_bytes
        );
        let mut progmem = Sram::new(self.config.progmem_bytes);
        progmem
            .load(fw.image.base() as usize, &fw.image.bytes())
            .expect("checked above");

        let mut core = Core::new(progmem, self.build_bus());
        core.set_pc(fw.image.base());

        // Reattach the decoded-block cache if this firmware is the one
        // it was built from; otherwise start a cold cache. (Attached
        // *after* the program image is loaded — the cache must never
        // see bytes that are about to change.)
        let fw_key = firmware_cache_key(fw);
        if self.config.block_cache {
            match self.decoded.take() {
                Some((key, cache)) if key == fw_key => core.attach_block_cache(cache),
                _ => core.enable_block_cache(self.config.progmem_bytes),
            }
        }
        let cache_stats0 = core.block_cache_stats().unwrap_or_default();

        // With a watchdog armed, bound each uninterrupted block run so
        // a hung poll loop returns here (where the deadline is checked)
        // every few thousand instructions instead of grinding through
        // the whole instruction budget first.
        const WATCHDOG_CHUNK: u64 = 65_536;
        let mut instructions = 0u64;
        let stop = loop {
            if instructions >= self.config.max_instructions {
                return Err(SocError::Timeout { instructions });
            }
            if let Some(deadline) = self.watchdog {
                let cycles = core.cycle();
                if cycles > deadline {
                    return Err(SocError::WatchdogExpired { deadline, cycles });
                }
            }
            let stepped = if let Some(p) = pump.as_mut() {
                // Issue every preload chunk whose due time has passed,
                // *before* the instruction at this cycle touches the
                // bus, so chunk and compute traffic interleave in
                // timeline order.
                self.pump_preload(p, core.cycle()).map_err(SocError::Bus)?;
                instructions += 1;
                core.step()
            } else {
                // No concurrent preload: let the core batch (and, in a
                // provably periodic poll loop, fast-forward) instead of
                // bouncing back here per instruction.
                let budget = self.config.max_instructions - instructions;
                let limit = if self.watchdog.is_some() {
                    budget.min(WATCHDOG_CHUNK)
                } else {
                    budget
                };
                let (n, stepped) = core.run_block(limit);
                instructions += n;
                stepped
            };
            match stepped? {
                None => {}
                Some(StopReason::Wfi) => {
                    // Interrupt-driven wait: sleep until the NVDLA
                    // completes (its interrupt is the only wake source
                    // in this SoC). A wfi with nothing outstanding and
                    // no pending interrupt would never wake.
                    let now = core.cycle();
                    let dla = self.nvdla.lock();
                    if dla.busy(now) {
                        let wake = dla.idle_at(now) + 1;
                        drop(dla);
                        if let Some(p) = pump.as_mut() {
                            // Chunks due during the sleep issue at
                            // their own times, not at the wake.
                            self.pump_preload(p, wake).map_err(SocError::Bus)?;
                        }
                        core.advance_cycle(wake);
                    } else if dla.intr_pending(now) {
                        // Already complete: resume immediately.
                    } else {
                        return Err(SocError::UnexpectedStop(StopReason::Wfi));
                    }
                }
                Some(stop) => break stop,
            }
        };
        // A preload the compute did not cover streams out its tail.
        let preload_done = match pump {
            Some(mut p) => {
                self.pump_preload(&mut p, u64::MAX).map_err(SocError::Bus)?;
                p.done
            }
            None => 0,
        };
        if stop != StopReason::Ebreak {
            return Err(SocError::UnexpectedStop(stop));
        }

        // Keep the decoded firmware warm for the next run; report this
        // run's share of the (cumulative) cache counters.
        let cache_stats = core
            .block_cache_stats()
            .unwrap_or_default()
            .since(&cache_stats0);
        if let Some(cache) = core.take_block_cache() {
            self.decoded = Some((fw_key, cache));
        }
        // Poll reads the core answered from its MMIO read lease never
        // reached the CSB; credit them so `csb_reads` reports the
        // architectural count, identical to a lease-free run.
        let elided = core.elided_mmio_reads();
        if elided > 0 {
            self.nvdla.lock().credit_elided_reads(elided);
        }

        // One borrow of the output region yields both the raw copy kept
        // in the result and the dequantized tensor (no double peek).
        let (raw_output, output) =
            self.with_dram_peek(artifacts.output_addr, artifacts.output_len, |raw| {
                (raw.to_vec(), artifacts.dequantize_output(raw))
            });
        let t0 = core.read_reg(rvnv_riscv::reg::A0);
        let t1 = core.read_reg(rvnv_riscv::reg::A1);
        let cpu_wait = self.dram.lock().port_stats(MasterId::Cpu).wait_cycles;
        // Take both NVDLA snapshots with a single lock: a second `lock()`
        // in the same struct expression would deadlock on the guard
        // temporary. The timeline copy is skipped when capture is off.
        let (nvdla_stats, timeline) = {
            let dla = self.nvdla.lock();
            let timeline = if self.config.capture_timeline {
                dla.timeline().to_vec()
            } else {
                Vec::new()
            };
            (dla.stats().clone(), timeline)
        };
        if self.tracer.is_armed() {
            // One frame on the track: the whole run as a `compute` span
            // at the current trace offset, with a child per accelerator
            // operation from the captured timeline (empty when
            // [`SocConfig::capture_timeline`] is off).
            let base = self.trace_base;
            let cycles = core.cycle();
            let parent = self.tracer.span(
                self.track,
                SpanKind::Compute,
                base,
                base + cycles,
                &artifacts.model,
            );
            for op in &timeline {
                self.tracer.child(
                    parent,
                    self.track,
                    SpanKind::Compute,
                    base + op.start,
                    base + op.done.min(cycles),
                    op.block.name(),
                );
            }
            self.trace_base = base + cycles;
        }
        Ok((
            InferenceResult {
                cycles: core.cycle(),
                firmware_cycles: u64::from(t1.wrapping_sub(t0)),
                instructions,
                output,
                raw_output,
                pipeline: core.pipeline_stats(),
                nvdla: nvdla_stats,
                cpu_arbiter_wait: cpu_wait,
                firmware_bytes: fw.size_bytes(),
                timeline,
                block_cache: cache_stats,
                elided_polls: elided,
            },
            preload_done,
        ))
    }
}

/// Identity of a firmware image for decoded-block-cache retention:
/// same base, same bytes → the retained decode is valid.
fn firmware_cache_key(fw: &Firmware) -> u64 {
    let mut h = Fnv::new();
    h.mix(u64::from(fw.image.base()));
    h.bytes(&fw.image.bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvnv_compiler::{compile, CompileOptions};
    use rvnv_nn::exec::Executor;
    use rvnv_nn::zoo;

    #[test]
    fn lenet_bare_metal_inference_matches_golden() {
        let net = zoo::lenet5(11);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        let input = Tensor::random(net.input_shape(), 21);
        let result = soc.run_inference(&artifacts, &input).unwrap();

        let exec = Executor::new(&net);
        let all = exec.run_all(&input).unwrap();
        let logits = &all[all.len() - 2];
        assert_eq!(result.output.argmax(), logits.argmax());
        assert!(result.cycles > 50_000, "cycles {}", result.cycles);
        assert!(result.instructions > 1_000);
        // Firmware's own mcycle measurement is close to total.
        assert!(result.firmware_cycles <= result.cycles);
        assert!(result.firmware_cycles * 10 > result.cycles * 9);
    }

    #[test]
    fn lenet_latency_at_100mhz_has_paper_magnitude() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        let input = Tensor::random(net.input_shape(), 2);
        let result = soc.run_inference(&artifacts, &input).unwrap();
        let ms = result.latency_ms(soc.config().soc_hz);
        // Paper: 4.8 ms. Same order of magnitude is the claim we check
        // in tests; EXPERIMENTS.md records the exact measured value.
        assert!(
            (0.5..50.0).contains(&ms),
            "LeNet-5 {ms:.2} ms vs paper 4.8 ms"
        );
    }

    #[test]
    fn nvdla_stats_show_conv_activity() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        let input = Tensor::random(net.input_shape(), 2);
        let result = soc.run_inference(&artifacts, &input).unwrap();
        assert_eq!(
            result.nvdla.engine(rvnv_nvdla::regs::Block::Cacc).ops,
            4,
            "2 convs + 2 FCs"
        );
        assert!(result.nvdla.total_macs() > 1_000_000);
        assert!(result.nvdla.total_dma_bytes() > 400_000);
    }

    #[test]
    fn timing_only_mode_matches_functional_cycles() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let input = Tensor::random(net.input_shape(), 2);
        let mut f = Soc::new(SocConfig::zcu102_nv_small());
        let rf = f.run_inference(&artifacts, &input).unwrap();
        let mut t = Soc::new(SocConfig::zcu102_timing_only());
        let rt = t.run_inference(&artifacts, &input).unwrap();
        assert_eq!(rf.cycles, rt.cycles, "timing-only must not change timing");
    }

    #[test]
    fn warm_runs_are_bit_identical_to_cold_runs() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let input = Tensor::random(net.input_shape(), 2);
        let mut cold = Soc::new(SocConfig::zcu102_nv_small());
        let c = cold.run_inference(&artifacts, &input).unwrap();

        let mut warm = Soc::new(SocConfig::zcu102_nv_small());
        warm.load_artifacts(&artifacts).unwrap();
        assert!(warm.is_resident(&artifacts));
        for _ in 0..3 {
            let w = warm.run_inference(&artifacts, &input).unwrap();
            assert_eq!(w.cycles, c.cycles, "warm timing identical");
            assert_eq!(w.raw_output, c.raw_output, "warm output identical");
            assert_eq!(w.instructions, c.instructions);
            assert_eq!(w.cpu_arbiter_wait, c.cpu_arbiter_wait);
        }
    }

    #[test]
    fn first_run_promotes_artifacts_to_resident() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_timing_only());
        assert!(!soc.is_resident(&artifacts));
        let input = Tensor::random(net.input_shape(), 2);
        soc.run_inference(&artifacts, &input).unwrap();
        assert!(
            soc.is_resident(&artifacts),
            "cold run leaves weights resident"
        );
        soc.reset();
        assert!(!soc.is_resident(&artifacts), "explicit reset evicts them");
    }

    #[test]
    fn switching_artifacts_reloads_cold_and_stays_correct() {
        let lenet = compile(&zoo::lenet5(1), &CompileOptions::int8()).unwrap();
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let unfused = compile(&zoo::lenet5(1), &opt.unfused()).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        let input = Tensor::random(zoo::lenet5(1).input_shape(), 3);
        let a = soc.run_inference(&lenet, &input).unwrap();
        // Different compilation of the same model: must not be treated
        // as resident.
        assert!(!soc.is_resident(&unfused));
        let b = soc.run_inference(&unfused, &input).unwrap();
        assert!(soc.is_resident(&unfused));
        assert_eq!(a.output.argmax(), b.output.argmax());
        // And back again, still correct.
        let a2 = soc.run_inference(&lenet, &input).unwrap();
        assert_eq!(a2.cycles, a.cycles);
        assert_eq!(a2.raw_output, a.raw_output);
    }

    #[test]
    fn timing_only_config_skips_timeline_capture() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let input = Tensor::random(net.input_shape(), 2);
        let mut t = Soc::new(SocConfig::zcu102_timing_only());
        let r = t.run_inference(&artifacts, &input).unwrap();
        assert!(r.timeline.is_empty(), "no timeline copy in sweep mode");
        assert!(r.nvdla.total_ops() > 0, "stats still collected");
    }

    #[test]
    fn disjoint_models_stay_resident_side_by_side() {
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let a = compile(&zoo::lenet5(1), &opt).unwrap();
        let base = a.dram_used.div_ceil(4096) * 4096;
        let b = compile(&zoo::lenet5(2), &opt.clone().at_dram_base(base)).unwrap();

        let mut soc = Soc::new(SocConfig::zcu102_timing_only());
        soc.load_artifacts(&a).unwrap();
        soc.load_artifacts(&b).unwrap();
        assert_eq!(soc.resident_count(), 2);
        let input = Tensor::random(zoo::lenet5(1).input_shape(), 3);
        // Interleaved runs keep both images warm.
        let ra = soc.run_inference(&a, &input).unwrap();
        let rb = soc.run_inference(&b, &input).unwrap();
        assert!(soc.is_resident(&a) && soc.is_resident(&b));
        assert_eq!(soc.run_inference(&a, &input).unwrap().cycles, ra.cycles);
        assert_eq!(soc.run_inference(&b, &input).unwrap().cycles, rb.cycles);
        // Re-pinning a resident image is a no-op.
        soc.load_artifacts(&a).unwrap();
        assert_eq!(soc.resident_count(), 2);
    }

    #[test]
    fn overlapping_footprints_rejected_by_load_but_evicted_by_run() {
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        // Same base: the two compilations' footprints overlap.
        let a = compile(&zoo::lenet5(1), &opt).unwrap();
        let b = compile(&zoo::lenet5(2), &opt).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_timing_only());
        soc.load_artifacts(&a).unwrap();
        let e = soc.load_artifacts(&b).unwrap_err();
        assert!(matches!(e, BusError::ResidentOverlap { .. }), "{e}");
        assert!(soc.is_resident(&a), "failed pin must not evict");
        // A run with overlapping artifacts evicts instead (LRU-style).
        let input = Tensor::random(zoo::lenet5(1).input_shape(), 3);
        soc.run_inference(&b, &input).unwrap();
        assert!(soc.is_resident(&b) && !soc.is_resident(&a));
        assert_eq!(soc.resident_count(), 1);
    }

    #[test]
    fn unload_artifacts_leaves_other_model_warm() {
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let a = compile(&zoo::lenet5(1), &opt).unwrap();
        let base = a.dram_used.div_ceil(4096) * 4096;
        let b = compile(&zoo::lenet5(2), &opt.clone().at_dram_base(base)).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        soc.load_artifacts(&a).unwrap();
        soc.load_artifacts(&b).unwrap();
        let input = Tensor::random(zoo::lenet5(1).input_shape(), 8);
        let rb = soc.run_inference(&b, &input).unwrap();
        soc.unload_artifacts(&a);
        assert!(!soc.is_resident(&a) && soc.is_resident(&b));
        // b's numbers are unchanged by a's eviction.
        let rb2 = soc.run_inference(&b, &input).unwrap();
        assert_eq!(rb2.cycles, rb.cycles);
        assert_eq!(rb2.raw_output, rb.raw_output);
        soc.unload_artifacts(&a); // unknown: no-op
        assert_eq!(soc.resident_count(), 1);
    }

    #[test]
    fn unload_then_pin_at_same_base_stays_bit_identical() {
        // Regression: after `unload_artifacts` the DRAM has no resident
        // image, so the old model's input/activation bytes are no
        // longer in the run tracker; pinning a new model at the same
        // base and running must still replay a fresh SoC exactly (the
        // reset zeroes by dirty extents, not by the run tracker).
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let a = compile(&zoo::lenet5(1), &opt).unwrap();
        let b = compile(&zoo::lenet5(2), &opt).unwrap();
        let input = Tensor::random(zoo::lenet5(1).input_shape(), 13);
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        soc.run_inference(&a, &input).unwrap();
        soc.unload_artifacts(&a);
        soc.load_artifacts(&b).unwrap();
        let warm = soc.run_inference(&b, &input).unwrap();
        let mut fresh = Soc::new(SocConfig::zcu102_nv_small());
        let truth = fresh.run_inference(&b, &input).unwrap();
        assert_eq!(warm.cycles, truth.cycles);
        assert_eq!(warm.raw_output, truth.raw_output);
    }

    #[test]
    fn soc_reset_drops_every_resident_image() {
        let mut opt = CompileOptions::int8();
        opt.calib_inputs = 1;
        let a = compile(&zoo::lenet5(1), &opt).unwrap();
        let base = a.dram_used.div_ceil(4096) * 4096;
        let b = compile(&zoo::lenet5(2), &opt.clone().at_dram_base(base)).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_timing_only());
        soc.load_artifacts(&a).unwrap();
        soc.load_artifacts(&b).unwrap();
        soc.reset();
        assert_eq!(soc.resident_count(), 0);
        assert!(!soc.is_resident(&a) && !soc.is_resident(&b));
        // Cold rerun after the wipe still works.
        let input = Tensor::random(zoo::lenet5(1).input_shape(), 3);
        soc.run_inference(&a, &input).unwrap();
        assert!(soc.is_resident(&a));
    }

    #[test]
    fn analytic_preload_cycles_match_real_stream() {
        // `input_preload_cycles` must equal what `ps_stream` actually
        // takes on a quiet, PS-owned fabric — the serial-latency
        // accounting and the pipeline-fill measurement are one model.
        for (addr, len) in [(0x20_0000u32, 784usize), (0x30_0010, 3072), (0x1ffc, 64)] {
            let soc = Soc::new(SocConfig::zcu102_timing_only());
            let bytes = vec![0x5Au8; len];
            let done = soc.ps_stream(addr, &bytes, 0).unwrap();
            assert_eq!(
                done,
                soc.input_preload_cycles(addr, len),
                "addr {addr:#x} len {len}"
            );
        }
    }

    #[test]
    fn ps_stream_rejected_mid_compute_unless_pipelined() {
        let soc = Soc::new(SocConfig::zcu102_timing_only());
        soc.switch_dram_to(Side::Soc);
        let e = soc.ps_stream(0x20_0000, &[1; 4], 0).unwrap_err();
        assert!(matches!(e, BusError::SlaveError { .. }), "{e}");
        soc.set_pipelined(true);
        soc.ps_stream(0x20_0000, &[1; 4], 0).unwrap();
    }

    #[test]
    fn staged_run_is_bit_identical_to_serial() {
        // A frame whose input arrives via the double-buffer slot (scoped
        // reset + flip), with the *next* frame's preload contending on
        // the bus, must produce the exact bytes of a serial cold run —
        // only cycles may grow, and the frame after it stays warm.
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let input = Tensor::random(net.input_shape(), 5);
        let bytes = artifacts.quantize_input(&input);
        let fw = Firmware::build(&artifacts).unwrap();

        let mut cold = Soc::new(SocConfig::zcu102_nv_small());
        let truth = cold.run_firmware(&artifacts, &bytes, &fw).unwrap();

        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        soc.load_artifacts(&artifacts).unwrap();
        soc.set_pipelined(true);
        // Stage the input in a slot past the model's footprint.
        let slot = artifacts.dram_used.div_ceil(4096) * 4096;
        let other = slot + 4096;
        soc.quiesce();
        soc.ps_stream(slot, &bytes, 0).unwrap();
        let staged = soc
            .run_firmware_staged(&artifacts, slot, &fw, Some((other, &bytes)))
            .unwrap();
        assert_eq!(staged.result.raw_output, truth.raw_output, "bytes equal");
        assert!(staged.preload_done > 0);
        assert!(
            staged.result.cycles >= truth.cycles,
            "contention can only add cycles"
        );
        assert!(soc.is_resident(&artifacts), "weights stay warm");
        // The overlapped preload survives the next scoped reset: run the
        // staged slot it filled, with no further preload.
        let second = soc
            .run_firmware_staged(&artifacts, other, &fw, None)
            .unwrap();
        assert_eq!(second.result.raw_output, truth.raw_output);
        assert_eq!(
            second.result.cycles, truth.cycles,
            "no preload -> serial timing"
        );
    }

    #[test]
    fn timeout_detected() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let mut config = SocConfig::zcu102_nv_small();
        config.max_instructions = 100;
        let mut soc = Soc::new(config);
        let input = Tensor::random(net.input_shape(), 2);
        let e = soc.run_inference(&artifacts, &input).unwrap_err();
        assert!(matches!(e, SocError::Timeout { .. }));
    }

    #[test]
    fn watchdog_fires_on_modeled_deadline_and_disarmed_runs_are_identical() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let input = Tensor::random(net.input_shape(), 2);
        let bytes = artifacts.quantize_input(&input);
        let fw = Firmware::build(&artifacts).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        let truth = soc.run_firmware(&artifacts, &bytes, &fw).unwrap();
        // A deadline past the real latency never fires…
        let ok = soc
            .run_firmware_deadline(&artifacts, &bytes, &fw, truth.cycles + 1)
            .unwrap();
        assert_eq!(ok.cycles, truth.cycles);
        assert_eq!(ok.raw_output, truth.raw_output);
        assert!(soc.watchdog().is_none(), "one-shot deadline restored");
        // …one inside it does, with a typed error naming both numbers.
        let e = soc
            .run_firmware_deadline(&artifacts, &bytes, &fw, truth.cycles / 2)
            .unwrap_err();
        match e {
            SocError::WatchdogExpired { deadline, cycles } => {
                assert_eq!(deadline, truth.cycles / 2);
                assert!(cycles > deadline);
            }
            other => panic!("expected WatchdogExpired, got {other}"),
        }
        // The aborted run leaves the SoC recoverable: the next clean
        // run replays the warm path exactly.
        let after = soc.run_firmware(&artifacts, &bytes, &fw).unwrap();
        assert_eq!(after.cycles, truth.cycles);
        assert_eq!(after.raw_output, truth.raw_output);
    }

    #[test]
    fn watchdog_catches_injected_hang_at_host_speed() {
        // A huge latency spike on the NVDLA's first DMA burst models a
        // wedged accelerator: the wfi sleep jumps modeled time past the
        // deadline, so the watchdog fires after a handful of host steps
        // instead of burning the instruction budget.
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let input = Tensor::random(net.input_shape(), 2);
        let bytes = artifacts.quantize_input(&input);
        let fw = Firmware::build(&artifacts).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        let truth = soc.run_firmware(&artifacts, &bytes, &fw).unwrap();
        soc.arm_faults(FaultPlan::default().at(
            0,
            rvnv_bus::FaultKind::LatencySpike {
                cycles: 1_000_000_000,
            },
        ));
        soc.set_watchdog(Some(truth.cycles * 2));
        let e = soc.run_firmware(&artifacts, &bytes, &fw).unwrap_err();
        assert!(
            matches!(e, SocError::WatchdogExpired { .. }),
            "expected watchdog, got {e}"
        );
        // Re-warm recovery: full reset + re-pin from artifacts, then a
        // clean run that is bit-identical to the never-faulted SoC.
        soc.disarm_faults();
        soc.set_watchdog(None);
        soc.rewarm([&artifacts]).unwrap();
        assert!(soc.is_resident(&artifacts));
        let recovered = soc.run_firmware(&artifacts, &bytes, &fw).unwrap();
        assert_eq!(recovered.cycles, truth.cycles);
        assert_eq!(recovered.raw_output, truth.raw_output);
    }

    #[test]
    fn fingerprint_catches_injected_bit_flip() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let input = Tensor::random(net.input_shape(), 2);
        let bytes = artifacts.quantize_input(&input);
        let fw = Firmware::build(&artifacts).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        soc.run_firmware(&artifacts, &bytes, &fw).unwrap();
        let golden = soc.output_fingerprint(&artifacts);
        soc.verify_output(&artifacts, golden).unwrap();
        // Corrupt one output byte behind the fabric's back.
        let raw = soc.dram_peek(artifacts.output_addr, 1);
        soc.dram_load(artifacts.output_addr, &[raw[0] ^ 0x01])
            .unwrap();
        let e = soc.verify_output(&artifacts, golden).unwrap_err();
        assert!(matches!(e, SocError::OutputCorrupted { .. }), "{e}");
    }

    #[test]
    fn injected_dma_flip_corrupts_output_and_stats_account_for_it() {
        // Flip read data somewhere in the NVDLA's weight/input DMA
        // stream: the run "succeeds" but the output fingerprint
        // disagrees with the known-good run — exactly the silent
        // corruption the integrity check exists to catch.
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let input = Tensor::random(net.input_shape(), 2);
        let bytes = artifacts.quantize_input(&input);
        let fw = Firmware::build(&artifacts).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        let truth = soc.run_firmware(&artifacts, &bytes, &fw).unwrap();
        let golden = soc.output_fingerprint(&artifacts);
        soc.arm_faults(FaultPlan {
            seed: 3,
            flip_per_million: 20_000,
            ..FaultPlan::default()
        });
        let faulted = soc.run_firmware(&artifacts, &bytes, &fw).unwrap();
        let stats = soc.fault_stats();
        assert!(stats.flips > 0, "2% flip rate must hit the DMA stream");
        assert_ne!(faulted.raw_output, truth.raw_output, "corruption lands");
        assert!(soc.verify_output(&artifacts, golden).is_err());
        // Same seed, same stream: the faulted run is itself
        // deterministic (arming restarts the access counter).
        soc.arm_faults(FaultPlan {
            seed: 3,
            flip_per_million: 20_000,
            ..FaultPlan::default()
        });
        let again = soc.run_firmware(&artifacts, &bytes, &fw).unwrap();
        assert_eq!(again.raw_output, faulted.raw_output);
        assert_eq!(soc.fault_stats(), stats);
        // Disarm + rewarm: clean and bit-identical again.
        soc.disarm_faults();
        soc.rewarm([&artifacts]).unwrap();
        let clean = soc.run_firmware(&artifacts, &bytes, &fw).unwrap();
        assert_eq!(clean.raw_output, truth.raw_output);
        assert_eq!(clean.cycles, truth.cycles);
        soc.verify_output(&artifacts, golden).unwrap();
    }

    #[test]
    fn injected_bus_error_surfaces_typed_through_soc_error() {
        let net = zoo::lenet5(1);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let input = Tensor::random(net.input_shape(), 2);
        let bytes = artifacts.quantize_input(&input);
        let fw = Firmware::build(&artifacts).unwrap();
        let mut soc = Soc::new(SocConfig::zcu102_nv_small());
        soc.run_firmware(&artifacts, &bytes, &fw).unwrap();
        soc.arm_faults(FaultPlan {
            seed: 11,
            error_per_million: 500_000,
            ..FaultPlan::default()
        });
        let e = soc.run_firmware(&artifacts, &bytes, &fw).unwrap_err();
        // The injected fault must keep its identity through every
        // layer: CPU data-port fault or NVDLA DMA abort, but always a
        // typed chain whose root downcasts to BusError::Injected — no
        // stringly-typed matching anywhere on the way down.
        let mut cause: &(dyn Error + 'static) = &e;
        while let Some(src) = cause.source() {
            cause = src;
        }
        assert!(
            matches!(
                cause.downcast_ref::<BusError>(),
                Some(BusError::Injected { .. })
            ),
            "typed cause lost: {e} (root: {cause})"
        );
    }
}
